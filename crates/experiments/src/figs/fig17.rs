//! Figure 17: CloudSuite web serving.
//!
//! 200 users against an Elgg-style op mix; web workers and the RPS mask
//! share six cores, idle cores exist that only Falcon can exploit.
//! Expected shape: Falcon improves per-operation success rates and cuts
//! response and delay times by multiples.

use falcon::FalconConfig;
use falcon_cpusim::CpuSet;
use falcon_netdev::LinkSpeed;
use falcon_netstack::{KernelVersion, StackConfig};
use falcon_workloads::webserving::ELGG_OPS;
use falcon_workloads::{WebServing, WebServingConfig, WebStats};

use crate::measure::Scale;
use crate::scenario::{Mode, Scenario};
use crate::table::{FigResult, Table};

fn tweak_stack(stack: &mut StackConfig) {
    // Web workers and RPS share cores 1-6 (set in the workload config);
    // the machine has idle cores 7-10.
    stack.rps = Some(CpuSet::range(1, 7));
}

fn run_case(falcon_on: bool, scale: Scale) -> (WebStats, f64) {
    let mode = if falcon_on {
        Mode::Falcon(FalconConfig::new(CpuSet::range(1, 11)))
    } else {
        Mode::Vanilla
    };
    let mut scenario = Scenario::multi_flow(mode, KernelVersion::K419, LinkSpeed::HundredGbit);
    scenario.stack = StackConfig::new(falcon_netstack::NetMode::Overlay, KernelVersion::K419, 12);
    tweak_stack(&mut scenario.stack);
    let (app, stats) = WebServing::new(WebServingConfig::new(200));
    let mut runner = scenario.build(Box::new(app));
    let dur = match scale {
        Scale::Quick => falcon_simcore::SimDuration::from_millis(40),
        Scale::Full => falcon_simcore::SimDuration::from_millis(150),
    };
    runner.run_for(dur);
    (stats, dur.as_secs_f64())
}

/// Per-operation success rate, response time, and delay time.
pub fn run(scale: Scale) -> FigResult {
    let mut fig = FigResult::new(
        "fig17",
        "Web serving (Elgg op mix, 200 users): success rate, response and delay times",
    );
    let (vanilla, secs) = run_case(false, scale);
    let (falcon, _) = run_case(true, scale);

    let v = vanilla.borrow();
    let f = falcon.borrow();
    let mut t = Table::new(&[
        "operation",
        "Con ops/s",
        "Falcon ops/s",
        "Con resp us",
        "Falcon resp us",
        "Con delay us",
        "Falcon delay us",
    ]);
    let mut total_gain: f64 = 0.0;
    let mut rows = 0u32;
    for op in &ELGG_OPS {
        let (Some(vs), Some(fs)) = (v.get(op.name), f.get(op.name)) else {
            continue;
        };
        let v_rate = vs.successes as f64 / secs;
        let f_rate = fs.successes as f64 / secs;
        if vs.completed > 0 && fs.completed > 0 {
            total_gain += f_rate / v_rate.max(1.0);
            rows += 1;
        }
        t.row(vec![
            op.name.into(),
            format!("{v_rate:.0}"),
            format!("{f_rate:.0}"),
            format!("{:.0}", vs.avg_response_us()),
            format!("{:.0}", fs.avg_response_us()),
            format!("{:.0}", vs.avg_delay_us()),
            format!("{:.0}", fs.avg_delay_us()),
        ]);
    }
    fig.panel("", t);
    if rows > 0 {
        fig.note(format!(
            "mean success-rate gain across ops: {:.1}x (paper: up to 4x for BrowsetoElgg)",
            total_gain / rows as f64
        ));
    }
    fig
}

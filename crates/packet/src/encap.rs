//! VXLAN encapsulation and decapsulation, plus inner-frame builders.
//!
//! The overlay data path wraps a container's Ethernet frame in an outer
//! Ethernet + IPv4 + UDP(4789) + VXLAN envelope on transmit, and strips
//! it on receive. [`VXLAN_OVERHEAD`] (50 bytes) is the per-packet byte
//! tax the paper's Figure 2 throughput tests pay on the wire.

use core::ops::Range;

use falcon_khash::FlowKeys;
use serde::{Deserialize, Serialize};

use crate::checksum::{fold, pseudo_header_sum, sum_words};
use crate::ethernet::{EtherType, EthernetHdr, MacAddr, ETHERNET_HDR_LEN};
use crate::ipv4::{IpProto, Ipv4Addr4, Ipv4Hdr, IPV4_HDR_LEN};
use crate::tcp::{TcpFlags, TcpHdr, TCP_HDR_LEN};
use crate::udp::{UdpHdr, UDP_HDR_LEN, VXLAN_PORT};
use crate::vxlan::{VxlanHdr, VXLAN_HDR_LEN};
use crate::CodecError;

/// Bytes added by VXLAN encapsulation: outer Ethernet (14) + outer IPv4
/// (20) + outer UDP (8) + VXLAN (8).
pub const VXLAN_OVERHEAD: usize = ETHERNET_HDR_LEN + IPV4_HDR_LEN + UDP_HDR_LEN + VXLAN_HDR_LEN;

/// Parameters of the outer (host-network) envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EncapParams {
    /// Source (local host) MAC.
    pub src_mac: MacAddr,
    /// Destination (peer host) MAC.
    pub dst_mac: MacAddr,
    /// Source (local host) IP.
    pub src_ip: Ipv4Addr4,
    /// Destination (peer host) IP.
    pub dst_ip: Ipv4Addr4,
    /// Outer UDP source port. Real VXLAN derives it from the inner flow
    /// hash so that RSS can still spread *different* overlay flows.
    pub src_port: u16,
    /// The VXLAN network identifier.
    pub vni: u32,
}

/// Encapsulates an inner Ethernet frame in a VXLAN envelope.
///
/// # Examples
///
/// ```
/// use falcon_packet::encap::{vxlan_encapsulate, vxlan_decapsulate, EncapParams};
/// use falcon_packet::{Ipv4Addr4, MacAddr, VXLAN_OVERHEAD};
///
/// let inner = vec![0xAA; 100];
/// let params = EncapParams {
///     src_mac: MacAddr::from_index(1),
///     dst_mac: MacAddr::from_index(2),
///     src_ip: Ipv4Addr4::new(192, 168, 0, 1),
///     dst_ip: Ipv4Addr4::new(192, 168, 0, 2),
///     src_port: 49152,
///     vni: 42,
/// };
/// let outer = vxlan_encapsulate(&inner, &params);
/// assert_eq!(outer.len(), inner.len() + VXLAN_OVERHEAD);
/// let (decap, vni) = vxlan_decapsulate(&outer).unwrap();
/// assert_eq!(decap, &inner[..]);
/// assert_eq!(vni, 42);
/// ```
pub fn vxlan_encapsulate(inner_frame: &[u8], params: &EncapParams) -> Vec<u8> {
    let mut out = Vec::with_capacity(inner_frame.len() + VXLAN_OVERHEAD);
    vxlan_encapsulate_into(&mut out, inner_frame, params);
    out
}

/// [`vxlan_encapsulate`] into a caller-owned buffer: clears `out` and
/// writes the envelope plus inner frame, reusing `out`'s capacity. The
/// slab hot path builds frames directly inside pool slots with this —
/// no allocation when the slot's capacity covers the frame.
pub fn vxlan_encapsulate_into(out: &mut Vec<u8>, inner_frame: &[u8], params: &EncapParams) {
    let total = inner_frame.len() + VXLAN_OVERHEAD;
    out.clear();
    EthernetHdr {
        dst: params.dst_mac,
        src: params.src_mac,
        ethertype: EtherType::Ipv4,
    }
    .push_onto(out);
    Ipv4Hdr {
        total_len: (total - ETHERNET_HDR_LEN) as u16,
        ident: 0,
        ttl: 64,
        proto: IpProto::Udp,
        src: params.src_ip,
        dst: params.dst_ip,
    }
    .push_onto(out);
    UdpHdr {
        src_port: params.src_port,
        dst_port: VXLAN_PORT,
        len: (UDP_HDR_LEN + VXLAN_HDR_LEN + inner_frame.len()) as u16,
        checksum: 0,
    }
    .push_onto(out);
    VxlanHdr::new(params.vni).push_onto(out);
    out.extend_from_slice(inner_frame);
    debug_assert_eq!(out.len(), total);
}

/// Where the inner frame lives inside a VXLAN-encapsulated buffer.
///
/// Returned by [`decap_bounds`]: the decapsulated frame is described by
/// a byte range into the *original* buffer instead of a borrowed slice,
/// so a receive path that owns the buffer can decap without copying —
/// truncate/shift in place, or just carry the offsets forward the way
/// the kernel advances `skb->data`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecapBounds {
    /// Byte range of the inner Ethernet frame within the outer buffer.
    pub inner: Range<usize>,
    /// The VXLAN network identifier from the envelope.
    pub vni: u32,
    /// Outer UDP source port (real VXLAN derives it from the inner flow
    /// hash; useful for RSS-consistency checks).
    pub src_port: u16,
}

/// Parses a VXLAN envelope and returns the inner frame's byte range and
/// VNI, without borrowing into (or copying out of) the buffer.
///
/// Beyond header parsing, the outer envelope's length fields must agree
/// with the buffer: `ipv4.total_len` and `udp.len` must both reach
/// exactly to the end of `outer_frame` (no trailing slack, no overrun).
///
/// # Examples
///
/// ```
/// use falcon_packet::encap::{decap_bounds, vxlan_encapsulate, EncapParams};
/// use falcon_packet::{Ipv4Addr4, MacAddr, VXLAN_OVERHEAD};
///
/// let inner = vec![0x5A; 64];
/// let params = EncapParams {
///     src_mac: MacAddr::from_index(1),
///     dst_mac: MacAddr::from_index(2),
///     src_ip: Ipv4Addr4::new(192, 168, 0, 1),
///     dst_ip: Ipv4Addr4::new(192, 168, 0, 2),
///     src_port: 49152,
///     vni: 42,
/// };
/// let mut outer = vxlan_encapsulate(&inner, &params);
/// let b = decap_bounds(&outer).unwrap();
/// assert_eq!(b.inner, VXLAN_OVERHEAD..VXLAN_OVERHEAD + inner.len());
/// assert_eq!(b.vni, 42);
/// // Zero-copy strip: drop the envelope prefix in place.
/// outer.drain(..b.inner.start);
/// assert_eq!(outer, inner);
/// ```
pub fn decap_bounds(outer_frame: &[u8]) -> Result<DecapBounds, CodecError> {
    let eth = EthernetHdr::parse(outer_frame)?;
    if eth.ethertype != EtherType::Ipv4 {
        return Err(CodecError::Malformed {
            what: "vxlan-outer",
            why: "not IPv4",
        });
    }
    let ip_off = ETHERNET_HDR_LEN;
    let ip = Ipv4Hdr::parse(&outer_frame[ip_off..])?;
    if ip.proto != IpProto::Udp {
        return Err(CodecError::Malformed {
            what: "vxlan-outer",
            why: "not UDP",
        });
    }
    if ip_off + ip.total_len as usize != outer_frame.len() {
        return Err(CodecError::Malformed {
            what: "vxlan-outer",
            why: "ipv4 total_len does not match frame",
        });
    }
    let udp_off = ip_off + IPV4_HDR_LEN;
    let udp = UdpHdr::parse(&outer_frame[udp_off..])?;
    if udp.dst_port != VXLAN_PORT {
        return Err(CodecError::Malformed {
            what: "vxlan-outer",
            why: "not port 4789",
        });
    }
    if udp_off + udp.len as usize != outer_frame.len() {
        return Err(CodecError::Malformed {
            what: "vxlan-outer",
            why: "udp len does not match frame",
        });
    }
    let vxlan_off = udp_off + UDP_HDR_LEN;
    let vxlan = VxlanHdr::parse(&outer_frame[vxlan_off..])?;
    Ok(DecapBounds {
        inner: vxlan_off + VXLAN_HDR_LEN..outer_frame.len(),
        vni: vxlan.vni,
        src_port: udp.src_port,
    })
}

/// Strips a VXLAN envelope, returning the inner frame bytes and the VNI.
///
/// Fails if the outer headers do not parse as Ethernet/IPv4/UDP-to-4789/
/// VXLAN. This is the borrowed-slice convenience over [`decap_bounds`];
/// hot paths that own the buffer should use the bounds form and strip in
/// place instead of copying the returned slice.
pub fn vxlan_decapsulate(outer_frame: &[u8]) -> Result<(&[u8], u32), CodecError> {
    let b = decap_bounds(outer_frame)?;
    Ok((&outer_frame[b.inner], b.vni))
}

/// Computes and writes the inner L4 (UDP or TCP) checksum of `frame` in
/// place, over the IPv4 pseudo-header plus L4 header and payload.
///
/// The frame's builders ([`build_udp_frame`]/[`build_tcp_frame`]) emit a
/// zero checksum field; call this afterwards to make the frame
/// end-to-end verifiable. For UDP, a computed checksum of `0x0000` is
/// transmitted as `0xFFFF` per RFC 768, because an on-wire zero means
/// "no checksum".
pub fn fill_l4_checksum(frame: &mut [u8]) -> Result<(), CodecError> {
    let (ip, l4_range, csum_off) = l4_layout(frame)?;
    frame[csum_off] = 0;
    frame[csum_off + 1] = 0;
    let acc = pseudo_header_sum(ip.src.0, ip.dst.0, ip.proto.to_u8(), l4_range.len() as u16);
    let mut csum = !fold(sum_words(&frame[l4_range], acc));
    if csum == 0 && ip.proto == IpProto::Udp {
        csum = 0xFFFF;
    }
    frame[csum_off..csum_off + 2].copy_from_slice(&csum.to_be_bytes());
    Ok(())
}

/// Verifies the inner L4 (UDP or TCP) checksum of `frame` against the
/// IPv4 pseudo-header plus L4 bytes.
///
/// A UDP checksum field of zero means "not computed" (RFC 768) and
/// passes. Returns [`CodecError::BadChecksum`] on mismatch.
pub fn verify_l4_checksum(frame: &[u8]) -> Result<(), CodecError> {
    let (ip, l4_range, csum_off) = l4_layout(frame)?;
    let (what, is_udp) = match ip.proto {
        IpProto::Udp => ("udp", true),
        IpProto::Tcp => ("tcp", false),
        IpProto::Other(_) => unreachable!("l4_layout only admits UDP/TCP"),
    };
    if is_udp && frame[csum_off] == 0 && frame[csum_off + 1] == 0 {
        return Ok(()); // RFC 768: zero on the wire = no checksum.
    }
    let acc = pseudo_header_sum(ip.src.0, ip.dst.0, ip.proto.to_u8(), l4_range.len() as u16);
    if fold(sum_words(&frame[l4_range], acc)) != 0xFFFF {
        return Err(CodecError::BadChecksum { what });
    }
    Ok(())
}

/// Parses the Ethernet+IPv4 prefix of `frame` and locates the L4 bytes:
/// returns the IPv4 header, the L4 range (header plus payload, exactly
/// `total_len - 20` bytes), and the absolute offset of the L4 checksum
/// field. Rejects non-IPv4, non-UDP/TCP, and frames shorter than
/// `total_len` claims.
fn l4_layout(frame: &[u8]) -> Result<(Ipv4Hdr, Range<usize>, usize), CodecError> {
    let eth = EthernetHdr::parse(frame)?;
    if eth.ethertype != EtherType::Ipv4 {
        return Err(CodecError::Malformed {
            what: "l4-checksum",
            why: "not IPv4",
        });
    }
    let ip = Ipv4Hdr::parse(&frame[ETHERNET_HDR_LEN..])?;
    let l4_off = ETHERNET_HDR_LEN + IPV4_HDR_LEN;
    let l4_end = ETHERNET_HDR_LEN + ip.total_len as usize;
    if l4_end > frame.len() {
        return Err(CodecError::Truncated {
            what: "l4-checksum",
            need: l4_end,
            have: frame.len(),
        });
    }
    let csum_off = match ip.proto {
        IpProto::Udp => {
            if l4_end - l4_off < UDP_HDR_LEN {
                return Err(CodecError::Truncated {
                    what: "udp",
                    need: UDP_HDR_LEN,
                    have: l4_end - l4_off,
                });
            }
            l4_off + 6
        }
        IpProto::Tcp => {
            if l4_end - l4_off < TCP_HDR_LEN {
                return Err(CodecError::Truncated {
                    what: "tcp",
                    need: TCP_HDR_LEN,
                    have: l4_end - l4_off,
                });
            }
            l4_off + 16
        }
        IpProto::Other(_) => {
            return Err(CodecError::Malformed {
                what: "l4-checksum",
                why: "unsupported L4 protocol",
            })
        }
    };
    Ok((ip, l4_off..l4_end, csum_off))
}

/// Builds a UDP datagram frame: Ethernet + IPv4 + UDP + payload.
pub fn build_udp_frame(
    src_mac: MacAddr,
    dst_mac: MacAddr,
    keys: &FlowKeys,
    payload: &[u8],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(ETHERNET_HDR_LEN + IPV4_HDR_LEN + UDP_HDR_LEN + payload.len());
    build_udp_frame_into(&mut out, src_mac, dst_mac, keys, payload);
    out
}

/// [`build_udp_frame`] into a caller-owned buffer (cleared first,
/// capacity reused — the frame factory's amortized-zero-alloc path).
pub fn build_udp_frame_into(
    out: &mut Vec<u8>,
    src_mac: MacAddr,
    dst_mac: MacAddr,
    keys: &FlowKeys,
    payload: &[u8],
) {
    let total_ip = IPV4_HDR_LEN + UDP_HDR_LEN + payload.len();
    out.clear();
    EthernetHdr {
        dst: dst_mac,
        src: src_mac,
        ethertype: EtherType::Ipv4,
    }
    .push_onto(out);
    Ipv4Hdr {
        total_len: total_ip as u16,
        ident: 0,
        ttl: 64,
        proto: IpProto::Udp,
        src: Ipv4Addr4(keys.src_addr),
        dst: Ipv4Addr4(keys.dst_addr),
    }
    .push_onto(out);
    UdpHdr {
        src_port: keys.src_port,
        dst_port: keys.dst_port,
        len: (UDP_HDR_LEN + payload.len()) as u16,
        checksum: 0,
    }
    .push_onto(out);
    out.extend_from_slice(payload);
}

/// Builds a TCP segment frame: Ethernet + IPv4 + TCP + payload.
#[allow(clippy::too_many_arguments)]
pub fn build_tcp_frame(
    src_mac: MacAddr,
    dst_mac: MacAddr,
    keys: &FlowKeys,
    seq: u32,
    ack: u32,
    flags: TcpFlags,
    window: u16,
    payload: &[u8],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(ETHERNET_HDR_LEN + IPV4_HDR_LEN + TCP_HDR_LEN + payload.len());
    build_tcp_frame_into(
        &mut out, src_mac, dst_mac, keys, seq, ack, flags, window, payload,
    );
    out
}

/// [`build_tcp_frame`] into a caller-owned buffer (cleared first,
/// capacity reused).
#[allow(clippy::too_many_arguments)]
pub fn build_tcp_frame_into(
    out: &mut Vec<u8>,
    src_mac: MacAddr,
    dst_mac: MacAddr,
    keys: &FlowKeys,
    seq: u32,
    ack: u32,
    flags: TcpFlags,
    window: u16,
    payload: &[u8],
) {
    let total_ip = IPV4_HDR_LEN + TCP_HDR_LEN + payload.len();
    out.clear();
    EthernetHdr {
        dst: dst_mac,
        src: src_mac,
        ethertype: EtherType::Ipv4,
    }
    .push_onto(out);
    Ipv4Hdr {
        total_len: total_ip as u16,
        ident: 0,
        ttl: 64,
        proto: IpProto::Tcp,
        src: Ipv4Addr4(keys.src_addr),
        dst: Ipv4Addr4(keys.dst_addr),
    }
    .push_onto(out);
    TcpHdr {
        src_port: keys.src_port,
        dst_port: keys.dst_port,
        seq,
        ack,
        flags,
        window,
    }
    .push_onto(out);
    out.extend_from_slice(payload);
}

/// Dissects the flow keys from an (inner or host) frame starting at its
/// Ethernet header — the simulation's flow dissector.
pub fn dissect_flow(frame: &[u8]) -> Result<FlowKeys, CodecError> {
    let eth = EthernetHdr::parse(frame)?;
    if eth.ethertype != EtherType::Ipv4 {
        return Err(CodecError::Malformed {
            what: "dissect",
            why: "not IPv4",
        });
    }
    let ip = Ipv4Hdr::parse(&frame[ETHERNET_HDR_LEN..])?;
    let l4 = &frame[ETHERNET_HDR_LEN + IPV4_HDR_LEN..];
    match ip.proto {
        IpProto::Udp => {
            let udp = UdpHdr::parse(l4)?;
            Ok(FlowKeys {
                src_addr: ip.src.0,
                dst_addr: ip.dst.0,
                src_port: udp.src_port,
                dst_port: udp.dst_port,
                ip_proto: 17,
            })
        }
        IpProto::Tcp => {
            let tcp = TcpHdr::parse(l4)?;
            Ok(FlowKeys {
                src_addr: ip.src.0,
                dst_addr: ip.dst.0,
                src_port: tcp.src_port,
                dst_port: tcp.dst_port,
                ip_proto: 6,
            })
        }
        IpProto::Other(_) => Err(CodecError::Malformed {
            what: "dissect",
            why: "unsupported L4 protocol",
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> EncapParams {
        EncapParams {
            src_mac: MacAddr::from_index(1),
            dst_mac: MacAddr::from_index(2),
            src_ip: Ipv4Addr4::new(192, 168, 0, 1),
            dst_ip: Ipv4Addr4::new(192, 168, 0, 2),
            src_port: 55555,
            vni: 7,
        }
    }

    fn inner_udp() -> Vec<u8> {
        let keys = FlowKeys::udp(
            Ipv4Addr4::new(10, 0, 0, 1).0,
            5001,
            Ipv4Addr4::new(10, 0, 0, 2).0,
            8080,
        );
        build_udp_frame(
            MacAddr::from_index(10),
            MacAddr::from_index(11),
            &keys,
            &[9u8; 32],
        )
    }

    #[test]
    fn encap_decap_round_trip() {
        let inner = inner_udp();
        let outer = vxlan_encapsulate(&inner, &params());
        assert_eq!(outer.len(), inner.len() + VXLAN_OVERHEAD);
        let (decap, vni) = vxlan_decapsulate(&outer).unwrap();
        assert_eq!(decap, &inner[..]);
        assert_eq!(vni, 7);
    }

    #[test]
    fn outer_flow_differs_from_inner_flow() {
        // The whole point of encapsulation: the host network sees the
        // outer (host IP, port-4789) flow, not the container flow.
        let inner = inner_udp();
        let outer = vxlan_encapsulate(&inner, &params());
        let inner_keys = dissect_flow(&inner).unwrap();
        let outer_keys = dissect_flow(&outer).unwrap();
        assert_ne!(inner_keys, outer_keys);
        assert_eq!(outer_keys.dst_port, VXLAN_PORT);
        assert_eq!(outer_keys.src_addr, Ipv4Addr4::new(192, 168, 0, 1).0);
    }

    #[test]
    fn decap_rejects_plain_udp() {
        // A frame whose UDP port is not 4789 is not VXLAN.
        let frame = inner_udp();
        assert!(matches!(
            vxlan_decapsulate(&frame),
            Err(CodecError::Malformed {
                why: "not port 4789",
                ..
            })
        ));
    }

    #[test]
    fn decap_rejects_tcp_outer() {
        let keys = FlowKeys::tcp(1, 2, 3, 4);
        let frame = build_tcp_frame(
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            &keys,
            0,
            0,
            TcpFlags::data(),
            100,
            &[],
        );
        assert!(matches!(
            vxlan_decapsulate(&frame),
            Err(CodecError::Malformed { why: "not UDP", .. })
        ));
    }

    #[test]
    fn dissect_udp_and_tcp() {
        let ukeys = FlowKeys::udp(100, 1, 200, 2);
        let uframe = build_udp_frame(
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            &ukeys,
            &[0; 8],
        );
        assert_eq!(dissect_flow(&uframe).unwrap(), ukeys);

        let tkeys = FlowKeys::tcp(100, 1, 200, 2);
        let tframe = build_tcp_frame(
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            &tkeys,
            5,
            6,
            TcpFlags::data(),
            100,
            &[0; 8],
        );
        assert_eq!(dissect_flow(&tframe).unwrap(), tkeys);
    }

    #[test]
    fn decap_bounds_matches_slice_decap() {
        let inner = inner_udp();
        let outer = vxlan_encapsulate(&inner, &params());
        let b = decap_bounds(&outer).unwrap();
        assert_eq!(b.inner, VXLAN_OVERHEAD..outer.len());
        assert_eq!(&outer[b.inner.clone()], &inner[..]);
        assert_eq!(b.vni, 7);
        assert_eq!(b.src_port, 55555);
        let (slice, vni) = vxlan_decapsulate(&outer).unwrap();
        assert_eq!(slice, &outer[b.inner]);
        assert_eq!(vni, b.vni);
    }

    #[test]
    fn decap_bounds_rejects_length_lies() {
        let inner = inner_udp();
        let outer = vxlan_encapsulate(&inner, &params());

        // Trailing slack: both length fields stop short of the buffer.
        let mut padded = outer.clone();
        padded.push(0);
        assert!(matches!(
            decap_bounds(&padded),
            Err(CodecError::Malformed {
                why: "ipv4 total_len does not match frame",
                ..
            })
        ));

        // A UDP length that disagrees with the (valid) IPv4 length.
        let mut lied = outer.clone();
        let udp_len_off = ETHERNET_HDR_LEN + IPV4_HDR_LEN + 4;
        let udp = UdpHdr::parse(&outer[ETHERNET_HDR_LEN + IPV4_HDR_LEN..]).unwrap();
        lied[udp_len_off..udp_len_off + 2].copy_from_slice(&(udp.len - 1).to_be_bytes());
        assert!(matches!(
            decap_bounds(&lied),
            Err(CodecError::Malformed {
                why: "udp len does not match frame",
                ..
            })
        ));
    }

    #[test]
    fn fill_and_verify_udp_checksum_round_trip() {
        // Odd-length payload exercises the RFC 1071 trailing-byte pad.
        for payload_len in [0usize, 1, 31, 32, 33] {
            let keys = FlowKeys::udp(0x0A000001, 5001, 0x0A000002, 8080);
            let payload: Vec<u8> = (0..payload_len).map(|i| i as u8).collect();
            let mut frame = build_udp_frame(
                MacAddr::from_index(1),
                MacAddr::from_index(2),
                &keys,
                &payload,
            );
            // Builders emit checksum 0 ("not computed"): verify passes.
            verify_l4_checksum(&frame).unwrap();
            fill_l4_checksum(&mut frame).unwrap();
            let csum_off = ETHERNET_HDR_LEN + IPV4_HDR_LEN + 6;
            assert_ne!(
                &frame[csum_off..csum_off + 2],
                &[0, 0],
                "filled UDP checksum must never be on-wire zero"
            );
            verify_l4_checksum(&frame).unwrap();
            // Corrupt a payload byte: detected.
            if payload_len > 0 {
                let last = frame.len() - 1;
                frame[last] ^= 0x10;
                assert_eq!(
                    verify_l4_checksum(&frame),
                    Err(CodecError::BadChecksum { what: "udp" })
                );
            }
        }
    }

    #[test]
    fn udp_zero_checksum_transmitted_as_ffff() {
        // RFC 768: if the computed checksum is 0x0000 it is transmitted
        // as 0xFFFF. Engineer a frame whose checksum computes to zero:
        // start from any filled frame and absorb its checksum value into
        // two payload bytes so the total sum becomes all-ones.
        let keys = FlowKeys::udp(0x0A000001, 5001, 0x0A000002, 8080);
        let mut frame = build_udp_frame(
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            &keys,
            &[0u8; 4],
        );
        fill_l4_checksum(&mut frame).unwrap();
        let csum_off = ETHERNET_HDR_LEN + IPV4_HDR_LEN + 6;
        let csum = u16::from_be_bytes([frame[csum_off], frame[csum_off + 1]]);
        // Put the complement-closing value in the (word-aligned) payload.
        let payload_off = ETHERNET_HDR_LEN + IPV4_HDR_LEN + UDP_HDR_LEN;
        frame[payload_off..payload_off + 2].copy_from_slice(&csum.to_be_bytes());
        fill_l4_checksum(&mut frame).unwrap();
        assert_eq!(
            u16::from_be_bytes([frame[csum_off], frame[csum_off + 1]]),
            0xFFFF,
            "computed zero must be transmitted as 0xFFFF"
        );
        verify_l4_checksum(&frame).unwrap();
    }

    #[test]
    fn fill_and_verify_tcp_checksum_round_trip() {
        for payload_len in [1usize, 999, 1448] {
            let keys = FlowKeys::tcp(0x0A000001, 43210, 0x0A000002, 5201);
            let payload: Vec<u8> = (0..payload_len).map(|i| (i * 7) as u8).collect();
            let mut frame = build_tcp_frame(
                MacAddr::from_index(1),
                MacAddr::from_index(2),
                &keys,
                1000,
                0,
                TcpFlags::data(),
                0xFFFF,
                &payload,
            );
            // TCP has no "no checksum" escape: a zeroed field must fail.
            assert_eq!(
                verify_l4_checksum(&frame),
                Err(CodecError::BadChecksum { what: "tcp" })
            );
            fill_l4_checksum(&mut frame).unwrap();
            verify_l4_checksum(&frame).unwrap();
            frame[ETHERNET_HDR_LEN + IPV4_HDR_LEN + 4] ^= 0x01; // seq bit
            assert_eq!(
                verify_l4_checksum(&frame),
                Err(CodecError::BadChecksum { what: "tcp" })
            );
        }
    }

    #[test]
    fn nested_encapsulation_parses() {
        // VXLAN-in-VXLAN should still round-trip (the stack never does
        // this, but the codec must not care).
        let inner = inner_udp();
        let mid = vxlan_encapsulate(&inner, &params());
        let outer = vxlan_encapsulate(&mid, &params());
        let (once, _) = vxlan_decapsulate(&outer).unwrap();
        let (twice, _) = vxlan_decapsulate(once).unwrap();
        assert_eq!(twice, &inner[..]);
    }
}

//! Core occupancy: who is running what, until when.
//!
//! A core executes one *work unit* at a time. A work unit is a short,
//! non-preemptible batch of kernel function invocations (one packet's
//! processing at one pipeline stage, one hardirq handler, one
//! copy-to-user). Priorities between work classes apply at dispatch
//! points — the moment a core picks its next unit — which mirrors how
//! the kernel only switches contexts at interrupt/softirq boundaries.

use falcon_metrics::{Context, CpuLedger, IrqStats};
use falcon_simcore::{SimDuration, SimTime};

/// Execution state of one core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreState {
    /// Nothing running.
    Idle,
    /// Running a work unit in `ctx` until `until`.
    Busy {
        /// Context being charged.
        ctx: Context,
        /// Completion instant.
        until: SimTime,
    },
}

/// The machine's cores, with accounting.
#[derive(Debug)]
pub struct Cores {
    state: Vec<CoreState>,
    /// Busy-time and per-function attribution ledger.
    pub ledger: CpuLedger,
    /// Interrupt counters.
    pub irqs: IrqStats,
}

impl Cores {
    /// Creates `n` idle cores.
    pub fn new(n: usize) -> Self {
        Cores {
            state: vec![CoreState::Idle; n],
            ledger: CpuLedger::new(n),
            irqs: IrqStats::new(n),
        }
    }

    /// Number of cores.
    pub fn n(&self) -> usize {
        self.state.len()
    }

    /// Returns the state of a core.
    pub fn state(&self, core: usize) -> CoreState {
        self.state[core]
    }

    /// Returns `true` if the core is idle.
    pub fn is_idle(&self, core: usize) -> bool {
        matches!(self.state[core], CoreState::Idle)
    }

    /// Returns the completion time of the running unit, if busy.
    pub fn busy_until(&self, core: usize) -> Option<SimTime> {
        match self.state[core] {
            CoreState::Idle => None,
            CoreState::Busy { until, .. } => Some(until),
        }
    }

    /// Begins a work unit on an idle core, charging each `(function,
    /// cost)` item to the ledger. Returns the completion time; the
    /// caller schedules the completion event and must call
    /// [`Cores::complete`] there.
    ///
    /// # Panics
    ///
    /// Panics if the core is already busy (the caller's dispatcher must
    /// only start work on idle cores) or if `items` is empty.
    pub fn begin_work(
        &mut self,
        core: usize,
        ctx: Context,
        now: SimTime,
        items: &[(&'static str, SimDuration)],
    ) -> SimTime {
        assert!(self.is_idle(core), "core {core} is busy");
        assert!(!items.is_empty(), "work unit needs at least one item");
        let mut total = SimDuration::ZERO;
        for &(func, cost) in items {
            self.ledger.charge(core, ctx, func, cost);
            total += cost;
        }
        let until = now + total;
        self.state[core] = CoreState::Busy { ctx, until };
        until
    }

    /// [`Cores::begin_work`] that also emits one
    /// [`falcon_trace::EventKind::Exec`] tracepoint per item, with
    /// each item's start offset walked forward from `now`, so the
    /// trace timeline shows the unit's internal function sequence.
    pub fn begin_work_traced(
        &mut self,
        core: usize,
        ctx: Context,
        now: SimTime,
        items: &[(&'static str, SimDuration)],
        tracer: &mut falcon_trace::Tracer,
    ) -> SimTime {
        if tracer.is_enabled() {
            let mut at = now;
            for &(func, cost) in items {
                tracer.emit(
                    at.as_nanos(),
                    falcon_trace::EventKind::Exec {
                        core,
                        ctx,
                        func,
                        dur_ns: cost.as_nanos(),
                    },
                );
                at += cost;
            }
        }
        self.begin_work(core, ctx, now, items)
    }

    /// Marks a busy core idle at its completion time.
    ///
    /// # Panics
    ///
    /// Panics if the core is idle or `now` is not the recorded
    /// completion time (which would indicate a lost or duplicated
    /// completion event).
    pub fn complete(&mut self, core: usize, now: SimTime) {
        match self.state[core] {
            CoreState::Busy { until, .. } => {
                assert_eq!(until, now, "completion at wrong time on core {core}");
                self.state[core] = CoreState::Idle;
            }
            CoreState::Idle => panic!("completion on idle core {core}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use falcon_metrics::Context;

    #[test]
    fn begin_and_complete() {
        let mut cores = Cores::new(2);
        assert!(cores.is_idle(0));
        let until = cores.begin_work(
            0,
            Context::SoftIrq,
            SimTime::from_nanos(100),
            &[
                ("ip_rcv", SimDuration::from_nanos(200)),
                ("udp_rcv", SimDuration::from_nanos(300)),
            ],
        );
        assert_eq!(until.as_nanos(), 600);
        assert!(!cores.is_idle(0));
        assert!(cores.is_idle(1));
        assert_eq!(cores.busy_until(0), Some(until));
        cores.complete(0, until);
        assert!(cores.is_idle(0));
        assert_eq!(cores.ledger.core(0).softirq_ns, 500);
        assert_eq!(cores.ledger.function_total("ip_rcv"), 200);
    }

    #[test]
    #[should_panic(expected = "is busy")]
    fn double_begin_panics() {
        let mut cores = Cores::new(1);
        let items = [("f", SimDuration::from_nanos(10))];
        cores.begin_work(0, Context::Task, SimTime::ZERO, &items);
        cores.begin_work(0, Context::Task, SimTime::ZERO, &items);
    }

    #[test]
    #[should_panic(expected = "completion on idle core")]
    fn complete_idle_panics() {
        let mut cores = Cores::new(1);
        cores.complete(0, SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "wrong time")]
    fn complete_wrong_time_panics() {
        let mut cores = Cores::new(1);
        let until = cores.begin_work(
            0,
            Context::Task,
            SimTime::ZERO,
            &[("f", SimDuration::from_nanos(10))],
        );
        cores.complete(0, until + SimDuration::from_nanos(1));
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn empty_work_panics() {
        let mut cores = Cores::new(1);
        cores.begin_work(0, Context::Task, SimTime::ZERO, &[]);
    }

    #[test]
    fn traced_work_emits_per_item_exec() {
        let mut cores = Cores::new(1);
        let mut tracer = falcon_trace::Tracer::new(16);
        let until = cores.begin_work_traced(
            0,
            Context::SoftIrq,
            SimTime::from_nanos(100),
            &[
                ("ip_rcv", SimDuration::from_nanos(200)),
                ("udp_rcv", SimDuration::from_nanos(300)),
            ],
            &mut tracer,
        );
        assert_eq!(until.as_nanos(), 600);
        let events = tracer.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].at_ns, 100);
        assert_eq!(events[1].at_ns, 300, "second item starts after first");
        match events[1].kind {
            falcon_trace::EventKind::Exec { func, dur_ns, .. } => {
                assert_eq!(func, "udp_rcv");
                assert_eq!(dur_ns, 300);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Disabled tracer: same accounting, zero events.
        cores.complete(0, until);
        let mut off = falcon_trace::Tracer::disabled();
        cores.begin_work_traced(
            0,
            Context::SoftIrq,
            until,
            &[("f", SimDuration::from_nanos(10))],
            &mut off,
        );
        assert!(off.is_empty());
    }

    #[test]
    fn state_reporting() {
        let mut cores = Cores::new(1);
        assert_eq!(cores.state(0), CoreState::Idle);
        assert_eq!(cores.busy_until(0), None);
        let until = cores.begin_work(
            0,
            Context::HardIrq,
            SimTime::from_nanos(5),
            &[("pnic_interrupt", SimDuration::from_nanos(300))],
        );
        assert_eq!(
            cores.state(0),
            CoreState::Busy {
                ctx: Context::HardIrq,
                until
            }
        );
    }
}

//! Property-based tests of the histogram against a naive exact
//! implementation.

use falcon_metrics::Histogram;
use proptest::prelude::*;

fn exact_percentile(sorted: &[u64], p: f64) -> u64 {
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

proptest! {
    /// Percentiles match the exact answer within the bucketing's 1.6%
    /// relative error.
    #[test]
    fn percentiles_within_relative_error(
        mut values in prop::collection::vec(1u64..10_000_000, 1..500),
        p in prop::sample::select(vec![50.0f64, 90.0, 99.0, 100.0]),
    ) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        let exact = exact_percentile(&values, p);
        let approx = h.percentile(p);
        // The bucket's representative is an upper bound with < 1/64
        // relative error.
        prop_assert!(approx >= exact, "approx {approx} < exact {exact}");
        let err = (approx - exact) as f64 / exact.max(1) as f64;
        prop_assert!(err < 1.0 / 64.0 + 1e-9, "error {err}");
    }

    /// Count, min, max and mean are exact.
    #[test]
    fn moments_are_exact(values in prop::collection::vec(0u64..1_000_000, 1..500)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.min(), *values.iter().min().unwrap());
        prop_assert_eq!(h.max(), *values.iter().max().unwrap());
        let mean = values.iter().sum::<u64>() as f64 / values.len() as f64;
        prop_assert!((h.mean() - mean).abs() < 1e-6);
    }

    /// Merging histograms equals recording the concatenation.
    #[test]
    fn merge_equals_concat(
        a in prop::collection::vec(0u64..1_000_000, 0..200),
        b in prop::collection::vec(0u64..1_000_000, 0..200),
    ) {
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        let mut hc = Histogram::new();
        for &v in &a {
            ha.record(v);
            hc.record(v);
        }
        for &v in &b {
            hb.record(v);
            hc.record(v);
        }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), hc.count());
        prop_assert_eq!(ha.min(), hc.min());
        prop_assert_eq!(ha.max(), hc.max());
        for p in [50.0, 99.0] {
            prop_assert_eq!(ha.percentile(p), hc.percentile(p));
        }
    }

    /// Percentiles are monotone in p.
    #[test]
    fn percentiles_monotone(values in prop::collection::vec(0u64..1_000_000, 1..300)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let ps = [0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0];
        for pair in ps.windows(2) {
            prop_assert!(h.percentile(pair[0]) <= h.percentile(pair[1]));
        }
    }
}

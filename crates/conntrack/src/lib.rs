//! falcon-conntrack: per-flow connection state for the bridge stage,
//! built to be *replicated* rather than serialized.
//!
//! The bridge stage keeps one [`ConnEntry`] per inner 5-tuple: a
//! TCP-inspired state machine driven by the control flags of the inner
//! header, plus packet/byte counters and a last-seen clock. Falcon's
//! answer to that statefulness is serialization — one (flow, device)
//! owner at a time. The State-Compute Replication answer implemented
//! here is the opposite: every worker keeps its own [`ConnShard`]
//! replica and applies the packets it happens to receive, and a
//! merge/reconcile pass ([`merge_shards`]) proves the replicas converge
//! to the serialized ground truth.
//!
//! What makes the merge exact rather than approximate:
//!
//! * The counters (packets, bytes, last-seen) are commutative
//!   accumulators — sums and maxima — so any partition of the packet
//!   stream across shards merges losslessly.
//! * The state machine is driven by *virtual time*: each packet's flow
//!   sequence number, not its arrival instant. A shard logs a compact
//!   per-packet state-delta record — every control-flag event, plus at
//!   most one marker for the earliest data packet it saw — and the
//!   merge replays the union of those records in sequence order. The
//!   machine is constructed so that a data (flag-less) packet can only
//!   matter when *no* event precedes it in virtual time (it opens a
//!   mid-stream pickup, [`ConnState::New`] → [`ConnState::Established`];
//!   in every other state it is a self-loop), which is exactly why the
//!   single minimum-sequence marker per shard is sufficient for an
//!   exact replay. The proptests in `tests/merge_props.rs` pin this
//!   against a single-threaded reference across arbitrary
//!   interleavings.
//!
//! The last-seen clock is virtual time too (the largest sequence
//! observed), so the final table of a run is a pure function of the
//! packet *set* — byte-equal across steering policies, which is what
//! the differential oracle compares.

use std::collections::{BTreeMap, HashMap};

use serde::Serialize;

/// A connection's 5-tuple key (host byte order, matching
/// `falcon_khash::FlowKeys`). `Ord` so tables iterate — and compare —
/// deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub struct ConnKey {
    pub src_addr: u32,
    pub dst_addr: u32,
    pub src_port: u16,
    pub dst_port: u16,
    pub proto: u8,
}

/// The control flags of one observed segment. UDP datagrams observe
/// with all flags clear ("data"); TCP segments carry the header's
/// SYN/FIN/RST bits. ACK and PSH never drive a transition, so they are
/// not part of the observation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub struct SegFlags {
    pub syn: bool,
    pub fin: bool,
    pub rst: bool,
}

impl SegFlags {
    /// A flag-less data segment (the common case; also every UDP
    /// datagram).
    pub fn data() -> SegFlags {
        SegFlags::default()
    }

    /// Whether this segment carries any state-machine control flag.
    pub fn is_ctrl(self) -> bool {
        self.syn || self.fin || self.rst
    }
}

/// One-directional, TCP-inspired connection state. The tracker sees
/// the receive path of a single direction, so this is conntrack-style
/// observation, not a full two-sided TCP automaton.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub enum ConnState {
    /// No packet observed yet (never the state of a stored entry).
    #[default]
    New,
    /// A SYN opened (or re-opened) the connection.
    SynSeen,
    /// Data flowing with no open/close flags — either after a SYN could
    /// not be observed (mid-stream pickup, like conntrack's pickup of
    /// established flows) or a plain UDP flow.
    Established,
    /// A FIN passed; retransmitted data may still trail it.
    FinSeen,
    /// A second FIN after [`ConnState::FinSeen`] — the close observed
    /// as far as one direction can.
    Closed,
    /// An RST passed. Absorbing until a SYN opens a new incarnation.
    Reset,
}

impl ConnState {
    /// The transition function, total over (state, flags). Priority
    /// RST > SYN > FIN > data, mirroring how a real tracker treats a
    /// segment carrying several control bits.
    ///
    /// Two properties the SCR merge depends on:
    /// * after any control event the state is never `New`, and no
    ///   transition returns to `New` — so a data packet's only
    ///   non-self-loop edge (`New` → `Established`) can fire solely for
    ///   the virtually-earliest packet of the connection;
    /// * `Reset` is absorbing except for SYN (a new incarnation), so
    ///   replay order among equal-priority events is fixed by sequence
    ///   alone.
    pub fn next(self, f: SegFlags) -> ConnState {
        use ConnState::*;
        if f.rst {
            return Reset;
        }
        if f.syn {
            // A SYN on a live connection is a retransmit: ignored. On
            // anything torn down (or untouched) it opens an incarnation.
            return match self {
                Established | FinSeen | SynSeen => self,
                New | Closed | Reset => SynSeen,
            };
        }
        if self == Reset {
            return Reset;
        }
        if f.fin {
            return match self {
                FinSeen | Closed => Closed,
                _ => FinSeen,
            };
        }
        // Flag-less data: a mid-stream pickup from New, a no-op
        // everywhere else (SynSeen stays SynSeen — one direction never
        // sees the handshake complete, only its own segments).
        match self {
            New => Established,
            s => s,
        }
    }
}

/// One connection's tracked state: the machine plus the commutative
/// accumulators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct ConnEntry {
    pub state: ConnState,
    /// Packets observed (saturating).
    pub pkts: u64,
    /// Payload bytes observed (saturating).
    pub bytes: u64,
    /// Virtual-time last-seen clock: the largest flow sequence number
    /// observed. Virtual rather than wall-clock on purpose — it makes
    /// the final table a pure function of the packet set, so tables are
    /// byte-equal across steering policies and the differential oracle
    /// can compare them directly.
    pub last_seen: u64,
}

impl ConnEntry {
    fn new() -> ConnEntry {
        ConnEntry {
            state: ConnState::New,
            pkts: 0,
            bytes: 0,
            last_seen: 0,
        }
    }

    /// Folds `pkts`/`bytes`/`last_seen` counts in — saturating sums and
    /// a max, the commutative half of an observation.
    pub fn absorb(&mut self, pkts: u64, bytes: u64, last_seen: u64) {
        self.pkts = self.pkts.saturating_add(pkts);
        self.bytes = self.bytes.saturating_add(bytes);
        self.last_seen = self.last_seen.max(last_seen);
    }
}

/// Per-state entry counts of one table — the summary the reports carry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct ConnSummary {
    pub entries: u64,
    pub pkts: u64,
    pub bytes: u64,
    pub syn_seen: u64,
    pub established: u64,
    pub fin_seen: u64,
    pub closed: u64,
    pub reset: u64,
}

/// The serialized ground-truth conntrack table: a deterministic map
/// from 5-tuple to entry. Applying observations in virtual-time (seq)
/// order through [`ConnTable::observe`] is the single-threaded
/// reference model every replicated execution must merge back to.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConnTable {
    entries: BTreeMap<ConnKey, ConnEntry>,
}

impl ConnTable {
    /// An empty table.
    pub fn new() -> ConnTable {
        ConnTable::default()
    }

    /// Applies one observation in call order. The reference model calls
    /// this in sequence order; the executor's serialized policies call
    /// it in arrival order, which for them is the same thing per flow.
    pub fn observe(&mut self, key: ConnKey, flags: SegFlags, bytes: u64, seq: u64) {
        let e = self.entries.entry(key).or_insert_with(ConnEntry::new);
        e.state = e.state.next(flags);
        e.absorb(1, bytes, seq);
    }

    /// Inserts a fully-formed entry (merge and test construction).
    pub fn insert(&mut self, key: ConnKey, entry: ConnEntry) {
        self.entries.insert(key, entry);
    }

    /// Entry for `key`, if tracked.
    pub fn get(&self, key: &ConnKey) -> Option<&ConnEntry> {
        self.entries.get(key)
    }

    /// Number of tracked connections.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table tracks nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Deterministic (key-ordered) iteration.
    pub fn iter(&self) -> impl Iterator<Item = (&ConnKey, &ConnEntry)> {
        self.entries.iter()
    }

    /// Totals and per-state counts.
    pub fn summary(&self) -> ConnSummary {
        let mut s = ConnSummary {
            entries: self.entries.len() as u64,
            ..ConnSummary::default()
        };
        for e in self.entries.values() {
            s.pkts = s.pkts.saturating_add(e.pkts);
            s.bytes = s.bytes.saturating_add(e.bytes);
            match e.state {
                ConnState::SynSeen => s.syn_seen += 1,
                ConnState::Established => s.established += 1,
                ConnState::FinSeen => s.fin_seen += 1,
                ConnState::Closed => s.closed += 1,
                ConnState::Reset => s.reset += 1,
                ConnState::New => {}
            }
        }
        s
    }
}

/// Monotonic counters of one shard's lifetime, exported per worker
/// through the telemetry shards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct ConnCounters {
    /// Observations applied (one per packet that executed the bridge
    /// stage on this worker — cached fast path included).
    pub updates: u64,
    /// Local replica state changes.
    pub transitions: u64,
    /// Compact state-delta records appended to the shard log (control
    /// events plus min-data-marker installs/lowerings).
    pub delta_records: u64,
}

/// One connection's slice of a shard: the local replica state, the
/// commutative accumulators, and the compact delta log the merge
/// replays.
#[derive(Debug, Clone, Default)]
struct ShardEntry {
    /// Replica state folded in arrival order — the worker's live view
    /// (telemetry counts its transitions). The merge does not trust it;
    /// it replays the log in virtual-time order instead.
    state: ConnState,
    pkts: u64,
    bytes: u64,
    last_seen: u64,
    /// Every control-flag event this shard observed, as (seq, flags).
    ctrl_events: Vec<(u64, SegFlags)>,
    /// The virtually-earliest flag-less packet this shard observed —
    /// the one data record that can matter to the replay (see the
    /// module docs).
    min_data_seq: Option<u64>,
}

/// A per-worker conntrack replica: the SCR unit of state. Single-owner,
/// no interior locking — workers never share a shard.
#[derive(Debug, Clone, Default)]
pub struct ConnShard {
    entries: HashMap<ConnKey, ShardEntry>,
    /// Lifetime counters, mirrored into the telemetry shard.
    pub counters: ConnCounters,
}

impl ConnShard {
    /// An empty shard.
    pub fn new() -> ConnShard {
        ConnShard::default()
    }

    /// Applies one observed packet: counters accumulate, the replica
    /// state steps in arrival order, and the delta log records what the
    /// merge needs to replay this packet in virtual-time order.
    pub fn record(&mut self, key: ConnKey, flags: SegFlags, bytes: u64, seq: u64) {
        let e = self.entries.entry(key).or_default();
        e.pkts = e.pkts.saturating_add(1);
        e.bytes = e.bytes.saturating_add(bytes);
        e.last_seen = e.last_seen.max(seq);
        if flags.is_ctrl() {
            e.ctrl_events.push((seq, flags));
            self.counters.delta_records += 1;
        } else if e.min_data_seq.is_none_or(|m| seq < m) {
            if e.min_data_seq.is_none() {
                self.counters.delta_records += 1;
            }
            e.min_data_seq = Some(seq);
        }
        let next = e.state.next(flags);
        if next != e.state {
            self.counters.transitions += 1;
            e.state = next;
        }
        self.counters.updates += 1;
    }

    /// Number of connections this shard has touched.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether this shard saw no traffic.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Merges per-worker shards into the converged table: counters sum
/// (saturating) and last-seen takes the max; the state is recomputed by
/// replaying the union of every shard's delta records in virtual-time
/// order — control events sorted by (seq, flags), the single surviving
/// minimum data marker folded in at its sequence position. The result
/// equals the single-threaded reference fold over the full packet
/// stream, for *any* partition of packets across shards (pinned by the
/// merge proptests).
pub fn merge_shards<'a, I>(shards: I) -> ConnTable
where
    I: IntoIterator<Item = &'a ConnShard>,
{
    #[derive(Default)]
    struct Acc {
        pkts: u64,
        bytes: u64,
        last_seen: u64,
        ctrl: Vec<(u64, SegFlags)>,
        min_data: Option<u64>,
    }
    let mut accs: HashMap<ConnKey, Acc> = HashMap::new();
    for shard in shards {
        for (key, e) in &shard.entries {
            let a = accs.entry(*key).or_default();
            a.pkts = a.pkts.saturating_add(e.pkts);
            a.bytes = a.bytes.saturating_add(e.bytes);
            a.last_seen = a.last_seen.max(e.last_seen);
            a.ctrl.extend_from_slice(&e.ctrl_events);
            a.min_data = match (a.min_data, e.min_data_seq) {
                (Some(x), Some(y)) => Some(x.min(y)),
                (x, y) => x.or(y),
            };
        }
    }
    let mut table = ConnTable::new();
    for (key, mut a) in accs {
        // Distinct packets of one flow carry distinct seqs, so the seq
        // alone orders the replay; flags break ties defensively should
        // a caller ever feed duplicates.
        a.ctrl.sort_unstable();
        let mut state = ConnState::New;
        let mut data_pending = a.min_data;
        for (seq, flags) in a.ctrl {
            if data_pending.is_some_and(|d| d < seq) {
                state = state.next(SegFlags::data());
                data_pending = None;
            }
            state = state.next(flags);
        }
        if data_pending.is_some() {
            state = state.next(SegFlags::data());
        }
        table.insert(
            key,
            ConnEntry {
                state,
                pkts: a.pkts,
                bytes: a.bytes,
                last_seen: a.last_seen,
            },
        );
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use ConnState::*;

    fn key(id: u16) -> ConnKey {
        ConnKey {
            src_addr: 0x0a01_0001,
            dst_addr: 0x0a02_0001,
            src_port: 40_000 + id,
            dst_port: 5201,
            proto: 6,
        }
    }

    const SYN: SegFlags = SegFlags {
        syn: true,
        fin: false,
        rst: false,
    };
    const FIN: SegFlags = SegFlags {
        syn: false,
        fin: true,
        rst: false,
    };
    const RST: SegFlags = SegFlags {
        syn: false,
        fin: false,
        rst: true,
    };

    #[test]
    fn lifecycle_transitions() {
        let mut s = New;
        s = s.next(SYN);
        assert_eq!(s, SynSeen);
        s = s.next(SegFlags::data());
        assert_eq!(s, SynSeen, "one direction never sees the handshake end");
        s = s.next(FIN);
        assert_eq!(s, FinSeen);
        s = s.next(SegFlags::data());
        assert_eq!(s, FinSeen, "retransmits after FIN don't reopen");
        s = s.next(FIN);
        assert_eq!(s, Closed);
        assert_eq!(s.next(SegFlags::data()), Closed);
        assert_eq!(s.next(SYN), SynSeen, "a new incarnation reopens");
    }

    #[test]
    fn reset_is_absorbing_except_syn() {
        for from in [New, SynSeen, Established, FinSeen, Closed, Reset] {
            assert_eq!(from.next(RST), Reset);
        }
        assert_eq!(Reset.next(SegFlags::data()), Reset);
        assert_eq!(Reset.next(FIN), Reset);
        assert_eq!(Reset.next(SYN), SynSeen);
    }

    #[test]
    fn data_only_promotes_new() {
        assert_eq!(New.next(SegFlags::data()), Established);
        for from in [SynSeen, Established, FinSeen, Closed] {
            assert_eq!(from.next(SegFlags::data()), from);
        }
    }

    #[test]
    fn rst_wins_combined_flags() {
        let synrst = SegFlags {
            syn: true,
            fin: true,
            rst: true,
        };
        assert_eq!(Established.next(synrst), Reset);
    }

    #[test]
    fn table_reference_fold() {
        let mut t = ConnTable::new();
        t.observe(key(1), SYN, 0, 0);
        t.observe(key(1), SegFlags::data(), 100, 1);
        t.observe(key(1), FIN, 0, 2);
        t.observe(key(2), SegFlags::data(), 64, 0);
        let e1 = *t.get(&key(1)).unwrap();
        assert_eq!(e1.state, FinSeen);
        assert_eq!((e1.pkts, e1.bytes, e1.last_seen), (3, 100, 2));
        assert_eq!(t.get(&key(2)).unwrap().state, Established);
        let s = t.summary();
        assert_eq!(s.entries, 2);
        assert_eq!(s.established, 1);
        assert_eq!(s.fin_seen, 1);
        assert_eq!(s.pkts, 4);
    }

    #[test]
    fn single_shard_merge_matches_reference() {
        let mut shard = ConnShard::new();
        let mut reference = ConnTable::new();
        for (seq, flags, bytes) in [
            (0, SYN, 0u64),
            (1, SegFlags::data(), 1000),
            (2, SegFlags::data(), 1000),
            (3, FIN, 0),
        ] {
            shard.record(key(9), flags, bytes, seq);
            reference.observe(key(9), flags, bytes, seq);
        }
        assert_eq!(merge_shards([&shard]), reference);
        assert_eq!(shard.counters.updates, 4);
        assert_eq!(shard.counters.transitions, 2, "New->SynSeen, ->FinSeen");
        assert_eq!(shard.counters.delta_records, 3, "2 ctrl + 1 data marker");
    }

    #[test]
    fn split_shards_converge_despite_arrival_reorder() {
        // Global stream (seq order): fin@0 fin@1 syn@2 data@3 — final
        // state must be SynSeen (the reopening SYN wins; data after it
        // is a self-loop). Shard A gets the data packet only; shard B
        // gets the flags in reversed arrival order. The replicas' live
        // states are wrong in isolation; the merged replay is not.
        let mut a = ConnShard::new();
        a.record(key(3), SegFlags::data(), 500, 3);
        let mut b = ConnShard::new();
        b.record(key(3), SYN, 0, 2);
        b.record(key(3), FIN, 0, 1);
        b.record(key(3), FIN, 0, 0);
        let merged = merge_shards([&a, &b]);
        let mut reference = ConnTable::new();
        for (seq, flags, bytes) in [
            (0, FIN, 0),
            (1, FIN, 0),
            (2, SYN, 0),
            (3, SegFlags::data(), 500),
        ] {
            reference.observe(key(3), flags, bytes, seq);
        }
        assert_eq!(merged, reference);
        assert_eq!(merged.get(&key(3)).unwrap().state, SynSeen);
    }

    #[test]
    fn counters_saturate() {
        let mut e = ConnEntry::new();
        e.absorb(u64::MAX, u64::MAX, 5);
        e.absorb(10, 10, 3);
        assert_eq!(e.pkts, u64::MAX);
        assert_eq!(e.bytes, u64::MAX);
        assert_eq!(e.last_seen, 5);
        let mut shard = ConnShard::new();
        shard.record(key(1), SegFlags::data(), u64::MAX, 0);
        shard.record(key(1), SegFlags::data(), u64::MAX, 1);
        let t = merge_shards([&shard]);
        assert_eq!(t.get(&key(1)).unwrap().bytes, u64::MAX);
    }
}

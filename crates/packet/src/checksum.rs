//! The Internet checksum (RFC 1071).
//!
//! Used by the IPv4 header and (in the simulation, optionally) UDP/TCP.
//! The hot entry point [`sum_words`] folds eight bytes per iteration
//! into a 64-bit ones'-complement accumulator (with an explicit SSE2 /
//! NEON lane-parallel path behind runtime detection on wide inputs);
//! [`sum_words_scalar`] keeps the original two-bytes-per-iteration walk
//! as the differential reference the property tests compare against.
//!
//! Why the wide path is correct: ones'-complement addition is an
//! end-around-carry sum, and `2^64 - 1` is divisible by `2^16 - 1`, so
//! accumulating native-endian 64-bit lanes with end-around carry
//! preserves the sum modulo `0xFFFF`. RFC 1071's byte-order
//! independence result then lets the final folded 16-bit value be
//! byte-swapped once (on little-endian hosts) to land in the
//! big-endian word domain the scalar walk uses. The two entry points
//! therefore agree after [`fold`] for every input — which is the whole
//! contract, since every caller folds before use.

/// Computes the ones'-complement Internet checksum over `data`.
///
/// An odd trailing byte is padded with zero, per RFC 1071.
///
/// # Examples
///
/// ```
/// use falcon_packet::checksum::internet_checksum;
///
/// // RFC 1071 example sequence.
/// let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
/// assert_eq!(internet_checksum(&data), !0xddf2u16);
/// ```
pub fn internet_checksum(data: &[u8]) -> u16 {
    !fold(sum_words(data, 0))
}

/// Accumulates 16-bit big-endian words of `data` into `acc` without
/// final folding, so multi-part checksums (pseudo-header + payload) can
/// be composed.
///
/// The returned accumulator is *fold-equivalent* to
/// [`sum_words_scalar`]: `fold(sum_words(d, a)) ==
/// fold(sum_words_scalar(d, a))` for every input. The raw `u32` may
/// differ (this path pre-folds its 64-bit lane sum); callers always
/// [`fold`] before use.
pub fn sum_words(data: &[u8], acc: u32) -> u32 {
    #[cfg(target_arch = "x86_64")]
    {
        if data.len() >= 128 && std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 presence just verified at runtime.
            return acc + unsafe { simd::sum_lanes_avx2(data) } as u32;
        }
        if data.len() >= 64 && std::arch::is_x86_feature_detected!("sse2") {
            // SAFETY: SSE2 presence just verified at runtime.
            return acc + unsafe { simd::sum_lanes_sse2(data) } as u32;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        if data.len() >= 64 && std::arch::is_aarch64_feature_detected!("neon") {
            // SAFETY: NEON presence just verified at runtime.
            return acc + unsafe { simd::sum_lanes_neon(data) } as u32;
        }
    }
    acc + sum_lanes_u64(data) as u32
}

/// The original RFC 1071 walk, two bytes per iteration: the
/// differential reference for the folded paths.
pub fn sum_words_scalar(data: &[u8], mut acc: u32) -> u32 {
    let mut chunks = data.chunks_exact(2);
    for chunk in &mut chunks {
        acc += u16::from_be_bytes([chunk[0], chunk[1]]) as u32;
    }
    if let [last] = chunks.remainder() {
        acc += (*last as u32) << 8;
    }
    acc
}

/// Portable wide path: eight bytes per iteration into a u64
/// ones'-complement accumulator, folded to a big-endian-domain u16.
fn sum_lanes_u64(data: &[u8]) -> u16 {
    let mut acc: u64 = 0;
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let v = u64::from_ne_bytes(chunk.try_into().expect("8-byte chunk"));
        let (s, carry) = acc.overflowing_add(v);
        acc = s + carry as u64;
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        // Zero-pad the tail to a full lane; padding zeros contribute
        // nothing and the odd byte keeps its memory position, which is
        // exactly RFC 1071's high-half pad once byte order unwinds.
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        let (s, carry) = acc.overflowing_add(u64::from_ne_bytes(tail));
        acc = s + carry as u64;
    }
    fold_lane_sum(acc)
}

/// Folds a native-endian 64-bit ones'-complement lane sum down to a
/// 16-bit value in the big-endian word domain.
fn fold_lane_sum(mut acc: u64) -> u16 {
    acc = (acc >> 32) + (acc & 0xFFFF_FFFF);
    acc = (acc >> 32) + (acc & 0xFFFF_FFFF);
    let mut acc = (acc >> 16) as u32 + (acc & 0xFFFF) as u32;
    while acc >> 16 != 0 {
        acc = (acc & 0xFFFF) + (acc >> 16);
    }
    let folded = acc as u16;
    if cfg!(target_endian = "little") {
        folded.swap_bytes()
    } else {
        folded
    }
}

#[cfg(target_arch = "x86_64")]
mod simd {
    use super::fold_lane_sum;
    use core::arch::x86_64::*;

    /// Sums a byte tail (< 16 bytes of structure) into a running
    /// ones'-complement u64 lane accumulator.
    fn tail_sum(mut acc: u64, rem: &[u8]) -> u64 {
        let mut tail_chunks = rem.chunks_exact(8);
        for chunk in &mut tail_chunks {
            let v = u64::from_ne_bytes(chunk.try_into().expect("8-byte chunk"));
            let (s, carry) = acc.overflowing_add(v);
            acc = s + carry as u64;
        }
        let last = tail_chunks.remainder();
        if !last.is_empty() {
            let mut tail = [0u8; 8];
            tail[..last.len()].copy_from_slice(last);
            let (s, carry) = acc.overflowing_add(u64::from_ne_bytes(tail));
            acc = s + carry as u64;
        }
        acc
    }

    /// AVX2 lane sum: sixty-four bytes per unrolled iteration. Each
    /// 32-bit lane splits into its low u16 (mask) and high u16
    /// (shift) — both single-cycle ops with no shuffle-port pressure,
    /// which is what gates the unpack formulation — accumulated into
    /// four independent u32x8 chains. A u32 lane would need megabytes
    /// of 0xFFFF words to wrap; frames top out far below that.
    ///
    /// # Safety
    /// Caller must ensure AVX2 is available (`is_x86_feature_detected!`).
    #[target_feature(enable = "avx2")]
    pub unsafe fn sum_lanes_avx2(data: &[u8]) -> u16 {
        let mask = _mm256_set1_epi32(0xFFFF);
        let zero = _mm256_setzero_si256();
        let (mut a0, mut a1, mut a2, mut a3) = (zero, zero, zero, zero);
        let mut blocks = data.chunks_exact(64);
        for block in &mut blocks {
            let p = block.as_ptr();
            let v0 = _mm256_loadu_si256(p.cast());
            let v1 = _mm256_loadu_si256(p.add(32).cast());
            a0 = _mm256_add_epi32(a0, _mm256_and_si256(v0, mask));
            a1 = _mm256_add_epi32(a1, _mm256_srli_epi32(v0, 16));
            a2 = _mm256_add_epi32(a2, _mm256_and_si256(v1, mask));
            a3 = _mm256_add_epi32(a3, _mm256_srli_epi32(v1, 16));
        }
        let mut chunks = blocks.remainder().chunks_exact(32);
        for chunk in &mut chunks {
            let v = _mm256_loadu_si256(chunk.as_ptr().cast());
            a0 = _mm256_add_epi32(a0, _mm256_and_si256(v, mask));
            a1 = _mm256_add_epi32(a1, _mm256_srli_epi32(v, 16));
        }
        let sum32 = _mm256_add_epi32(_mm256_add_epi32(a0, a1), _mm256_add_epi32(a2, a3));
        let mut lanes = [0u32; 8];
        _mm256_storeu_si256(lanes.as_mut_ptr().cast(), sum32);
        let acc = lanes.iter().map(|&l| l as u64).sum::<u64>();
        fold_lane_sum(tail_sum(acc, chunks.remainder()))
    }

    /// SSE2 lane sum: the same mask/shift split as the AVX2 path at
    /// 128-bit width, thirty-two bytes per unrolled iteration across
    /// four independent u32x4 accumulator chains.
    ///
    /// # Safety
    /// Caller must ensure SSE2 is available (`is_x86_feature_detected!`).
    #[target_feature(enable = "sse2")]
    pub unsafe fn sum_lanes_sse2(data: &[u8]) -> u16 {
        let mask = _mm_set1_epi32(0xFFFF);
        let zero = _mm_setzero_si128();
        let (mut a0, mut a1, mut a2, mut a3) = (zero, zero, zero, zero);
        let mut blocks = data.chunks_exact(32);
        for block in &mut blocks {
            let p = block.as_ptr();
            let v0 = _mm_loadu_si128(p.cast());
            let v1 = _mm_loadu_si128(p.add(16).cast());
            a0 = _mm_add_epi32(a0, _mm_and_si128(v0, mask));
            a1 = _mm_add_epi32(a1, _mm_srli_epi32(v0, 16));
            a2 = _mm_add_epi32(a2, _mm_and_si128(v1, mask));
            a3 = _mm_add_epi32(a3, _mm_srli_epi32(v1, 16));
        }
        let mut chunks = blocks.remainder().chunks_exact(16);
        for chunk in &mut chunks {
            let v = _mm_loadu_si128(chunk.as_ptr().cast());
            a0 = _mm_add_epi32(a0, _mm_and_si128(v, mask));
            a1 = _mm_add_epi32(a1, _mm_srli_epi32(v, 16));
        }
        let sum32 = _mm_add_epi32(_mm_add_epi32(a0, a1), _mm_add_epi32(a2, a3));
        let mut lanes = [0u32; 4];
        _mm_storeu_si128(lanes.as_mut_ptr().cast(), sum32);
        let acc = lanes.iter().map(|&l| l as u64).sum::<u64>();
        fold_lane_sum(tail_sum(acc, chunks.remainder()))
    }
}

#[cfg(target_arch = "aarch64")]
mod simd {
    use super::fold_lane_sum;
    use core::arch::aarch64::*;

    /// NEON lane sum: sixty-four bytes per unrolled iteration across
    /// four independent `vpadal` accumulator chains (dependency
    /// distance gates this loop), u16 lanes widened pairwise into
    /// u32x4 accumulators, horizontally reduced through u64 so nothing
    /// can wrap.
    ///
    /// # Safety
    /// Caller must ensure NEON is available
    /// (`is_aarch64_feature_detected!`).
    #[target_feature(enable = "neon")]
    pub unsafe fn sum_lanes_neon(data: &[u8]) -> u16 {
        let mut a0 = vdupq_n_u32(0);
        let mut a1 = vdupq_n_u32(0);
        let mut a2 = vdupq_n_u32(0);
        let mut a3 = vdupq_n_u32(0);
        let mut blocks = data.chunks_exact(64);
        for block in &mut blocks {
            let p = block.as_ptr();
            a0 = vpadalq_u16(a0, vreinterpretq_u16_u8(vld1q_u8(p)));
            a1 = vpadalq_u16(a1, vreinterpretq_u16_u8(vld1q_u8(p.add(16))));
            a2 = vpadalq_u16(a2, vreinterpretq_u16_u8(vld1q_u8(p.add(32))));
            a3 = vpadalq_u16(a3, vreinterpretq_u16_u8(vld1q_u8(p.add(48))));
        }
        let mut chunks = blocks.remainder().chunks_exact(16);
        for chunk in &mut chunks {
            let v = vreinterpretq_u16_u8(vld1q_u8(chunk.as_ptr()));
            a0 = vpadalq_u16(a0, v);
        }
        let acc32 = vaddq_u32(vaddq_u32(a0, a1), vaddq_u32(a2, a3));
        let wide = vpaddlq_u32(acc32);
        let mut acc = vgetq_lane_u64(wide, 0) + vgetq_lane_u64(wide, 1);

        let rem = chunks.remainder();
        let mut tail_chunks = rem.chunks_exact(8);
        for chunk in &mut tail_chunks {
            let v = u64::from_ne_bytes(chunk.try_into().expect("8-byte chunk"));
            let (s, carry) = acc.overflowing_add(v);
            acc = s + carry as u64;
        }
        let last = tail_chunks.remainder();
        if !last.is_empty() {
            let mut tail = [0u8; 8];
            tail[..last.len()].copy_from_slice(last);
            let (s, carry) = acc.overflowing_add(u64::from_ne_bytes(tail));
            acc = s + carry as u64;
        }
        fold_lane_sum(acc)
    }
}

/// Accumulates the IPv4 pseudo-header for a UDP or TCP checksum
/// (RFC 768 / RFC 9293 §3.1): source address, destination address,
/// zero-padded protocol number, and L4 length (header plus payload).
///
/// Compose with [`sum_words`] over the L4 bytes and [`fold`] the result:
///
/// ```
/// use falcon_packet::checksum::{fold, pseudo_header_sum, sum_words};
///
/// let l4 = [0u8; 8]; // a zeroed UDP header
/// let acc = pseudo_header_sum(0x0A00_0001, 0x0A00_0002, 17, 8);
/// let csum = !fold(sum_words(&l4, acc));
/// assert_ne!(csum, 0);
/// ```
pub fn pseudo_header_sum(src_addr: u32, dst_addr: u32, proto: u8, l4_len: u16) -> u32 {
    (src_addr >> 16)
        + (src_addr & 0xFFFF)
        + (dst_addr >> 16)
        + (dst_addr & 0xFFFF)
        + proto as u32
        + l4_len as u32
}

/// Folds a 32-bit accumulator into 16 bits with end-around carry.
pub fn fold(mut acc: u32) -> u16 {
    while acc >> 16 != 0 {
        acc = (acc & 0xFFFF) + (acc >> 16);
    }
    acc as u16
}

/// Verifies a buffer that embeds its own checksum: summing everything
/// (checksum field included) must produce `0xFFFF` before complement,
/// i.e. a folded sum of `0xFFFF`.
pub fn verify(data: &[u8]) -> bool {
    fold(sum_words(data, 0)) == 0xFFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(fold(sum_words(&data, 0)), 0xddf2);
        assert_eq!(internet_checksum(&data), !0xddf2);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(internet_checksum(&[0xAB]), internet_checksum(&[0xAB, 0x00]));
    }

    #[test]
    fn empty_buffer() {
        assert_eq!(internet_checksum(&[]), 0xFFFF);
        assert!(!verify(&[]));
    }

    #[test]
    fn embedding_checksum_verifies() {
        // Build a 20-byte pseudo-header, embed the checksum at offset 10
        // (like IPv4), then verify.
        let mut buf = [0u8; 20];
        for (i, b) in buf.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(37);
        }
        buf[10] = 0;
        buf[11] = 0;
        let csum = internet_checksum(&buf);
        buf[10..12].copy_from_slice(&csum.to_be_bytes());
        assert!(verify(&buf));
        // Corrupt a byte: verification must fail.
        buf[3] ^= 0x40;
        assert!(!verify(&buf));
    }

    #[test]
    fn odd_length_is_order_sensitive_high_byte() {
        // RFC 1071: the odd trailing byte occupies the HIGH half of its
        // padded word, so [0xAB] sums like [0xAB, 0x00], not [0x00, 0xAB].
        assert_eq!(fold(sum_words(&[0xAB], 0)), 0xAB00);
        assert_ne!(internet_checksum(&[0xAB]), internet_checksum(&[0x00, 0xAB]));
    }

    #[test]
    fn pseudo_header_matches_manual_words() {
        // The pseudo-header is 12 bytes: src(4) dst(4) zero(1) proto(1)
        // len(2). Accumulating it wordwise must equal pseudo_header_sum.
        let src = 0xC0A8_0001u32;
        let dst = 0x0A00_002Au32;
        let proto = 17u8;
        let l4_len = 1501u16;
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&src.to_be_bytes());
        bytes.extend_from_slice(&dst.to_be_bytes());
        bytes.push(0);
        bytes.push(proto);
        bytes.extend_from_slice(&l4_len.to_be_bytes());
        assert_eq!(
            fold(sum_words(&bytes, 0)),
            fold(pseudo_header_sum(src, dst, proto, l4_len))
        );
    }

    #[test]
    fn composable_accumulation() {
        let part1 = [1u8, 2, 3, 4];
        let part2 = [5u8, 6, 7, 8];
        let whole = [1u8, 2, 3, 4, 5, 6, 7, 8];
        let split = fold(sum_words(&part2, sum_words(&part1, 0)));
        assert_eq!(split, fold(sum_words(&whole, 0)));
    }

    #[test]
    fn folded_path_matches_scalar_reference() {
        // Deterministic sweep over lengths that straddle every chunk
        // boundary (8- and 16-byte) and every tail residue, plus
        // unaligned starts; the proptest suite widens this to random
        // contents up to MTU size.
        let mut data = vec![0u8; 4096 + 7];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(167).wrapping_add(13);
        }
        for start in 0..8 {
            for len in [
                0usize, 1, 2, 3, 7, 8, 9, 15, 16, 17, 63, 64, 65, 127, 128, 129, 1499, 1500, 4096,
            ] {
                let slice = &data[start..start + len];
                for acc in [0u32, 0xFFFF, 0x1234_5678] {
                    assert_eq!(
                        fold(sum_words(slice, acc)),
                        fold(sum_words_scalar(slice, acc)),
                        "start={start} len={len} acc={acc:#x}"
                    );
                }
            }
        }
    }

    #[test]
    fn wide_paths_agree_on_all_ones() {
        // All-0xFF input maximizes carry traffic in the u64 lanes.
        let data = vec![0xFFu8; 2048];
        assert_eq!(fold(sum_words(&data, 0)), fold(sum_words_scalar(&data, 0)));
    }
}

//! Paced sender: real VXLAN datagrams onto a connected UDP socket.
//!
//! The sender is the ground truth for the differential oracle. For
//! every frame it *would* deliver it records the expected inner-payload
//! digest in a per-flow log — including frames the [`Corruptor`] flips
//! pre-send (those become gaps the receiver's subsequence check skips
//! over) and frames the lossy harness suppresses (those surface as
//! socket loss in the conservation identity, never silently).

use std::io;
use std::net::UdpSocket;
use std::time::{Duration, Instant};

use falcon_wire::{Corruptor, FrameFactory};

use crate::sock;

/// What the sender should put on the wire.
#[derive(Clone, Debug)]
pub struct TxConfig {
    /// Total datagrams to generate (including suppressed ones).
    pub packets: u64,
    /// Distinct flows, round-robined.
    pub flows: u64,
    /// Inner UDP payload bytes per packet.
    pub payload: usize,
    /// Target packets per second; 0 = open loop (as fast as possible).
    pub pps: u64,
    /// Frames per `sendmmsg` batch.
    pub batch: usize,
    /// Bit-flip rate fed to the [`Corruptor`] (flips happen *before*
    /// the frame hits the socket, so the pipeline sees real damage).
    pub corrupt_per_million: u32,
    /// Corruptor seed, recorded for reproducibility.
    pub seed: u64,
    /// Suppress every Nth frame instead of sending it (0 = never).
    /// Models socket loss with a known ground truth.
    pub drop_every_n: u64,
}

impl Default for TxConfig {
    fn default() -> Self {
        TxConfig {
            packets: 10_000,
            flows: 8,
            payload: 256,
            pps: 0,
            batch: 32,
            corrupt_per_million: 0,
            seed: 0x5eed_1e57,
            drop_every_n: 0,
        }
    }
}

/// What actually went out, and what the oracle should expect.
#[derive(Clone, Debug)]
pub struct SentLog {
    /// Datagrams generated — includes suppressed ones, so
    /// `sent - datagrams_received` is the total socket loss.
    pub sent: u64,
    /// Frames deliberately withheld by `drop_every_n`.
    pub suppressed: u64,
    /// Frames bit-flipped before send.
    pub corrupted: u64,
    /// Wire bytes actually written to the socket.
    pub bytes: u64,
    /// Per-flow expected digests in send order. Entry `per_flow[f][i]`
    /// is the digest of flow `f`'s `i`-th *generated* frame; corrupted
    /// and suppressed frames keep their slot so delivered digests form
    /// a subsequence.
    pub per_flow: Vec<Vec<u64>>,
}

/// Generates, paces, and sends `cfg.packets` frames over `sock`
/// (which must be connected to the receiver). Blocking socket; pacing
/// is wall-clock based so `pps` holds across batch sizes.
pub fn send_all(sock: &UdpSocket, cfg: &TxConfig) -> io::Result<SentLog> {
    let flows = cfg.flows.max(1);
    let factory = FrameFactory::default();
    let mut corruptor = Corruptor::new(cfg.seed, cfg.corrupt_per_million);
    let mut log = SentLog {
        sent: 0,
        suppressed: 0,
        corrupted: 0,
        bytes: 0,
        per_flow: vec![Vec::new(); flows as usize],
    };
    let mut seqs = vec![0u64; flows as usize];
    let batch_cap = cfg.batch.max(1);
    let mut batch: Vec<Vec<u8>> = Vec::with_capacity(batch_cap);
    let start = Instant::now();

    for i in 0..cfg.packets {
        let flow = i % flows;
        let seq = seqs[flow as usize];
        seqs[flow as usize] += 1;

        // One UDP overlay packet is one datagram: flatten the (single)
        // wire segment. The digest is recorded unconditionally — the
        // oracle treats corrupted/suppressed slots as expected gaps.
        let mut frame = factory
            .udp_wire(flow, seq, cfg.payload)
            .into_iter()
            .next()
            .expect("udp_wire yields one segment");
        log.per_flow[flow as usize].push(FrameFactory::expected_digest(flow, seq, cfg.payload));

        if corruptor.maybe_corrupt(&mut frame) {
            log.corrupted += 1;
        }

        log.sent += 1;
        if cfg.drop_every_n != 0 && (i + 1) % cfg.drop_every_n == 0 {
            log.suppressed += 1;
        } else {
            log.bytes += frame.len() as u64;
            batch.push(frame);
        }

        if batch.len() >= batch_cap {
            sock::send_batch(sock, &batch)?;
            batch.clear();
        }

        // Pace against the ideal schedule, not the previous send, so
        // jitter doesn't accumulate.
        if let Some(due_ns) = (i + 1).saturating_mul(1_000_000_000).checked_div(cfg.pps) {
            let due = Duration::from_nanos(due_ns);
            let elapsed = start.elapsed();
            if due > elapsed {
                std::thread::sleep(due - elapsed);
            }
        }
    }
    if !batch.is_empty() {
        sock::send_batch(sock, &batch)?;
    }
    Ok(log)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loopback() -> (UdpSocket, UdpSocket) {
        let rx = UdpSocket::bind("127.0.0.1:0").unwrap();
        let tx = UdpSocket::bind("127.0.0.1:0").unwrap();
        tx.connect(rx.local_addr().unwrap()).unwrap();
        (rx, tx)
    }

    #[test]
    fn logs_every_generated_frame_per_flow() {
        let (_rx, tx) = loopback();
        let cfg = TxConfig {
            packets: 100,
            flows: 4,
            ..TxConfig::default()
        };
        let log = send_all(&tx, &cfg).unwrap();
        assert_eq!(log.sent, 100);
        assert_eq!(log.suppressed, 0);
        assert!(log.per_flow.iter().all(|f| f.len() == 25));
        // Digests must match the factory's ground truth.
        assert_eq!(
            log.per_flow[1][3],
            FrameFactory::expected_digest(1, 3, cfg.payload)
        );
    }

    #[test]
    fn drop_every_n_suppresses_but_still_logs() {
        let (rx, tx) = loopback();
        rx.set_nonblocking(true).unwrap();
        let cfg = TxConfig {
            packets: 30,
            flows: 3,
            drop_every_n: 5,
            ..TxConfig::default()
        };
        let log = send_all(&tx, &cfg).unwrap();
        assert_eq!(log.sent, 30);
        assert_eq!(log.suppressed, 6);
        // Every slot is logged, even suppressed ones.
        assert_eq!(log.per_flow.iter().map(Vec::len).sum::<usize>(), 30);
        // Exactly sent - suppressed datagrams reach the socket.
        std::thread::sleep(std::time::Duration::from_millis(50));
        let mut buf = [0u8; 2048];
        let mut got = 0;
        while rx.recv(&mut buf).is_ok() {
            got += 1;
        }
        assert_eq!(got, 24);
    }

    #[test]
    fn corruptor_flips_are_counted() {
        let (_rx, tx) = loopback();
        let cfg = TxConfig {
            packets: 2_000,
            corrupt_per_million: 200_000, // ~20% of segments
            ..TxConfig::default()
        };
        let log = send_all(&tx, &cfg).unwrap();
        assert!(log.corrupted > 0, "high flip rate must corrupt something");
        assert_eq!(log.sent, 2_000);
    }
}

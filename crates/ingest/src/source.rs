//! The rx thread: socket → [`WireBuf`] → executor rings.
//!
//! This is the live replacement for the synthetic injector loop. It
//! drains the socket in batches straight into slab-pool slots, frames
//! each datagram into a single-segment [`WireBuf`](falcon_packet::WireBuf)
//! without parsing anything beyond the outer UDP source port (the flow
//! is recovered from the RSS-style port mapping the [`FrameFactory`]
//! uses, exactly what a NIC's 5-tuple hash would key on), and hands
//! descriptors to the [`Injector`]. The kernel's copy into the iovec
//! is the only copy a frame sees: [`RecvBatch::take_wire`] moves the
//! filled slot downstream instead of copying out of recycled scratch.
//! Steering, guards, stages, and telemetry downstream are untouched —
//! the pipeline cannot tell live frames from synthetic ones, which is
//! what makes the differential oracle fair.
//!
//! [`FrameFactory`]: falcon_wire::FrameFactory

use std::collections::HashMap;
use std::io;
use std::time::{Duration, Instant};

use falcon_dataplane::{rss_hash_for_flow, Injector};
use falcon_packet::{PktDesc, SlabConfig, SlabPool};

use crate::rx::{BatchRx, RecvBatch};

/// Smallest frame the wire pipeline can possibly accept: outer
/// eth(14) + IPv4(20) + UDP(8) + VXLAN(8) headers plus an inner
/// eth + IPv4 + UDP set with an empty payload. Anything shorter is
/// counted as a runt and never enters the rings — the stages would
/// reject it anyway, but dropping it here keeps the rx/injected
/// conservation identity exact.
pub const MIN_DATAGRAM: usize = 92;

/// Byte offset of the outer UDP source port in a VXLAN frame
/// (eth 14 + IPv4 20).
const OUTER_SPORT_OFF: usize = 34;

/// Base of the factory's flow→source-port mapping.
const SPORT_BASE: u16 = 49152;

/// Rx-loop tuning.
#[derive(Clone, Debug)]
pub struct RxConfig {
    /// Datagrams per batched read.
    pub batch: usize,
    /// After the sender finishes, keep draining until the socket has
    /// been silent this long (covers loopback delivery latency).
    pub drain_ms: u64,
}

impl Default for RxConfig {
    fn default() -> Self {
        RxConfig {
            batch: 32,
            drain_ms: 60,
        }
    }
}

/// What the rx thread saw, for reports and conservation checks.
#[derive(Clone, Debug)]
pub struct RxStats {
    /// Datagrams read off the socket.
    pub datagrams: u64,
    /// Batched reads that returned at least one datagram.
    pub batches: u64,
    /// Empty polls (`EAGAIN` spins).
    pub eagain_spins: u64,
    /// Datagrams below [`MIN_DATAGRAM`], dropped pre-pipeline.
    pub runts: u64,
    /// Kernel receive-queue overflow count (`SO_RXQ_OVFL`), if the
    /// socket reported one.
    pub sock_drops: Option<u64>,
    /// Descriptors handed to the injector (`datagrams - runts`).
    pub injected: u64,
    /// `batch_hist[n]` = how many reads returned exactly `n`
    /// datagrams (index 0 unused; empty reads are `eagain_spins`).
    pub batch_hist: Vec<u64>,
    /// Which receive backend ran ("recvmmsg" or "recv-loop").
    pub backend: &'static str,
}

/// Drains `rx` into the pipeline until `tx_done()` holds and the
/// socket has stayed silent for `cfg.drain_ms`. Each datagram gets an
/// rx-assigned arrival sequence per flow (the sender's own seq lives
/// inside the encrypted-to-us payload; arrival order is what the
/// order tracker and oracle key on) and the same RSS hash the
/// synthetic injector would have used, so steering decisions match.
pub fn rx_into_pipeline(
    rx: &mut dyn BatchRx,
    inj: &mut Injector,
    tx_done: impl Fn() -> bool,
    cfg: &RxConfig,
) -> RxStats {
    let counters = inj.enable_rx_telemetry();
    let mut batch = RecvBatch::with_pool(cfg.batch, SlabPool::new(SlabConfig::default()));
    if let Some(pool) = batch.pool() {
        inj.attach_slab_counters(pool.counters());
    }
    let mut stats = RxStats {
        datagrams: 0,
        batches: 0,
        eagain_spins: 0,
        runts: 0,
        sock_drops: None,
        injected: 0,
        batch_hist: vec![0; batch.capacity() + 1],
        backend: rx.backend(),
    };
    let mut arrival_seq: HashMap<u64, u64> = HashMap::new();
    let mut next_id: u64 = 0;
    let drain = Duration::from_millis(cfg.drain_ms);
    let mut last_rx = Instant::now();

    loop {
        match rx.recv_batch(&mut batch) {
            Ok(n) => {
                last_rx = Instant::now();
                stats.datagrams += n as u64;
                stats.batches += 1;
                stats.batch_hist[n.min(batch.capacity())] += 1;
                counters.add_batch(n as u64);
                for i in 0..n {
                    let bytes = batch.datagram(i);
                    if bytes.len() < MIN_DATAGRAM {
                        stats.runts += 1;
                        counters.add_runt();
                        continue;
                    }
                    let sport =
                        u16::from_be_bytes([bytes[OUTER_SPORT_OFF], bytes[OUTER_SPORT_OFF + 1]]);
                    let flow = sport.wrapping_sub(SPORT_BASE) as u64;
                    let len = bytes.len();
                    let seq_slot = arrival_seq.entry(flow).or_insert(0);
                    let seq = *seq_slot;
                    *seq_slot += 1;
                    let desc = PktDesc::new(
                        next_id,
                        flow,
                        seq,
                        rss_hash_for_flow(flow),
                        (len - MIN_DATAGRAM) as u32,
                    )
                    .with_wire(batch.take_wire(i));
                    next_id += 1;
                    stats.injected += 1;
                    inj.inject(desc);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                stats.eagain_spins += 1;
                counters.add_eagain();
                if tx_done() && last_rx.elapsed() > drain {
                    break;
                }
                std::thread::yield_now();
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => {
                // A hard socket error ends ingestion; the loss shows
                // up in the conservation identity rather than hanging
                // the run.
                eprintln!("falcon-ingest: rx socket error: {e}");
                break;
            }
        }
        if let Some(d) = batch.sock_drops {
            stats.sock_drops = Some(d);
            counters.set_sock_drops(d);
        }
    }
    // Sweep any buffers the workers recycled after the last acquire so
    // the pool's return counter reflects the whole run.
    batch.drain_returns();
    stats
}

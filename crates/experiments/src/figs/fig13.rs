//! Figure 13: multi-flow packet rates, including Host+ (GRO-split host).
//!
//! 1–5 flows of UDP 16 B and TCP 4 KB on dedicated falcon CPUs.
//! Expected shape: Falcon consistently above the vanilla overlay; for
//! TCP, GRO splitting helps even the *host* network (Host+), and Falcon
//! can beat plain Host.

use falcon::FalconConfig;
use falcon_cpusim::CpuSet;
use falcon_netdev::LinkSpeed;
use falcon_netstack::KernelVersion;
use falcon_workloads::{TcpStreams, TcpStreamsConfig, UdpStressApp, UdpStressConfig};

use crate::measure::{run_measured, Scale};
use crate::scenario::{Mode, Scenario, MF_APP_CORES};
use crate::table::{kpps, FigResult, Table};

fn mf_falcon() -> FalconConfig {
    // "We used dedicated cores in FALCON_CPUS. This ensures that Falcon
    // always has access to idle cores for flow parallelization" (§6.1):
    // cores 4-7 serve only pipelined stages; RPS stays on 0-3.
    FalconConfig::new(CpuSet::range(4, 8))
}

fn dedicated(scenario: Scenario) -> Scenario {
    scenario.tweak(|stack| {
        stack.rps = Some(falcon_cpusim::CpuSet::range(0, 4));
    })
}

fn udp_rate(mode: Mode, flows: usize, scale: Scale) -> f64 {
    use crate::ratesearch::max_sustainable;
    use falcon_netstack::Pacing;
    let build = move |rate: f64| {
        let scenario = dedicated(Scenario::multi_flow(
            mode.clone(),
            KernelVersion::K419,
            LinkSpeed::HundredGbit,
        ));
        let mut cfg = UdpStressConfig::multi_flow(flows, 16);
        cfg.senders_per_flow = 2;
        cfg.pacing = Pacing::FixedPps(rate / (2 * flows) as f64);
        cfg.app_cores = MF_APP_CORES.to_vec();
        scenario.build(Box::new(UdpStressApp::new(cfg)))
    };
    max_sustainable(&build, 60_000.0 * flows as f64, scale).delivered_pps
}

fn tcp_rate(mode: Mode, flows: usize, scale: Scale) -> f64 {
    let scenario = dedicated(Scenario::multi_flow(
        mode,
        KernelVersion::K419,
        LinkSpeed::HundredGbit,
    ));
    let mut cfg = TcpStreamsConfig::single(4096);
    cfg.n_flows = flows;
    // Deep windows drive each flow to its pipeline's capacity (the
    // stress regime where the pNIC stage saturates and GRO splitting
    // pays off).
    cfg.window = 384;
    cfg.app_cores = MF_APP_CORES.to_vec();
    let mut runner = scenario.build(Box::new(TcpStreams::new(cfg)));
    // Packet rate: TCP counters count segments.
    run_measured(&mut runner, scale).pps()
}

/// Multi-flow UDP and TCP packet rates across 1–5 flows.
pub fn run(scale: Scale) -> FigResult {
    let mut fig = FigResult::new(
        "fig13",
        "Multi-flow packet rates: Host / Con / Falcon (+ Host+ for TCP)",
    );
    let flow_counts: &[usize] = match scale {
        Scale::Quick => &[1, 3],
        Scale::Full => &[1, 2, 3, 4, 5],
    };

    let mut u = Table::new(&[
        "flows",
        "Host Kpps",
        "Con Kpps",
        "Falcon Kpps",
        "Falcon/Con",
    ]);
    for &flows in flow_counts {
        let host = udp_rate(Mode::Host, flows, scale);
        let con = udp_rate(Mode::Vanilla, flows, scale);
        let fal = udp_rate(Mode::Falcon(mf_falcon()), flows, scale);
        u.row(vec![
            flows.to_string(),
            kpps(host),
            kpps(con),
            kpps(fal),
            format!("{:.2}", fal / con.max(1.0)),
        ]);
    }
    fig.panel("UDP 16B", u);

    let mut t = Table::new(&[
        "flows",
        "Host Kpps",
        "Host+ Kpps",
        "Con Kpps",
        "Falcon Kpps",
        "Falcon/Host",
    ]);
    let falcon_tcp = mf_falcon().with_split_gro(true);
    for &flows in flow_counts {
        let host = tcp_rate(Mode::Host, flows, scale);
        let hostp = tcp_rate(Mode::HostPlus(falcon_tcp.clone()), flows, scale);
        let con = tcp_rate(Mode::Vanilla, flows, scale);
        let fal = tcp_rate(Mode::Falcon(falcon_tcp.clone()), flows, scale);
        t.row(vec![
            flows.to_string(),
            kpps(host),
            kpps(hostp),
            kpps(con),
            kpps(fal),
            format!("{:.2}", fal / host.max(1.0)),
        ]);
    }
    fig.panel("TCP 4KB (GRO splitting on for Host+ and Falcon)", t);
    fig.note("GRO splitting lifts even the host network (Host+); Falcon can exceed Host");
    fig
}

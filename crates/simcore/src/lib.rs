//! Deterministic discrete-event simulation engine.
//!
//! This crate is the foundation of the Falcon reproduction. Every other
//! crate in the workspace builds on three primitives defined here:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution simulated time.
//! * [`Engine`] — a priority-queue event loop with deterministic
//!   tie-breaking (events scheduled for the same instant run in the order
//!   they were scheduled).
//! * [`rng::SimRng`] — a seedable, splittable pseudo-random number
//!   generator with the distributions the workloads need (uniform,
//!   exponential, Zipf, Poisson, normal).
//!
//! Determinism is a design requirement: a simulation run is a pure
//! function of its configuration and seed, so every experiment in the
//! paper reproduction can be re-run bit-for-bit.
//!
//! # Examples
//!
//! ```
//! use falcon_simcore::{Engine, SimDuration};
//!
//! struct World {
//!     ticks: u32,
//! }
//!
//! let mut engine = Engine::new();
//! let mut world = World { ticks: 0 };
//! engine.schedule_after(SimDuration::from_micros(5), |w: &mut World, e| {
//!     w.ticks += 1;
//!     e.schedule_after(SimDuration::from_micros(5), |w: &mut World, _| {
//!         w.ticks += 1;
//!     });
//! });
//! engine.run_to_completion(&mut world);
//! assert_eq!(world.ticks, 2);
//! assert_eq!(engine.now().as_nanos(), 10_000);
//! ```

pub mod engine;
pub mod rng;
pub mod time;

pub use engine::{Engine, EventToken};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};

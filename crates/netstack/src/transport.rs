//! The client-side traffic engine: flows, sender threads, and the
//! simplified transports.
//!
//! The paper instruments only the *receiving* host; the sender is a
//! traffic source (sockperf clients, memcached clients, web users). The
//! simulation therefore models the client as a traffic engine rather
//! than a second full kernel:
//!
//! * sender *threads* have finite speed (`client_tx_cost` per
//!   datagram/segment) — this reproduces the paper's note that for 16 B
//!   UDP a single sender saturates before the server does;
//! * UDP flows are open-loop (paced or max-rate), with IP fragmentation
//!   of datagrams larger than the MTU;
//! * TCP flows are closed-loop: a fixed-size segment window, cumulative
//!   acks from the server, multiplicative window decrease plus
//!   go-back-N resend on a coarse retransmission timeout. The receiver
//!   accepts forward jumps (it never stalls on a hole), which keeps the
//!   throughput shape of TCP self-clocking without a full
//!   SACK/congestion-avoidance implementation.

use std::collections::HashMap;

use falcon_khash::FlowKeys;
use falcon_packet::MacAddr;
use falcon_simcore::{SimDuration, SimTime};

use crate::config::Pacing;

/// Identifier of a client traffic flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u32);

/// State of one TCP client flow.
#[derive(Debug)]
pub struct TcpState {
    /// Window size in segments.
    pub window: u32,
    /// Initial window (restored ceiling after decreases).
    pub init_window: u32,
    /// Maximum segment payload size.
    pub mss: usize,
    /// Next new segment number to transmit.
    pub next_seg: u64,
    /// Segments `0..acked_count` are cumulatively acknowledged.
    pub acked_count: u64,
    /// Segments in flight (sent, unacked).
    pub inflight: u32,
    /// For stream mode: the app message size (infinite supply).
    pub stream_msg_size: Option<usize>,
    /// Bytes of the current stream message already segmented.
    pub stream_msg_progress: usize,
    /// Queued request messages: `(msg_id, bytes)`, each at most one
    /// segment.
    pub pending_msgs: std::collections::VecDeque<(u64, usize)>,
    /// Retransmission timeout.
    pub rto: SimDuration,
    /// Timer generation (stale RTO events are ignored).
    pub rto_gen: u64,
    /// Total retransmitted segments.
    pub retransmits: u64,
    /// Map of outstanding segment -> (msg_id, bytes) for request mode
    /// retransmission.
    pub seg_msgs: HashMap<u64, (u64, usize)>,
}

impl TcpState {
    /// Creates a fresh window-transport state.
    pub fn new(window: u32, mss: usize) -> Self {
        TcpState {
            window,
            init_window: window,
            mss,
            next_seg: 0,
            acked_count: 0,
            inflight: 0,
            stream_msg_size: None,
            stream_msg_progress: 0,
            pending_msgs: std::collections::VecDeque::new(),
            rto: SimDuration::from_millis(10),
            rto_gen: 0,
            retransmits: 0,
            seg_msgs: HashMap::new(),
        }
    }

    /// Room left in the window.
    pub fn can_send(&self) -> bool {
        self.inflight < self.window
    }

    /// Registers a cumulative ack up to segment `upto` (inclusive).
    /// Returns the number of newly acked segments.
    pub fn on_ack(&mut self, upto: u64) -> u64 {
        if upto < self.acked_count {
            return 0;
        }
        let newly = upto + 1 - self.acked_count;
        self.acked_count = upto + 1;
        self.inflight = self.inflight.saturating_sub(newly as u32);
        self.rto_gen += 1;
        // Additive window recovery toward the configured ceiling.
        if self.window < self.init_window {
            self.window += 1;
        }
        for seg in (self.acked_count - newly)..self.acked_count {
            self.seg_msgs.remove(&seg);
        }
        newly
    }

    /// Applies a retransmission timeout: halve the window (floor 4) and
    /// return the segment range `[acked_count, acked_count+inflight)`
    /// to resend.
    pub fn on_timeout(&mut self) -> std::ops::Range<u64> {
        self.window = (self.window / 2).max(4);
        self.rto_gen += 1;
        self.retransmits += self.inflight as u64;
        self.acked_count..(self.acked_count + self.inflight as u64)
    }
}

/// Transport-specific flow state.
#[derive(Debug)]
pub enum FlowKind {
    /// UDP: open-loop datagrams of `payload` bytes.
    Udp {
        /// Datagram payload size.
        payload: usize,
        /// Auto-sender state, when `udp_stress` started one.
        stress: Option<StressState>,
    },
    /// TCP window transport.
    Tcp(TcpState),
}

/// Auto-sender (sockperf-style) state.
#[derive(Debug, Clone)]
pub struct StressState {
    /// Pacing discipline.
    pub pacing: Pacing,
    /// Sender thread ids driving this flow.
    pub senders: Vec<usize>,
    /// Whether the senders keep scheduling further sends.
    pub active: bool,
}

/// One client flow.
#[derive(Debug)]
pub struct ClientFlow {
    /// Identifier.
    pub id: FlowId,
    /// Inner (application-visible) flow keys, client → server.
    pub keys: FlowKeys,
    /// Index of the destination container on the server (overlay mode).
    pub dst_container: Option<usize>,
    /// Inner destination MAC (container veth MAC, or the server NIC).
    pub dst_mac: MacAddr,
    /// Inner source MAC.
    pub src_mac: MacAddr,
    /// Default sender thread.
    pub thread: usize,
    /// Next pipeline-order sequence number (monotonic per wire packet).
    pub next_flow_seq: u64,
    /// Next datagram id (for fragmentation).
    pub next_datagram: u64,
    /// Whether GRO may coalesce this flow's segments (streams yes,
    /// PSH-flagged request traffic no).
    pub gro_ok: bool,
    /// Transport state.
    pub kind: FlowKind,
}

impl ClientFlow {
    /// Allocates the next pipeline sequence number.
    pub fn alloc_seq(&mut self) -> u64 {
        let s = self.next_flow_seq;
        self.next_flow_seq += 1;
        s
    }
}

/// The client machine: sender threads plus per-flow transports.
#[derive(Debug, Default)]
pub struct ClientEngine {
    /// All flows.
    pub flows: Vec<ClientFlow>,
    /// Per-thread busy-until times (a thread sends serially).
    pub threads: Vec<SimTime>,
    /// Send timestamps of outstanding request messages (msg_id keyed).
    pub msg_send_times: HashMap<u64, SimTime>,
    /// Next message id.
    pub next_msg_id: u64,
}

impl ClientEngine {
    /// Creates an empty engine.
    pub fn new() -> Self {
        ClientEngine::default()
    }

    /// Allocates a sender thread.
    pub fn new_thread(&mut self) -> usize {
        self.threads.push(SimTime::ZERO);
        self.threads.len() - 1
    }

    /// Allocates a message id and records its send time.
    pub fn new_msg(&mut self, now: SimTime) -> u64 {
        let id = self.next_msg_id + 1; // ids start at 1; 0 means "none"
        self.next_msg_id = id;
        self.msg_send_times.insert(id, now);
        id
    }

    /// Reserves thread `t` from `now` for `cost`; returns the instant
    /// the send occurs.
    pub fn reserve_thread(&mut self, t: usize, now: SimTime, cost: SimDuration) -> SimTime {
        let start = now.max(self.threads[t]);
        self.threads[t] = start + cost;
        start
    }

    /// Returns a flow by id.
    pub fn flow(&self, id: FlowId) -> &ClientFlow {
        &self.flows[id.0 as usize]
    }

    /// Returns a flow mutably.
    pub fn flow_mut(&mut self, id: FlowId) -> &mut ClientFlow {
        &mut self.flows[id.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcp_window_accounting() {
        let mut t = TcpState::new(8, 1448);
        assert!(t.can_send());
        t.inflight = 8;
        assert!(!t.can_send());
        // Ack first 3 segments.
        let newly = t.on_ack(2);
        assert_eq!(newly, 3);
        assert_eq!(t.acked_count, 3);
        assert_eq!(t.inflight, 5);
        // Duplicate/old ack does nothing.
        assert_eq!(t.on_ack(1), 0);
        assert_eq!(t.inflight, 5);
    }

    #[test]
    fn tcp_timeout_halves_window_and_names_range() {
        let mut t = TcpState::new(16, 1448);
        t.next_seg = 20;
        t.acked_count = 10;
        t.inflight = 10;
        let range = t.on_timeout();
        assert_eq!(range, 10..20);
        assert_eq!(t.window, 8);
        assert_eq!(t.retransmits, 10);
        // Window floors at 4.
        for _ in 0..10 {
            t.on_timeout();
        }
        assert_eq!(t.window, 4);
    }

    #[test]
    fn tcp_window_recovers_on_acks() {
        let mut t = TcpState::new(16, 1448);
        t.inflight = 4;
        t.next_seg = 4;
        t.on_timeout(); // window 8
        assert_eq!(t.window, 8);
        for seg in 0..4 {
            t.inflight = 1;
            t.on_ack(seg);
        }
        assert_eq!(t.window, 12, "additive recovery, one per ack event");
    }

    #[test]
    fn thread_reservation_is_serial() {
        let mut eng = ClientEngine::new();
        let t = eng.new_thread();
        let cost = SimDuration::from_micros(2);
        let s1 = eng.reserve_thread(t, SimTime::ZERO, cost);
        let s2 = eng.reserve_thread(t, SimTime::ZERO, cost);
        assert_eq!(s1, SimTime::ZERO);
        assert_eq!(s2.as_nanos(), 2_000);
        // After the thread goes idle, sends start immediately.
        let s3 = eng.reserve_thread(t, SimTime::from_micros(100), cost);
        assert_eq!(s3, SimTime::from_micros(100));
    }

    #[test]
    fn msg_ids_start_at_one_and_record_times() {
        let mut eng = ClientEngine::new();
        let id = eng.new_msg(SimTime::from_nanos(5));
        assert_eq!(id, 1);
        assert_eq!(eng.msg_send_times[&id], SimTime::from_nanos(5));
        assert_eq!(eng.new_msg(SimTime::ZERO), 2);
    }
}

//! Figure 14: multi-container throughput in busy systems.
//!
//! 6 → 40 containers, each with one paced UDP flow, receive processing
//! restricted to six cores (the `FALCON_CPUS`). Expected shape: Falcon
//! gains while idle cycles exist, the gain diminishes as utilization
//! climbs, and it never loses once the system is saturated (the load
//! gate turns it off).

use falcon::FalconConfig;
use falcon_cpusim::CpuSet;
use falcon_netdev::LinkSpeed;
use falcon_netstack::{KernelVersion, Pacing};
use falcon_workloads::{UdpStressApp, UdpStressConfig};

use crate::measure::{run_measured, Scale};
use crate::scenario::{Mode, Scenario, MF_APP_CORES};
use crate::table::{kpps, pct, FigResult, Table};

fn run_once(mode: Mode, containers: usize, seed: u64, scale: Scale) -> (f64, f64) {
    let scenario =
        Scenario::multi_flow(mode, KernelVersion::K419, LinkSpeed::HundredGbit).with_seed(seed);
    let mut cfg = UdpStressConfig::multi_flow(containers, 512);
    // Rate per container chosen so six containers load the six rx
    // cores to ~70%: six flows at 170kpps ≈ 1Mpps aggregate.
    cfg.pacing = Pacing::PoissonPps(170_000.0);
    cfg.senders_per_flow = 1;
    cfg.app_cores = MF_APP_CORES.to_vec();
    let mut runner = scenario.build(Box::new(UdpStressApp::new(cfg)));
    let stats = run_measured(&mut runner, scale);
    // Mean utilization of the six receive cores.
    let rx_util: f64 = stats.cores[..6].iter().map(|c| c.busy()).sum::<f64>() / 6.0;
    (stats.pps(), rx_util)
}

/// Averages several seeds per cell (hash placements vary run to run,
/// as the paper's error bars do).
fn run_case(mode: Mode, containers: usize, scale: Scale) -> (f64, f64) {
    let seeds: &[u64] = match scale {
        Scale::Quick => &[1],
        Scale::Full => &[1, 2, 3],
    };
    let mut pps = 0.0;
    let mut util = 0.0;
    for &seed in seeds {
        let (p, u) = run_once(mode.clone(), containers, seed, scale);
        pps += p;
        util += u;
    }
    (pps / seeds.len() as f64, util / seeds.len() as f64)
}

/// Throughput and receive-core utilization, 6 → 40 containers.
pub fn run(scale: Scale) -> FigResult {
    let mut fig = FigResult::new(
        "fig14",
        "Multi-container throughput in busy systems (6 rx cores)",
    );
    let container_counts: &[usize] = match scale {
        Scale::Quick => &[6, 20],
        Scale::Full => &[6, 10, 20, 30, 40],
    };

    let mut t = Table::new(&[
        "containers",
        "Con Kpps",
        "Falcon Kpps",
        "gain",
        "Con rx-util",
        "Falcon rx-util",
    ]);
    let mut gains = Vec::new();
    for &n in container_counts {
        let (con, con_util) = run_case(Mode::Vanilla, n, scale);
        let (fal, fal_util) = run_case(
            Mode::Falcon(FalconConfig::new(CpuSet::range(0, 6))),
            n,
            scale,
        );
        let gain = fal / con.max(1.0) - 1.0;
        gains.push((n, gain));
        t.row(vec![
            n.to_string(),
            kpps(con),
            kpps(fal),
            format!("{:+.1}%", gain * 100.0),
            pct(con_util),
            pct(fal_util),
        ]);
    }
    fig.panel("", t);
    if let (Some(first), Some(last)) = (gains.first(), gains.last()) {
        fig.note(format!(
            "gain at {} containers: {:+.1}%; at {} containers: {:+.1}% (diminishes, never large loss)",
            first.0,
            first.1 * 100.0,
            last.0,
            last.1 * 100.0
        ));
    }
    fig
}

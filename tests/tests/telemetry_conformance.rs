//! Telemetry conformance: the live sampler must never disagree with
//! the ground truth the executor reports at the end of the run.
//!
//! Three books have to balance. (1) *Stall attribution*: the chained
//! timestamp in the worker loop charges every nanosecond of wall-clock
//! to exactly one of {busy, push-stall, pop-stall, guard-wait, idle},
//! so per worker the five buckets sum to the loop's wall time — the
//! paper-style "where did the cycles go" evidence is exhaustive, not
//! sampled. (2) *Counter conservation*: summing the sampler's
//! per-interval deltas telescopes to the final cumulative shard, which
//! in turn equals the executor's own [`WorkerStats`] — including drops
//! and per-stage malformed counts with a chaos corruptor flipping bits
//! on the wire. (3) *Exporter fidelity*: the JSONL stream is
//! well-formed line-delimited JSON whose deltas re-add to the final
//! totals, and the Prometheus endpoint serves parseable exposition
//! whose gauges match a live snapshot.
//!
//! [`WorkerStats`]: falcon_dataplane::WorkerStats

use falcon_dataplane::{run_scenario, PolicyKind, Scenario, TelemetrySpec};
use falcon_telemetry::ShardCounters;
use falcon_trace::DropReason;

/// A telemetry-enabled scenario sized for invariant checking: enough
/// packets that the sampler ticks several times at a 1 ms interval,
/// small enough to stay test-quick.
fn telem_scenario(policy: PolicyKind, workers: usize, wire: bool) -> Scenario {
    Scenario {
        policy,
        workers,
        flows: 3,
        packets: 8_000,
        payload: 256,
        work_scale_milli: 100,
        inject_gap_ns: 0,
        pin: false,
        oversubscribe: true,
        wire,
        telemetry: Some(TelemetrySpec {
            interval_ms: 1,
            ..TelemetrySpec::default()
        }),
        ..Scenario::default()
    }
}

/// ISSUE acceptance: per worker, busy + push + pop + guard + idle
/// must cover ≥ 95 % of loop wall-clock. The chained-timestamp design
/// actually closes the books *exactly*, which this asserts too.
#[test]
fn stall_attribution_closes_for_both_policies() {
    for policy in [PolicyKind::Vanilla, PolicyKind::Falcon] {
        for wire in [false, true] {
            let out = run_scenario(&telem_scenario(policy, 2, wire));
            for (w, stats) in out.workers_stats.iter().enumerate() {
                let st = &stats.stall;
                assert!(st.wall_ns > 0, "{policy:?} wire={wire} worker {w} ran");
                assert_eq!(
                    st.attributed_ns(),
                    st.wall_ns,
                    "{policy:?} wire={wire} worker {w}: buckets must sum to wall-clock"
                );
                assert!(
                    st.coverage() >= 0.95,
                    "{policy:?} wire={wire} worker {w}: coverage {}",
                    st.coverage()
                );
            }
        }
    }
}

/// Summing the sampler's interval deltas reproduces the executor's
/// final per-worker counters exactly — nothing double-counted, nothing
/// lost between snapshots, and the final snapshot (taken after the
/// workers joined) *is* the final stats.
#[test]
fn sampler_deltas_conserve_final_stats() {
    let out = run_scenario(&telem_scenario(PolicyKind::Falcon, 2, true));
    let run = out.telemetry.as_ref().expect("telemetry enabled");
    assert!(run.samples.len() >= 2, "sampler ticked during the run");
    let last = run.samples.last().unwrap();
    for (w, stats) in out.workers_stats.iter().enumerate() {
        // Telescoping sum of deltas == cumulative final shard.
        let n_stages = stats.processed.len();
        let mut total = ShardCounters::zeroed(n_stages, DropReason::ALL.len());
        let mut prev = ShardCounters::zeroed(n_stages, DropReason::ALL.len());
        for s in &run.samples {
            total.accumulate(&s.workers[w].counters.delta_since(&prev));
            prev = s.workers[w].counters.clone();
        }
        assert_eq!(total, last.workers[w].counters, "worker {w} telescopes");
        // Final shard == executor ground truth.
        let c = &last.workers[w].counters;
        assert_eq!(c.delivered, stats.delivered, "worker {w} delivered");
        assert_eq!(c.sweeps, stats.sweeps, "worker {w} sweeps");
        assert_eq!(c.processed_per_stage, stats.processed, "worker {w}");
        assert_eq!(c.drops.as_slice(), &stats.drops[..], "worker {w} drops");
        assert_eq!(c.bytes_delivered, stats.bytes_delivered, "worker {w}");
        assert_eq!(c.bytes_per_stage, stats.bytes_per_stage, "worker {w}");
        assert_eq!(c.decisions, stats.decisions, "worker {w} decisions");
        assert_eq!(c.migrations, stats.migrations, "worker {w} migrations");
    }
    // Run-level conservation: the shards' delivered/drops explain every
    // injected packet, same as the executor's own books.
    let delivered: u64 = last.workers.iter().map(|s| s.counters.delivered).sum();
    let dropped: u64 = last
        .workers
        .iter()
        .map(|s| s.counters.drops.iter().sum::<u64>())
        .sum();
    assert_eq!(delivered + dropped + out.inject_drops, out.injected);
}

/// Conservation holds under adversarial corruption: every malformed
/// frame the stages caught shows up in the shards, per stage, exactly
/// as the executor counted it.
#[test]
fn sampler_conserves_malformed_drops_under_corruption() {
    let mut s = telem_scenario(PolicyKind::Falcon, 2, true);
    s.corrupt_per_million = 60_000; // ~6 % of segments take a bit flip
    s.wire_seed = 7;
    let out = run_scenario(&s);
    let run = out.telemetry.as_ref().expect("telemetry enabled");
    let last = run.samples.last().unwrap();
    let mut total_malformed = 0u64;
    for (w, stats) in out.workers_stats.iter().enumerate() {
        let c = &last.workers[w].counters;
        assert_eq!(
            c.malformed_per_stage, stats.malformed_per_stage,
            "worker {w} malformed-per-stage"
        );
        assert_eq!(c.drops.as_slice(), &stats.drops[..], "worker {w} drops");
        total_malformed += stats.malformed_per_stage.iter().sum::<u64>();
    }
    assert!(total_malformed > 0, "corruptor actually corrupted");
    // Books still close with the corruptor on.
    assert_eq!(out.delivered() + out.dropped(), out.injected);
}

/// The JSONL artifact is tail-able line-delimited JSON: a header line
/// carrying the RunMeta provenance stamp, then one delta line per
/// (tick, worker) whose delivered counts re-add to the final total.
#[test]
fn jsonl_stream_is_well_formed_and_conserves() {
    let dir = std::env::temp_dir().join("falcon-telemetry-conformance");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("stream-{}.jsonl", std::process::id()));
    let mut s = telem_scenario(PolicyKind::Falcon, 2, true);
    s.telemetry = Some(TelemetrySpec {
        interval_ms: 1,
        jsonl_path: Some(path.to_string_lossy().into_owned()),
        prom_addr: None,
        prom_addr_tx: None,
    });
    let out = run_scenario(&s);
    let run = out.telemetry.as_ref().expect("telemetry enabled");
    assert!(run.jsonl_error.is_none(), "{:?}", run.jsonl_error);

    let text = std::fs::read_to_string(&path).unwrap();
    let mut lines = text.lines();
    let header = serde_json::from_str(lines.next().expect("header line")).expect("header parses");
    assert_eq!(
        header.get("kind").and_then(serde::Value::as_str),
        Some("header")
    );
    let meta = header.get("meta").expect("meta stamped");
    assert_eq!(
        meta.get("schema_version").and_then(serde::Value::as_u64),
        Some(1)
    );
    assert!(meta
        .get("hostname")
        .and_then(serde::Value::as_str)
        .is_some());
    assert!(meta
        .get("created_utc")
        .and_then(serde::Value::as_str)
        .is_some());
    assert_eq!(
        header.get("workers").and_then(serde::Value::as_u64),
        Some(out.workers as u64)
    );
    let stages = header
        .get("stages")
        .and_then(serde::Value::as_array)
        .unwrap();
    assert_eq!(stages.len(), out.workers_stats[0].processed.len());

    let mut data_lines = 0u64;
    let mut delivered_from_deltas = 0u64;
    let mut last_t = 0u64;
    for line in lines {
        let v: serde::Value = serde_json::from_str(line).expect("sample line parses");
        let kind = v.get("kind").and_then(serde::Value::as_str);
        if kind == Some("slab") {
            // Wire runs interleave the slab pool's delta stream; it
            // shares the tick timestamps but not the worker schema.
            let t = v.get("t_ns").and_then(serde::Value::as_u64).unwrap();
            assert!(t >= last_t, "timestamps monotone");
            last_t = t.max(last_t);
            data_lines += 1;
            continue;
        }
        assert_eq!(kind, Some("sample"));
        let worker = v.get("worker").and_then(serde::Value::as_u64).unwrap();
        assert!(worker < out.workers as u64);
        let t = v.get("t_ns").and_then(serde::Value::as_u64).unwrap();
        assert!(t >= last_t, "timestamps monotone");
        last_t = t.max(last_t);
        delivered_from_deltas += v.get("delivered").and_then(serde::Value::as_u64).unwrap();
        data_lines += 1;
    }
    assert_eq!(data_lines, run.jsonl_lines, "every write accounted");
    assert!(data_lines > 0, "stream is non-empty");
    assert_eq!(
        delivered_from_deltas,
        out.delivered(),
        "JSONL deltas re-add to the run's delivered total"
    );
    std::fs::remove_file(&path).ok();
}

/// A live scrape during the run returns parseable Prometheus text
/// exposition (no curl needed: [`falcon_telemetry::scrape`] is a
/// plain-TCP test client), and the listener's scrape count lands in
/// the run summary. The listener binds port 0 and reports its actual
/// address through `prom_addr_tx` — no probe-bind/release race: the
/// address that arrives on the channel is, by construction, a port the
/// listener owns right now.
#[test]
fn prometheus_endpoint_serves_parseable_exposition() {
    let (addr_tx, addr_rx) = std::sync::mpsc::channel();
    let mut s = telem_scenario(PolicyKind::Falcon, 2, true);
    s.packets = 40_000; // long enough to scrape mid-flight
    s.telemetry = Some(TelemetrySpec {
        interval_ms: 1,
        jsonl_path: None,
        prom_addr: Some("127.0.0.1:0".to_string()),
        prom_addr_tx: Some(addr_tx),
    });
    let runner = std::thread::spawn(move || run_scenario(&s));
    let addr = addr_rx
        .recv_timeout(std::time::Duration::from_secs(30))
        .expect("bound address arrives while the run is in flight");
    assert_ne!(addr.port(), 0, "ephemeral bind resolved to a real port");
    // The listener owns the port already — a connect cannot race the
    // bind. It can still beat the sampler's *first tick*, in which
    // case the exposition body is legitimately empty; retry until a
    // tick has populated it.
    let mut body = None;
    for _ in 0..2_000 {
        if let Ok(text) = falcon_telemetry::scrape(&addr) {
            if !falcon_telemetry::parse_exposition(&text).is_empty() {
                body = Some(text);
                break;
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let out = runner.join().expect("run completes");
    let body = body.expect("scraped the exposition while the run was live");
    let metrics = falcon_telemetry::parse_exposition(&body);
    assert!(!metrics.is_empty(), "exposition parses into samples");
    for name in [
        "falcon_worker_delivered_total",
        "falcon_worker_stall_ns_total",
        "falcon_worker_ring_depth",
    ] {
        assert!(
            metrics.iter().any(|m| m.name == name),
            "metric {name} missing from exposition:\n{body}"
        );
    }
    // Every worker is labeled.
    for w in 0..out.workers {
        assert!(metrics
            .iter()
            .any(|m| m.label("worker") == Some(&w.to_string())));
    }
    let run = out.telemetry.as_ref().expect("telemetry enabled");
    assert!(run.scrapes >= 1, "listener counted our scrape");
    assert_eq!(
        run.prom_addr.as_deref(),
        Some(addr.to_string().as_str()),
        "summary reports the same bound address the channel delivered"
    );
}

//! Packet-steering policies: RPS and the stage-transition hook.
//!
//! Two distinct steering mechanisms exist in the receive path:
//!
//! 1. **RPS** (`get_rps_cpu`) runs once, early, inside
//!    `netif_receive_skb`: it hashes the *flow* onto the RPS CPU mask.
//!    All stages of a flow get the same answer, which is why RPS cannot
//!    parallelize a single flow (paper §3.3). Implemented by
//!    [`rps_cpu`].
//! 2. **Stage transitions**: at the end of each device's processing the
//!    packet is enqueued for its next stage. The vanilla kernel always
//!    stays on the current CPU; Falcon plugs in here. The
//!    [`Steering`] trait is that plug; `falcon` (the crate) implements
//!    it with Algorithm 1, and [`StayLocal`] is the vanilla behaviour.

use falcon_cpusim::{CpuSet, LoadTracker};

/// Everything a stage-transition policy may consult.
#[derive(Debug)]
pub struct SteerCtx<'a> {
    /// The packet's flow hash (`skb->hash`).
    pub rx_hash: u32,
    /// `ifindex` of the device whose stage is *about to run* (the
    /// stage being dispatched to).
    pub ifindex: u32,
    /// Core currently executing.
    pub current_cpu: usize,
    /// Smoothed per-core loads and the system average.
    pub loads: &'a LoadTracker,
}

/// A stage-transition CPU-selection policy.
pub trait Steering {
    /// Policy name for reports.
    fn name(&self) -> &'static str;

    /// Chooses the CPU for the next stage. `None` keeps the packet on
    /// the current CPU (the vanilla behaviour).
    fn select_cpu(&mut self, ctx: &SteerCtx<'_>) -> Option<usize>;

    /// Called on every load-tracker sample so adaptive policies can
    /// update internal state. Default: nothing.
    fn on_load_sample(&mut self, _loads: &LoadTracker) {}

    /// Whether a (flow, stage) whose packets are still in flight on
    /// `old_cpu` may migrate to a different CPU anyway.
    ///
    /// Migrating with packets in flight can transiently reorder the
    /// flow at that stage, so the default is to wait for the queue to
    /// drain. Adaptive policies (Falcon's two-choice balancer) override
    /// this to escape persistently overloaded cores — under a standing
    /// queue the drain condition never arrives, and staying pinned to a
    /// hotspot defeats rebalancing (§4.3 of the paper).
    fn allow_inflight_migration(
        &self,
        _old_cpu: usize,
        _new_cpu: usize,
        _loads: &LoadTracker,
    ) -> bool {
        false
    }

    /// Turns decision tracing on or off. Policies that emit trace
    /// events buffer them internally (they have no tracer access) and
    /// hand them over via [`Steering::take_trace`]. Default: ignored.
    fn set_tracing(&mut self, _on: bool) {}

    /// Drains any trace events buffered since the last call. The
    /// receive path calls this after each steering decision and each
    /// load sample, timestamping the events on the tracer's clock.
    /// Default: none.
    fn take_trace(&mut self) -> Vec<falcon_trace::EventKind> {
        Vec::new()
    }
}

/// Vanilla kernel behaviour: each stage continues on the CPU that
/// raised it.
#[derive(Debug, Default, Clone)]
pub struct StayLocal;

impl Steering for StayLocal {
    fn name(&self) -> &'static str {
        "vanilla"
    }

    fn select_cpu(&mut self, _ctx: &SteerCtx<'_>) -> Option<usize> {
        None
    }
}

/// `get_rps_cpu`: map a flow hash onto the RPS CPU mask.
///
/// Mirrors the kernel: the flow hash modulo the mask size (the real
/// kernel uses a 256-entry indirection table; for full masks the result
/// is the same distribution).
pub fn rps_cpu(rx_hash: u32, mask: &CpuSet) -> usize {
    mask.pick_by_hash(rx_hash)
}

#[cfg(test)]
mod tests {
    use super::*;
    use falcon_khash::{flow_hash_from_keys, FlowKeys};

    #[test]
    fn stay_local_never_moves() {
        let mut policy = StayLocal;
        let loads = LoadTracker::new(4);
        for ifindex in 1..5u32 {
            let ctx = SteerCtx {
                rx_hash: 0xABCD,
                ifindex,
                current_cpu: 1,
                loads: &loads,
            };
            assert_eq!(policy.select_cpu(&ctx), None);
        }
        assert_eq!(policy.name(), "vanilla");
    }

    #[test]
    fn rps_is_flow_stable() {
        let mask = CpuSet::new(vec![1, 2, 3]);
        let keys = FlowKeys::udp(0x0A00_0001, 9999, 0x0A00_0002, 5001);
        let h = flow_hash_from_keys(&keys, 7);
        let cpu = rps_cpu(h, &mask);
        assert_eq!(rps_cpu(h, &mask), cpu);
        assert!(mask.contains(cpu));
    }

    #[test]
    fn rps_ignores_device_identity() {
        // The core observation of paper §4.1: RPS input has no device
        // information, so every stage of a flow maps identically. Our
        // rps_cpu signature makes that structural: it *cannot* see a
        // device. This test pins the flow-hash-only contract.
        let mask = CpuSet::new(vec![0, 1, 2, 3]);
        let h = 0xDEAD_BEEF;
        let first = rps_cpu(h, &mask);
        for _stage in 0..3 {
            assert_eq!(rps_cpu(h, &mask), first);
        }
    }

    #[test]
    fn rps_spreads_different_flows() {
        let mask = CpuSet::new(vec![0, 1, 2, 3]);
        let mut used = std::collections::HashSet::new();
        for port in 0..32u16 {
            let keys = FlowKeys::udp(0x0A00_0001, 1000 + port, 0x0A00_0002, 5001);
            used.insert(rps_cpu(flow_hash_from_keys(&keys, 7), &mask));
        }
        assert!(used.len() >= 3, "RPS used only {} cpus", used.len());
    }
}

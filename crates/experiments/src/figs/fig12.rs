//! Figure 12: per-packet latency, underloaded and overloaded.
//!
//! Four panels: (a) UDP 16 B underloaded, (b) TCP 4 KB underloaded
//! (with GRO splitting), (c) UDP 16 B overloaded, (d) TCP overloaded.
//! Expected shape: modest gains when underloaded (most pronounced at
//! the tail), dramatic gains when overloaded (queueing on the
//! serialized core dominates vanilla latency).

use falcon::FalconConfig;
use falcon_metrics::Histogram;
use falcon_netdev::LinkSpeed;
use falcon_netstack::{KernelVersion, Pacing};
use falcon_workloads::{TcpStreams, TcpStreamsConfig, UdpStressApp, UdpStressConfig};

use crate::measure::{run_measured, Scale};
use crate::scenario::{Mode, Scenario, SF_APP_CORE};
use crate::table::{us, FigResult, Table};

fn latency_row(label: &str, h: &Histogram) -> Vec<String> {
    vec![
        label.into(),
        us(h.mean() as u64),
        us(h.percentile(90.0)),
        us(h.percentile(99.0)),
        us(h.percentile(99.9)),
    ]
}

fn udp_latency(mode: Mode, rate: f64, scale: Scale) -> Histogram {
    let scenario = Scenario::single_flow(mode, KernelVersion::K419, LinkSpeed::HundredGbit);
    let mut cfg = UdpStressConfig::single_flow(16);
    cfg.senders_per_flow = 2;
    // Pacing is per sender thread: split the aggregate rate.
    cfg.pacing = Pacing::PoissonPps(rate / 2.0);
    cfg.app_cores = vec![SF_APP_CORE];
    let mut runner = scenario.build(Box::new(UdpStressApp::new(cfg)));
    run_measured(&mut runner, scale).latency
}

fn tcp_latency(mode: Mode, window: u32, scale: Scale) -> Histogram {
    let scenario = Scenario::single_flow(mode, KernelVersion::K419, LinkSpeed::HundredGbit);
    let mut cfg = TcpStreamsConfig::single(4096);
    cfg.window = window;
    cfg.app_cores = vec![SF_APP_CORE];
    let mut runner = scenario.build(Box::new(TcpStreams::new(cfg)));
    // Deep windows queue segments at the *sender*; the figure plots the
    // receive-path (kernel) latency, NIC arrival → delivery.
    run_measured(&mut runner, scale).rx_latency
}

fn falcon_plain() -> Mode {
    Mode::Falcon(Scenario::sf_falcon())
}

fn falcon_split() -> Mode {
    Mode::Falcon(FalconConfig::new(falcon_cpusim_range()).with_split_gro(true))
}

fn falcon_cpusim_range() -> falcon_cpusim::CpuSet {
    falcon_cpusim::CpuSet::range(1, 5)
}

/// One-way latency percentiles across load regimes.
pub fn run(scale: Scale) -> FigResult {
    let mut fig = FigResult::new(
        "fig12",
        "Per-packet one-way latency (mean / p90 / p99 / p99.9, microseconds)",
    );
    let headers = ["mode", "mean", "p90", "p99", "p99.9"];

    // (a) UDP underloaded: 100 kpps, far below the overlay's capacity.
    let mut a = Table::new(&headers);
    a.row(latency_row(
        "Host",
        &udp_latency(Mode::Host, 100_000.0, scale),
    ));
    a.row(latency_row(
        "Con",
        &udp_latency(Mode::Vanilla, 100_000.0, scale),
    ));
    a.row(latency_row(
        "Falcon",
        &udp_latency(falcon_plain(), 100_000.0, scale),
    ));
    fig.panel("(a) UDP 16B underloaded (100kpps)", a);

    // (b) TCP 4KB underloaded: small window keeps the pipe unsaturated.
    let mut b = Table::new(&headers);
    b.row(latency_row("Host", &tcp_latency(Mode::Host, 8, scale)));
    b.row(latency_row("Con", &tcp_latency(Mode::Vanilla, 8, scale)));
    b.row(latency_row(
        "Falcon+split",
        &tcp_latency(falcon_split(), 8, scale),
    ));
    fig.panel("(b) TCP 4KB underloaded (window 8)", b);

    // (c) UDP overloaded: drive near the vanilla overlay's saturation.
    let mut c = Table::new(&headers);
    let rate = 420_000.0;
    let con_over = udp_latency(Mode::Vanilla, rate, scale);
    let fal_over = udp_latency(falcon_plain(), rate, scale);
    c.row(latency_row("Host", &udp_latency(Mode::Host, rate, scale)));
    c.row(latency_row("Con", &con_over));
    c.row(latency_row("Falcon", &fal_over));
    fig.panel("(c) UDP 16B overloaded (420kpps)", c);
    fig.note(format!(
        "overloaded UDP p99: Falcon {:.0}us vs Con {:.0}us",
        fal_over.percentile(99.0) as f64 / 1e3,
        con_over.percentile(99.0) as f64 / 1e3
    ));

    // (d) TCP overloaded: large window saturates the pipeline.
    let mut d = Table::new(&headers);
    d.row(latency_row("Host", &tcp_latency(Mode::Host, 256, scale)));
    d.row(latency_row("Con", &tcp_latency(Mode::Vanilla, 256, scale)));
    d.row(latency_row(
        "Falcon+split",
        &tcp_latency(falcon_split(), 256, scale),
    ));
    fig.panel("(d) TCP 4KB overloaded (window 256)", d);
    fig
}

//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace uses: the [`proptest!`] macro,
//! `prop_assert*` macros, range and `any::<T>()` strategies,
//! `prop::collection::vec`, `prop::sample::select`, and `prop_map`.
//!
//! Generation is deterministic: the RNG is seeded from the test
//! function's name, so every run explores the same cases. There is no
//! shrinking — a failing case panics with the case number and message.

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property case.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(msg: String) -> Self {
        TestCaseError(msg)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name (FNV-1a over the bytes), so
    /// each property gets a distinct but reproducible stream.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h | 1 }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[lo, hi]` (inclusive).
    pub fn gen_range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_u64() % (span + 1)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A value generator.
pub trait Strategy {
    type Value;

    fn gen(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn gen(&self, rng: &mut TestRng) -> Self::Value {
        (**self).gen(rng)
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn gen(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.gen(rng))
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn gen(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.gen_range_inclusive(self.start as u64, self.end as u64 - 1) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn gen(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                rng.gen_range_inclusive(*self.start() as u64, *self.end() as u64) as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn gen(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn gen(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.next_f64() * (self.end() - self.start())
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.next_f64()
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// Strategy for [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn gen(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — generate any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds for generated collection sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec<S::Value>` with a size drawn from the
    /// given range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range_inclusive(self.size.lo as u64, self.size.hi as u64) as usize;
            (0..n).map(|_| self.elem.gen(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy choosing uniformly from a fixed set.
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn gen(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range_inclusive(0, self.options.len() as u64 - 1) as usize;
            self.options[i].clone()
        }
    }

    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult,
    };
}

/// Defines property-test functions.
///
/// Each generated `fn` runs `config.cases` deterministic cases; a
/// failing `prop_assert!` aborts the case with a message and panics
/// with the case number.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $(
          $(#[$meta:meta])*
          fn $name:ident( $($p:pat in $s:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::for_test(stringify!($name));
                for __case in 0..__config.cases {
                    let __result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            $(let $p = $crate::Strategy::gen(&($s), &mut __rng);)+
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(__e) = __result {
                        panic!("property failed at case {}/{}: {}",
                               __case + 1, __config.cases, __e);
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($lhs), stringify!($rhs), __l, __r)));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), __l, __r)));
        }
    }};
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($lhs), stringify!($rhs), __l)));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  both: {:?}", format!($($fmt)+), __l)));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u8..7, y in 10u32..=20, f in 0.5f64..1.5) {
            prop_assert!((3..7).contains(&x));
            prop_assert!((10..=20).contains(&y));
            prop_assert!((0.5..1.5).contains(&f));
        }

        #[test]
        fn vec_respects_size(v in prop::collection::vec(any::<u8>(), 12)) {
            prop_assert_eq!(v.len(), 12);
        }

        #[test]
        fn select_picks_member(x in prop::sample::select(vec![2usize, 4, 8])) {
            prop_assert!(x == 2 || x == 4 || x == 8);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        #[test]
        fn config_form_works(pair in any::<[u8; 2]>().prop_map(|a| (a[0], a[1]))) {
            prop_assert_ne!((300usize, pair.0 as usize), (301, pair.1 as usize), "always differs");
        }
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::for_test("t");
        let mut b = TestRng::for_test("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    use super::TestRng;
}

//! `falcon-repro`: regenerate the paper's figures from the simulation.
//!
//! ```text
//! falcon-repro --list                  # available figure ids
//! falcon-repro all                     # run everything at full scale
//! falcon-repro --quick fig10           # quick (test-scale) run of one figure
//! falcon-repro --json fig18            # machine-readable output
//! falcon-repro fig11 --trace out.json  # also write a Perfetto timeline
//! falcon-repro --stage-latency         # per-stage latency decomposition
//! falcon-repro --dataplane             # real threads: vanilla vs Falcon wall-clock
//! ```

use std::process::ExitCode;

use falcon_experiments::dataplane;
use falcon_experiments::figs;
use falcon_experiments::ingest;
use falcon_experiments::measure::Scale;
use falcon_experiments::tracedrun;

fn usage() {
    eprintln!(
        "usage: falcon-repro [--quick] [--json] [--list] [--trace <out.json>] \
         [--stage-latency] [--dataplane] [--wire] [--split-gro] [--workers <n>] \
         [--flows <n>] [--policy <vanilla|falcon|replicate>] \
         [--flow-cache] [--flow-cache-entries <n>] \
         [--dataplane-out <path>] [--dataplane-trace <out.json>] \
         [--sweep] [--sweep-out <path>] [--telemetry] \
         [--telemetry-interval-ms <n>] [--telemetry-out <path>] \
         [--prom-addr <ip:port>] [--ingest] [--ingest-out <path>] \
         [--rx-batch <n>] <fig-id>... | all\n\
         --dataplane runs the modeled rx path on real pinned threads and \
         writes a vanilla-vs-falcon comparison to --dataplane-out \
         (default BENCH_dataplane.json); --wire makes every injected unit \
         carry real VXLAN-encapsulated bytes through the stages and \
         switches the default comparison output to BENCH_wire.json \
         (bytes in/out and goodput appear in the report); --split-gro \
         runs the five-hop pipeline (pNIC stage split into alloc/GRO \
         halves) on the Figure-13 TCP-4KB shape; --sweep runs the \
         real-thread scaling grid (1..=--flows x 1..=--workers, both \
         policies per point) and writes it to --sweep-out (default \
         BENCH_sweep.json), failing if the order audit flags any point; \
         --telemetry attaches the live sampler to the --dataplane falcon \
         run (per-worker stall attribution, stage service-time \
         histograms, ring-depth gauges), streams per-interval deltas to \
         --telemetry-out (default BENCH_telemetry.jsonl), serves \
         Prometheus text exposition on --prom-addr if given, and records \
         the instrumentation's goodput cost (telemetry on vs off) in the \
         comparison's telemetry_overhead field; --prom-addr with port 0 \
         binds ephemerally and the bound address is printed when the \
         listener is up; --ingest sends real VXLAN datagrams over a \
         loopback UDP socket into the pipeline (batched recvmmsg rx \
         thread, differential oracle with explicit loss accounting) and \
         writes the vanilla-vs-falcon comparison to --ingest-out \
         (default BENCH_ingest.json); --rx-batch sets its datagrams per \
         batched read; --flow-cache adds a cached leg to the --wire \
         comparison and sweep (per-worker flow-verdict cache on the rx \
         path, hit/miss/eviction/invalidation counters and the \
         cached-vs-uncached goodput ratio land in the artifact); \
         --flow-cache-entries sets its per-worker capacity (default \
         4096, implies --flow-cache); --policy replicate adds the SCR \
         leg to the --dataplane comparison and the --sweep grid (the \
         same scenario under Policy::Replicate — per-flow round-robin \
         spraying with per-worker replicated conntrack shards — plus \
         the state-convergence differential oracle on drop-free wire \
         runs); vanilla and falcon always run, so naming either is a \
         no-op\n\
         figure ids: {}",
        figs::all()
            .iter()
            .map(|&(id, _)| id)
            .collect::<Vec<_>>()
            .join(", ")
    );
}

fn main() -> ExitCode {
    let mut scale = Scale::Full;
    let mut json = false;
    let mut trace_out: Option<String> = None;
    let mut stage_latency = false;
    let mut run_dataplane = false;
    let mut wire = false;
    let mut split_gro = false;
    let mut workers: usize = 4;
    let mut flows: u64 = 1;
    let mut flow_cache = false;
    let mut flow_cache_entries: usize = 4096;
    let mut replicate = false;
    let mut dataplane_out: Option<String> = None;
    let mut dataplane_trace: Option<String> = None;
    let mut run_sweep = false;
    let mut sweep_out = "BENCH_sweep.json".to_string();
    let mut telemetry = false;
    let mut telemetry_interval_ms: u64 = 0;
    let mut telemetry_out = "BENCH_telemetry.jsonl".to_string();
    let mut prom_addr: Option<String> = None;
    let mut run_ingest = false;
    let mut ingest_out = "BENCH_ingest.json".to_string();
    let mut rx_batch: usize = 32;
    let mut wanted: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" | "-q" => scale = Scale::Quick,
            "--json" => json = true,
            "--trace" => match args.next() {
                Some(path) => trace_out = Some(path),
                None => {
                    eprintln!("--trace requires an output path");
                    usage();
                    return ExitCode::FAILURE;
                }
            },
            "--stage-latency" => stage_latency = true,
            "--dataplane" => run_dataplane = true,
            "--wire" => wire = true,
            "--split-gro" => split_gro = true,
            "--workers" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => workers = n,
                _ => {
                    eprintln!("--workers requires a positive integer");
                    usage();
                    return ExitCode::FAILURE;
                }
            },
            "--flows" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => flows = n,
                _ => {
                    eprintln!("--flows requires a positive integer");
                    usage();
                    return ExitCode::FAILURE;
                }
            },
            "--policy" => match args
                .next()
                .as_deref()
                .and_then(falcon_dataplane::PolicyKind::from_label)
            {
                Some(falcon_dataplane::PolicyKind::Replicate) => replicate = true,
                // Vanilla and falcon always run as the comparison's
                // two standing legs.
                Some(_) => {}
                None => {
                    eprintln!("--policy requires vanilla, falcon, or replicate");
                    usage();
                    return ExitCode::FAILURE;
                }
            },
            "--flow-cache" => flow_cache = true,
            "--flow-cache-entries" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => {
                    flow_cache = true;
                    flow_cache_entries = n;
                }
                _ => {
                    eprintln!("--flow-cache-entries requires a positive integer");
                    usage();
                    return ExitCode::FAILURE;
                }
            },
            "--dataplane-out" => match args.next() {
                Some(path) => dataplane_out = Some(path),
                None => {
                    eprintln!("--dataplane-out requires a path");
                    usage();
                    return ExitCode::FAILURE;
                }
            },
            "--dataplane-trace" => match args.next() {
                Some(path) => dataplane_trace = Some(path),
                None => {
                    eprintln!("--dataplane-trace requires an output path");
                    usage();
                    return ExitCode::FAILURE;
                }
            },
            "--telemetry" => telemetry = true,
            "--telemetry-interval-ms" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => {
                    telemetry = true;
                    telemetry_interval_ms = n;
                }
                _ => {
                    eprintln!("--telemetry-interval-ms requires a positive integer");
                    usage();
                    return ExitCode::FAILURE;
                }
            },
            "--telemetry-out" => match args.next() {
                Some(path) => {
                    telemetry = true;
                    telemetry_out = path;
                }
                None => {
                    eprintln!("--telemetry-out requires a path");
                    usage();
                    return ExitCode::FAILURE;
                }
            },
            "--prom-addr" => match args.next() {
                Some(addr) => {
                    telemetry = true;
                    prom_addr = Some(addr);
                }
                None => {
                    eprintln!("--prom-addr requires an ip:port");
                    usage();
                    return ExitCode::FAILURE;
                }
            },
            "--sweep" => run_sweep = true,
            "--sweep-out" => match args.next() {
                Some(path) => sweep_out = path,
                None => {
                    eprintln!("--sweep-out requires a path");
                    usage();
                    return ExitCode::FAILURE;
                }
            },
            "--ingest" => run_ingest = true,
            "--ingest-out" => match args.next() {
                Some(path) => {
                    run_ingest = true;
                    ingest_out = path;
                }
                None => {
                    eprintln!("--ingest-out requires a path");
                    usage();
                    return ExitCode::FAILURE;
                }
            },
            "--rx-batch" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => rx_batch = n,
                _ => {
                    eprintln!("--rx-batch requires a positive integer");
                    usage();
                    return ExitCode::FAILURE;
                }
            },
            "--list" | "-l" => {
                for (id, _) in figs::all() {
                    println!("{id}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag: {other}");
                usage();
                return ExitCode::FAILURE;
            }
            id => wanted.push(id.to_string()),
        }
    }

    if wanted.is_empty()
        && trace_out.is_none()
        && !stage_latency
        && !run_dataplane
        && !run_sweep
        && !run_ingest
    {
        usage();
        return ExitCode::FAILURE;
    }

    // Surfaces the Prometheus listener's bound address the moment it is
    // up — the only way to learn the port when --prom-addr ends in :0.
    let (prom_addr_tx, prom_addr_rx) = std::sync::mpsc::channel::<std::net::SocketAddr>();
    let prom_printer = std::thread::spawn(move || {
        while let Ok(addr) = prom_addr_rx.recv() {
            eprintln!("prometheus exposition listening on http://{addr}/metrics");
        }
    });

    let registry = figs::all();
    let run_all = wanted.iter().any(|w| w == "all");
    let selected: Vec<_> = registry
        .iter()
        .filter(|(id, _)| run_all || wanted.iter().any(|w| w == id))
        .collect();

    if !run_all {
        for w in &wanted {
            if !registry.iter().any(|(id, _)| id == w) {
                eprintln!("unknown figure id: {w}");
                usage();
                return ExitCode::FAILURE;
            }
        }
    }

    for (id, runner) in selected {
        eprintln!("running {id} ({:?} scale)...", scale);
        let result = runner(scale);
        if json {
            println!(
                "{}",
                serde_json::to_string_pretty(&result).expect("serializable")
            );
        } else {
            println!("{result}");
        }
    }

    if let Some(path) = trace_out {
        eprintln!("tracing a single-flow Falcon run ({:?} scale)...", scale);
        let trace_json = tracedrun::chrome_trace(scale);
        if let Err(e) = std::fs::write(&path, trace_json) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path} (load it at https://ui.perfetto.dev)");
    }

    if stage_latency {
        eprintln!(
            "stage-latency decomposition, Con vs Falcon ({:?} scale)...",
            scale
        );
        print!("{}", tracedrun::stage_latency_report(scale));
    }

    if run_dataplane {
        eprintln!(
            "dataplane: real-thread vanilla vs falcon, {workers} worker(s) \
             requested ({:?} scale){}{}...",
            scale,
            if wire { ", wire bytes" } else { "" },
            if split_gro { ", split-gro 5-stage" } else { "" }
        );
        let spec = telemetry.then(|| falcon_dataplane::TelemetrySpec {
            interval_ms: telemetry_interval_ms,
            jsonl_path: Some(telemetry_out.clone()),
            prom_addr: prom_addr.clone(),
            prom_addr_tx: Some(prom_addr_tx.clone()),
        });
        let cache_entries = (wire && flow_cache).then_some(flow_cache_entries);
        let cmp = dataplane::run_comparison_with(
            scale,
            workers,
            flows,
            split_gro,
            wire,
            spec,
            cache_entries,
            replicate,
        );
        if json {
            println!(
                "{}",
                serde_json::to_string_pretty(&cmp).expect("serializable")
            );
        } else {
            print!("{}", dataplane::render(&cmp));
        }
        // A wire run is its own artifact: unless the caller picked a
        // path, keep BENCH_dataplane.json for the modeled-cost run and
        // write the byte-carrying one to BENCH_wire.json.
        let out_path = dataplane_out.clone().unwrap_or_else(|| {
            if wire {
                "BENCH_wire.json".to_string()
            } else {
                "BENCH_dataplane.json".to_string()
            }
        });
        let bench_json = serde_json::to_string_pretty(&cmp).expect("serializable");
        if let Err(e) = std::fs::write(&out_path, bench_json) {
            eprintln!("cannot write {out_path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {out_path}");
        if telemetry {
            eprintln!("wrote {telemetry_out} (per-interval telemetry deltas)");
        }
        if let Some(path) = dataplane_trace {
            eprintln!("tracing a falcon dataplane run...");
            let trace_json = dataplane::chrome_trace(scale, workers, flows, split_gro);
            if let Err(e) = std::fs::write(&path, trace_json) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {path} (load it at https://ui.perfetto.dev)");
        }
    }

    if run_ingest {
        eprintln!(
            "ingest: live loopback VXLAN datagrams, vanilla vs falcon, \
             {workers} worker(s), {flows} flow(s), rx batch {rx_batch} \
             ({:?} scale)...",
            scale
        );
        // Telemetry rides the ingest falcon leg only when --dataplane
        // didn't already claim the exporter paths.
        let spec = (telemetry && !run_dataplane).then(|| falcon_dataplane::TelemetrySpec {
            interval_ms: telemetry_interval_ms,
            jsonl_path: Some(telemetry_out.clone()),
            prom_addr: prom_addr.clone(),
            prom_addr_tx: Some(prom_addr_tx.clone()),
        });
        let cmp = match ingest::run_comparison_with(scale, workers, flows, rx_batch, spec) {
            Ok(cmp) => cmp,
            Err(e) => {
                eprintln!("ingest run failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        if json {
            println!(
                "{}",
                serde_json::to_string_pretty(&cmp).expect("serializable")
            );
        } else {
            print!("{}", ingest::render(&cmp));
        }
        let bench_json = serde_json::to_string_pretty(&cmp).expect("serializable");
        if let Err(e) = std::fs::write(&ingest_out, bench_json) {
            eprintln!("cannot write {ingest_out}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {ingest_out}");
        if !cmp.vanilla.oracle_ok || !cmp.falcon.oracle_ok {
            eprintln!(
                "FAIL: differential oracle rejected the run: {:?} {:?}",
                cmp.vanilla.oracle_errors, cmp.falcon.oracle_errors
            );
            return ExitCode::FAILURE;
        }
    }

    if run_sweep {
        eprintln!(
            "dataplane sweep: 1..={flows} flow(s) x 1..={workers} worker(s), \
             both policies per point ({:?} scale){}{}...",
            scale,
            if wire { ", wire bytes" } else { "" },
            if split_gro { ", split-gro 5-stage" } else { "" }
        );
        let cache_entries = (wire && flow_cache).then_some(flow_cache_entries);
        let sweep = dataplane::run_sweep(
            scale,
            flows,
            workers,
            split_gro,
            0,
            wire,
            cache_entries,
            replicate,
        );
        if json {
            println!(
                "{}",
                serde_json::to_string_pretty(&sweep).expect("serializable")
            );
        } else {
            print!("{}", dataplane::render_sweep(&sweep));
        }
        let sweep_json = serde_json::to_string_pretty(&sweep).expect("serializable");
        if let Err(e) = std::fs::write(&sweep_out, sweep_json) {
            eprintln!("cannot write {sweep_out}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {sweep_out}");
        let violations = sweep.total_reorder_violations();
        if violations > 0 {
            eprintln!("FAIL: {violations} reorder violation(s) across the sweep grid");
            return ExitCode::FAILURE;
        }
    }

    // All senders gone → the printer drains and exits.
    drop(prom_addr_tx);
    let _ = prom_printer.join();

    ExitCode::SUCCESS
}

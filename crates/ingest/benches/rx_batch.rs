//! Receive-batch sizing: how much does amortizing the syscall buy?
//!
//! Preloads a loopback socket's kernel queue with real VXLAN frames,
//! then measures draining it with `recvmmsg` at batch sizes 1/8/32
//! and with the portable one-datagram `recv` loop. Batch 1 via
//! `recvmmsg` ≈ the portable loop (one syscall per datagram); the gap
//! to batch 32 is the per-syscall overhead the ingest rx thread avoids
//! — the userspace analogue of the NAPI poll the paper's pNIC stage
//! models.

use std::net::UdpSocket;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use falcon_ingest::{batch_rx, sock, RecvBatch};
use falcon_wire::FrameFactory;

/// Frames preloaded into the kernel queue per iteration.
const PRELOAD: usize = 256;

fn loopback_pair() -> (UdpSocket, UdpSocket) {
    let rx = UdpSocket::bind("127.0.0.1:0").expect("bind rx");
    let tx = UdpSocket::bind("127.0.0.1:0").expect("bind tx");
    tx.connect(rx.local_addr().unwrap()).expect("connect");
    (rx, tx)
}

fn preload_frames() -> Vec<Vec<u8>> {
    let factory = FrameFactory::default();
    (0..PRELOAD)
        .map(|i| {
            factory
                .udp_wire((i % 8) as u64, (i / 8) as u64, 256)
                .into_iter()
                .next()
                .unwrap()
        })
        .collect()
}

fn drain(rx: &mut dyn falcon_ingest::BatchRx, batch: &mut RecvBatch, want: usize) -> usize {
    let mut got = 0;
    let mut spins = 0u32;
    while got < want {
        match rx.recv_batch(batch) {
            Ok(n) => {
                got += n;
                spins = 0;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                // Loopback delivery is async; bounded spin.
                spins += 1;
                if spins > 1_000_000 {
                    break;
                }
                std::hint::spin_loop();
            }
            Err(e) => panic!("recv: {e}"),
        }
    }
    got
}

fn bench_rx_batch(c: &mut Criterion) {
    let frames = preload_frames();
    let bytes: u64 = frames.iter().map(|f| f.len() as u64).sum();
    let mut g = c.benchmark_group("rx_batch");
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.throughput(Throughput::Bytes(bytes));

    let mut cases: Vec<(String, bool, usize)> = vec![("recv-loop".to_string(), true, 32)];
    if sock::batched_io_available() {
        for batch in [1usize, 8, 32] {
            cases.push((format!("recvmmsg/{batch}"), false, batch));
        }
    }

    for (name, portable, batch_size) in cases {
        let (rx_sock, tx) = loopback_pair();
        // A deep queue so the preload never overflows mid-iteration.
        sock::set_rcvbuf(&rx_sock, 8 << 20);
        let mut rx = batch_rx(rx_sock, portable).expect("backend");
        let mut batch = RecvBatch::new(batch_size);
        g.bench_function(&name, |b| {
            b.iter(|| {
                sock::send_batch(&tx, &frames).expect("send");
                let got = drain(rx.as_mut(), &mut batch, frames.len());
                assert!(got > 0, "drained nothing");
                got
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_rx_batch);
criterion_main!(benches);

//! The simulated `sk_buff`: packet bytes plus kernel metadata.
//!
//! Mirrors the fields of `struct sk_buff` the paper's mechanisms read or
//! write: the current device (`skb->dev`, updated at each hop, whose
//! `ifindex` Falcon mixes into its hash), the flow hash (`skb->hash`,
//! computed once by the flow dissector), and GRO coalescing state. On
//! top of that the simulation carries bookkeeping a real kernel does not
//! need: timestamps for latency measurement, per-flow sequence numbers
//! for the in-order-delivery invariant, and a hop trace used by tests
//! and the anatomy example.

use falcon_khash::FlowKeys;
use falcon_simcore::SimTime;
use serde::{Deserialize, Serialize};

/// Globally unique packet identifier within one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PacketId(pub u64);

/// One hop of a packet's journey, recorded for diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceHop {
    /// `ifindex` of the device whose processing stage ran.
    pub ifindex: u32,
    /// CPU core the stage executed on.
    pub cpu: usize,
}

/// IP fragmentation metadata for a wire frame that carries one fragment
/// of a larger datagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FragMeta {
    /// Identifier of the original datagram (unique per flow).
    pub datagram_id: u64,
    /// Zero-based fragment index.
    pub index: u32,
    /// Total fragments in the datagram.
    pub count: u32,
}

/// A packet travelling through the simulated kernel.
#[derive(Debug, Clone)]
pub struct SkBuff {
    /// Unique id of this packet.
    pub id: PacketId,
    /// Full frame bytes, starting at the (outer) Ethernet header.
    pub data: Vec<u8>,
    /// `skb->dev->ifindex`: the device currently processing the packet.
    /// Updated at every device hop; Falcon's CPU selection hashes it.
    pub dev_ifindex: u32,
    /// `skb->hash`: flow hash computed by the dissector (0 = unset).
    pub rx_hash: u32,
    /// Dissected flow keys of the *current* (outer-most remaining) headers.
    pub flow: Option<FlowKeys>,
    /// Simulation-level flow identifier (stable across encap/decap).
    pub flow_id: u64,
    /// Per-flow sequence number, assigned at the sender, used to assert
    /// in-order delivery per (flow, device).
    pub flow_seq: u64,
    /// When the application handed the payload to the stack.
    pub sent_at: SimTime,
    /// When the frame finished arriving at the receiving NIC.
    pub nic_arrival: SimTime,
    /// Number of wire segments GRO coalesced into this buffer (>= 1).
    pub gro_segs: u32,
    /// Payload bytes GRO appended beyond `data` (coalesced segments are
    /// accounted, not byte-copied, in the simulation).
    pub gro_extra_bytes: usize,
    /// Set when softirq splitting deferred `napi_gro_receive`: the
    /// packet sits in a backlog still needing its GRO half-stage.
    pub gro_pending: bool,
    /// Application payload bytes carried (after reassembly/coalescing
    /// this is the original message size).
    pub payload_len: usize,
    /// Fragmentation metadata, when this frame is one IP fragment.
    pub frag: Option<FragMeta>,
    /// Request/response correlation id assigned by the sending
    /// application (echoed in responses for RTT measurement).
    pub msg_id: u64,
    /// TCP segment number (transport sequence). Distinct from
    /// `flow_seq`: a retransmission reuses its `tcp_seg` but gets a
    /// fresh `flow_seq`, because the pipeline-ordering invariant is
    /// about processing order of wire packets, not byte-stream offsets.
    pub tcp_seg: u64,
    /// TCP PSH flag: set on the last segment of an application message.
    /// GRO flushes at PSH, so coalescing never spans message
    /// boundaries.
    pub psh: bool,
    /// Core that executed the previous pipeline stage, if any — drives
    /// the cache-locality penalty model.
    pub last_cpu: Option<usize>,
    /// When this buffer entered its current queue — lets tracing split
    /// per-stage latency into queueing vs service time.
    pub queued_at: SimTime,
    /// Devices and cores this packet has visited.
    pub trace: Vec<TraceHop>,
}

impl SkBuff {
    /// Wraps raw frame bytes in a fresh buffer with empty metadata.
    pub fn new(id: PacketId, data: Vec<u8>) -> Self {
        SkBuff {
            id,
            data,
            dev_ifindex: 0,
            rx_hash: 0,
            flow: None,
            flow_id: 0,
            flow_seq: 0,
            sent_at: SimTime::ZERO,
            nic_arrival: SimTime::ZERO,
            gro_segs: 1,
            gro_extra_bytes: 0,
            gro_pending: false,
            payload_len: 0,
            frag: None,
            msg_id: 0,
            tcp_seg: 0,
            psh: false,
            last_cpu: None,
            queued_at: SimTime::ZERO,
            trace: Vec::new(),
        }
    }

    /// Effective frame length including GRO-coalesced bytes.
    pub fn total_len(&self) -> usize {
        self.data.len() + self.gro_extra_bytes
    }

    /// Returns the frame length in bytes (L2 header included).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns the time the frame occupies on a wire of the given speed,
    /// including Ethernet framing overhead (preamble, FCS, inter-frame
    /// gap: 24 bytes).
    pub fn wire_bytes(&self) -> usize {
        self.data.len() + 24
    }

    /// Records a processing hop.
    pub fn record_hop(&mut self, ifindex: u32, cpu: usize) {
        self.trace.push(TraceHop { ifindex, cpu });
        self.last_cpu = Some(cpu);
    }

    /// Returns the set of distinct CPUs that processed this packet.
    pub fn distinct_cpus(&self) -> Vec<usize> {
        let mut cpus: Vec<usize> = self.trace.iter().map(|h| h.cpu).collect();
        cpus.sort_unstable();
        cpus.dedup();
        cpus
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_buffer_defaults() {
        let skb = SkBuff::new(PacketId(1), vec![0u8; 64]);
        assert_eq!(skb.len(), 64);
        assert!(!skb.is_empty());
        assert_eq!(skb.gro_segs, 1);
        assert_eq!(skb.rx_hash, 0);
        assert!(skb.flow.is_none());
        assert!(skb.trace.is_empty());
        assert!(skb.last_cpu.is_none());
        assert_eq!(skb.total_len(), 64);
        assert!(!skb.gro_pending);
        assert!(skb.frag.is_none());
    }

    #[test]
    fn total_len_includes_gro_extra() {
        let mut skb = SkBuff::new(PacketId(3), vec![0u8; 100]);
        skb.gro_extra_bytes = 2896;
        skb.gro_segs = 3;
        assert_eq!(skb.total_len(), 2996);
    }

    #[test]
    fn wire_bytes_includes_framing() {
        let skb = SkBuff::new(PacketId(1), vec![0u8; 60]);
        assert_eq!(skb.wire_bytes(), 84);
    }

    #[test]
    fn hop_recording() {
        let mut skb = SkBuff::new(PacketId(2), vec![]);
        skb.record_hop(2, 0);
        skb.record_hop(3, 1);
        skb.record_hop(4, 1);
        assert_eq!(skb.last_cpu, Some(1));
        assert_eq!(skb.distinct_cpus(), vec![0, 1]);
        assert_eq!(skb.trace.len(), 3);
        assert_eq!(skb.trace[0], TraceHop { ifindex: 2, cpu: 0 });
    }
}

//! End-to-end counters and measurement outputs of one simulation run.

use std::collections::HashMap;

use falcon_metrics::Histogram;
use serde::{Deserialize, Serialize, Value};

pub use falcon_trace::DropReason;

/// Unified per-reason packet-drop counters.
///
/// Every bounded queue in the receive path reports its rejections here
/// keyed by [`DropReason`], replacing the old quartet of ad-hoc
/// fields. The same reasons flow into the trace stream as
/// `QueueDrop` events, so counter totals and trace totals can be
/// cross-checked.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DropCounters {
    counts: [u64; DropReason::ALL.len()],
}

impl DropCounters {
    /// Records one drop.
    pub fn bump(&mut self, reason: DropReason) {
        self.counts[reason.index()] += 1;
    }

    /// Drops recorded for one reason.
    pub fn get(&self, reason: DropReason) -> u64 {
        self.counts[reason.index()]
    }

    /// Drops across all reasons.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// `(reason, count)` in [`DropReason::ALL`] order.
    pub fn iter(&self) -> impl Iterator<Item = (DropReason, u64)> + '_ {
        DropReason::ALL.into_iter().map(|r| (r, self.get(r)))
    }
}

impl Serialize for DropCounters {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(r, n)| (r.label().to_string(), Value::Int(n as i128)))
                .collect(),
        )
    }
}

impl Deserialize for DropCounters {}

/// Per-flow delivery statistics.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FlowStats {
    /// Application messages (datagrams / stream messages) sent.
    pub sent_msgs: u64,
    /// Payload bytes sent.
    pub sent_bytes: u64,
    /// Messages delivered to the server application.
    pub delivered_msgs: u64,
    /// Payload bytes delivered.
    pub delivered_bytes: u64,
    /// Responses (or acks, for TCP) seen back at the client.
    pub responses: u64,
}

/// Aggregated counters for one simulation run.
#[derive(Debug, Default, Clone, Serialize)]
pub struct SimCounters {
    /// Per-flow statistics.
    pub flows: HashMap<u64, FlowStats>,
    /// Wire frames the client put on the link.
    pub frames_sent: u64,
    /// Packet drops, keyed by [`DropReason`].
    pub drops: DropCounters,
    /// One-way latency: application send → server user-space delivery.
    pub latency: Histogram,
    /// Receive-path latency: NIC arrival → server user-space delivery
    /// (the kernel data-path component, excluding sender-side queueing).
    pub rx_latency: Histogram,
    /// Round-trip latency for request/response workloads.
    pub rtt: Histogram,
    /// TCP acks the server transmitted.
    pub acks_sent: u64,
    /// TCP segments retransmitted by the client transport.
    pub retransmits: u64,
    /// Falcon/steering stage-transition decisions that moved a packet
    /// to a different CPU.
    pub steered_remote: u64,
    /// Stage-transition decisions that stayed local.
    pub steered_local: u64,
    /// Packets that reached the final stage but matched no socket.
    pub lookup_failures: u64,
}

impl SimCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        SimCounters::default()
    }

    /// Mutable access to a flow's stats, creating on first touch.
    pub fn flow_mut(&mut self, flow: u64) -> &mut FlowStats {
        self.flows.entry(flow).or_default()
    }

    /// Total messages delivered across flows.
    pub fn total_delivered(&self) -> u64 {
        self.flows.values().map(|f| f.delivered_msgs).sum()
    }

    /// Total payload bytes delivered across flows.
    pub fn total_delivered_bytes(&self) -> u64 {
        self.flows.values().map(|f| f.delivered_bytes).sum()
    }

    /// Total messages sent across flows.
    pub fn total_sent(&self) -> u64 {
        self.flows.values().map(|f| f.sent_msgs).sum()
    }

    /// Total drops across all reasons.
    pub fn total_drops(&self) -> u64 {
        self.drops.total()
    }

    /// Delivered / sent, in 0–1 (1.0 when nothing was sent).
    pub fn delivery_ratio(&self) -> f64 {
        let sent = self.total_sent();
        if sent == 0 {
            1.0
        } else {
            self.total_delivered() as f64 / sent as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_flow_accumulation() {
        let mut c = SimCounters::new();
        c.flow_mut(1).sent_msgs += 10;
        c.flow_mut(1).delivered_msgs += 8;
        c.flow_mut(2).sent_msgs += 5;
        c.flow_mut(2).delivered_msgs += 5;
        assert_eq!(c.total_sent(), 15);
        assert_eq!(c.total_delivered(), 13);
        assert!((c.delivery_ratio() - 13.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn empty_ratio_is_one() {
        assert_eq!(SimCounters::new().delivery_ratio(), 1.0);
    }

    #[test]
    fn drop_totals() {
        let mut c = SimCounters::new();
        for _ in 0..3 {
            c.drops.bump(DropReason::Ring);
        }
        for _ in 0..4 {
            c.drops.bump(DropReason::Backlog);
        }
        for _ in 0..5 {
            c.drops.bump(DropReason::GroCell);
        }
        assert_eq!(c.total_drops(), 12);
        assert_eq!(c.drops.get(DropReason::Ring), 3);
        assert_eq!(c.drops.get(DropReason::Reassembly), 0);
    }

    #[test]
    fn drop_counters_serialize_per_reason() {
        let mut d = DropCounters::default();
        d.bump(DropReason::Backlog);
        d.bump(DropReason::Backlog);
        let json = serde_json::to_string(&d.to_value()).expect("serializes");
        assert!(json.contains("\"backlog\":2"), "{json}");
        assert!(json.contains("\"ring\":0"), "{json}");
        let pairs: Vec<_> = d.iter().collect();
        assert_eq!(pairs.len(), DropReason::ALL.len());
        assert_eq!(pairs[1], (DropReason::Backlog, 2));
    }
}

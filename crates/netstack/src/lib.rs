//! The simulated Linux kernel receive path.
//!
//! This crate wires the substrates (`falcon-simcore`, `falcon-cpusim`,
//! `falcon-netdev`, `falcon-packet`, `falcon-khash`, `falcon-metrics`)
//! into a faithful event-driven model of the data path the paper
//! analyzes (Figure 3):
//!
//! ```text
//! wire → NIC(RSS) → hardirq → NAPI poll(mlx5e_napi_poll: skb_alloc +
//! napi_gro_receive) → netif_receive_skb → RPS(get_rps_cpu) →
//! per-CPU backlog → process_backlog → ip_rcv → udp_rcv → vxlan_rcv
//! (decap) → gro_cell → gro_cell_poll → br_handle_frame → veth_xmit →
//! netif_rx → backlog → process_backlog → inner ip/udp/tcp → socket →
//! copy_to_user → application
//! ```
//!
//! Each arrow that crosses a queue is a softirq boundary; the vanilla
//! kernel keeps all of them on one CPU per flow, and the
//! [`Steering`] hook at each boundary is where
//! Falcon (implemented in the `falcon` crate) plugs in.
//!
//! Key types:
//! * [`Sim`] — a client machine, a wire, and a fully modelled
//!   server kernel, plus the [`App`] driving traffic.
//! * [`StackConfig`] / [`SimConfig`]
//!   — all the knobs (kernel version, NIC, RPS mask, GRO, splitting).
//! * [`CostModel`] — calibrated per-function CPU costs.

pub mod config;
pub mod cost;
pub mod counters;
pub mod machine;
pub mod ordering;
pub mod rxpath;
pub mod sim;
pub mod socket;
pub mod steering;
pub mod transport;

pub use config::{NetMode, Pacing, SimConfig, StackConfig};
pub use cost::{CostModel, KernelVersion};
pub use counters::{DropCounters, DropReason, SimCounters};
pub use sim::{App, MsgMeta, Sim, SimApi, SimRunner};
pub use socket::SockId;
pub use steering::{rps_cpu, StayLocal, SteerCtx, Steering};
pub use transport::FlowId;

//! Small-sample summary statistics for multi-run experiments.
//!
//! The paper reports results over multiple runs and notes when a
//! technique's benefit is "consistent across runs" (Figures 14, 16).
//! [`Summary`] computes mean, standard deviation and a coefficient of
//! variation so the harness can report the same.

use serde::{Deserialize, Serialize};

/// Summary statistics of a sample of `f64` observations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator; 0 when n < 2).
    pub std_dev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl Summary {
    /// Summarizes a slice of observations. Returns a zeroed summary for
    /// an empty slice.
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return Summary {
                n: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = if n < 2 {
            0.0
        } else {
            values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1) as f64
        };
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Summary {
            n,
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        }
    }

    /// Coefficient of variation (std_dev / mean); 0 when the mean is 0.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev / self.mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample std dev of this classic dataset is ~2.138.
        assert!((s.std_dev - 2.13809).abs() < 1e-4);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn empty_and_singleton() {
        let e = Summary::of(&[]);
        assert_eq!(e.n, 0);
        assert_eq!(e.mean, 0.0);
        let s = Summary::of(&[42.0]);
        assert_eq!(s.n, 1);
        assert_eq!(s.mean, 42.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.min, 42.0);
        assert_eq!(s.max, 42.0);
    }

    #[test]
    fn cv() {
        let s = Summary::of(&[10.0, 10.0, 10.0]);
        assert_eq!(s.cv(), 0.0);
        let z = Summary::of(&[0.0, 0.0]);
        assert_eq!(z.cv(), 0.0);
        let v = Summary::of(&[1.0, 3.0]);
        assert!(v.cv() > 0.0);
    }
}

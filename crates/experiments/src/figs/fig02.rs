//! Figure 2: the motivation — overlay vs native host performance.
//!
//! Four panels: (a) single-flow throughput at 64 KB, (b) single-flow
//! packet rate across packet sizes, (c) multi-flow packet rate at two
//! flow-to-core ratios, (d) round-trip latency. Expected shape: the
//! overlay is near-native on 10G but far behind on 100G; the gap is
//! largest for small packets; multi-flow loses more than single-flow;
//! latency is a multiple of the host's.

use falcon_netdev::LinkSpeed;
use falcon_netstack::{KernelVersion, Pacing};
use falcon_workloads::{UdpPingPong, UdpStressApp, UdpStressConfig};

use crate::measure::{run_measured, Scale};
use crate::ratesearch::max_sustainable;
use crate::scenario::{Mode, Scenario, MF_APP_CORES, SF_APP_CORE};
use crate::table::{kpps, us, FigResult, Table};

/// Max sustainable single-flow rate (datagrams/s), paced across four
/// sender threads as the ramp protocol requires.
pub(crate) fn single_flow_plateau(
    mode: Mode,
    link: LinkSpeed,
    payload: usize,
    scale: Scale,
) -> f64 {
    let build = move |rate: f64| {
        let scenario = Scenario::single_flow(mode.clone(), KernelVersion::K419, link);
        let mut cfg = UdpStressConfig::single_flow(payload);
        cfg.senders_per_flow = 4;
        cfg.pacing = Pacing::FixedPps(rate / 4.0);
        cfg.app_cores = vec![SF_APP_CORE];
        scenario.build(Box::new(UdpStressApp::new(cfg)))
    };
    let start = if payload >= 16_384 { 4_000.0 } else { 60_000.0 };
    max_sustainable(&build, start, scale).delivered_pps
}

fn throughput_gbps(mode: Mode, link: LinkSpeed, payload: usize, scale: Scale) -> f64 {
    single_flow_plateau(mode, link, payload, scale) * payload as f64 * 8.0 / 1e9
}

fn multi_flow_plateau(mode: Mode, n_flows: usize, scale: Scale) -> f64 {
    let build = move |rate: f64| {
        let scenario =
            Scenario::multi_flow(mode.clone(), KernelVersion::K419, LinkSpeed::HundredGbit);
        let mut cfg = UdpStressConfig::multi_flow(n_flows, 4096);
        cfg.senders_per_flow = 1;
        cfg.pacing = Pacing::FixedPps(rate / n_flows as f64);
        cfg.app_cores = MF_APP_CORES.to_vec();
        scenario.build(Box::new(UdpStressApp::new(cfg)))
    };
    max_sustainable(&build, 50_000.0, scale).delivered_pps
}

fn ping_latency(mode: Mode, scale: Scale) -> (u64, u64) {
    let scenario = Scenario::single_flow(mode, KernelVersion::K419, LinkSpeed::HundredGbit);
    let mut app = UdpPingPong::new(64);
    app.app_cores = vec![SF_APP_CORE];
    let mut runner = scenario.build(Box::new(app));
    let stats = run_measured(&mut runner, scale);
    (stats.rtt.mean() as u64, stats.rtt.percentile(99.0))
}

/// Runs all four panels.
pub fn run(scale: Scale) -> FigResult {
    let mut fig = FigResult::new(
        "fig2",
        "Container overlay vs native host network (motivation)",
    );

    // (a) Single-flow 64 KB UDP throughput.
    let mut a = Table::new(&["link", "Host Gbps", "Con Gbps", "Con/Host"]);
    for link in [LinkSpeed::TenGbit, LinkSpeed::HundredGbit] {
        let host = throughput_gbps(Mode::Host, link, 65_507, scale);
        let con = throughput_gbps(Mode::Vanilla, link, 65_507, scale);
        a.row(vec![
            link.label().into(),
            format!("{host:.2}"),
            format!("{con:.2}"),
            format!("{:.2}", con / host),
        ]);
    }
    fig.panel("(a) single-flow UDP 64KB throughput", a);

    // (b) Packet rate vs packet size.
    let sizes: &[usize] = match scale {
        Scale::Quick => &[16, 1024, 65_507],
        Scale::Full => &[16, 256, 1024, 4096, 16_384, 65_507],
    };
    let mut b = Table::new(&["size", "link", "Host Kpps", "Con Kpps", "Con/Host"]);
    for link in [LinkSpeed::TenGbit, LinkSpeed::HundredGbit] {
        for &size in sizes {
            let host = single_flow_plateau(Mode::Host, link, size, scale);
            let con = single_flow_plateau(Mode::Vanilla, link, size, scale);
            b.row(vec![
                size.to_string(),
                link.label().into(),
                kpps(host),
                kpps(con),
                format!("{:.2}", con / host),
            ]);
        }
    }
    fig.panel("(b) single-flow UDP packet rate vs size", b);

    // (c) Multi-flow packet rate: 1:1 (6 flows on 6 rx cores) and 4:1.
    let mut c = Table::new(&["flows:cores", "Host Kpps", "Con Kpps", "Con/Host"]);
    for (label, flows) in [("1:1", 6usize), ("4:1", 24)] {
        let host = multi_flow_plateau(Mode::Host, flows, scale);
        let con = multi_flow_plateau(Mode::Vanilla, flows, scale);
        c.row(vec![
            label.into(),
            kpps(host),
            kpps(con),
            format!("{:.2}", con / host),
        ]);
    }
    fig.panel("(c) multi-flow UDP 4KB packet rate", c);

    // (d) Latency.
    let mut d = Table::new(&["mode", "RTT mean us", "RTT p99 us"]);
    let (host_mean, host_p99) = ping_latency(Mode::Host, scale);
    let (con_mean, con_p99) = ping_latency(Mode::Vanilla, scale);
    d.row(vec!["Host".into(), us(host_mean), us(host_p99)]);
    d.row(vec!["Con".into(), us(con_mean), us(con_p99)]);
    fig.panel("(d) UDP ping-pong latency", d);
    fig.note(format!(
        "overlay latency hike: {:.1}x mean",
        con_mean as f64 / host_mean.max(1) as f64
    ));

    fig
}

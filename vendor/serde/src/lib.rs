//! Offline stand-in for the `serde` crate.
//!
//! [`Serialize`] converts a value into an in-memory [`Value`] tree;
//! the companion `serde_json` stand-in renders that tree as JSON.
//! [`Deserialize`] is a marker trait only — nothing in this workspace
//! deserializes into typed structs at runtime (tests parse JSON back
//! into [`Value`]).

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A dynamically-typed serialized value.
///
/// Object keys keep insertion order so emitted JSON is stable and
/// matches field declaration order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// All integers, signed or not; `i128` covers every integer type
    /// used in the workspace (including `u64` counters and `u128`
    /// nanosecond sums).
    Int(i128),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Serialization into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Marker trait; derived for config types for API parity with the real
/// crate, but never used at runtime here.
pub trait Deserialize {}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
    )*};
}

impl_ser_int!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, usize);

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        // i128 covers every realistic counter value; saturate on the
        // (unreachable) overflow rather than panic.
        Value::Int(i128::try_from(*self).unwrap_or(i128::MAX))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

/// Map keys must render as JSON object keys (strings).
pub trait SerializeKey {
    fn to_key(&self) -> String;
}

macro_rules! impl_ser_key {
    ($($t:ty),*) => {$(
        impl SerializeKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
        }
    )*};
}

impl_ser_key!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SerializeKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
}

impl SerializeKey for &str {
    fn to_key(&self) -> String {
        (*self).to_string()
    }
}

impl<K, V> Serialize for std::collections::HashMap<K, V>
where
    K: SerializeKey + Ord + std::hash::Hash,
    V: Serialize,
{
    fn to_value(&self) -> Value {
        let mut keys: Vec<&K> = self.keys().collect();
        keys.sort();
        Value::Object(
            keys.into_iter()
                .map(|k| (k.to_key(), self[k].to_value()))
                .collect(),
        )
    }
}

impl<K, V> Serialize for std::collections::BTreeMap<K, V>
where
    K: SerializeKey,
    V: Serialize,
{
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

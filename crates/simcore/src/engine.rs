//! The discrete-event engine.
//!
//! [`Engine<W>`] owns a priority queue of timestamped events. Each event
//! is a boxed `FnOnce(&mut W, &mut Engine<W>)` — it mutates the world and
//! may schedule further events. Ties at the same instant are broken by
//! scheduling order (a monotonically increasing sequence number), which
//! makes runs fully deterministic.
//!
//! Cancellation uses the *stale-token* pattern: [`Engine::schedule_after`]
//! returns an [`EventToken`]; calling [`Engine::cancel`] marks the token so
//! the event body is dropped unexecuted when it reaches the head of the
//! queue. This avoids a heap-rebuild on every cancel — cancelled events
//! are lazily discarded.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use crate::time::{SimDuration, SimTime};

/// Identifier of a scheduled event, used for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventToken(u64);

type EventFn<W> = Box<dyn FnOnce(&mut W, &mut Engine<W>)>;

struct Scheduled<W> {
    at: SimTime,
    seq: u64,
    run: EventFn<W>,
}

impl<W> PartialEq for Scheduled<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<W> Eq for Scheduled<W> {}

impl<W> PartialOrd for Scheduled<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<W> Ord for Scheduled<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq)
        // pops first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A deterministic discrete-event simulation loop over a world type `W`.
///
/// See the [crate documentation](crate) for an end-to-end example.
pub struct Engine<W> {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Scheduled<W>>,
    cancelled: HashSet<u64>,
    executed: u64,
}

impl<W> Default for Engine<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Engine<W> {
    /// Creates an empty engine at time zero.
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            cancelled: HashSet::new(),
            executed: 0,
        }
    }

    /// Returns the current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Returns the number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Returns the number of events currently queued (including lazily
    /// cancelled ones not yet discarded).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `event` to run at absolute time `at`.
    ///
    /// Events scheduled in the past run "now": they are clamped to the
    /// current time and ordered after already-queued events at that time.
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        event: impl FnOnce(&mut W, &mut Engine<W>) + 'static,
    ) -> EventToken {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled {
            at,
            seq,
            run: Box::new(event),
        });
        EventToken(seq)
    }

    /// Schedules `event` to run `delay` after the current time.
    pub fn schedule_after(
        &mut self,
        delay: SimDuration,
        event: impl FnOnce(&mut W, &mut Engine<W>) + 'static,
    ) -> EventToken {
        self.schedule_at(self.now + delay, event)
    }

    /// Schedules `event` to run at the current time, after all events
    /// already queued for this instant.
    pub fn schedule_now(
        &mut self,
        event: impl FnOnce(&mut W, &mut Engine<W>) + 'static,
    ) -> EventToken {
        self.schedule_at(self.now, event)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Cancelling an event that already ran (or was already cancelled) is
    /// a no-op.
    pub fn cancel(&mut self, token: EventToken) {
        self.cancelled.insert(token.0);
    }

    /// Pops and runs a single event. Returns `false` when the queue is
    /// empty.
    pub fn step(&mut self, world: &mut W) -> bool {
        loop {
            let Some(ev) = self.queue.pop() else {
                return false;
            };
            if self.cancelled.remove(&ev.seq) {
                continue;
            }
            debug_assert!(ev.at >= self.now, "event queue time went backwards");
            self.now = ev.at;
            self.executed += 1;
            (ev.run)(world, self);
            return true;
        }
    }

    /// Runs until the queue is empty.
    pub fn run_to_completion(&mut self, world: &mut W) {
        while self.step(world) {}
    }

    /// Runs events up to and including time `deadline`, then stops.
    ///
    /// After this returns, `now()` equals `deadline` (unless the queue
    /// drained earlier, in which case it is the time of the last event).
    /// Events scheduled exactly at `deadline` do run.
    pub fn run_until(&mut self, world: &mut W, deadline: SimTime) {
        loop {
            // Peek (skipping stale cancels) to see whether the next event
            // falls within the deadline.
            let next_at = loop {
                match self.queue.peek() {
                    None => break None,
                    Some(ev) if self.cancelled.contains(&ev.seq) => {
                        let ev = self.queue.pop().expect("peeked event vanished");
                        self.cancelled.remove(&ev.seq);
                    }
                    Some(ev) => break Some(ev.at),
                }
            };
            match next_at {
                Some(at) if at <= deadline => {
                    self.step(world);
                }
                _ => break,
            }
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Runs until `stop` returns `true` (checked after each event) or the
    /// queue drains.
    pub fn run_while(&mut self, world: &mut W, mut keep_going: impl FnMut(&W) -> bool) {
        while keep_going(world) && self.step(world) {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Log {
        entries: Vec<(u64, u32)>,
    }

    #[test]
    fn events_run_in_time_order() {
        let mut eng: Engine<Log> = Engine::new();
        let mut log = Log::default();
        eng.schedule_at(SimTime::from_nanos(30), |w: &mut Log, e| {
            w.entries.push((e.now().as_nanos(), 3));
        });
        eng.schedule_at(SimTime::from_nanos(10), |w: &mut Log, e| {
            w.entries.push((e.now().as_nanos(), 1));
        });
        eng.schedule_at(SimTime::from_nanos(20), |w: &mut Log, e| {
            w.entries.push((e.now().as_nanos(), 2));
        });
        eng.run_to_completion(&mut log);
        assert_eq!(log.entries, vec![(10, 1), (20, 2), (30, 3)]);
    }

    #[test]
    fn ties_break_in_scheduling_order() {
        let mut eng: Engine<Log> = Engine::new();
        let mut log = Log::default();
        for i in 0..5u32 {
            eng.schedule_at(SimTime::from_nanos(100), move |w: &mut Log, _| {
                w.entries.push((100, i));
            });
        }
        eng.run_to_completion(&mut log);
        let order: Vec<u32> = log.entries.iter().map(|&(_, i)| i).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn events_can_schedule_events() {
        let mut eng: Engine<u32> = Engine::new();
        let mut count = 0u32;
        fn tick(w: &mut u32, e: &mut Engine<u32>) {
            *w += 1;
            if *w < 10 {
                e.schedule_after(SimDuration::from_nanos(7), tick);
            }
        }
        eng.schedule_now(tick);
        eng.run_to_completion(&mut count);
        assert_eq!(count, 10);
        assert_eq!(eng.now().as_nanos(), 9 * 7);
    }

    #[test]
    fn cancel_prevents_execution() {
        let mut eng: Engine<u32> = Engine::new();
        let mut hits = 0u32;
        let t = eng.schedule_after(SimDuration::from_nanos(5), |w: &mut u32, _| *w += 1);
        eng.schedule_after(SimDuration::from_nanos(6), |w: &mut u32, _| *w += 10);
        eng.cancel(t);
        eng.run_to_completion(&mut hits);
        assert_eq!(hits, 10);
        // Double-cancel is harmless.
        eng.cancel(t);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut eng: Engine<Vec<u64>> = Engine::new();
        let mut seen = Vec::new();
        for t in [5u64, 10, 15, 20] {
            eng.schedule_at(SimTime::from_nanos(t), move |w: &mut Vec<u64>, _| w.push(t));
        }
        eng.run_until(&mut seen, SimTime::from_nanos(10));
        assert_eq!(seen, vec![5, 10]);
        assert_eq!(eng.now().as_nanos(), 10);
        eng.run_until(&mut seen, SimTime::from_nanos(100));
        assert_eq!(seen, vec![5, 10, 15, 20]);
        assert_eq!(eng.now().as_nanos(), 100);
    }

    #[test]
    fn run_until_skips_cancelled_head() {
        let mut eng: Engine<u32> = Engine::new();
        let mut w = 0u32;
        let t = eng.schedule_at(SimTime::from_nanos(5), |w: &mut u32, _| *w += 1);
        eng.cancel(t);
        eng.run_until(&mut w, SimTime::from_nanos(50));
        assert_eq!(w, 0);
        assert_eq!(eng.queue_len(), 0);
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut eng: Engine<Vec<u64>> = Engine::new();
        let mut seen = Vec::new();
        eng.schedule_at(SimTime::from_nanos(10), |w: &mut Vec<u64>, e| {
            // Scheduling "at time 3" from time 10 runs at time 10.
            e.schedule_at(SimTime::from_nanos(3), |w: &mut Vec<u64>, e| {
                w.push(e.now().as_nanos());
            });
            w.push(e.now().as_nanos());
        });
        eng.run_to_completion(&mut seen);
        assert_eq!(seen, vec![10, 10]);
    }

    #[test]
    fn run_while_stops_on_predicate() {
        let mut eng: Engine<u32> = Engine::new();
        let mut count = 0u32;
        for i in 0..100u64 {
            eng.schedule_at(SimTime::from_nanos(i), |w: &mut u32, _| *w += 1);
        }
        eng.run_while(&mut count, |w| *w < 10);
        assert_eq!(count, 10);
    }

    #[test]
    fn executed_counter() {
        let mut eng: Engine<u32> = Engine::new();
        let mut w = 0u32;
        for i in 0..4u64 {
            eng.schedule_at(SimTime::from_nanos(i), |w: &mut u32, _| *w += 1);
        }
        eng.run_to_completion(&mut w);
        assert_eq!(eng.events_executed(), 4);
    }
}

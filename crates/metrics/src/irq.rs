//! Interrupt counters, mirroring `/proc/interrupts` and `/proc/softirqs`.
//!
//! Figure 4 of the paper compares hardware interrupt and softirq rates
//! between the native and overlay networks: the overlay fires ~3.6× the
//! `NET_RX` softirqs and far more `RES` rescheduling IPIs. These
//! counters make that measurable in the simulation.

use serde::{Deserialize, Serialize};

/// Kinds of interrupts the simulation counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IrqKind {
    /// NIC hardware interrupt.
    HardIrq,
    /// `NET_RX` softirq (packet reception).
    NetRx,
    /// `NET_TX` softirq (packet transmission).
    NetTx,
    /// Timer interrupt.
    Timer,
    /// Rescheduling inter-processor interrupt (`RES` in /proc/interrupts).
    ResIpi,
    /// IPI raised to signal a remote backlog (`enqueue_to_backlog` on
    /// another CPU, as RPS and Falcon do).
    BacklogIpi,
}

impl IrqKind {
    /// All kinds, in display order.
    pub const ALL: [IrqKind; 6] = [
        IrqKind::HardIrq,
        IrqKind::NetRx,
        IrqKind::NetTx,
        IrqKind::Timer,
        IrqKind::ResIpi,
        IrqKind::BacklogIpi,
    ];

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            IrqKind::HardIrq => "HW",
            IrqKind::NetRx => "NET_RX",
            IrqKind::NetTx => "NET_TX",
            IrqKind::Timer => "TIMER",
            IrqKind::ResIpi => "RES",
            IrqKind::BacklogIpi => "CAL",
        }
    }

    fn index(self) -> usize {
        match self {
            IrqKind::HardIrq => 0,
            IrqKind::NetRx => 1,
            IrqKind::NetTx => 2,
            IrqKind::Timer => 3,
            IrqKind::ResIpi => 4,
            IrqKind::BacklogIpi => 5,
        }
    }
}

/// Per-core interrupt counters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IrqStats {
    /// `counts[core][kind]`.
    counts: Vec<[u64; 6]>,
}

impl IrqStats {
    /// Creates counters for `n_cores` cores.
    pub fn new(n_cores: usize) -> Self {
        IrqStats {
            counts: vec![[0; 6]; n_cores],
        }
    }

    /// Counts one interrupt of `kind` on `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn count(&mut self, core: usize, kind: IrqKind) {
        self.counts[core][kind.index()] += 1;
    }

    /// Returns the count of `kind` on one core.
    pub fn on_core(&self, core: usize, kind: IrqKind) -> u64 {
        self.counts[core][kind.index()]
    }

    /// Returns the machine-wide total for `kind`.
    pub fn total(&self, kind: IrqKind) -> u64 {
        self.counts.iter().map(|c| c[kind.index()]).sum()
    }

    /// Number of cores tracked.
    pub fn n_cores(&self) -> usize {
        self.counts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_and_totals() {
        let mut stats = IrqStats::new(4);
        stats.count(0, IrqKind::HardIrq);
        stats.count(0, IrqKind::NetRx);
        stats.count(1, IrqKind::NetRx);
        stats.count(1, IrqKind::NetRx);
        stats.count(2, IrqKind::ResIpi);
        assert_eq!(stats.on_core(0, IrqKind::NetRx), 1);
        assert_eq!(stats.on_core(1, IrqKind::NetRx), 2);
        assert_eq!(stats.total(IrqKind::NetRx), 3);
        assert_eq!(stats.total(IrqKind::HardIrq), 1);
        assert_eq!(stats.total(IrqKind::ResIpi), 1);
        assert_eq!(stats.total(IrqKind::Timer), 0);
        assert_eq!(stats.n_cores(), 4);
    }

    #[test]
    fn labels_are_proc_interrupts_style() {
        assert_eq!(IrqKind::NetRx.label(), "NET_RX");
        assert_eq!(IrqKind::ResIpi.label(), "RES");
        assert_eq!(IrqKind::ALL.len(), 6);
    }

    #[test]
    fn indices_are_distinct() {
        let mut seen = [false; 6];
        for kind in IrqKind::ALL {
            let i = kind.index();
            assert!(!seen[i], "duplicate index {i}");
            seen[i] = true;
        }
    }
}

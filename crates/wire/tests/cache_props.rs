//! Properties of the flow-verdict cache.
//!
//! Four invariants the differential conformance suite leans on:
//!
//! 1. **Bounded.** No sequence of operations pushes the occupied count
//!    past the slot count.
//! 2. **Insert self-preservation.** The eviction victim is never the
//!    entry inserted immediately before: after any insert, both it and
//!    the preceding insert are resident.
//! 3. **Epoch exactness.** After the epoch moves, every entry proven
//!    under an older epoch reports stale (or was evicted) — never
//!    fresh — while entries proven under the current epoch are fresh
//!    whenever resident, never stale.
//! 4. **Model agreement.** Against a plain `HashMap` oracle, every
//!    fresh hit returns exactly the verdict the oracle holds, and a
//!    stale report only happens when the oracle's entry predates the
//!    lookup epoch. (Misses are always legal: the real cache is
//!    bounded, the oracle is not.)

use std::collections::HashMap;

use falcon_wire::{FlowCache, Lookup, Verdict};
use proptest::prelude::*;

fn verdict(tag: u32, epoch: u64) -> Verdict {
    Verdict {
        inner_start: 50,
        inner_end: 50 + tag,
        bridge_port: (tag % 0x7FFF) as u16,
        fdb_epoch: epoch,
    }
}

/// One scripted cache operation.
#[derive(Debug, Clone)]
enum Op {
    Insert(u64),
    Lookup(u64),
    BumpEpoch,
}

/// Draws an op from one integer: 4/9 insert, 4/9 lookup, 1/9 bump.
fn op_strategy(key_space: u64) -> impl Strategy<Value = Op> {
    (0..key_space * 9).prop_map(move |x| match x % 9 {
        0..=3 => Op::Insert(x / 9),
        4..=7 => Op::Lookup(x / 9),
        _ => Op::BumpEpoch,
    })
}

proptest! {
    /// Invariant 1: occupancy never exceeds capacity, under any mix of
    /// inserts, lookups, and epoch bumps, across capacities.
    #[test]
    fn occupancy_never_exceeds_capacity(
        cap in 1usize..64,
        ops in proptest::collection::vec(op_strategy(48), 1..400),
    ) {
        let mut cache = FlowCache::new(cap);
        let mut epoch = 0u64;
        for op in ops {
            match op {
                Op::Insert(k) => cache.insert(k, verdict(k as u32, epoch)),
                Op::Lookup(k) => { cache.lookup(k, epoch); }
                Op::BumpEpoch => epoch += 1,
            }
            prop_assert!(cache.len() <= cache.capacity());
        }
    }

    /// Invariant 2: an insert never evicts itself or the insert
    /// immediately before it, even under heavy collision pressure
    /// (key space much larger than an 8-slot table).
    #[test]
    fn eviction_spares_the_last_two_inserts(
        keys in proptest::collection::vec(any::<u64>(), 2..200),
    ) {
        let mut cache = FlowCache::new(8);
        let mut prev: Option<u64> = None;
        for k in keys {
            cache.insert(k, verdict(1, 0));
            prop_assert!(
                matches!(cache.lookup(k, 0), Lookup::Fresh(_)),
                "the just-inserted key {k} must be resident"
            );
            if let Some(p) = prev {
                if p != k {
                    prop_assert!(
                        matches!(cache.lookup(p, 0), Lookup::Fresh(_)),
                        "insert of {k} evicted the immediately preceding insert {p}"
                    );
                }
            }
            prev = Some(k);
        }
    }

    /// Invariant 3: an epoch bump invalidates exactly the entries
    /// proven under older epochs. Old entries never report fresh; new
    /// entries never report stale.
    #[test]
    fn epoch_bump_invalidates_exactly_the_old_entries(
        old_keys in proptest::collection::vec(0u64..1000, 1..60),
        new_keys in proptest::collection::vec(1000u64..2000, 1..60),
        e0 in 0u64..10,
        bump in 1u64..10,
    ) {
        let e1 = e0 + bump;
        let mut cache = FlowCache::new(64);
        for &k in &old_keys {
            cache.insert(k, verdict(k as u32, e0));
        }
        for &k in &new_keys {
            cache.insert(k, verdict(k as u32, e1));
        }
        for &k in &old_keys {
            match cache.lookup(k, e1) {
                Lookup::Fresh(v) => prop_assert!(
                    false,
                    "old-epoch entry {k} returned fresh verdict {v:?} at epoch {e1}"
                ),
                Lookup::Stale | Lookup::Miss => {}
            }
        }
        for &k in &new_keys {
            match cache.lookup(k, e1) {
                Lookup::Stale => prop_assert!(
                    false,
                    "current-epoch entry {k} reported stale at its own epoch {e1}"
                ),
                Lookup::Fresh(v) => prop_assert_eq!(v, verdict(k as u32, e1)),
                Lookup::Miss => {} // evicted: legal, the cache is bounded
            }
        }
    }

    /// Invariant 4: model agreement with an unbounded HashMap oracle.
    #[test]
    fn cache_agrees_with_hashmap_model(
        cap in 1usize..64,
        ops in proptest::collection::vec(op_strategy(40), 1..500),
    ) {
        let mut cache = FlowCache::new(cap);
        let mut model: HashMap<u64, Verdict> = HashMap::new();
        let mut epoch = 0u64;
        for op in ops {
            match op {
                Op::Insert(k) => {
                    let v = verdict(k as u32, epoch);
                    cache.insert(k, v);
                    model.insert(k, v);
                }
                Op::Lookup(k) => match cache.lookup(k, epoch) {
                    Lookup::Fresh(v) => {
                        let m = model.get(&k);
                        prop_assert_eq!(
                            m, Some(&v),
                            "fresh hit for {} disagrees with the model", k
                        );
                        prop_assert_eq!(v.fdb_epoch, epoch);
                    }
                    Lookup::Stale => {
                        let m = model.get(&k).copied();
                        prop_assert!(
                            matches!(m, Some(v) if v.fdb_epoch < epoch),
                            "stale report for {} but the model holds {:?} at epoch {}",
                            k, m, epoch
                        );
                        // The cache dropped the entry; mirror it so a
                        // later fresh hit can't resurrect stale data.
                        model.remove(&k);
                    }
                    Lookup::Miss => {} // bounded cache: always legal
                },
                Op::BumpEpoch => epoch += 1,
            }
        }
    }
}

//! `falcon-ingest`: live-socket ingestion frontend.
//!
//! Everything upstream of this crate synthesizes its packets in
//! process: the injector builds VXLAN frames and pushes descriptors
//! straight into the worker rings. This crate replaces that synthetic
//! front with the real thing — a sender that puts genuine VXLAN
//! datagrams onto an OS UDP socket ([`tx`]), and a dedicated rx thread
//! that drains them back off in batches ([`rx`], `recvmmsg` where
//! available), frames them into [`WireBuf`]s, and injects them through
//! the exact same [`Injector`] path the synthetic source uses
//! ([`source`]). Stages, steering, ordering guards, and telemetry are
//! untouched; from the pipeline's perspective only the provenance of
//! the bytes changed.
//!
//! Because a real socket may drop, reorder across flows, or deliver
//! late, correctness is judged by a differential oracle with explicit
//! loss accounting ([`oracle`]): per-flow delivered digests must form
//! an in-order subsequence of the sender's digest log, and every
//! generated frame must be accounted for as delivered, malformed,
//! ring-dropped, runt, or socket loss — `sent - received` is measured,
//! never assumed zero and never ignored.
//!
//! [`WireBuf`]: falcon_packet::WireBuf
//! [`Injector`]: falcon_dataplane::Injector

pub mod oracle;
pub mod rx;
pub mod sock;
pub mod source;
pub mod tx;

use std::io;
use std::net::UdpSocket;

use serde::Serialize;

use falcon_dataplane::{
    run_meta, run_scenario_from, DataplaneReport, PolicyKind, RunOutput, Scenario, TelemetrySpec,
    TrafficShape,
};
use falcon_telemetry::RunMeta;

pub use oracle::OracleReport;
pub use rx::{batch_rx, BatchRx, LoopRx, MmsgRx, RecvBatch, MAX_DATAGRAM};
pub use source::{rx_into_pipeline, RxConfig, RxStats, MIN_DATAGRAM};
pub use tx::{send_all, SentLog, TxConfig};

/// One live-ingestion run, end to end.
#[derive(Clone, Debug)]
pub struct IngestConfig {
    /// Steering policy under test.
    pub policy: PolicyKind,
    /// Pipeline workers.
    pub workers: usize,
    /// Datagrams the sender generates.
    pub packets: u64,
    /// Distinct flows.
    pub flows: u64,
    /// Inner UDP payload bytes.
    pub payload: usize,
    /// Sender pacing, packets per second (0 = open loop).
    pub pps: u64,
    /// Frames per `sendmmsg` batch.
    pub tx_batch: usize,
    /// Datagrams per batched receive.
    pub rx_batch: usize,
    /// Post-sender socket drain window, ms.
    pub drain_ms: u64,
    /// Pre-send bit-flip rate per million frames.
    pub corrupt_per_million: u32,
    /// Corruptor seed.
    pub seed: u64,
    /// Suppress every Nth frame at the sender (0 = never) — the lossy
    /// harness knob.
    pub drop_every_n: u64,
    /// Stage-cost scale in milli-units (1000 = model as-is).
    pub work_scale_milli: u64,
    /// Run the five-stage split-GRO pipeline shape.
    pub split_gro: bool,
    /// Lift the host-core worker clamp (tests on small hosts).
    pub oversubscribe: bool,
    /// Force the portable `recv` loop even where `recvmmsg` exists.
    pub force_portable_rx: bool,
    /// Live telemetry for the run (rx counters stream automatically).
    pub telemetry: Option<TelemetrySpec>,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            policy: PolicyKind::Falcon,
            workers: 4,
            packets: 20_000,
            flows: 8,
            payload: 256,
            pps: 0,
            tx_batch: 32,
            rx_batch: 32,
            drain_ms: 60,
            corrupt_per_million: 0,
            seed: 0x5eed_1e57,
            drop_every_n: 0,
            work_scale_milli: 1000,
            split_gro: false,
            oversubscribe: false,
            force_portable_rx: false,
            telemetry: None,
        }
    }
}

/// Raw products of one run, before report shaping.
#[derive(Debug)]
pub struct IngestRun {
    /// The pipeline's own output (stats, deliveries, telemetry).
    pub out: RunOutput,
    /// The sender's ground-truth log.
    pub sent: SentLog,
    /// What the rx thread observed.
    pub rx: RxStats,
    /// The differential verdict.
    pub oracle: OracleReport,
}

/// Sends `cfg.packets` real datagrams through the OS and the pipeline
/// and checks the differential oracle. Sockets are loopback-bound
/// ephemerally; nothing leaves the host.
pub fn run_ingest(cfg: &IngestConfig) -> io::Result<IngestRun> {
    let rx_sock = UdpSocket::bind("127.0.0.1:0")?;
    // Best-effort 4 MiB kernel buffer: open-loop senders outrun the rx
    // thread's startup, and a deep queue turns that into latency
    // instead of loss. The kernel clamps to rmem_max; drops that still
    // happen show up in SO_RXQ_OVFL and the conservation identity.
    sock::set_rcvbuf(&rx_sock, 4 << 20);
    let addr = rx_sock.local_addr()?;
    let tx_sock = UdpSocket::bind("127.0.0.1:0")?;
    tx_sock.connect(addr)?;
    let mut rx = batch_rx(rx_sock, cfg.force_portable_rx)?;

    let scenario = Scenario {
        policy: cfg.policy,
        workers: cfg.workers,
        packets: cfg.packets,
        flows: cfg.flows,
        payload: cfg.payload,
        shape: TrafficShape::Udp,
        split_gro: cfg.split_gro,
        work_scale_milli: cfg.work_scale_milli,
        oversubscribe: cfg.oversubscribe,
        wire: true,
        telemetry: cfg.telemetry.clone(),
        ..Scenario::default()
    };
    let tx_cfg = TxConfig {
        packets: cfg.packets,
        flows: cfg.flows,
        payload: cfg.payload,
        pps: cfg.pps,
        batch: cfg.tx_batch,
        corrupt_per_million: cfg.corrupt_per_million,
        seed: cfg.seed,
        drop_every_n: cfg.drop_every_n,
    };
    let rx_cfg = RxConfig {
        batch: cfg.rx_batch,
        drain_ms: cfg.drain_ms,
    };

    let (out, (sent, rx_stats)) = run_scenario_from(&scenario, move |inj| {
        let sender = std::thread::spawn(move || send_all(&tx_sock, &tx_cfg));
        let stats = rx_into_pipeline(rx.as_mut(), inj, || sender.is_finished(), &rx_cfg);
        let sent = sender.join().expect("sender thread panicked");
        (sent, stats)
    });
    let sent = sent?;
    let oracle = oracle::check(&sent, &rx_stats, &out);
    Ok(IngestRun {
        out,
        sent,
        rx: rx_stats,
        oracle,
    })
}

/// One policy's side of the `BENCH_ingest.json` artifact.
#[derive(Debug, Clone, Serialize)]
pub struct IngestSideReport {
    /// Full pipeline report (throughput, goodput, latency, stages).
    pub pipeline: DataplaneReport,
    /// Which receive backend ran ("recvmmsg" or "recv-loop").
    pub rx_backend: String,
    /// Frames the sender generated (including suppressed).
    pub sent: u64,
    /// Frames deliberately withheld at the sender.
    pub suppressed: u64,
    /// Frames bit-flipped before send.
    pub corrupted: u64,
    /// `sent - rx_datagrams`: frames the socket never delivered.
    pub socket_loss: u64,
    /// Datagrams the rx thread read.
    pub rx_datagrams: u64,
    /// Non-empty batched reads.
    pub rx_batches: u64,
    /// Empty polls.
    pub rx_eagain_spins: u64,
    /// Sub-minimum datagrams dropped pre-pipeline.
    pub rx_runts: u64,
    /// Kernel `SO_RXQ_OVFL` drop estimate, when available.
    pub rx_sock_drops: Option<u64>,
    /// `rx_batch_hist[n]` = reads that returned exactly `n` datagrams.
    pub rx_batch_hist: Vec<u64>,
    /// Frames the stages rejected as malformed.
    pub malformed: u64,
    /// The differential oracle's verdict.
    pub oracle_ok: bool,
    /// Delivered digests outside the sender's per-flow subsequence.
    pub digest_mismatches: u64,
    /// Deliveries re-steered onto unknown flows by header flips the
    /// checksums legitimately don't cover.
    pub misattributed: u64,
    /// Oracle failure detail, empty when `oracle_ok`.
    pub oracle_errors: Vec<String>,
}

impl IngestSideReport {
    /// Shapes one run into its artifact form.
    pub fn from_run(run: &IngestRun) -> Self {
        IngestSideReport {
            pipeline: DataplaneReport::from_run(&run.out),
            rx_backend: run.rx.backend.to_string(),
            sent: run.sent.sent,
            suppressed: run.sent.suppressed,
            corrupted: run.sent.corrupted,
            socket_loss: run.oracle.socket_loss,
            rx_datagrams: run.rx.datagrams,
            rx_batches: run.rx.batches,
            rx_eagain_spins: run.rx.eagain_spins,
            rx_runts: run.rx.runts,
            rx_sock_drops: run.rx.sock_drops,
            rx_batch_hist: run.rx.batch_hist.clone(),
            malformed: run.oracle.malformed,
            oracle_ok: run.oracle.ok,
            digest_mismatches: run.oracle.digest_mismatches,
            misattributed: run.oracle.misattributed,
            oracle_errors: run.oracle.errors.clone(),
        }
    }
}

/// The `BENCH_ingest.json` artifact: vanilla vs falcon over live
/// sockets, stamped with run provenance.
#[derive(Debug, Clone, Serialize)]
pub struct IngestComparison {
    /// Provenance header shared by every BENCH artifact.
    pub meta: RunMeta,
    /// Logical cores on the host.
    pub host_cores: usize,
    /// Workers used by both runs.
    pub workers: usize,
    /// Datagrams generated per run.
    pub packets: u64,
    /// Flows per run.
    pub flows: u64,
    /// Inner payload bytes.
    pub payload: usize,
    /// Sender pacing (0 = open loop).
    pub pps: u64,
    /// Datagrams per batched receive.
    pub rx_batch: usize,
    /// The serialized baseline.
    pub vanilla: IngestSideReport,
    /// The pipelined contender.
    pub falcon: IngestSideReport,
    /// `falcon.pipeline.throughput_pps / vanilla.pipeline.throughput_pps`.
    pub speedup: f64,
}

/// Runs the same live-socket workload under both steering policies.
/// As with the dataplane comparison, `cfg.telemetry` attaches to the
/// Falcon leg only — the vanilla leg runs bare, so the headline
/// numbers stay an apples-to-apples policy contest and the exporter
/// artifacts aren't overwritten by the second run.
pub fn run_ingest_comparison(cfg: &IngestConfig) -> io::Result<IngestComparison> {
    let vanilla_run = run_ingest(&IngestConfig {
        policy: PolicyKind::Vanilla,
        telemetry: None,
        ..cfg.clone()
    })?;
    let falcon_run = run_ingest(&IngestConfig {
        policy: PolicyKind::Falcon,
        ..cfg.clone()
    })?;
    let vanilla = IngestSideReport::from_run(&vanilla_run);
    let falcon = IngestSideReport::from_run(&falcon_run);
    let speedup = if vanilla.pipeline.throughput_pps > 0.0 {
        falcon.pipeline.throughput_pps / vanilla.pipeline.throughput_pps
    } else {
        0.0
    };
    Ok(IngestComparison {
        meta: run_meta("ingest"),
        host_cores: vanilla_run.out.host_cores,
        workers: falcon_run.out.workers,
        packets: cfg.packets,
        flows: cfg.flows,
        payload: cfg.payload,
        pps: cfg.pps,
        rx_batch: cfg.rx_batch,
        vanilla,
        falcon,
        speedup,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The whole loop, small: real datagrams through loopback, both
    /// backends, oracle green.
    #[test]
    fn loopback_smoke_oracle_green() {
        for portable in [false, true] {
            let cfg = IngestConfig {
                workers: 2,
                packets: 2_000,
                flows: 4,
                payload: 64,
                work_scale_milli: 20,
                oversubscribe: true,
                force_portable_rx: portable,
                ..IngestConfig::default()
            };
            let run = run_ingest(&cfg).expect("run");
            assert!(
                run.oracle.ok,
                "oracle failed (portable={portable}): {:?}",
                run.oracle.errors
            );
            assert_eq!(run.sent.sent, 2_000);
            assert!(run.out.delivered() > 0, "something must get through");
        }
    }

    /// Corrupted frames are rejected by the stages, not delivered with
    /// wrong bytes — and the oracle stays green because corrupt slots
    /// are subsequence gaps.
    #[test]
    fn corruption_drops_but_oracle_holds() {
        let cfg = IngestConfig {
            workers: 2,
            packets: 3_000,
            flows: 4,
            payload: 64,
            corrupt_per_million: 100_000, // ~10%
            work_scale_milli: 20,
            oversubscribe: true,
            ..IngestConfig::default()
        };
        let run = run_ingest(&cfg).expect("run");
        assert!(run.sent.corrupted > 0, "flip rate must corrupt something");
        assert!(
            run.oracle.ok,
            "oracle must treat corrupt frames as gaps: {:?}",
            run.oracle.errors
        );
        assert!(
            run.oracle.malformed > 0,
            "stages must catch some of the {} corrupt frames",
            run.sent.corrupted
        );
    }
}

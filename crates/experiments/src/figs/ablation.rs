//! Ablation study: which of Falcon's design choices carries how much.
//!
//! Not a paper figure — this isolates the contribution of each
//! mechanism on the standard single-flow UDP stress and the TCP 4 KB
//! stream (DESIGN.md §5):
//!
//! * *full* — pipelining + two-choice + device-aware hash.
//! * *no device hash* — `ifindex` removed from the hash input: every
//!   stage of a flow collapses onto one core (RPS-equivalent placement),
//!   which is exactly the paper's diagnosis of why RPS cannot
//!   parallelize a single flow.
//! * *no two-choice* — first choice only (Figure 16's "static").
//! * *always-on* — the load gate removed.
//! * *with GRO splitting* — the TCP case's extra half-stage.

use falcon::FalconConfig;
use falcon_cpusim::CpuSet;
use falcon_netdev::LinkSpeed;
use falcon_netstack::{KernelVersion, Pacing};
use falcon_workloads::{TcpStreams, TcpStreamsConfig, UdpStressApp, UdpStressConfig};

use crate::measure::{run_measured, Scale};
use crate::ratesearch::max_sustainable;
use crate::scenario::{Mode, Scenario, SF_APP_CORE};
use crate::table::{kpps, FigResult, Table};

fn udp_plateau(mode: Mode, scale: Scale) -> f64 {
    let build = move |rate: f64| {
        let scenario =
            Scenario::single_flow(mode.clone(), KernelVersion::K419, LinkSpeed::HundredGbit);
        let mut cfg = UdpStressConfig::single_flow(16);
        cfg.senders_per_flow = 4;
        cfg.pacing = Pacing::FixedPps(rate / 4.0);
        cfg.app_cores = vec![SF_APP_CORE];
        scenario.build(Box::new(UdpStressApp::new(cfg)))
    };
    max_sustainable(&build, 60_000.0, scale).delivered_pps
}

fn tcp_rate(mode: Mode, scale: Scale) -> f64 {
    let scenario = Scenario::single_flow(mode, KernelVersion::K419, LinkSpeed::HundredGbit);
    let mut cfg = TcpStreamsConfig::single(4096);
    cfg.window = 256;
    cfg.app_cores = vec![SF_APP_CORE];
    let mut runner = scenario.build(Box::new(TcpStreams::new(cfg)));
    run_measured(&mut runner, scale).pps()
}

fn base() -> FalconConfig {
    FalconConfig::new(CpuSet::range(1, 5))
}

/// Contribution of each Falcon design choice.
pub fn run(scale: Scale) -> FigResult {
    let mut fig = FigResult::new(
        "ablation",
        "Ablations: each design choice's contribution (single flow)",
    );

    let variants: [(&str, Mode); 5] = [
        ("vanilla overlay", Mode::Vanilla),
        ("falcon (full)", Mode::Falcon(base())),
        (
            "no device hash",
            Mode::Falcon(base().with_device_aware(false)),
        ),
        ("no two-choice", Mode::Falcon(base().with_two_choice(false))),
        ("always-on", Mode::Falcon(base().with_always_on(true))),
    ];

    let mut u = Table::new(&["variant", "UDP 16B Kpps"]);
    let mut udp_results = Vec::new();
    for (name, mode) in &variants {
        let pps = udp_plateau(mode.clone(), scale);
        udp_results.push((name.to_string(), pps));
        u.row(vec![name.to_string(), kpps(pps)]);
    }
    fig.panel("UDP stress plateau", u);

    let mut t = Table::new(&["variant", "TCP 4KB Kpps"]);
    for (name, mode) in [
        ("falcon, no split", Mode::Falcon(base())),
        (
            "falcon + GRO split",
            Mode::Falcon(base().with_split_gro(true)),
        ),
    ] {
        t.row(vec![name.into(), kpps(tcp_rate(mode, scale))]);
    }
    fig.panel("TCP stream (window 256)", t);

    let full = udp_results
        .iter()
        .find(|(n, _)| n == "falcon (full)")
        .unwrap()
        .1;
    let no_dev = udp_results
        .iter()
        .find(|(n, _)| n == "no device hash")
        .unwrap()
        .1;
    let vanilla = udp_results
        .iter()
        .find(|(n, _)| n == "vanilla overlay")
        .unwrap()
        .1;
    fig.note(format!(
        "removing the device hash loses {:.0}% of falcon's gain over vanilla",
        (full - no_dev) / (full - vanilla).max(1.0) * 100.0
    ));
    fig.note(
        "on this shared 4-core FALCON_CPUS set, GRO splitting adds a 5th pipeline \
         stage onto 4 cores and hurts — the paper's section-4.2 caveat that splitting \
         'should be applied with discretion'; with dedicated cores (fig13) it wins",
    );
    fig
}

//! The sampler: a background thread that snapshots every worker shard
//! on a fixed interval while the run is in flight, and drives the
//! exporters (JSONL artifact, Prometheus listener, in-memory series
//! for the Perfetto counter tracks and the conservation tests).

use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::jsonl;
use crate::meta::RunMeta;
use crate::prom::{self, PromServer};
use crate::rx::{RxCounters, RxSample};
use crate::shard::{shard_pair, Shard, ShardWriter, WorkerSample};

/// Default sampling interval when `--telemetry` is given bare.
pub const DEFAULT_INTERVAL_MS: u64 = 100;

/// All worker shards of one run, plus the stage labels needed to
/// render exports.
pub struct Hub {
    shards: Vec<Arc<Shard>>,
    stage_labels: Vec<String>,
    n_reasons: usize,
    /// Optional rx-thread counters, attached once by an ingestion
    /// frontend before (or even while) the sampler runs. Kept outside
    /// the worker shards on purpose: the shards' shape invariant (no
    /// resize during a write session) must not depend on whether a
    /// socket frontend exists.
    rx: std::sync::OnceLock<Arc<RxCounters>>,
    /// Optional slab-pool counters, attached once by the packet source
    /// when it generates frames from a pre-registered buffer pool.
    /// Same shape rationale as `rx`.
    slab: std::sync::OnceLock<Arc<falcon_packet::SlabCounters>>,
}

impl Hub {
    /// Allocates one shard per worker shaped for the pipeline, and
    /// hands back the per-worker writer handles (index = worker id).
    pub fn new(
        workers: usize,
        stage_labels: Vec<String>,
        n_reasons: usize,
    ) -> (Arc<Hub>, Vec<ShardWriter>) {
        let n_stages = stage_labels.len();
        let (shards, writers): (Vec<_>, Vec<_>) = (0..workers)
            .map(|_| shard_pair(WorkerSample::zeroed(n_stages, n_reasons)))
            .unzip();
        (
            Arc::new(Hub {
                shards,
                stage_labels,
                n_reasons,
                rx: std::sync::OnceLock::new(),
                slab: std::sync::OnceLock::new(),
            }),
            writers,
        )
    }

    /// Attaches the rx-thread counters. Only the first attach wins;
    /// later calls are ignored (there is one rx thread per run).
    pub fn attach_rx(&self, counters: Arc<RxCounters>) {
        let _ = self.rx.set(counters);
    }

    /// Snapshot of the rx-thread counters, if a frontend attached any.
    pub fn rx_snapshot(&self) -> Option<RxSample> {
        self.rx.get().map(|c| c.snapshot())
    }

    /// Attaches the packet source's slab-pool counters. Only the first
    /// attach wins (there is one source pool per run).
    pub fn attach_slab(&self, counters: Arc<falcon_packet::SlabCounters>) {
        let _ = self.slab.set(counters);
    }

    /// Snapshot of the slab-pool counters, if a source attached any.
    pub fn slab_snapshot(&self) -> Option<falcon_packet::SlabSample> {
        self.slab.get().map(|c| c.snapshot())
    }

    /// Number of worker shards.
    pub fn workers(&self) -> usize {
        self.shards.len()
    }

    /// Pipeline stage labels, in stage order.
    pub fn stage_labels(&self) -> &[String] {
        &self.stage_labels
    }

    /// Consistent snapshot of every shard (not cross-shard atomic:
    /// each worker's view is internally consistent, which is all the
    /// per-worker accounting needs).
    pub fn snapshot(&self) -> Vec<WorkerSample> {
        self.shards.iter().map(|s| s.read()).collect()
    }

    /// Zero-shaped baseline matching this hub's shards.
    pub fn zeroed(&self) -> Vec<WorkerSample> {
        self.shards
            .iter()
            .map(|_| WorkerSample::zeroed(self.stage_labels.len(), self.n_reasons))
            .collect()
    }
}

/// One sampling tick: run-relative timestamp + all worker snapshots.
#[derive(Debug, Clone)]
pub struct TelemetrySample {
    /// Run-relative nanoseconds (same epoch as the trace stream).
    pub t_ns: u64,
    /// Cumulative per-worker snapshots (index = worker id).
    pub workers: Vec<WorkerSample>,
    /// Cumulative rx-thread counters (socket ingestion runs only).
    pub rx: Option<RxSample>,
    /// Cumulative slab-pool counters (slab-backed sources only).
    pub slab: Option<falcon_packet::SlabSample>,
}

/// Sampler configuration.
#[derive(Debug, Clone)]
pub struct SamplerConfig {
    /// Snapshot interval in milliseconds (clamped to ≥ 1).
    pub interval_ms: u64,
    /// Stream per-interval deltas to this JSONL path.
    pub jsonl_path: Option<String>,
    /// Serve Prometheus exposition on this address (e.g. `127.0.0.1:0`).
    pub prom_addr: Option<String>,
    /// Provenance stamped into the JSONL header.
    pub meta: RunMeta,
}

/// Everything the sampler produced, returned by [`Sampler::finish`].
#[derive(Debug, Clone)]
pub struct TelemetryRun {
    /// Interval the run actually used.
    pub interval_ms: u64,
    /// Every snapshot taken, in order; the last one is taken *after*
    /// the workers exited, so its counters equal the final stats.
    pub samples: Vec<TelemetrySample>,
    /// JSONL artifact path, if streaming was enabled.
    pub jsonl_path: Option<String>,
    /// Data lines written to the JSONL artifact (excludes header).
    pub jsonl_lines: u64,
    /// First JSONL I/O error, if any (the run itself never fails).
    pub jsonl_error: Option<String>,
    /// Bound exposition address, if the listener was enabled.
    pub prom_addr: Option<String>,
    /// Scrapes the listener served.
    pub scrapes: u64,
    /// Final rx-thread counters (socket ingestion runs only).
    pub rx_totals: Option<RxSample>,
    /// Final slab-pool counters (slab-backed sources only).
    pub slab_totals: Option<falcon_packet::SlabSample>,
}

/// Handle to the running sampler thread.
pub struct Sampler {
    stop: Arc<AtomicBool>,
    handle: JoinHandle<TelemetryRun>,
    prom_addr: Option<std::net::SocketAddr>,
}

impl Sampler {
    /// Spawns the sampler over `hub`, snapshotting every
    /// `cfg.interval_ms` using `now_ns` for run-relative timestamps
    /// (pass the dataplane epoch so counter tracks line up with the
    /// trace). Binding `cfg.prom_addr` happens here, so a bad address
    /// fails fast instead of inside the thread.
    pub fn spawn<F>(hub: Arc<Hub>, now_ns: F, cfg: SamplerConfig) -> std::io::Result<Sampler>
    where
        F: Fn() -> u64 + Send + 'static,
    {
        let prom = match &cfg.prom_addr {
            Some(addr) => Some(PromServer::bind(addr)?),
            None => None,
        };
        let prom_addr = prom.as_ref().map(|p| p.local_addr());
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("falcon-sampler".into())
            .spawn(move || sampler_loop(hub, now_ns, cfg, prom, thread_stop))?;
        Ok(Sampler {
            stop,
            handle,
            prom_addr,
        })
    }

    /// The bound exposition address (useful with port 0).
    pub fn prom_addr(&self) -> Option<std::net::SocketAddr> {
        self.prom_addr
    }

    /// Stops the sampler. The thread takes one final snapshot after
    /// observing the stop flag, so everything the workers published
    /// before this call is captured; call it after joining the
    /// workers and the deltas telescope exactly to the final stats.
    pub fn finish(self) -> TelemetryRun {
        self.stop.store(true, Ordering::Release);
        self.handle.join().expect("sampler thread never panics")
    }
}

fn sampler_loop<F: Fn() -> u64>(
    hub: Arc<Hub>,
    now_ns: F,
    cfg: SamplerConfig,
    prom: Option<PromServer>,
    stop: Arc<AtomicBool>,
) -> TelemetryRun {
    let interval_ms = cfg.interval_ms.max(1);
    let mut out = TelemetryRun {
        interval_ms,
        samples: Vec::new(),
        jsonl_path: cfg.jsonl_path.clone(),
        jsonl_lines: 0,
        jsonl_error: None,
        prom_addr: prom.as_ref().map(|p| p.local_addr().to_string()),
        scrapes: 0,
        rx_totals: None,
        slab_totals: None,
    };
    let stages: Vec<String> = hub.stage_labels().to_vec();
    let mut writer = match &cfg.jsonl_path {
        Some(path) => match std::fs::File::create(path) {
            Ok(f) => {
                let mut w = std::io::BufWriter::new(f);
                let head = jsonl::header_line(&cfg.meta, interval_ms, hub.workers(), &stages);
                if let Err(e) = writeln!(w, "{head}") {
                    out.jsonl_error = Some(e.to_string());
                }
                Some(w)
            }
            Err(e) => {
                out.jsonl_error = Some(e.to_string());
                None
            }
        },
        None => None,
    };

    let mut prev = hub.zeroed();
    let mut prev_rx = RxSample::default();
    let mut prev_slab = falcon_packet::SlabSample::default();
    loop {
        let stopping = stop.load(Ordering::Acquire);
        let t = now_ns();
        let cur = hub.snapshot();
        let cur_rx = hub.rx_snapshot();
        let cur_slab = hub.slab_snapshot();
        if let Some(w) = writer.as_mut() {
            let mut lines = jsonl::sample_lines(t, &cur, &prev, &stages);
            if let Some(rx) = cur_rx.as_ref() {
                lines.push(jsonl::rx_line(t, rx, &prev_rx));
            }
            if let Some(slab) = cur_slab.as_ref() {
                lines.push(jsonl::slab_line(t, slab, &prev_slab));
            }
            for line in lines {
                match writeln!(w, "{line}") {
                    Ok(()) => out.jsonl_lines += 1,
                    Err(e) => {
                        if out.jsonl_error.is_none() {
                            out.jsonl_error = Some(e.to_string());
                        }
                    }
                }
            }
        }
        if let Some(p) = prom.as_ref() {
            let mut body = prom::render(t, &cur, &stages);
            if let Some(rx) = cur_rx.as_ref() {
                body.push_str(&prom::render_rx(rx));
            }
            if let Some(slab) = cur_slab.as_ref() {
                body.push_str(&prom::render_slab(slab));
            }
            p.publish(body);
        }
        if let Some(rx) = cur_rx.as_ref() {
            prev_rx = rx.clone();
            out.rx_totals = Some(rx.clone());
        }
        if let Some(slab) = cur_slab.as_ref() {
            prev_slab = *slab;
            out.slab_totals = Some(*slab);
        }
        out.samples.push(TelemetrySample {
            t_ns: t,
            workers: cur.clone(),
            rx: cur_rx,
            slab: cur_slab,
        });
        prev = cur;
        if stopping {
            break;
        }
        sleep_interruptible(Duration::from_millis(interval_ms), &stop);
    }
    if let Some(mut w) = writer.take() {
        if let Err(e) = w.flush() {
            if out.jsonl_error.is_none() {
                out.jsonl_error = Some(e.to_string());
            }
        }
    }
    if let Some(p) = prom {
        out.scrapes = p.shutdown();
    }
    out
}

/// Sleeps up to `total`, returning early once `stop` is raised so a
/// long interval never delays shutdown.
fn sleep_interruptible(total: Duration, stop: &AtomicBool) {
    let chunk = Duration::from_millis(2);
    let mut slept = Duration::ZERO;
    while slept < total {
        if stop.load(Ordering::Acquire) {
            return;
        }
        let step = chunk.min(total - slept);
        std::thread::sleep(step);
        slept += step;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    fn test_meta() -> RunMeta {
        RunMeta::collect("telemetry-test", 2, 1, "test")
    }

    #[test]
    fn sampler_captures_final_state_and_deltas_telescope() {
        let (hub, mut writers) = Hub::new(2, vec!["a".into(), "b".into()], 5);
        let start = Instant::now();
        let sampler = Sampler::spawn(
            Arc::clone(&hub),
            move || start.elapsed().as_nanos() as u64,
            SamplerConfig {
                interval_ms: 1,
                jsonl_path: None,
                prom_addr: None,
                meta: test_meta(),
            },
        )
        .expect("spawn");
        // Simulate two workers publishing for a few milliseconds.
        for round in 1..=50u64 {
            for (w, writer) in writers.iter_mut().enumerate() {
                writer.write(|d| {
                    d.counters.sweeps = round;
                    d.counters.delivered = round * (w as u64 + 1);
                    d.stall.busy_ns = round * 100;
                    d.stall.wall_ns = round * 120;
                    d.stage_service_ns[0].record(250);
                });
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        let run = sampler.finish();
        assert!(run.samples.len() >= 2, "expected multiple ticks");
        let last = run.samples.last().unwrap();
        assert_eq!(last.workers[0].counters.delivered, 50);
        assert_eq!(last.workers[1].counters.delivered, 100);
        assert_eq!(last.workers[0].stage_service_ns[0].count(), 50);
        // Telescoping: summing interval deltas reproduces the final
        // cumulative counters exactly.
        for w in 0..2 {
            let mut total = crate::shard::ShardCounters::zeroed(2, 5);
            let mut prev = WorkerSample::zeroed(2, 5);
            for s in &run.samples {
                total.accumulate(&s.workers[w].counters.delta_since(&prev.counters));
                prev = s.workers[w].clone();
            }
            assert_eq!(total, last.workers[w].counters, "worker {w}");
        }
        // Timestamps are monotonic.
        for pair in run.samples.windows(2) {
            assert!(pair[0].t_ns <= pair[1].t_ns);
        }
    }

    #[test]
    fn sampler_streams_jsonl_and_serves_prometheus() {
        let dir = std::env::temp_dir().join("falcon-telemetry-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("sampler-{}.jsonl", std::process::id()));
        let (hub, mut writers) = Hub::new(1, vec!["a".into()], 5);
        let start = Instant::now();
        let sampler = Sampler::spawn(
            Arc::clone(&hub),
            move || start.elapsed().as_nanos() as u64,
            SamplerConfig {
                interval_ms: 1,
                jsonl_path: Some(path.to_string_lossy().into_owned()),
                prom_addr: Some("127.0.0.1:0".into()),
                meta: test_meta(),
            },
        )
        .expect("spawn");
        writers[0].write(|d| {
            d.counters.delivered = 9;
            d.counters.sweeps = 9;
        });
        std::thread::sleep(Duration::from_millis(10));
        let addr = sampler.prom_addr().expect("prom bound");
        let body = crate::prom::scrape(&addr).expect("scrape");
        assert!(body.contains("falcon_worker_delivered_total{worker=\"0\"} 9"));
        let run = sampler.finish();
        assert_eq!(run.scrapes, 1);
        assert!(run.jsonl_error.is_none(), "{:?}", run.jsonl_error);
        assert!(run.jsonl_lines >= 1);
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines = text.lines();
        let head = serde_json::from_str(lines.next().unwrap()).expect("header parses");
        assert_eq!(
            head.get("kind").and_then(serde::Value::as_str),
            Some("header")
        );
        for line in lines {
            serde_json::from_str(line).expect("sample line parses");
        }
        std::fs::remove_file(&path).ok();
    }
}

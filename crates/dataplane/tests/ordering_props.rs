//! Property tests of the end-to-end ordering invariant.
//!
//! The paper's correctness claim (§4.1): pipelining stages across cores
//! must never reorder a flow's packets at any device. The executor's
//! flow table enforces it with in-flight-guarded migration; these
//! properties hammer that guard across worker counts, flow counts, and
//! both steering policies — including configurations with tiny rings
//! where drops (which legally create sequence gaps) are frequent.

use falcon_dataplane::{run_scenario, PolicyKind, Scenario, TrafficShape, SPLIT_STAGES};
use proptest::prelude::*;

/// A fast scenario: scaled-down stage costs, no pinning (the property
/// runner shares cores with the workers it spawns).
fn scenario(
    policy: PolicyKind,
    workers: usize,
    flows: u64,
    packets: u64,
    ring_capacity: usize,
) -> Scenario {
    Scenario {
        policy,
        workers,
        flows,
        packets,
        payload: 64,
        ring_capacity,
        napi_budget: 16,
        work_scale_milli: 10,
        inject_gap_ns: 0,
        pin: false,
        trace_capacity: 0,
        ..Scenario::default()
    }
}

/// The five-stage variant: GRO splitting on, priced as the TCP-4KB
/// shape whose pNIC bottleneck the split exists to relieve.
fn split_scenario(
    policy: PolicyKind,
    workers: usize,
    flows: u64,
    packets: u64,
    ring_capacity: usize,
) -> Scenario {
    let mut s = scenario(policy, workers, flows, packets, ring_capacity);
    s.split_gro = true;
    s.shape = TrafficShape::TcpGro { mss: 1448 };
    s.payload = 4096;
    s.work_scale_milli = 5;
    s
}

fn check_run(scenario: &Scenario) -> Result<(), TestCaseError> {
    let out = run_scenario(scenario);
    prop_assert_eq!(
        out.delivered() + out.dropped(),
        out.injected,
        "conservation: every packet delivered or dropped"
    );
    let (checks, violations) = out.order_audit();
    prop_assert!(checks > 0, "audit must observe stage executions");
    prop_assert_eq!(violations, 0, "per-(flow, device) order violated");
    // Wire runs additionally promise bit-exact payloads: whatever the
    // rings, migrations, and corruptor did, a delivered digest must be
    // the generated one, and malformed drops must account per stage.
    if out.wire {
        for (flow, seq, digest) in out.deliveries() {
            prop_assert_eq!(
                digest,
                falcon_wire::FrameFactory::expected_digest(flow, seq, scenario.payload),
                "payload digest mismatch at flow {} seq {}",
                flow,
                seq
            );
        }
        prop_assert_eq!(
            out.malformed_per_stage().iter().sum::<u64>(),
            out.drops_by_reason()[falcon_trace::DropReason::Malformed.index()],
            "per-stage malformed counts must sum to the reason total"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Falcon steering never reorders, across worker and flow counts.
    #[test]
    fn falcon_preserves_flow_device_order(
        workers in 1usize..=4,
        flows in 1u64..=6,
        packets in 200u64..=1200,
    ) {
        check_run(&scenario(PolicyKind::Falcon, workers, flows, packets, 256))?;
    }

    /// The serialized baseline never reorders either (control).
    #[test]
    fn vanilla_preserves_flow_device_order(
        workers in 1usize..=4,
        flows in 1u64..=6,
        packets in 200u64..=1200,
    ) {
        check_run(&scenario(PolicyKind::Vanilla, workers, flows, packets, 256))?;
    }

    /// Tiny rings force drops mid-pipeline; gaps are legal, regressions
    /// are not, and conservation must still hold exactly.
    #[test]
    fn drops_create_gaps_not_reordering(
        workers in 2usize..=4,
        flows in 1u64..=3,
        packets in 400u64..=1000,
    ) {
        check_run(&scenario(PolicyKind::Falcon, workers, flows, packets, 4))?;
    }

    /// Chaos steering rotates the preferred worker every few packets,
    /// asking the flow table for a migration at nearly every steered
    /// hop — the exact shape of the C-stage race, where a migration
    /// puts same-flow packets on different source rings into one
    /// destination worker. The hand-over-hand guard must hold.
    #[test]
    fn forced_migrations_preserve_flow_device_order(
        workers in 2usize..=4,
        flows in 1u64..=2,
        packets in 500u64..=2000,
        period in 1u64..=3,
        stall_ns in 0u64..=1500,
    ) {
        let mut s = scenario(PolicyKind::Falcon, workers, flows, packets, 256);
        s.chaos_steer_period = period;
        s.chaos_sweep_stall_ns = stall_ns;
        check_run(&s)?;
    }

    /// Five-stage variant of the ordering property: the split pipeline
    /// adds a steered hop (A1→A2 on the synthetic split device), which
    /// widens the surface the in-flight guard must cover. Ordering and
    /// conservation must hold exactly as in the four-stage pipeline.
    #[test]
    fn split_gro_preserves_flow_device_order(
        workers in 1usize..=4,
        flows in 1u64..=6,
        packets in 200u64..=1000,
    ) {
        check_run(&split_scenario(PolicyKind::Falcon, workers, flows, packets, 256))?;
    }

    /// Five-stage chaos: steering rotation plus stalled sweeps with the
    /// fifth stage enabled. Every steered hop — including the new split
    /// hop — asks the flow table for a migration almost every packet,
    /// and stalled destination sweeps turn any cross-ring enqueue
    /// inversion into an execution inversion. Zero order violations
    /// and exact conservation are required.
    #[test]
    fn split_gro_chaos_preserves_order_and_conserves(
        workers in 2usize..=4,
        flows in 1u64..=2,
        packets in 500u64..=1500,
        period in 1u64..=3,
        stall_ns in 0u64..=1500,
    ) {
        let mut s = split_scenario(PolicyKind::Falcon, workers, flows, packets, 256);
        s.chaos_steer_period = period;
        s.chaos_sweep_stall_ns = stall_ns;
        check_run(&s)?;
    }

    /// Wire mode under chaos steering and bit-flip corruption: packets
    /// carry real frame bytes across the rings while migrations are
    /// forced at nearly every hop and the corruptor kills a random
    /// subset mid-stage. Ordering, conservation, the per-stage
    /// malformed books, and the digest oracle must all hold at once —
    /// through the same `check_run` audit as the modeled-cost runs.
    #[test]
    fn wire_chaos_corruption_preserves_order_and_digests(
        workers in 2usize..=4,
        flows in 1u64..=3,
        packets in 400u64..=1200,
        period in 1u64..=3,
        corrupt_ppm in 0u32..=250_000,
        seed in 1u64..=1_000,
    ) {
        let mut s = scenario(PolicyKind::Falcon, workers, flows, packets, 256);
        s.wire = true;
        s.payload = 512;
        s.chaos_steer_period = period;
        s.corrupt_per_million = corrupt_ppm;
        s.wire_seed = seed;
        check_run(&s)?;
    }

    /// Five-stage wire chaos: the GRO half-stage coalesces real MSS
    /// segments while corruption breaks a subset of the coalesces and
    /// chaos steering hammers the in-flight guard on the extra hop.
    #[test]
    fn wire_split_gro_chaos_corruption_preserves_order(
        workers in 2usize..=4,
        flows in 1u64..=2,
        packets in 300u64..=800,
        period in 1u64..=3,
        corrupt_ppm in 0u32..=200_000,
        seed in 1u64..=1_000,
    ) {
        let mut s = split_scenario(PolicyKind::Falcon, workers, flows, packets, 256);
        s.wire = true;
        s.chaos_steer_period = period;
        s.corrupt_per_million = corrupt_ppm;
        s.wire_seed = seed;
        check_run(&s)?;
    }
}

/// Deterministic companion: a saturating run on a 2-slot ring mesh must
/// account for every packet even when most are dropped.
#[test]
fn saturated_tiny_rings_conserve_packets() {
    let s = scenario(PolicyKind::Falcon, 2, 2, 5_000, 2);
    let out = run_scenario(&s);
    assert_eq!(out.delivered() + out.dropped(), out.injected);
    let (_, violations) = out.order_audit();
    assert_eq!(violations, 0);
    // Per-reason totals must match the grand total.
    let by_reason: u64 = out.drops_by_reason().iter().sum();
    assert_eq!(by_reason, out.dropped());
}

/// Five-stage companion: the saturated split pipeline must conserve
/// too, and its stage accounting must close — each stage executes once
/// per packet that entered it, so consecutive per-stage totals differ
/// exactly by the drops at the hop between them.
#[test]
fn saturated_split_rings_conserve_packets() {
    let s = split_scenario(PolicyKind::Falcon, 2, 2, 5_000, 2);
    let out = run_scenario(&s);
    assert_eq!(out.stages(), SPLIT_STAGES);
    assert_eq!(out.delivered() + out.dropped(), out.injected);
    let (_, violations) = out.order_audit();
    assert_eq!(violations, 0);
    let by_reason: u64 = out.drops_by_reason().iter().sum();
    assert_eq!(by_reason, out.dropped());
    let per_stage = out.processed_per_stage();
    assert_eq!(per_stage[0], out.injected - out.inject_drops);
    assert_eq!(per_stage[SPLIT_STAGES - 1], out.delivered());
    assert!(per_stage.windows(2).all(|w| w[0] >= w[1]));
    let in_pipeline_drops: u64 = out
        .workers_stats
        .iter()
        .map(|w| w.drops.iter().sum::<u64>())
        .sum();
    let stage_deficit: u64 = per_stage.windows(2).map(|w| w[0] - w[1]).sum();
    assert_eq!(stage_deficit, in_pipeline_drops);
}

//! Slab round-trip vs the allocator it replaces.
//!
//! * `roundtrip/slab` — `acquire` an MTU-class slot, touch it, drop it
//!   (self-returns through the MPSC ring), drain the ring. This is the
//!   full steady-state recycle cycle a wire packet pays.
//! * `roundtrip/heap` — `vec![0; 2048]` alloc, touch, drop: the malloc
//!   round-trip the pool removes from the hot path.
//! * `roundtrip/slab-shell` — the same cycle including the `WireBuf`
//!   shell lease/recycle, i.e. the whole per-packet buffer story.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use falcon_packet::{slab, SlabConfig, SlabPool};

const LEN: usize = 2048;

fn bench_roundtrip(c: &mut Criterion) {
    let mut g = c.benchmark_group("roundtrip");

    g.bench_function("heap", |b| {
        b.iter(|| {
            let mut v = vec![0u8; LEN];
            v[0] = 0xAB;
            black_box(&v);
        })
    });

    let mut pool = SlabPool::new(SlabConfig::default());
    g.bench_function("slab", |b| {
        b.iter(|| {
            let mut seg = pool.acquire(LEN);
            seg[0] = 0xAB;
            black_box(&seg);
            drop(seg);
            pool.drain_returns();
        })
    });

    let mut pool = SlabPool::new(SlabConfig::default());
    g.bench_function("slab-shell", |b| {
        b.iter(|| {
            let seg = pool.acquire(LEN);
            let mut wire = pool.lease_shell();
            wire.segs.push(seg);
            black_box(&wire);
            slab::recycle(wire);
            pool.drain_returns();
        })
    });

    g.finish();
}

criterion_group!(benches, bench_roundtrip);
criterion_main!(benches);

//! Shared helpers for the cross-crate integration tests in `tests/`.
//!
//! Besides the small scenario builders, this crate hosts the
//! *differential conformance* vocabulary used by
//! `tests/conformance.rs`: the same logical pipeline runs in two
//! engines — the discrete-event simulator (virtual time, one thread)
//! and the `falcon-dataplane` executor (real threads, wall clock) — and
//! the invariants that are engine-independent must agree. Each engine
//! gets an `assert_*_conforms` helper that checks its own books
//! (conservation, ordering, trace-stream consistency) and returns the
//! [`ConservationReport`] so the test can then compare the
//! cross-engine facts: pipeline depth, drop accounting, and the
//! presence of the GRO-split half-stage.

use falcon::FalconConfig;
use falcon_cpusim::CpuSet;
use falcon_dataplane::{RunOutput, PNIC_SPLIT_IF};
use falcon_experiments::scenario::{Mode, Scenario, MF_APP_CORES, SF_APP_CORE};
use falcon_netdev::LinkSpeed;
use falcon_netstack::sim::SimRunner;
use falcon_netstack::{KernelVersion, Pacing};
use falcon_trace::{check_stream, ConservationReport, DropReason, EventKind};
use falcon_wire::FrameFactory;
use falcon_workloads::{TcpStreams, TcpStreamsConfig, UdpStressApp, UdpStressConfig};

/// Builds a small single-flow UDP scenario for invariant testing.
pub fn small_udp_runner(mode: Mode, rate: f64, payload: usize, seed: u64) -> SimRunner {
    let scenario =
        Scenario::single_flow(mode, KernelVersion::K419, LinkSpeed::HundredGbit).with_seed(seed);
    let mut cfg = UdpStressConfig::single_flow(payload);
    cfg.senders_per_flow = 2;
    cfg.pacing = Pacing::PoissonPps(rate / 2.0);
    cfg.app_cores = vec![SF_APP_CORE];
    scenario.build(Box::new(UdpStressApp::new(cfg)))
}

/// The default Falcon mode for the single-flow shape.
pub fn falcon_mode() -> Mode {
    Mode::Falcon(FalconConfig::new(CpuSet::range(1, 5)))
}

/// The Figure-13 multi-flow Falcon mode: dedicated pipeline cores 4–7,
/// optionally with the pNIC stage split into its alloc/GRO halves.
pub fn tcp4k_falcon(split_gro: bool) -> Mode {
    Mode::Falcon(FalconConfig::new(CpuSet::range(4, 8)).with_split_gro(split_gro))
}

/// Builds the Figure-13 TCP-4KB shape: `flows` streams of 4096-byte
/// messages, deep windows, RPS pinned to cores 0–3 so the Falcon cores
/// 4–7 stay dedicated to pipelined stages. This is the traffic whose
/// pNIC stage carries the ~45 %/~45 % alloc/GRO split the paper's §4.2
/// peels apart; UDP would never exercise the fifth stage (the sim only
/// splits GRO-eligible TCP flows).
pub fn tcp4k_runner(mode: Mode, flows: usize, seed: u64) -> SimRunner {
    let scenario = Scenario::multi_flow(mode, KernelVersion::K419, LinkSpeed::HundredGbit)
        .with_seed(seed)
        .tweak(|stack| {
            stack.rps = Some(CpuSet::range(0, 4));
        });
    let mut cfg = TcpStreamsConfig::single(4096);
    cfg.n_flows = flows;
    cfg.window = 384;
    cfg.app_cores = MF_APP_CORES.to_vec();
    scenario.build(Box::new(TcpStreams::new(cfg)))
}

/// Asserts the simulator-side conformance invariants on a traced run
/// and returns the stream report for cross-engine comparison.
///
/// `require_order` should be true for vanilla (which never migrates
/// stages) and false for Falcon, whose hotspot-escape migrations may
/// legally reorder a handful of packets.
pub fn assert_sim_conforms(runner: &SimRunner, require_order: bool) -> ConservationReport {
    let tracer = runner.tracer();
    assert_eq!(tracer.overflow(), 0, "sim trace ring wrapped; size it up");
    let report = check_stream(&tracer.events());
    assert!(report.enqueues > 0, "sim trace saw no traffic");
    assert!(report.delivered > 0, "sim trace saw no deliveries");
    assert!(
        report.unmatched.is_empty(),
        "sim enqueue/consume imbalance (first 5): {:?}",
        &report.unmatched[..report.unmatched.len().min(5)]
    );
    assert!(
        report.hop_mismatches.is_empty(),
        "sim hop-digest mismatches (first 5): {:?}",
        &report.hop_mismatches[..report.hop_mismatches.len().min(5)]
    );
    if require_order {
        assert!(
            report.order_violations.is_empty(),
            "sim order violations: {:?}",
            report.order_violations
        );
    }
    // Drop-reason totals: every counted drop produced one QueueDrop.
    assert_eq!(
        report.drops,
        runner.counters().total_drops(),
        "sim trace drops disagree with unified counters"
    );
    report
}

/// Asserts the dataplane-side conformance invariants on a run and
/// returns the stream report (empty if the run was untraced).
///
/// Checks the executor's own books — exact conservation, a zero from
/// the per-(flow, device) order audit, per-stage execution accounting
/// keyed on [`RunOutput::stages`] (never a hardcoded 4) — and, when a
/// trace was captured, replays the identical `check_stream` pass the
/// simulator's stream must satisfy.
pub fn assert_dataplane_conforms(out: &RunOutput) -> ConservationReport {
    assert_eq!(
        out.delivered() + out.dropped(),
        out.injected,
        "dataplane conservation: every packet delivered or dropped"
    );
    let (checks, violations) = out.order_audit();
    assert!(checks > 0, "dataplane order audit observed nothing");
    assert_eq!(violations, 0, "dataplane per-(flow, device) order violated");
    let by_reason: u64 = out.drops_by_reason().iter().sum();
    assert_eq!(by_reason, out.dropped(), "drop-reason totals must close");

    // Stage accounting: stage s executes once per packet that reached
    // it, so `executions == packets × stages` holds per stage, with the
    // deficit between neighbours exactly the drops at that hop.
    let stages = out.stages();
    let per_stage = out.processed_per_stage();
    assert_eq!(per_stage.len(), stages);
    assert_eq!(per_stage[0], out.injected - out.inject_drops);
    assert_eq!(per_stage[stages - 1], out.delivered());
    assert!(
        per_stage.windows(2).all(|w| w[0] >= w[1]),
        "a later stage executed more often than an earlier one"
    );
    let in_pipeline_drops: u64 = out
        .workers_stats
        .iter()
        .map(|w| w.drops.iter().sum::<u64>())
        .sum();
    let deficit: u64 = per_stage.windows(2).map(|w| w[0] - w[1]).sum();
    assert_eq!(deficit, in_pipeline_drops);

    if out.merged_events().is_empty() {
        return ConservationReport::default();
    }
    assert_eq!(out.trace_overflow(), 0, "dataplane trace ring wrapped");
    let report = check_stream(&out.merged_events());
    assert!(report.delivered > 0, "dataplane trace saw no deliveries");
    assert!(
        report.unmatched.is_empty(),
        "dataplane enqueue/consume imbalance (first 5): {:?}",
        &report.unmatched[..report.unmatched.len().min(5)]
    );
    assert!(
        report.hop_mismatches.is_empty(),
        "dataplane hop-digest mismatches (first 5): {:?}",
        &report.hop_mismatches[..report.hop_mismatches.len().min(5)]
    );
    assert!(
        report.order_violations.is_empty(),
        "dataplane trace order violations: {:?}",
        report.order_violations
    );
    assert_eq!(report.delivered, out.delivered());
    assert_eq!(
        report.drops,
        out.dropped(),
        "dataplane trace drops disagree with run counters"
    );
    report
}

/// Asserts the wire-mode conformance invariants on a run and returns
/// the stream report (empty if the run was untraced).
///
/// This is the malformed-aware sibling of [`assert_dataplane_conforms`]:
/// corrupted frames legally drop *mid-stage* (before the stage's
/// `processed` bump), so the strict `per_stage[0] == injected -
/// inject_drops` book no longer holds — each stage's execution count is
/// instead down by exactly the frames it rejected as malformed. On top
/// of the relaxed stage books this adds the wire oracle: every
/// delivered `(flow, seq)` payload digest must equal what
/// [`FrameFactory`] generated for it, bit for bit, and byte counters
/// must close against the delivery count. With corruption off the
/// malformed counts are all zero and this helper is exactly as strict
/// as the plain one.
pub fn assert_wire_conforms(out: &RunOutput, payload: usize) -> ConservationReport {
    assert!(out.wire, "assert_wire_conforms needs a wire-mode run");
    assert_eq!(
        out.delivered() + out.dropped(),
        out.injected,
        "wire conservation: every packet delivered or dropped"
    );
    let (checks, violations) = out.order_audit();
    assert!(checks > 0, "wire order audit observed nothing");
    assert_eq!(violations, 0, "wire per-(flow, device) order violated");
    let by_reason = out.drops_by_reason();
    assert_eq!(
        by_reason.iter().sum::<u64>(),
        out.dropped(),
        "drop-reason totals must close"
    );

    // The differential oracle: the executor never saw the generator,
    // only bytes, yet every delivered payload must hash to exactly what
    // the factory built for that (flow, seq). Corruption cannot forge a
    // delivery — a flipped frame either dies as Malformed or (when the
    // flip lands in a field no stage checks) still carries the original
    // payload untouched.
    let deliveries = out.deliveries();
    assert_eq!(deliveries.len() as u64, out.delivered());
    for &(flow, seq, digest) in &deliveries {
        assert_eq!(
            digest,
            FrameFactory::expected_digest(flow, seq, payload),
            "payload digest mismatch at flow {flow} seq {seq}"
        );
    }
    assert_eq!(
        out.bytes_delivered(),
        out.delivered() * payload as u64,
        "delivered bytes must equal deliveries x payload"
    );
    assert!(
        out.bytes_injected >= out.bytes_delivered(),
        "cannot deliver more application bytes than were injected"
    );

    // Malformed accounting: the per-stage counts close against the
    // reason total, and the stage books hold with the malformed deficit
    // folded in.
    let malformed = out.malformed_per_stage();
    let stages = out.stages();
    let per_stage = out.processed_per_stage();
    assert_eq!(per_stage.len(), stages);
    assert_eq!(malformed.len(), stages);
    assert_eq!(
        malformed.iter().sum::<u64>(),
        by_reason[DropReason::Malformed.index()],
        "per-stage malformed counts must sum to the reason total"
    );
    assert_eq!(per_stage[0], out.injected - out.inject_drops - malformed[0]);
    assert_eq!(per_stage[stages - 1], out.delivered());
    for s in 1..stages {
        assert!(
            per_stage[s] + malformed[s] <= per_stage[s - 1],
            "stage {s} executed more packets than its predecessor passed on"
        );
    }
    let in_pipeline_drops: u64 = out
        .workers_stats
        .iter()
        .map(|w| w.drops.iter().sum::<u64>())
        .sum();
    assert_eq!(
        (out.injected - out.inject_drops) - out.delivered(),
        in_pipeline_drops,
        "everything past the injector ring is delivered or drop-counted"
    );

    if out.merged_events().is_empty() {
        return ConservationReport::default();
    }
    assert_eq!(out.trace_overflow(), 0, "wire trace ring wrapped");
    let report = check_stream(&out.merged_events());
    assert!(report.delivered > 0, "wire trace saw no deliveries");
    assert!(
        report.unmatched.is_empty(),
        "wire enqueue/consume imbalance (first 5): {:?}",
        &report.unmatched[..report.unmatched.len().min(5)]
    );
    assert!(
        report.hop_mismatches.is_empty(),
        "wire hop-digest mismatches (first 5): {:?}",
        &report.hop_mismatches[..report.hop_mismatches.len().min(5)]
    );
    assert!(
        report.order_violations.is_empty(),
        "wire trace order violations: {:?}",
        report.order_violations
    );
    assert_eq!(report.delivered, out.delivered());
    assert_eq!(
        report.drops,
        out.dropped(),
        "wire trace drops disagree with run counters"
    );
    report
}

/// The distinct softirq checkpoints (devices) a traced run executed
/// stages at. The GRO-split half-stage shows up here as its synthetic
/// device — `eth0:gro` in the sim, [`PNIC_SPLIT_IF`] in the dataplane —
/// so pipeline depth is comparable across engines.
pub fn stage_checkpoints(events: &[falcon_trace::Event]) -> std::collections::BTreeSet<u32> {
    events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::StageExec { checkpoint, .. } => Some(checkpoint),
            _ => None,
        })
        .collect()
}

/// Convenience re-export so conformance tests name the split device the
/// same way the executor does.
pub const DATAPLANE_SPLIT_IF: u32 = PNIC_SPLIT_IF;

//! Flow-key dissection and flow hashing, mirroring the kernel's
//! `struct flow_keys` / `__flow_hash_from_keys`.
//!
//! RPS (`get_rps_cpu`) steers packets by `skb->hash`, which the flow
//! dissector computes over (addresses, ports, protocol) with `jhash2` and
//! a boot-time random `hashrnd`. Crucially for the paper, **no device
//! information enters this hash** — every processing stage of a flow
//! therefore hashes to the same CPU, which is the single-flow
//! serialization problem Falcon fixes by adding `dev->ifindex` to the
//! hash input (see `falcon::get_falcon_cpu`).

use serde::{Deserialize, Serialize};

use crate::jhash::jhash2;

/// The tuple of fields identifying a network flow, as dissected from a
/// packet's headers (a compact `struct flow_keys`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FlowKeys {
    /// IPv4 source address (host byte order).
    pub src_addr: u32,
    /// IPv4 destination address (host byte order).
    pub dst_addr: u32,
    /// L4 source port.
    pub src_port: u16,
    /// L4 destination port.
    pub dst_port: u16,
    /// IP protocol number (17 = UDP, 6 = TCP).
    pub ip_proto: u8,
}

impl FlowKeys {
    /// Creates flow keys for a UDP flow.
    pub fn udp(src_addr: u32, src_port: u16, dst_addr: u32, dst_port: u16) -> Self {
        FlowKeys {
            src_addr,
            dst_addr,
            src_port,
            dst_port,
            ip_proto: 17,
        }
    }

    /// Creates flow keys for a TCP flow.
    pub fn tcp(src_addr: u32, src_port: u16, dst_addr: u32, dst_port: u16) -> Self {
        FlowKeys {
            src_addr,
            dst_addr,
            src_port,
            dst_port,
            ip_proto: 6,
        }
    }

    /// Returns the keys of the reverse direction of this flow.
    pub fn reversed(self) -> Self {
        FlowKeys {
            src_addr: self.dst_addr,
            dst_addr: self.src_addr,
            src_port: self.dst_port,
            dst_port: self.src_port,
            ip_proto: self.ip_proto,
        }
    }
}

/// Computes the flow hash over the keys, like `__flow_hash_from_keys`.
///
/// `hashrnd` models the kernel's boot-time random salt; the simulation
/// fixes it per run for reproducibility. The result is never zero (the
/// kernel reserves 0 to mean "no hash computed"), matching
/// `__flow_hash_from_keys`'s `if (!hash) hash = 1;` fixup.
///
/// # Examples
///
/// ```
/// use falcon_khash::{flow_hash_from_keys, FlowKeys};
///
/// let keys = FlowKeys::udp(0x0A000001, 5001, 0x0A000002, 8080);
/// let h = flow_hash_from_keys(&keys, 42);
/// assert_eq!(h, flow_hash_from_keys(&keys, 42));
/// assert_ne!(h, 0);
/// ```
pub fn flow_hash_from_keys(keys: &FlowKeys, hashrnd: u32) -> u32 {
    let words = [
        keys.src_addr,
        keys.dst_addr,
        ((keys.src_port as u32) << 16) | keys.dst_port as u32,
        keys.ip_proto as u32,
    ];
    let hash = jhash2(&words, hashrnd);
    if hash == 0 {
        1
    } else {
        hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let u = FlowKeys::udp(1, 2, 3, 4);
        assert_eq!(u.ip_proto, 17);
        let t = FlowKeys::tcp(1, 2, 3, 4);
        assert_eq!(t.ip_proto, 6);
        assert_eq!(u.src_addr, 1);
        assert_eq!(u.src_port, 2);
        assert_eq!(u.dst_addr, 3);
        assert_eq!(u.dst_port, 4);
    }

    #[test]
    fn reversed_swaps_endpoints() {
        let k = FlowKeys::tcp(10, 20, 30, 40);
        let r = k.reversed();
        assert_eq!(r.src_addr, 30);
        assert_eq!(r.dst_addr, 10);
        assert_eq!(r.src_port, 40);
        assert_eq!(r.dst_port, 20);
        assert_eq!(r.reversed(), k);
    }

    #[test]
    fn hash_is_flow_stable_and_direction_sensitive() {
        let k = FlowKeys::udp(0x0A00_0001, 1234, 0x0A00_0002, 80);
        assert_eq!(flow_hash_from_keys(&k, 7), flow_hash_from_keys(&k, 7));
        assert_ne!(
            flow_hash_from_keys(&k, 7),
            flow_hash_from_keys(&k.reversed(), 7)
        );
    }

    #[test]
    fn hash_depends_on_every_field() {
        let base = FlowKeys::udp(0x0A00_0001, 1234, 0x0A00_0002, 80);
        let h = flow_hash_from_keys(&base, 7);
        let variants = [
            FlowKeys {
                src_addr: base.src_addr + 1,
                ..base
            },
            FlowKeys {
                dst_addr: base.dst_addr + 1,
                ..base
            },
            FlowKeys {
                src_port: base.src_port + 1,
                ..base
            },
            FlowKeys {
                dst_port: base.dst_port + 1,
                ..base
            },
            FlowKeys {
                ip_proto: 6,
                ..base
            },
        ];
        for v in variants {
            assert_ne!(flow_hash_from_keys(&v, 7), h, "field change ignored: {v:?}");
        }
    }

    #[test]
    fn hash_never_zero() {
        // Sweep salts looking for a zero; the fixup must prevent it.
        let k = FlowKeys::udp(0, 0, 0, 0);
        for rnd in 0..10_000u32 {
            assert_ne!(flow_hash_from_keys(&k, rnd), 0);
        }
    }

    #[test]
    fn salt_changes_hash() {
        let k = FlowKeys::tcp(0x0A00_0001, 5000, 0x0A00_0002, 80);
        assert_ne!(flow_hash_from_keys(&k, 1), flow_hash_from_keys(&k, 2));
    }
}

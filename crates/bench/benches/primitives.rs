//! Micro-benchmarks of the substrate primitives.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use falcon_khash::{
    flow_hash_from_keys, hash_32, jhash2, toeplitz_hash, FlowKeys, MICROSOFT_RSS_KEY,
};
use falcon_metrics::Histogram;
use falcon_packet::{
    build_udp_frame, decap_bounds, dissect_flow, vxlan_decapsulate, vxlan_encapsulate, EncapParams,
    Ipv4Addr4, MacAddr,
};
use falcon_simcore::{Engine, SimDuration, SimRng};

fn bench_hashing(c: &mut Criterion) {
    let mut g = c.benchmark_group("hashing");
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    let keys = FlowKeys::udp(0x0A00_0001, 40_001, 0x0A00_0002, 5001);
    g.bench_function("jhash2_4words", |b| {
        b.iter(|| jhash2(black_box(&[1u32, 2, 3, 4]), black_box(7)))
    });
    g.bench_function("hash_32", |b| {
        b.iter(|| hash_32(black_box(0xDEAD_BEEF), 32))
    });
    g.bench_function("flow_hash_from_keys", |b| {
        b.iter(|| flow_hash_from_keys(black_box(&keys), black_box(7)))
    });
    let input = falcon_khash::toeplitz::rss_input_v4(0x0A00_0001, 0x0A00_0002, 40_001, 5001);
    g.bench_function("toeplitz_rss", |b| {
        b.iter(|| toeplitz_hash(black_box(&MICROSOFT_RSS_KEY), black_box(&input)))
    });
    g.finish();
}

fn bench_codecs(c: &mut Criterion) {
    let mut g = c.benchmark_group("codecs");
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    let keys = FlowKeys::udp(0x0A00_0001, 40_001, 0x0A00_0002, 5001);
    let inner = build_udp_frame(
        MacAddr::from_index(1),
        MacAddr::from_index(2),
        &keys,
        &vec![0u8; 1400],
    );
    let params = EncapParams {
        src_mac: MacAddr::from_index(1),
        dst_mac: MacAddr::from_index(2),
        src_ip: Ipv4Addr4::new(192, 168, 0, 1),
        dst_ip: Ipv4Addr4::new(192, 168, 0, 2),
        src_port: 49_999,
        vni: 256,
    };
    let outer = vxlan_encapsulate(&inner, &params);
    g.throughput(Throughput::Bytes(inner.len() as u64));
    g.bench_function("build_udp_frame_1400B", |b| {
        b.iter(|| {
            build_udp_frame(
                black_box(MacAddr::from_index(1)),
                black_box(MacAddr::from_index(2)),
                black_box(&keys),
                black_box(&[0u8; 1400]),
            )
        })
    });
    g.bench_function("vxlan_encapsulate_1400B", |b| {
        b.iter(|| vxlan_encapsulate(black_box(&inner), black_box(&params)))
    });
    g.bench_function("vxlan_decapsulate_1400B", |b| {
        b.iter(|| vxlan_decapsulate(black_box(&outer)).unwrap())
    });
    g.bench_function("decap_bounds_1400B", |b| {
        b.iter(|| decap_bounds(black_box(&outer)).unwrap())
    });
    g.bench_function("dissect_flow", |b| {
        b.iter(|| dissect_flow(black_box(&inner)).unwrap())
    });
    g.finish();
}

fn bench_metrics(c: &mut Criterion) {
    let mut g = c.benchmark_group("metrics");
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.bench_function("histogram_record", |b| {
        let mut h = Histogram::new();
        let mut v = 1u64;
        b.iter(|| {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(black_box(v % 1_000_000));
        })
    });
    g.bench_function("histogram_p99", |b| {
        let mut h = Histogram::new();
        for v in 0..100_000u64 {
            h.record(v % 50_000);
        }
        b.iter(|| h.percentile(black_box(99.0)))
    });
    g.finish();
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.bench_function("rng_next_u64", |b| {
        let mut rng = SimRng::new(7);
        b.iter(|| rng.next_u64())
    });
    g.bench_function("schedule_and_run_1k_events", |b| {
        b.iter(|| {
            let mut eng: Engine<u64> = Engine::new();
            let mut world = 0u64;
            for i in 0..1_000u64 {
                eng.schedule_after(SimDuration::from_nanos(i % 97), |w: &mut u64, _| {
                    *w += 1;
                });
            }
            eng.run_to_completion(&mut world);
            black_box(world)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_hashing,
    bench_codecs,
    bench_metrics,
    bench_engine
);
criterion_main!(benches);

//! Shared helpers for the cross-crate integration tests in `tests/`.

use falcon::FalconConfig;
use falcon_cpusim::CpuSet;
use falcon_experiments::scenario::{Mode, Scenario, SF_APP_CORE};
use falcon_netdev::LinkSpeed;
use falcon_netstack::sim::SimRunner;
use falcon_netstack::{KernelVersion, Pacing};
use falcon_workloads::{UdpStressApp, UdpStressConfig};

/// Builds a small single-flow UDP scenario for invariant testing.
pub fn small_udp_runner(mode: Mode, rate: f64, payload: usize, seed: u64) -> SimRunner {
    let scenario =
        Scenario::single_flow(mode, KernelVersion::K419, LinkSpeed::HundredGbit).with_seed(seed);
    let mut cfg = UdpStressConfig::single_flow(payload);
    cfg.senders_per_flow = 2;
    cfg.pacing = Pacing::PoissonPps(rate / 2.0);
    cfg.app_cores = vec![SF_APP_CORE];
    scenario.build(Box::new(UdpStressApp::new(cfg)))
}

/// The default Falcon mode for the single-flow shape.
pub fn falcon_mode() -> Mode {
    Mode::Falcon(FalconConfig::new(CpuSet::range(1, 5)))
}

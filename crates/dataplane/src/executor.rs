//! The threaded pipeline executor: the modeled overlay receive path on
//! real OS threads.
//!
//! The simulation (`netstack::rxpath`) models the four-stage container
//! receive path as discrete events; this module *runs* it. Each worker
//! is one pinned OS thread standing in for a CPU's NET_RX softirq. The
//! stages and their CPU costs come from the same
//! [`CostModel`](falcon_netstack::CostModel) the simulation uses
//! (`overlay_udp_stage_ns` and friends), turned into real core
//! occupancy by deadline busy-spinning:
//!
//! ```text
//! injector ─▸ [A pnic_poll] ─▸ [B outer_stack] ─▸ [C gro_cell] ─▸ [D container_stack] ─▸ deliver
//!              RSS worker        same worker        steered          steered
//! ```
//!
//! A→B is always local (driver poll feeds the same CPU's backlog, as in
//! the kernel); B→C and C→D are the two steering points the paper's
//! softirq pipelining exploits, keyed by the vxlan and veth ifindexes.
//!
//! With [`Scenario::split_gro`] on, the pNIC stage itself splits into
//! its `skb_allocation` and `napi_gro_receive` halves (paper §4.2, the
//! Figure 13 "Host+" mechanism) and the pipeline grows a fifth hop:
//!
//! ```text
//! injector ─▸ [A1 alloc] ─▸ [A2 gro] ─▸ [B] ─▸ [C] ─▸ [D] ─▸ deliver
//!              RSS worker    steered    local  steered steered
//! ```
//!
//! The A1→A2 hop is a steering point keyed by a synthetic device,
//! [`PNIC_SPLIT_IF`]: Falcon's `(flow, device)` hash then places the
//! GRO half on its own core, exactly how the paper peels the two ~45 %
//! halves of the TCP-4KB bottleneck stage apart. A2→B stays local (GRO
//! completion flows straight into the stack dispatch on the same CPU).
//!
//! Workers exchange packets over the SPSC ring mesh; every steered hop
//! registers with the global [`FlowTable`], and the registration stays
//! held until the packet has executed the *following* stage (not just
//! the routed one). That extra hold is the reordering guard: because
//! the ring mesh is per-(src, dst), two same-flow packets that reach
//! one stage's worker from *different* upstream workers travel on
//! different rings and the fixed-order inbound sweep could pop them
//! inverted. Holding the previous hop's registration through the next
//! stage means a (flow, device) pair can only migrate when no packet of
//! that flow sits anywhere between that stage's routing decision and
//! the next stage's completion — so all in-flight same-flow packets for
//! a stage always share one upstream worker, hence one FIFO ring.
//! (The kernel's `rps_dev_flow` qtail check gets this for free from the
//! single per-CPU backlog; the ring mesh has to buy it explicitly.)

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use falcon_conntrack::{merge_shards, ConnCounters, ConnShard, ConnTable};
use falcon_khash::hash_32;
use falcon_netstack::CostModel;
use falcon_packet::{MacAddr, PktDesc, WireBuf};
use falcon_telemetry::{
    Hub, RunMeta, Sampler, SamplerConfig, ShardWriter, StallBreakdown, TelemetryRun,
    DEFAULT_INTERVAL_MS,
};
use falcon_trace::{
    hop_hash_extend, Context, DropReason, Event, EventKind, TraceMeta, Tracer, DELIVERY_CHECK,
    HOP_HASH_INIT, STAGE_B_CHECK,
};
use falcon_wire::{
    bridge_lookup, conn_observe, deliver_verify, flow_cache_key, full_verdict, gro_coalesce,
    pnic_verify, vxlan_decap, CacheStats, Corruptor, Delivery, Fdb, FlowCache, FrameFactory,
    Lookup, SharedFdb, WireError,
};

use crate::affinity::{available_cores, clamp_workers, pin_current_thread};
use crate::spin::{spin_for_ns, Backoff, Epoch, IdleTier};
use crate::spsc::{ring, Consumer, Producer};
use crate::steer::{release, DepthGauge, FlowTable, InflightGuard, Policy, PolicyKind};

/// Ifindex of the physical NIC (stage A, and B via the stage-B flag).
pub const PNIC_IF: u32 = 1;
/// Ifindex of the vxlan device (stage C's input queue — the gro_cell).
pub const VXLAN_IF: u32 = 2;
/// Ifindex of the container-side veth (stage D's input backlog).
pub const VETH_IF: u32 = 3;
/// Synthetic ifindex of the split-off `napi_gro_receive` half-stage
/// (the simulator's "eth0:gro" device). Giving the half its own device
/// id is what lets Falcon's `(flow, device)` hash steer it to a core
/// distinct from the allocation half.
pub const PNIC_SPLIT_IF: u32 = 4;

/// Number of pipeline stages in the unsplit path.
pub const STAGES: usize = 4;
/// Number of pipeline stages with GRO splitting on.
pub const SPLIT_STAGES: usize = 5;

/// What kind of traffic the injected descriptors stand for — it picks
/// which `CostModel` stage extraction prices the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficShape {
    /// Non-coalescable UDP datagrams of `payload` bytes each.
    Udp,
    /// One GRO-coalesced TCP message of `payload` bytes per injected
    /// descriptor, segmented at `mss` bytes on the wire — the
    /// Figure-13 TCP-4KB shape where the pNIC stage pays per-segment
    /// allocation + GRO and becomes the bottleneck splitting relieves.
    TcpGro {
        /// Wire segment payload size (1448 for standard Ethernet MSS).
        mss: usize,
    },
}

impl TrafficShape {
    /// Short label for reports.
    pub fn label(self) -> String {
        match self {
            TrafficShape::Udp => "udp".to_string(),
            TrafficShape::TcpGro { mss } => format!("tcp-gro(mss={mss})"),
        }
    }
}

/// One run's worth of configuration.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Steering policy under test.
    pub policy: PolicyKind,
    /// Requested worker count (clamped to the host's logical cores).
    pub workers: usize,
    /// Packets to inject.
    pub packets: u64,
    /// Distinct flows, round-robin across packets.
    pub flows: u64,
    /// Payload bytes per injected unit (drives the modeled stage
    /// costs; a whole coalesced message under [`TrafficShape::TcpGro`]).
    pub payload: usize,
    /// Traffic shape pricing the stages.
    pub shape: TrafficShape,
    /// Run the pNIC stage as two half-stages on the five-hop pipeline
    /// (paper §4.2 GRO splitting; the Figure 13 "Host+" mechanism).
    pub split_gro: bool,
    /// Capacity of each inter-worker SPSC ring.
    pub ring_capacity: usize,
    /// NAPI-style batch budget per inbound ring per sweep.
    pub napi_budget: usize,
    /// Falcon's depth-triggered two-choice rehash (on by default).
    /// Placement tests switch it off to pin steering to the
    /// (flow, device) hash's first choice regardless of load — under
    /// oversubscribed overload the load threshold legitimately
    /// rehashes almost every decision, which makes emergent placement
    /// assertions scheduling-dependent.
    pub steer_two_choice: bool,
    /// Stage-cost scale in milli-units (1000 = model costs as-is;
    /// tests use small values to run fast).
    pub work_scale_milli: u64,
    /// Pacing gap between injected packets, ns (0 = open loop: inject
    /// as fast as backpressure allows).
    pub inject_gap_ns: u64,
    /// Pin workers to cores.
    pub pin: bool,
    /// Per-worker trace ring capacity (0 = tracing off).
    pub trace_capacity: usize,
    /// Test-only knob: lift the host-core clamp on `workers`, so a
    /// multi-worker pipeline runs (oversubscribed) even on small CI
    /// hosts. Correctness suites need genuine ring crossings; perf
    /// runs leave this off and accept the clamp.
    pub oversubscribe: bool,
    /// Test-only chaos knob: when nonzero, every steered hop overrides
    /// the policy's preference with a worker that rotates every
    /// `chaos_steer_period` packets, forcing constant (flow, device)
    /// migration pressure on the flow table's in-flight guard. Also
    /// lifts the host-core clamp on `workers`, so the churn runs
    /// genuinely multi-worker (oversubscribed) even on small CI hosts
    /// (0 = off; real runs leave it off).
    pub chaos_steer_period: u64,
    /// Test-only chaos knob: busy-spin this many ns between inbound
    /// ring polls in every worker's sweep. A stalled destination sweep
    /// is what turns a cross-ring enqueue inversion into an execution
    /// inversion — the consumer resumes mid-sweep past the ring that
    /// holds the earlier packet — so this widens the reorder-race
    /// window from scheduler-preemption-rare to near-certain
    /// (0 = off; real runs leave it off).
    pub chaos_sweep_stall_ns: u64,
    /// Run the pipeline on real bytes: the injector builds genuine
    /// VXLAN-encapsulated frames ([`falcon_wire::FrameFactory`]) and
    /// every stage performs its byte-level slice of work (outer
    /// parse + checksum verify, GRO coalescing, zero-copy decap, FDB
    /// lookup, inner verify + payload digest) before spinning out
    /// whatever remains of the modeled stage budget. Malformed frames
    /// drop with [`DropReason::Malformed`] at the stage that caught
    /// them.
    pub wire: bool,
    /// Wire-mode chaos knob: corrupt roughly this many out of every
    /// million wire segments (one flipped bit each, from a seeded
    /// deterministic stream). 0 = pristine frames. Ignored unless
    /// `wire` is on.
    pub corrupt_per_million: u32,
    /// Seed of the wire-mode corruptor stream; a fixed `(seed, rate)`
    /// corrupts the same segments every run.
    pub wire_seed: u64,
    /// Wire mode: give every worker a private flow-verdict cache
    /// ([`falcon_wire::FlowCache`]). The slow-path result — decap
    /// offsets, bridge port — is cached per flow after one full
    /// verifying pass, so subsequent packets of the flow skip the
    /// modeled decap and bridge stages entirely (the pNIC stages keep
    /// their driver budget; the delivery stage's inner checksum and
    /// digest always run). Cached verdicts are epoch-invalidated on any
    /// FDB change. Ignored unless `wire` is on.
    pub flow_cache: bool,
    /// Entries per worker's flow cache (rounded up to a power of two,
    /// minimum 8). Ignored unless `flow_cache` is on.
    pub flow_cache_entries: usize,
    /// Wire mode: MTU-class slots in the injector's slab buffer pool
    /// (0 = the pool's default sizing). Frames are built in place
    /// inside pre-registered slots and the slots recirculate through
    /// delivery/drop, so steady-state generation allocates nothing.
    /// Tests shrink this to force heap-fallback exhaustion on purpose.
    pub slab_slots: usize,
    /// Live telemetry: when set, every worker publishes its shard each
    /// sweep and a sampler thread snapshots the shards on the
    /// configured interval, streaming JSONL / Prometheus / Perfetto
    /// counter tracks as configured (`None` = telemetry off, zero
    /// hot-path cost beyond a branch).
    pub telemetry: Option<TelemetrySpec>,
}

/// What the telemetry sampler should do with its snapshots.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySpec {
    /// Sampling interval in ms (0 = [`DEFAULT_INTERVAL_MS`]).
    pub interval_ms: u64,
    /// Stream per-interval worker deltas as JSON lines to this path.
    pub jsonl_path: Option<String>,
    /// Serve Prometheus text exposition from this `addr:port`. Port 0
    /// binds ephemerally; the bound address is reported through
    /// [`TelemetryRun::prom_addr`] and, live, via `prom_addr_tx`.
    pub prom_addr: Option<String>,
    /// Receives the bound exposition address as soon as the listener
    /// is up — the only way to learn an ephemeral (port 0) address
    /// while the run is still in flight. The send is best-effort: a
    /// dropped receiver never stalls the run.
    pub prom_addr_tx: Option<std::sync::mpsc::Sender<std::net::SocketAddr>>,
}

impl Default for Scenario {
    fn default() -> Self {
        Scenario {
            policy: PolicyKind::Falcon,
            workers: 4,
            packets: 80_000,
            flows: 1,
            payload: 64,
            shape: TrafficShape::Udp,
            split_gro: false,
            ring_capacity: 512,
            napi_budget: 64,
            steer_two_choice: true,
            work_scale_milli: 1000,
            inject_gap_ns: 0,
            pin: true,
            trace_capacity: 0,
            oversubscribe: false,
            chaos_steer_period: 0,
            chaos_sweep_stall_ns: 0,
            wire: false,
            corrupt_per_million: 0,
            wire_seed: 1,
            flow_cache: false,
            flow_cache_entries: 4096,
            slab_slots: 0,
            telemetry: None,
        }
    }
}

impl Scenario {
    /// The scenario with a different policy, all else equal.
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// The scenario with GRO splitting toggled, all else equal.
    pub fn with_split_gro(mut self, on: bool) -> Self {
        self.split_gro = on;
        self
    }

    /// How many stages this scenario's pipeline runs.
    pub fn n_stages(&self) -> usize {
        if self.split_gro {
            SPLIT_STAGES
        } else {
            STAGES
        }
    }

    /// The modeled per-stage service costs for this scenario, before
    /// `work_scale_milli` scaling.
    pub fn stage_service_ns(&self, cost: &CostModel) -> Vec<u64> {
        match (self.shape, self.split_gro) {
            (TrafficShape::Udp, false) => cost.overlay_udp_stage_ns(self.payload).to_vec(),
            (TrafficShape::Udp, true) => cost.overlay_udp_stage_ns_split(self.payload).to_vec(),
            (TrafficShape::TcpGro { mss }, false) => {
                cost.overlay_tcp_stage_ns(self.payload, mss).to_vec()
            }
            (TrafficShape::TcpGro { mss }, true) => {
                cost.overlay_tcp_stage_ns_split(self.payload, mss).to_vec()
            }
        }
    }

    /// Stage labels matching [`stage_service_ns`](Self::stage_service_ns).
    pub fn stage_labels(&self) -> &'static [&'static str] {
        stage_labels(self.split_gro)
    }

    /// Device table for trace export.
    pub fn trace_meta(&self, workers: usize) -> TraceMeta {
        let mut devices = vec![
            (PNIC_IF, "pnic".to_string()),
            (VXLAN_IF, "vxlan0".to_string()),
            (VETH_IF, "veth0".to_string()),
        ];
        if self.split_gro {
            devices.push((PNIC_SPLIT_IF, "pnic:gro".to_string()));
        }
        TraceMeta {
            n_cores: workers,
            devices,
        }
    }
}

/// Stage labels for the unsplit / split pipelines.
pub fn stage_labels(split: bool) -> &'static [&'static str] {
    const FOUR: &[&str] = &CostModel::OVERLAY_STAGE_LABELS;
    const FIVE: &[&str] = &CostModel::OVERLAY_STAGE_LABELS_SPLIT;
    if split {
        FIVE
    } else {
        FOUR
    }
}

/// A per-(flow, checkpoint, seq) observation for the post-run ordering
/// audit: (lamport clock, worker, flow, checkpoint, seq).
///
/// Earlier revisions drew a ticket from one run-global `AtomicU64` per
/// stage execution — two contended RMWs per packet-stage, the hottest
/// shared cache line in the whole pipeline. The ticket is now a
/// per-worker Lamport clock: each worker keeps a local counter, stamps
/// every record with `local = max(local, pkt_clock) + 1`, carries the
/// clock on the packet across ring hops, and folds it through the
/// in-flight guard's `release_lc` across migration edges. Every
/// happens-before path between two executions at one (flow, checkpoint)
/// — same-thread program order, the ring's release/acquire handoff, or
/// the guard-drain edge a migration synchronizes on — therefore forces
/// strictly increasing clocks, so sorting by `(clock, worker)` replays
/// the audit in causal order with zero shared-line traffic on the hot
/// path. Records the protocol leaves genuinely concurrent (which would
/// already be a guard bug) tie-break by worker id.
type OrderRec = (u64, u32, u64, u32, u64);

/// A packet in flight through the threaded pipeline.
struct DpPkt {
    desc: PktDesc,
    /// Stage to execute on arrival (0=first … `n_stages-1`=last).
    stage: u8,
    /// Epoch timestamp of injection (for one-way latency).
    injected_ns: u64,
    /// Epoch timestamp of the last enqueue (for queueing time).
    enqueued_ns: u64,
    /// Worker that ran the previous stage (`usize::MAX` = none).
    last_worker: usize,
    /// Running FNV-1a digest over the (checkpoint, cpu) hops executed
    /// so far (the ring-crossing equivalent of the simulator's
    /// `skb.trace` log), emitted verbatim at delivery so the
    /// conservation checker can prove it saw every hop in order.
    hop_digest: u64,
    /// Hops folded into `hop_digest`.
    hops: u32,
    /// In-flight guard of the most recent (flow, device) routing. Held
    /// until the packet executes the *next* stage (see `prev_guard`),
    /// or until delivery/drop.
    guard: Option<Arc<InflightGuard>>,
    /// The guard from the routing *before* `guard`, released once the
    /// current stage has executed. Holding it across the hop is what
    /// keeps all in-flight same-flow packets for a stage on one
    /// upstream ring: the pair can't migrate while any packet sits
    /// between its routing decision and the next stage's completion.
    prev_guard: Option<Arc<InflightGuard>>,
    /// The packet's Lamport clock: the latest audit ticket stamped on
    /// it, carried across ring hops (and, via the guard's release
    /// clock, across migrations) so the receiving worker's clock jumps
    /// past every record that happens-before this packet's next one.
    lc: u64,
    /// Flow-cache key of this packet's (single-segment) frame, hashed
    /// once at the first cache consult and carried across hops so later
    /// stages probe without re-hashing. `None` until computed — and
    /// `None` again on an uncacheable frame, which re-derives per stage
    /// (rare: short or non-UDP/TCP inner frames).
    cache_key: Option<u64>,
}

/// What one worker brings home after the run.
#[derive(Debug, Default)]
pub struct WorkerStats {
    /// Stages executed, by stage index (4 or 5 entries).
    pub processed: Vec<u64>,
    /// Packets delivered to the (modeled) socket.
    pub delivered: u64,
    /// Drops by [`DropReason`] index.
    pub drops: [u64; DropReason::ALL.len()],
    /// Real ns this worker spent busy-spinning stage work.
    pub busy_ns: u64,
    /// Steering decisions taken (the A1→A2, B→C and C→D hops).
    pub decisions: u64,
    /// Decisions that used the two-choice rehash.
    pub second_choices: u64,
    /// (flow, device) migrations performed.
    pub migrations: u64,
    /// Whether the pin syscall succeeded.
    pub pinned: bool,
    /// This worker's trace events.
    pub events: Vec<Event>,
    /// Events the trace ring overwrote (0 = the stream is complete).
    pub trace_overflow: u64,
    /// Ordering observations.
    pub order_log: Vec<OrderRec>,
    /// One-way delivery latencies, ns.
    pub latencies: Vec<u64>,
    /// Idle steps spent in the spin-hint tier.
    pub idle_spins: u64,
    /// Idle steps spent yielding.
    pub idle_yields: u64,
    /// Idle steps spent parked.
    pub idle_parks: u64,
    /// Full inbound-ring sweeps performed.
    pub sweeps: u64,
    /// Wire mode: application payload bytes this worker delivered.
    pub bytes_delivered: u64,
    /// Wire mode: `(flow, seq, payload digest)` per delivery — the
    /// evidence the conformance checker compares against
    /// [`FrameFactory::expected_digest`].
    pub digests: Vec<(u64, u64, u64)>,
    /// Wire mode: malformed-frame drops by the stage that caught them
    /// (4 or 5 entries).
    pub malformed_per_stage: Vec<u64>,
    /// Wire mode: bytes each stage touched (on-wire size until decap,
    /// inner-frame size after; 4 or 5 entries).
    pub bytes_per_stage: Vec<u64>,
    /// Flow-verdict cache counters (hits, misses, evictions,
    /// invalidations) — all zero unless the run had `flow_cache` on.
    pub flow_cache: CacheStats,
    /// Wire mode: pool-backed wire buffers this worker recycled whole
    /// (one shell-ring push covering the shell and every leased slot in
    /// it) at delivery or drop. Heap-built buffers drop normally and
    /// are not counted.
    pub slab_recycles: u64,
    /// Wire mode: this worker's conntrack replica (the SCR state
    /// shard), carried home whole so the orchestrator can merge the
    /// shards and the differential oracle can compare merged tables
    /// across policies. `None` outside wire mode.
    pub conntrack: Option<ConnShard>,
    /// Where this worker's wall-clock went: every ns between the start
    /// barrier and thread exit lands in exactly one of the five
    /// attribution buckets (busy work, stalled pushing into a full
    /// downstream ring, popping upstream rings, guard/steering
    /// bookkeeping, idle backoff) — the buckets sum to `stall.wall_ns`
    /// by construction. Unlike `busy_ns` (pure stage-spin time, kept
    /// for goodput math), `stall.busy_ns` also absorbs the per-packet
    /// bookkeeping that surrounds the spin.
    pub stall: StallBreakdown,
}

/// Everything a run produces: per-worker stats plus run-level facts.
#[derive(Debug)]
pub struct RunOutput {
    /// The scenario as actually run (workers clamped).
    pub policy: PolicyKind,
    /// Workers actually spawned.
    pub workers: usize,
    /// Logical cores on the host.
    pub host_cores: usize,
    /// Whether the pipeline ran the five-stage split shape.
    pub split_gro: bool,
    /// Packets handed to the injector.
    pub injected: u64,
    /// Ring-full drops at injection.
    pub inject_drops: u64,
    /// Wall-clock ns from start barrier to pipeline quiescence.
    pub wall_ns: u64,
    /// Modeled per-stage service ns (post-scaling; 4 or 5 entries).
    pub stage_ns: Vec<u64>,
    /// (flow, device) pairs the flow table ended up tracking.
    pub flow_pairs: usize,
    /// Per-worker results.
    pub workers_stats: Vec<WorkerStats>,
    /// The injector's trace events (ring enqueues and inject drops).
    pub injector_events: Vec<Event>,
    /// Events the injector's trace ring overwrote.
    pub injector_overflow: u64,
    /// Whether this run carried real bytes through the stages.
    pub wire: bool,
    /// Wire mode: total wire bytes the injector enqueued (segments of
    /// packets that made it onto a stage-A ring; 0 outside wire mode).
    pub bytes_injected: u64,
    /// Wire mode: segments the corruptor flipped a bit in.
    pub corrupted_segments: u64,
    /// Device table for trace export.
    pub meta: TraceMeta,
    /// Live-telemetry output (samples taken, exporter outcomes), when
    /// [`Scenario::telemetry`] was set.
    pub telemetry: Option<TelemetryRun>,
    /// Final slab-pool counters of the packet source's buffer pool
    /// (leases, recycles, heap fallbacks, …), when the source attached
    /// one ([`Injector::attach_slab_counters`]). Snapshotted after the
    /// workers join, so every recycle push is visible.
    pub slab: Option<falcon_packet::SlabSample>,
}

impl RunOutput {
    /// Number of pipeline stages this run executed.
    pub fn stages(&self) -> usize {
        self.stage_ns.len()
    }

    /// Stage labels matching [`stage_ns`](Self::stage_ns).
    pub fn stage_labels(&self) -> &'static [&'static str] {
        stage_labels(self.split_gro)
    }

    /// Total packets delivered.
    pub fn delivered(&self) -> u64 {
        self.workers_stats.iter().map(|w| w.delivered).sum()
    }

    /// Total drops (in-pipeline plus injection).
    pub fn dropped(&self) -> u64 {
        self.inject_drops
            + self
                .workers_stats
                .iter()
                .map(|w| w.drops.iter().sum::<u64>())
                .sum::<u64>()
    }

    /// Drops by reason, including the injector's ring drops.
    pub fn drops_by_reason(&self) -> [u64; DropReason::ALL.len()] {
        let mut out = [0u64; DropReason::ALL.len()];
        out[DropReason::Ring.index()] = self.inject_drops;
        for w in &self.workers_stats {
            for (acc, d) in out.iter_mut().zip(w.drops.iter()) {
                *acc += d;
            }
        }
        out
    }

    /// Wire mode: application payload bytes delivered across workers.
    pub fn bytes_delivered(&self) -> u64 {
        self.workers_stats.iter().map(|w| w.bytes_delivered).sum()
    }

    /// Wire mode: every delivery's `(flow, seq, payload digest)`,
    /// gathered across workers (unordered).
    pub fn deliveries(&self) -> Vec<(u64, u64, u64)> {
        self.workers_stats
            .iter()
            .flat_map(|w| w.digests.iter().copied())
            .collect()
    }

    /// Wire mode: malformed-frame drops summed across workers, by the
    /// stage that caught them.
    pub fn malformed_per_stage(&self) -> Vec<u64> {
        let mut per_stage = vec![0u64; self.stages()];
        for w in &self.workers_stats {
            for (acc, m) in per_stage.iter_mut().zip(w.malformed_per_stage.iter()) {
                *acc += m;
            }
        }
        per_stage
    }

    /// Wire mode: bytes touched per stage summed across workers.
    pub fn bytes_per_stage(&self) -> Vec<u64> {
        let mut per_stage = vec![0u64; self.stages()];
        for w in &self.workers_stats {
            for (acc, b) in per_stage.iter_mut().zip(w.bytes_per_stage.iter()) {
                *acc += b;
            }
        }
        per_stage
    }

    /// Flow-verdict cache counters summed across workers (all zero
    /// when the run had no cache).
    pub fn flow_cache_stats(&self) -> CacheStats {
        let mut out = CacheStats::default();
        for w in &self.workers_stats {
            out.hits += w.flow_cache.hits;
            out.misses += w.flow_cache.misses;
            out.evictions += w.flow_cache.evictions;
            out.invalidations += w.flow_cache.invalidations;
        }
        out
    }

    /// Flow-cache hit rate, `hits / (hits + misses)` (0.0 when the
    /// cache never consulted).
    pub fn flow_cache_hit_rate(&self) -> f64 {
        let s = self.flow_cache_stats();
        let consults = s.hits + s.misses;
        if consults == 0 {
            0.0
        } else {
            s.hits as f64 / consults as f64
        }
    }

    /// Wire mode: the run's final conntrack table — the per-worker SCR
    /// shards merged through the delta-log replay. For serialized
    /// policies the merge is trivially exact (each flow's packets all
    /// landed in seq order somewhere); for `Replicate` it is the
    /// reconcile step that proves the replicated state converged to
    /// the serialized ground truth. `None` outside wire mode.
    pub fn conntrack_table(&self) -> Option<ConnTable> {
        let shards: Vec<&ConnShard> = self
            .workers_stats
            .iter()
            .filter_map(|w| w.conntrack.as_ref())
            .collect();
        if shards.is_empty() {
            None
        } else {
            Some(merge_shards(shards))
        }
    }

    /// Conntrack/SCR counters summed across workers (all zero outside
    /// wire mode).
    pub fn conntrack_counters(&self) -> ConnCounters {
        let mut out = ConnCounters::default();
        for w in &self.workers_stats {
            if let Some(c) = w.conntrack.as_ref() {
                out.updates += c.counters.updates;
                out.transitions += c.counters.transitions;
                out.delta_records += c.counters.delta_records;
            }
        }
        out
    }

    /// Stage executions summed across workers, by stage index.
    pub fn processed_per_stage(&self) -> Vec<u64> {
        let mut per_stage = vec![0u64; self.stages()];
        for w in &self.workers_stats {
            for (acc, p) in per_stage.iter_mut().zip(w.processed.iter()) {
                *acc += p;
            }
        }
        per_stage
    }

    /// Events the trace rings overwrote anywhere (workers + injector);
    /// nonzero means the merged stream is incomplete and conservation
    /// checks over it are not meaningful.
    pub fn trace_overflow(&self) -> u64 {
        self.injector_overflow
            + self
                .workers_stats
                .iter()
                .map(|w| w.trace_overflow)
                .sum::<u64>()
    }

    /// All trace events (workers + injector) merged chronologically.
    pub fn merged_events(&self) -> Vec<Event> {
        falcon_trace::merge_streams(
            self.workers_stats
                .iter()
                .map(|w| w.events.clone())
                .chain(std::iter::once(self.injector_events.clone())),
        )
    }

    /// Replays every worker's ordering log through the netstack's
    /// [`OrderTracker`](falcon_netstack::ordering::OrderTracker) and returns
    /// (checks, violations). Entries are sorted by the per-worker
    /// Lamport clock stamped as each stage finished (worker id breaks
    /// clock ties). The clock is carried on packets across ring hops
    /// and folded through the in-flight guard's release clock across
    /// migration edges, so any two executions at one (flow, checkpoint)
    /// that the guard protocol orders carry strictly ordered stamps —
    /// the sort replays them in causal order, and a protocol violation
    /// (an execution inversion the guard should have prevented) still
    /// surfaces as a seq regression. Unlike a (timestamp, seq) key, the
    /// clock can't sort genuinely inverted completions into "correct"
    /// order and bias the oracle toward passing.
    pub fn order_audit(&self) -> (u64, u64) {
        let mut log: Vec<OrderRec> = self
            .workers_stats
            .iter()
            .flat_map(|w| w.order_log.iter().copied())
            .collect();
        // Replicate runs under the relaxed SCR ordering contract: a
        // flow's packets execute concurrently on many workers, so
        // per-flow seq monotonicity is *expected* to break — that is
        // the policy's whole trade. What must still hold is exactness:
        // every (flow, checkpoint) executes each seq exactly once
        // (duplicate-freedom; losses already fail the delivery
        // conservation checks). The audit degrades to that check:
        // checks = records audited, violations = duplicates.
        if self.policy == PolicyKind::Replicate {
            let mut seen = std::collections::HashSet::with_capacity(log.len());
            let mut dups = 0u64;
            for &(_, _, flow, checkpoint, seq) in &log {
                if !seen.insert((flow, checkpoint, seq)) {
                    dups += 1;
                }
            }
            return (log.len() as u64, dups);
        }
        log.sort_unstable_by_key(|&(lc, worker, _, _, _)| (lc, worker));
        let mut tracker = falcon_netstack::ordering::OrderTracker::new();
        for (_, _, flow, checkpoint, seq) in log {
            tracker.check(flow, checkpoint, seq, 1);
        }
        (tracker.checks(), tracker.violations())
    }
}

/// Stage checkpoint ids, by stage index. The split pipeline gives the
/// GRO half-stage the synthetic split device's checkpoint.
fn checkpoint(split: bool, stage: u8) -> u32 {
    if split {
        match stage {
            0 => PNIC_IF,
            1 => PNIC_SPLIT_IF,
            2 => PNIC_IF | STAGE_B_CHECK,
            3 => VXLAN_IF,
            4 => VETH_IF,
            _ => unreachable!("no split stage {stage}"),
        }
    } else {
        match stage {
            0 => PNIC_IF,
            1 => PNIC_IF | STAGE_B_CHECK,
            2 => VXLAN_IF,
            3 => VETH_IF,
            _ => unreachable!("no stage {stage}"),
        }
    }
}

/// The steering device for the hop *into* `stage`, or `None` when the
/// hop is backlog-local (the driver poll — or the GRO half — feeding
/// its own CPU's backlog, where no steering point exists).
fn steer_ifindex(split: bool, stage: u8) -> Option<u32> {
    if split {
        match stage {
            1 => Some(PNIC_SPLIT_IF),
            3 => Some(VXLAN_IF),
            4 => Some(VETH_IF),
            _ => None,
        }
    } else {
        match stage {
            2 => Some(VXLAN_IF),
            3 => Some(VETH_IF),
            _ => None,
        }
    }
}

/// What feeds each stage (for drop classification on a full ring).
fn drop_reason_into(split: bool, stage: u8) -> DropReason {
    let gro_cell_stage = if split { 3 } else { 2 };
    match stage {
        0 => DropReason::Ring,
        s if s == gro_cell_stage => DropReason::GroCell,
        _ => DropReason::Backlog,
    }
}

/// Per-worker wire-mode context: what the byte-level stage work needs
/// beyond the packet's own buffer.
struct WireCtx {
    /// The bridge FDB, shared across workers behind an epoch-stamped
    /// RwLock so control-plane mutations (tests, future config reload)
    /// invalidate every worker's cached verdicts.
    fdb: Arc<SharedFdb>,
    host_mac: MacAddr,
    vni: u32,
}

/// Applies one packet's conntrack observation to the worker's shard.
/// Runs inside the bridge stage — on both the verifying slow path and
/// the flow-cache fast path, because state mutation is exactly the work
/// a cached verdict must never skip. `seq` is the packet's per-flow
/// virtual time; a frame that doesn't dissect is a silent no-op (it
/// cannot happen for frames the bridge just verified or previously
/// cached).
fn observe_conntrack(conntrack: Option<&mut ConnShard>, buf: &WireBuf, seq: u64) {
    let Some(shard) = conntrack else { return };
    let Some(inner) = buf.inner_frame() else {
        return;
    };
    if let Some(obs) = conn_observe(inner) {
        shard.record(obs.key, obs.flags, obs.payload_len, seq);
    }
}

/// The real byte slice of work each pipeline stage performs in wire
/// mode, mirroring the kernel path the stage stands for:
///
/// - pNIC poll: outer Ethernet/IP parse, host-MAC filter, outer UDP
///   checksum verify — and, on the unsplit pipeline, GRO coalescing of
///   the segment train (the split pipeline runs coalescing as its own
///   A2 half-stage).
/// - outer stack: zero-copy VXLAN decap — [`vxlan_decap`] records the
///   inner frame as an offset range, no bytes move.
/// - gro_cell (bridge): strict FDB lookup over both inner MACs plus
///   the inner 5-tuple dissect.
/// - container stack: inner L4 checksum verify and the payload
///   delivery digest.
///
/// Returns the delivery evidence at the last stage, `None` earlier;
/// the `bool` is true when a fresh flow-cache hit replaced the stage's
/// kernel work outright (decap / bridge), telling the caller to skip
/// the modeled stage budget too.
///
/// With a cache, single-segment frames are keyed ([`flow_cache_key`])
/// and consulted at every stage before the delivery verify:
///
/// - A **fresh hit** at decap applies the cached inner-frame offsets;
///   at the bridge it stands in for both FDB lookups. Both skip the
///   stage's modeled spin — the cached path genuinely avoids that
///   kernel work, which is the goodput win. A hit at the pNIC stages
///   skips the redundant outer verify but keeps the spin: the driver
///   poll and GRO machinery run regardless of what the stack caches.
/// - A **miss** (or an epoch-stale entry, dropped by the lookup) runs
///   the stage's full verifying slow path, then re-proves the complete
///   chain ([`full_verdict`]) and fills the cache — under the FDB read
///   guard, reading the epoch under that same guard, so a concurrent
///   FDB change can never produce a verdict stamped fresher than the
///   table it was proven against. Failing frames are never cached.
///
/// The delivery stage is never cached: the inner L4 checksum and the
/// payload digest cover per-packet bytes, so they always run — cached
/// and uncached runs drop payload corruption at the same stage.
#[allow(clippy::too_many_arguments)]
fn wire_stage_work(
    wire: &WireCtx,
    split: bool,
    stage: u8,
    buf: &mut WireBuf,
    mut cache: Option<&mut FlowCache>,
    cache_key: &mut Option<u64>,
    conntrack: Option<&mut ConnShard>,
    seq: u64,
) -> Result<(Option<Delivery>, bool), WireError> {
    let op = if split { stage } else { stage + 1 };
    // Cache consult: single-segment frames only (a pre-GRO segment
    // train has no stable key until coalescing re-encapsulates it).
    let mut consulted_miss = false;
    if let Some(cache) = cache.as_deref_mut() {
        if op < 4 && buf.segs.len() == 1 {
            if cache_key.is_none() {
                *cache_key = flow_cache_key(&buf.segs[0]);
            }
            if let Some(key) = *cache_key {
                match cache.lookup(key, wire.fdb.epoch()) {
                    Lookup::Fresh(v) => match op {
                        // The verdict proves the outer envelope already
                        // verified byte-identically (modulo fields the
                        // delivery stage re-checks), so the pNIC verify
                        // is redundant — but its driver budget is not.
                        0 | 1 => return Ok((None, false)),
                        2 => {
                            buf.inner = Some(v.inner_start as usize..v.inner_end as usize);
                            return Ok((None, true));
                        }
                        3 => {
                            // The cached verdict stands in for the FDB
                            // lookups, but the bridge stage is stateful
                            // now: the conntrack update is per-packet
                            // work no verdict can cache, so it runs on
                            // the fast path too — cached and uncached
                            // runs must end with identical tables.
                            observe_conntrack(conntrack, buf, seq);
                            return Ok((None, true));
                        }
                        _ => unreachable!("delivery is never cached"),
                    },
                    Lookup::Stale | Lookup::Miss => consulted_miss = true,
                }
            }
        }
    }
    let result =
        match op {
            // Split stage 0 verifies only; unsplit stage 0 (op 1 skipped
            // via the offset) both verifies and coalesces.
            0 => pnic_verify(buf, wire.host_mac).map(|()| None),
            1 => {
                if !split {
                    pnic_verify(buf, wire.host_mac)?;
                }
                gro_coalesce(buf).map(|()| None)
            }
            2 => vxlan_decap(buf, wire.vni).map(|()| None),
            3 => bridge_lookup(buf, &wire.fdb.read()).map(|_port| {
                // Slow-path bridge pass: the frame just proved both FDB
                // entries and a valid 5-tuple, so the stateful half of
                // the stage applies its conntrack observation.
                observe_conntrack(conntrack, buf, seq);
                None
            }),
            4 => deliver_verify(buf).map(Some),
            _ => unreachable!("no wire work for stage {stage}"),
        };
    // Fill on a consulted miss whose slow work just passed: prove the
    // whole chain once and cache the verdict, so this flow's remaining
    // stages — and every later packet of the flow — hit. The epoch is
    // read under the same read guard the proof runs against.
    if result.is_ok() && consulted_miss {
        if let (Some(cache), Some(key)) = (cache, *cache_key) {
            let fdb = wire.fdb.read();
            let epoch = wire.fdb.epoch();
            if let Some(v) = full_verdict(&buf.segs[0], wire.host_mac, wire.vni, &fdb, epoch) {
                cache.insert(key, v);
            }
        }
    }
    result.map(|d| (d, false))
}

/// The inbound-ring visit order for sweep number `sweep` of a worker
/// with `nsrc` source rings: the identity order rotated by the sweep
/// count. A fixed scan from index 0 gives ring 0's producer structural
/// priority — under saturation it is always drained first, so its
/// producer sees free slots soonest and later rings' producers eat the
/// tail drops. Rotating the starting index hands the "drained first"
/// advantage to each ring in turn.
pub fn sweep_order(sweep: u64, nsrc: usize) -> impl Iterator<Item = usize> {
    let n = nsrc.max(1);
    let start = (sweep % n as u64) as usize;
    (0..nsrc).map(move |k| (start + k) % n)
}

struct WorkerCtx {
    me: usize,
    /// Logical CPU this worker pins to — the topology-aware plan's
    /// target for slot `me`, not necessarily `me` itself (on a
    /// multi-socket host the plan keeps adjacent workers on one node).
    core: usize,
    stage_ns: Vec<u64>,
    split: bool,
    labels: &'static [&'static str],
    locality_penalty_ns: u64,
    napi_budget: usize,
    chaos_steer_period: u64,
    chaos_sweep_stall_ns: u64,
    /// Wire-mode context (`None` = stages spin their full budget with
    /// no byte work, the pre-wire behavior).
    wire: Option<WireCtx>,
    /// This worker's private flow-verdict cache (`None` = every packet
    /// takes the full verifying slow path). Private per worker: no
    /// interior locking, no cross-core cache-line traffic.
    cache: Option<FlowCache>,
    /// This worker's conntrack replica — the SCR state shard the
    /// stateful bridge stage mutates (`Some` exactly when wire mode is
    /// on). Private per worker like the cache; the orchestrator merges
    /// the shards after the run ([`RunOutput::conntrack_table`]).
    conntrack: Option<ConnShard>,
    epoch: Epoch,
    /// This worker's Lamport clock for the ordering audit (see
    /// [`OrderRec`]): bumped past the packet's carried clock on every
    /// stage execution, never touched by another core.
    lc: u64,
    policy: Arc<Policy>,
    flows: Arc<FlowTable>,
    depths: Arc<DepthGauge>,
    delivered: Arc<AtomicU64>,
    dropped: Arc<AtomicU64>,
    shutdown: Arc<AtomicBool>,
    inbound: Vec<Consumer<DpPkt>>,
    outbound: Vec<Producer<DpPkt>>,
    /// Scratch for one ring's popped batch (capacity = NAPI budget).
    batch: Vec<DpPkt>,
    /// Per-destination staging for steered packets, flushed once per
    /// drained batch: one ring publish + one gauge RMW cover the whole
    /// flight instead of one of each per packet. Staged packets still
    /// hold their routing's in-flight guard, so the hand-over-hand
    /// migration protocol is oblivious to the extra buffering.
    outbox: Vec<Vec<DpPkt>>,
    /// Deliveries not yet folded into the shared `delivered` counter.
    delivered_delta: u64,
    /// Drops not yet folded into the shared `dropped` counter.
    dropped_delta: u64,
    tracer: Tracer,
    stats: WorkerStats,
    /// Live-telemetry shard writer (`None` = telemetry off; the hot
    /// path pays one branch).
    telemetry: Option<ShardWriter>,
    /// Per-stage service samples accumulated since the last shard
    /// publish: `(stage, service_ns)`. Drained into the shard's
    /// histograms inside the seqlock write so the recording cost stays
    /// out of the per-packet path.
    hist_scratch: Vec<(u8, u64)>,
}

impl WorkerCtx {
    fn run(mut self, barrier: Arc<Barrier>, pin: bool) -> WorkerStats {
        if pin {
            self.stats.pinned = pin_current_thread(self.core);
        }
        barrier.wait();
        let mut backoff = Backoff::new();
        let nsrc = self.inbound.len();
        // Stall attribution runs on a chained timestamp: `t` is the
        // epoch time up to which this worker's wall-clock has been
        // attributed. Every boundary reads the epoch once, charges the
        // elapsed span to exactly one bucket, and advances `t` — so the
        // buckets sum to `t - wall_start` identically, and unattributed
        // gaps are impossible by construction.
        let wall_start = self.epoch.now_ns();
        let mut t = wall_start;
        loop {
            let mut did_work = false;
            for src in sweep_order(self.stats.sweeps, nsrc) {
                if self.chaos_sweep_stall_ns > 0 {
                    // Chaos stall (tests only): freeze mid-sweep so
                    // packets can pile into rings the sweep already
                    // passed — the inversion shape the guard must
                    // defeat.
                    spin_for_ns(self.chaos_sweep_stall_ns);
                }
                let got = self.inbound[src].pop_batch(&mut self.batch, self.napi_budget);
                // Ring-poll boundary: the poll itself (and any chaos
                // stall riding ahead of it) is time spent hunting
                // upstream rings for input.
                let now = self.epoch.now_ns();
                self.stats.stall.stall_pop_ns += now - t;
                t = now;
                if got == 0 {
                    continue;
                }
                // One gauge RMW for the whole batch; our own staged
                // packets are folded back into the steering signal via
                // `load_plus`, so self-visible depth stays exact.
                self.depths.sub(self.me, got);
                self.depths.note_staleness(self.me, got);
                did_work = true;
                let mut batch = std::mem::take(&mut self.batch);
                for pkt in batch.drain(..) {
                    self.run_packet(pkt, &mut t);
                }
                self.batch = batch;
                // Flush this batch's steered packets before polling the
                // next ring: staging never outlives one drained batch,
                // which keeps the depth signal other workers see stale
                // by at most one NAPI budget.
                self.flush_outbound();
                // Push boundary: everything since the last packet's
                // final boundary was downstream publishing (ring
                // publish, gauge updates, tail-drop accounting).
                let now = self.epoch.now_ns();
                self.stats.stall.stall_push_ns += now - t;
                t = now;
            }
            self.stats.sweeps += 1;
            // Publish delivery/drop progress before any idle wait, or
            // the orchestrator's quiescence poll would stall against
            // counters parked in this worker's locals.
            self.flush_counters();
            self.stats.stall.wall_ns = t - wall_start;
            if did_work || self.stats.sweeps.is_multiple_of(64) {
                self.publish_telemetry();
            }
            if did_work {
                backoff.reset();
            } else {
                if self.shutdown.load(Ordering::Acquire) {
                    let now = self.epoch.now_ns();
                    self.stats.stall.idle_ns += now - t;
                    t = now;
                    break;
                }
                match backoff.idle() {
                    IdleTier::Spin => self.stats.idle_spins += 1,
                    IdleTier::Yield => self.stats.idle_yields += 1,
                    IdleTier::Park => self.stats.idle_parks += 1,
                }
                // Idle boundary: the backoff step (plus the shutdown
                // check and telemetry publish that preceded it) is
                // time with no work available.
                let now = self.epoch.now_ns();
                self.stats.stall.idle_ns += now - t;
                t = now;
            }
        }
        self.stats.stall.wall_ns = t - wall_start;
        self.publish_telemetry();
        self.stats.trace_overflow = self.tracer.overflow();
        self.stats.events = self.tracer.events();
        // Carry the conntrack replica home whole: the orchestrator
        // merges the per-worker shards into the run's final table.
        self.stats.conntrack = self.conntrack.take();
        self.stats
    }

    /// Publishes one destination's staged packets: gauge up-front (the
    /// consumer decrements after pop, so counting after a successful
    /// publish could race that decrement and underflow), one batched
    /// ring publish, then exact tail-drop accounting for whatever the
    /// full ring rejected.
    fn flush_outbound(&mut self) {
        for dst in 0..self.outbound.len() {
            if self.outbox[dst].is_empty() {
                continue;
            }
            let mut staged = std::mem::take(&mut self.outbox[dst]);
            let m = staged.len();
            self.depths.add(dst, m);
            self.depths.note_staleness(dst, m);
            let now = self.epoch.now_ns();
            // Consumers may pop these the instant the publish lands, so
            // anything needed for tracing the accepted prefix must be
            // copied out first.
            let meta: Vec<(u64, u64, u8)> = if self.tracer.is_enabled() {
                staged
                    .iter()
                    .map(|p| (p.desc.id.0, p.desc.flow, p.stage))
                    .collect()
            } else {
                Vec::new()
            };
            let accepted = self.outbound[dst].push_batch(&mut staged);
            self.depths.sub(dst, m - accepted);
            if self.tracer.is_enabled() {
                let qlen = self.depths.depth(dst);
                let gro_cell_stage: u8 = if self.split { 3 } else { 2 };
                for &(pkt_id, flow, stage_in) in meta.iter().take(accepted) {
                    let kind = if stage_in == gro_cell_stage {
                        EventKind::GroCellEnqueue {
                            cpu: dst,
                            pkt: pkt_id,
                            flow,
                            qlen,
                        }
                    } else {
                        EventKind::BacklogEnqueue {
                            cpu: dst,
                            pkt: pkt_id,
                            flow,
                            qlen,
                        }
                    };
                    self.tracer.emit(now, kind);
                }
            }
            // Tail drop, kernel style: the stage's input queue is full
            // and nobody retries. `staged` now holds exactly the
            // rejected suffix.
            for mut pkt in staged.drain(..) {
                if let Some(guard) = pkt.guard.as_deref() {
                    release(guard, self.lc);
                }
                if let Some(prev) = pkt.prev_guard.as_deref() {
                    release(prev, self.lc);
                }
                if let Some(wire) = pkt.desc.wire.take() {
                    if falcon_packet::slab::recycle(wire) {
                        self.stats.slab_recycles += 1;
                    }
                }
                let reason = drop_reason_into(self.split, pkt.stage);
                self.stats.drops[reason.index()] += 1;
                self.tracer.emit(
                    now,
                    EventKind::QueueDrop {
                        reason,
                        cpu: dst,
                        pkt: pkt.desc.id.0,
                        flow: pkt.desc.flow,
                    },
                );
                self.dropped_delta += 1;
            }
            // Hand the (emptied) buffer back so its capacity survives.
            self.outbox[dst] = staged;
        }
    }

    /// Folds locally-accumulated delivery/drop counts into the shared
    /// run counters — one RMW per counter per sweep instead of per
    /// packet.
    fn flush_counters(&mut self) {
        if self.delivered_delta > 0 {
            self.delivered
                .fetch_add(self.delivered_delta, Ordering::Release);
            self.delivered_delta = 0;
        }
        if self.dropped_delta > 0 {
            self.dropped
                .fetch_add(self.dropped_delta, Ordering::Release);
            self.dropped_delta = 0;
        }
    }

    /// One seqlock write session: copies the worker's cumulative
    /// counters and stall buckets into its telemetry shard and drains
    /// the service-time scratch into the per-stage histograms. No-op
    /// (beyond clearing the scratch) when telemetry is off.
    fn publish_telemetry(&mut self) {
        // Mirror the cache's lifetime counters into the stats snapshot
        // first: the final `run()` publish is what makes them visible
        // to the orchestrator even with telemetry off.
        if let Some(cache) = &self.cache {
            self.stats.flow_cache = cache.stats;
        }
        let Some(writer) = self.telemetry.as_mut() else {
            self.hist_scratch.clear();
            return;
        };
        let depth = self.depths.depth(self.me) as u64;
        let staleness = self.depths.staleness(self.me) as u64;
        let conn = self
            .conntrack
            .as_ref()
            .map(|c| c.counters)
            .unwrap_or_default();
        let stats = &self.stats;
        let scratch = &mut self.hist_scratch;
        writer.write(|s| {
            s.counters.sweeps = stats.sweeps;
            s.counters
                .processed_per_stage
                .copy_from_slice(&stats.processed);
            s.counters.delivered = stats.delivered;
            s.counters.bytes_delivered = stats.bytes_delivered;
            s.counters.drops.copy_from_slice(&stats.drops);
            s.counters
                .malformed_per_stage
                .copy_from_slice(&stats.malformed_per_stage);
            s.counters
                .bytes_per_stage
                .copy_from_slice(&stats.bytes_per_stage);
            s.counters.decisions = stats.decisions;
            s.counters.second_choices = stats.second_choices;
            s.counters.migrations = stats.migrations;
            s.counters.flow_cache_hits = stats.flow_cache.hits;
            s.counters.flow_cache_misses = stats.flow_cache.misses;
            s.counters.flow_cache_evictions = stats.flow_cache.evictions;
            s.counters.flow_cache_invalidations = stats.flow_cache.invalidations;
            s.counters.conntrack_updates = conn.updates;
            s.counters.conntrack_transitions = conn.transitions;
            s.counters.scr_delta_records = conn.delta_records;
            s.stall = stats.stall.clone();
            s.ring_depth = depth;
            s.depth_staleness = staleness;
            for &(stage, ns) in scratch.iter() {
                s.stage_service_ns[stage as usize].record(ns);
            }
        });
        scratch.clear();
    }

    /// Executes the packet's current stage, then advances it through
    /// the pipeline — inline while hops stay local, over a ring when
    /// they leave this worker.
    ///
    /// `t` is the caller's chained attribution timestamp (see `run`):
    /// stage completion charges `busy`, the steering block charges
    /// `guard`, and whatever trails the last boundary rides into the
    /// caller's next one.
    fn run_packet(&mut self, mut pkt: DpPkt, t: &mut u64) {
        let last_stage = (self.stage_ns.len() - 1) as u8;
        loop {
            let stage = pkt.stage;
            let cp = checkpoint(self.split, stage);
            let start = self.epoch.now_ns();
            let queued_ns = start.saturating_sub(pkt.enqueued_ns);
            let mut service_ns = self.stage_ns[stage as usize];
            if pkt.last_worker != usize::MAX && pkt.last_worker != self.me {
                service_ns += self.locality_penalty_ns;
            }
            // Wire mode: do the stage's real byte work first, then spin
            // out whatever remains of the modeled budget — the stage's
            // core occupancy stays calibrated to the cost model while
            // the bytes stay honest. A fresh flow-cache hit at the
            // decap or bridge stage skips the budget too: the cached
            // verdict replaces that stage's kernel work outright.
            let mut delivery = None;
            let mut cache_hit_skip = false;
            if let Some(wire) = self.wire.as_ref() {
                let split = self.split;
                let cache = self.cache.as_mut();
                let conntrack = self.conntrack.as_mut();
                let cache_key = &mut pkt.cache_key;
                let seq = pkt.desc.seq;
                let outcome = pkt
                    .desc
                    .wire
                    .as_deref_mut()
                    .ok_or(WireError::NoBuffer)
                    .and_then(|buf| {
                        wire_stage_work(wire, split, stage, buf, cache, cache_key, conntrack, seq)
                            .map(|(d, skip)| (d, skip, falcon_wire::stage_touched_bytes(buf)))
                    });
                match outcome {
                    Ok((d, skip, touched)) => {
                        delivery = d;
                        cache_hit_skip = skip;
                        self.stats.bytes_per_stage[stage as usize] += touched;
                    }
                    Err(_malformed) => {
                        // The frame failed this stage's verification:
                        // drop it here, kernel style (no budget spin —
                        // a drop frees the core early). Both held
                        // routings release so the flow can migrate.
                        let now = self.epoch.now_ns();
                        let wire_ns = now.saturating_sub(start);
                        self.stats.busy_ns += wire_ns;
                        self.stats.stall.busy_ns += now - *t;
                        *t = now;
                        let lc = self.lc.max(pkt.lc);
                        if let Some(guard) = pkt.guard.take() {
                            release(&guard, lc);
                        }
                        if let Some(prev) = pkt.prev_guard.take() {
                            release(&prev, lc);
                        }
                        if let Some(wire) = pkt.desc.wire.take() {
                            if falcon_packet::slab::recycle(wire) {
                                self.stats.slab_recycles += 1;
                            }
                        }
                        self.stats.drops[DropReason::Malformed.index()] += 1;
                        self.stats.malformed_per_stage[stage as usize] += 1;
                        self.tracer.emit(
                            self.epoch.now_ns(),
                            EventKind::QueueDrop {
                                reason: DropReason::Malformed,
                                cpu: self.me,
                                pkt: pkt.desc.id.0,
                                flow: pkt.desc.flow,
                            },
                        );
                        self.dropped_delta += 1;
                        return;
                    }
                }
            }
            let spun = if self.wire.is_some() {
                let wire_ns = self.epoch.now_ns().saturating_sub(start);
                if cache_hit_skip {
                    // Fresh flow-cache hit at decap/bridge: the cached
                    // verdict replaced the stage's kernel work, so the
                    // modeled budget is genuinely not owed. This is
                    // where the cache buys goodput.
                    wire_ns
                } else {
                    wire_ns + spin_for_ns(service_ns.saturating_sub(wire_ns))
                }
            } else {
                spin_for_ns(service_ns)
            };
            let done = self.epoch.now_ns();
            // Busy boundary: the stage spin plus all per-packet
            // bookkeeping since the previous boundary.
            self.stats.stall.busy_ns += done - *t;
            *t = done;
            self.stats.processed[stage as usize] += 1;
            self.stats.busy_ns += spun;
            if self.telemetry.is_some() {
                self.hist_scratch.push((stage, spun));
            }
            pkt.hop_digest = hop_hash_extend(pkt.hop_digest, cp, self.me);
            pkt.hops += 1;
            if self.tracer.is_enabled() {
                self.tracer.emit(
                    start,
                    EventKind::Exec {
                        core: self.me,
                        ctx: Context::SoftIrq,
                        func: self.labels[stage as usize],
                        dur_ns: spun,
                    },
                );
                self.tracer.emit(
                    done,
                    EventKind::StageExec {
                        checkpoint: cp,
                        cpu: self.me,
                        ctx: Context::SoftIrq,
                        pkt: pkt.desc.id.0,
                        flow: pkt.desc.flow,
                        seq: pkt.desc.seq,
                        queued_ns,
                        service_ns: spun,
                    },
                );
            }
            // Audit ticket: bump this worker's Lamport clock past the
            // packet's carried clock. Consecutive executions at one
            // (flow, checkpoint) are linked by happens-before
            // (same-thread program order, the ring's release/acquire
            // across a hop, or the guard-drain edge a migration
            // synchronizes on), and the clock is carried along every
            // one of those edges — so their tickets come out strictly
            // increasing without a single shared-line RMW.
            self.lc = self.lc.max(pkt.lc) + 1;
            pkt.lc = self.lc;
            self.stats
                .order_log
                .push((self.lc, self.me as u32, pkt.desc.flow, cp, pkt.desc.seq));
            // The stage has executed: the packet has retired from the
            // *previous* routing, so that registration can drop. The
            // current routing's guard stays held until the next stage
            // runs (or the packet delivers/drops). The release clock
            // makes this execution's ticket visible to whichever worker
            // a subsequent migration lands on.
            if let Some(prev) = pkt.prev_guard.take() {
                release(&prev, self.lc);
            }

            if stage == last_stage {
                let latency = done.saturating_sub(pkt.injected_ns);
                self.stats.delivered += 1;
                self.stats.latencies.push(latency);
                self.lc += 1;
                self.stats.order_log.push((
                    self.lc,
                    self.me as u32,
                    pkt.desc.flow,
                    DELIVERY_CHECK,
                    pkt.desc.seq,
                ));
                // Delivery is itself a checkpoint, as in the
                // simulator's skb hop log; folding it in keeps the
                // digest comparable across the two executors.
                pkt.hop_digest = hop_hash_extend(pkt.hop_digest, DELIVERY_CHECK, self.me);
                pkt.hops += 1;
                if self.tracer.is_enabled() {
                    self.tracer.emit(
                        done,
                        EventKind::StageExec {
                            checkpoint: DELIVERY_CHECK,
                            cpu: self.me,
                            ctx: Context::SoftIrq,
                            pkt: pkt.desc.id.0,
                            flow: pkt.desc.flow,
                            seq: pkt.desc.seq,
                            queued_ns: 0,
                            service_ns: 0,
                        },
                    );
                }
                self.tracer.emit(
                    done,
                    EventKind::Deliver {
                        cpu: self.me,
                        pkt: pkt.desc.id.0,
                        flow: pkt.desc.flow,
                        latency_ns: latency,
                        hops: pkt.hops,
                        hop_hash: pkt.hop_digest,
                    },
                );
                if let Some(guard) = pkt.guard.take() {
                    release(&guard, self.lc);
                }
                if let Some(d) = delivery {
                    self.stats.bytes_delivered += d.payload_len;
                    self.stats
                        .digests
                        .push((pkt.desc.flow, pkt.desc.seq, d.digest));
                }
                // The packet is consumed: hand its wire buffer back to
                // the injector's slab pool in one shell-ring push. A
                // heap-built buffer recycles nothing and just drops.
                if let Some(wire) = pkt.desc.wire.take() {
                    if falcon_packet::slab::recycle(wire) {
                        self.stats.slab_recycles += 1;
                    }
                }
                self.delivered_delta += 1;
                return;
            }

            pkt.last_worker = self.me;
            pkt.stage += 1;
            pkt.enqueued_ns = done;

            let Some(ifindex) = steer_ifindex(self.split, pkt.stage) else {
                // A backlog-local hop (A→B unsplit, A2→B split): the
                // poll loop feeds its own CPU's backlog, no steering
                // point exists there. The upstream routing's guard
                // rides along until the stage after next has run.
                if self.tracer.is_enabled() {
                    self.tracer.emit(
                        done,
                        EventKind::BacklogEnqueue {
                            cpu: self.me,
                            pkt: pkt.desc.id.0,
                            flow: pkt.desc.flow,
                            qlen: self.depths.depth(self.me),
                        },
                    );
                }
                continue;
            };

            // SCR run-to-completion: under Replicate a packet executes
            // every remaining stage on the worker it landed on — no
            // policy choice, no flow-table registration, no guards.
            // Cross-worker state consistency is the conntrack shards'
            // job, not the steering layer's. Chaos steering still
            // rotates packets across workers (guard-free hops) so the
            // merge path gets exercised under adversarial placement.
            if self.policy.kind() == PolicyKind::Replicate {
                self.stats.decisions += 1;
                let mut dst = self.me;
                if let Some(rot) = pkt.desc.seq.checked_div(self.chaos_steer_period) {
                    let n = self.outbound.len();
                    dst = (rot as usize + pkt.stage as usize) % n;
                }
                let now = self.epoch.now_ns();
                self.stats.stall.guard_wait_ns += now - *t;
                *t = now;
                if dst == self.me {
                    if self.tracer.is_enabled() {
                        self.tracer.emit(
                            done,
                            EventKind::BacklogEnqueue {
                                cpu: self.me,
                                pkt: pkt.desc.id.0,
                                flow: pkt.desc.flow,
                                qlen: self.depths.depth(self.me),
                            },
                        );
                    }
                    continue;
                }
                self.outbox[dst].push(pkt);
                return;
            }
            // A steering point (A1→A2 when split, B→C, C→D). Resolve
            // the policy's preference, then the flow table's
            // order-safe verdict. The load signal folds this worker's
            // own staged-but-unpublished packets back in (`load_plus`),
            // so the only staleness other workers' staging introduces
            // is bounded by one NAPI budget per peer.
            let mut choice = self.policy.choose_by(pkt.desc.rx_hash, ifindex, |c| {
                self.depths.load_plus(c, self.outbox[c].len())
            });
            // Chaos steering (tests only, None when the period is 0):
            // rotate the preferred worker so nearly every packet asks
            // the flow table for a migration, hammering the in-flight
            // guard.
            if let Some(rot) = pkt.desc.seq.checked_div(self.chaos_steer_period) {
                let n = self.outbound.len();
                choice.worker = (rot as usize + pkt.stage as usize) % n;
                choice.second = false;
            }
            self.stats.decisions += 1;
            if choice.second {
                self.stats.second_choices += 1;
            }
            let route = self.flows.route(pkt.desc.flow, ifindex, choice.worker);
            if self.tracer.is_enabled() {
                self.tracer.emit(
                    done,
                    EventKind::FalconChoice {
                        ifindex,
                        hash: pkt.desc.rx_hash,
                        first: choice.first,
                        chosen: route.worker,
                        second: choice.second,
                    },
                );
                if route.migrated {
                    self.tracer.emit(
                        done,
                        EventKind::FlowMigration {
                            flow: pkt.desc.flow,
                            ifindex,
                            from: self.me,
                            to: route.worker,
                        },
                    );
                }
            }
            if route.migrated {
                self.stats.migrations += 1;
            }
            // Hand-over-hand: the old routing's guard becomes the
            // previous-hop hold, released only after the new stage
            // executes.
            pkt.prev_guard = pkt.guard.take();
            pkt.guard = Some(route.guard);
            // Fold the guard's release clock in: if this routing was a
            // migration, the drained predecessor's tickets now
            // happen-before everything this packet stamps next.
            pkt.lc = pkt.lc.max(route.lc);
            // Guard boundary: the policy choice, flow-table routing and
            // hand-over-hand guard exchange since the busy boundary.
            let now = self.epoch.now_ns();
            self.stats.stall.guard_wait_ns += now - *t;
            *t = now;
            let stage_in = pkt.stage;
            let gro_cell_stage: u8 = if self.split { 3 } else { 2 };
            if route.worker == self.me {
                // Steered to ourselves: still a queue insert
                // conceptually, just with no ring crossing.
                if self.tracer.is_enabled() {
                    let qlen = self.depths.depth(self.me);
                    let kind = if stage_in == gro_cell_stage {
                        EventKind::GroCellEnqueue {
                            cpu: self.me,
                            pkt: pkt.desc.id.0,
                            flow: pkt.desc.flow,
                            qlen,
                        }
                    } else {
                        EventKind::BacklogEnqueue {
                            cpu: self.me,
                            pkt: pkt.desc.id.0,
                            flow: pkt.desc.flow,
                            qlen,
                        }
                    };
                    self.tracer.emit(done, kind);
                }
                continue;
            }
            // Stage toward the destination; the batch flush after this
            // ring's drain publishes it (ring + gauge) in one shot.
            // Ordering is safe because the staged packet still holds
            // both guards: the (flow, device) pair can't migrate while
            // it sits here, so all in-flight same-flow packets for the
            // routed stage keep sharing this worker's FIFO path.
            self.outbox[route.worker].push(pkt);
            return;
        }
    }
}

/// How long the injector yields against a full stage-A ring before
/// giving up and tail-dropping. Open-loop injection wants backpressure,
/// not loss, so this is generous; it only trips if workers stall.
const INJECT_MAX_YIELDS: u32 = 1_000_000;

/// The provenance header stamped on every BENCH artifact: schema
/// version, git sha, hostname, and this host's core/package summary
/// from the sysfs topology (identity fallback when unreadable).
pub fn run_meta(artifact: &str) -> RunMeta {
    let cores = available_cores();
    let (packages, summary) = match crate::topology::CpuTopology::detect() {
        Some(topo) => (
            topo.packages(),
            format!("{} logical cpus / {} packages", topo.len(), topo.packages()),
        ),
        None => (1, format!("{cores} logical cpus (topology unreadable)")),
    };
    RunMeta::collect(artifact, cores, packages, &summary)
}

/// A stable per-flow RSS hash, like the NIC's Toeplitz over the
/// 5-tuple. Shared by the synthetic injector and the live-socket
/// ingestion frontend so both steer a given flow identically.
pub fn rss_hash_for_flow(flow: u64) -> u32 {
    hash_32(0x517c_c1b7u32.wrapping_add(flow as u32), 32)
}

/// The handle a packet source drives to push descriptors into a
/// running pipeline. It owns the injector slot of the ring mesh
/// (source index `n`) and replicates exactly what the synthetic
/// injector does per packet: route through the [`FlowTable`], charge
/// the depth gauge, and spin-then-drop on a full ring — so an external
/// source (e.g. the live-socket rx thread) feeds the same stages,
/// steering policies, and in-flight guard as every other run.
pub struct Injector {
    to_workers: Vec<Producer<DpPkt>>,
    policy: Arc<Policy>,
    flows: Arc<FlowTable>,
    depths: Arc<DepthGauge>,
    delivered: Arc<AtomicU64>,
    dropped: Arc<AtomicU64>,
    epoch: Epoch,
    tracer: Tracer,
    rx_counters: Arc<falcon_telemetry::RxCounters>,
    telem_hub: Option<Arc<Hub>>,
    /// Wire mode: the run's shared bridge FDB, so a scripted source can
    /// mutate the control plane mid-run (epoch-invalidating every
    /// worker's cached flow verdicts). `None` outside wire mode.
    fdb: Option<Arc<SharedFdb>>,
    injected: u64,
    inject_drops: u64,
    bytes_injected: u64,
    /// Slab-pool counters of the packet source's buffer pool, once the
    /// source attaches them — surfaced in [`RunOutput::slab`] and, with
    /// telemetry on, streamed as `"kind":"slab"` JSONL lines and
    /// `falcon_slab_*` Prometheus series.
    slab: Option<Arc<falcon_packet::SlabCounters>>,
}

impl Injector {
    /// Run-relative nanoseconds on the pipeline's epoch.
    pub fn now_ns(&self) -> u64 {
        self.epoch.now_ns()
    }

    /// Packets handed to [`inject`](Self::inject) so far (delivered or
    /// dropped, every one is accounted for by quiescence).
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Packets tail-dropped at the injector because a worker ring
    /// stayed full past the yield budget.
    pub fn inject_drops(&self) -> u64 {
        self.inject_drops
    }

    /// Wire mode: the run's shared bridge FDB. Mutating it (set /
    /// remove) bumps the invalidation epoch, so every worker's cached
    /// flow verdicts re-verify on their next consult. The FDB-churn
    /// conformance tests drive this between injection phases.
    pub fn fdb(&self) -> Option<&Arc<SharedFdb>> {
        self.fdb.as_ref()
    }

    /// Blocks until every packet injected so far is accounted for as a
    /// delivery or a drop (60 s deadline, same as the orchestrator's
    /// quiescence poll — it only trips if the pipeline wedges). A
    /// scripted source calls this before mutating shared control-plane
    /// state (e.g. the FDB) so the mutation is quiescent: no packet is
    /// in flight to race it, which keeps churn runs deterministic.
    pub fn wait_quiesced(&self) {
        let deadline = std::time::Instant::now() + Duration::from_secs(60);
        while self.delivered.load(Ordering::Acquire) + self.dropped.load(Ordering::Acquire)
            < self.injected
        {
            if std::time::Instant::now() >= deadline {
                break;
            }
            std::thread::yield_now();
        }
    }

    /// Rx-thread telemetry counters. Always present and free to
    /// increment; call [`enable_rx_telemetry`](Self::enable_rx_telemetry)
    /// once to also surface them through the live sampler.
    pub fn rx_counters(&self) -> &Arc<falcon_telemetry::RxCounters> {
        &self.rx_counters
    }

    /// Attaches the rx counters to the run's telemetry hub (if the
    /// scenario has telemetry on), so they stream as `"kind":"rx"`
    /// JSONL lines and `falcon_rx_*` Prometheus series. Synthetic runs
    /// never call this, which keeps their exports byte-compatible.
    /// Returns the counters for convenience.
    pub fn enable_rx_telemetry(&mut self) -> Arc<falcon_telemetry::RxCounters> {
        if let Some(hub) = &self.telem_hub {
            hub.attach_rx(Arc::clone(&self.rx_counters));
        }
        Arc::clone(&self.rx_counters)
    }

    /// Attaches the source's slab-pool counters to the run: they land
    /// in [`RunOutput::slab`] at the end and, when the scenario has
    /// telemetry on, stream live through the sampler. Mirrors
    /// [`enable_rx_telemetry`](Self::enable_rx_telemetry).
    pub fn attach_slab_counters(&mut self, counters: Arc<falcon_packet::SlabCounters>) {
        if let Some(hub) = &self.telem_hub {
            hub.attach_slab(Arc::clone(&counters));
        }
        self.slab = Some(counters);
    }

    /// Routes one descriptor and pushes it at the chosen worker's
    /// ring, yielding while the ring is full and tail-dropping (guard
    /// released, drop counted) after the yield budget. Returns whether
    /// the packet entered the pipeline; either way it is counted, so
    /// the orchestrator's quiescence poll stays exact.
    pub fn inject(&mut self, desc: PktDesc) -> bool {
        self.injected += 1;
        let pkt_bytes = desc.wire.as_ref().map_or(0, |w| w.wire_bytes());
        let id = desc.id.0;
        let flow = desc.flow;
        // Replicate sprays packets across workers round-robin at the
        // injector — deliberately ignoring the flow hash, so a single
        // heavy flow spreads over every core instead of pinning its
        // RSS core. No flow-table registration and no guard: SCR
        // replaces serialization with per-worker state replicas.
        let (dst, guard, lc) = if self.policy.kind() == PolicyKind::Replicate {
            (
                ((self.injected - 1) % self.to_workers.len() as u64) as usize,
                None,
                0,
            )
        } else {
            let want = self.policy.rss_worker(desc.rx_hash);
            let route = self.flows.route(flow, PNIC_IF, want);
            // The audit clock seeds from the guard: after an RSS
            // migration the receiving worker must stamp past the
            // drained predecessor's records.
            (route.worker, Some(route.guard), route.lc)
        };
        let now = self.epoch.now_ns();
        let mut pkt = DpPkt {
            desc,
            stage: 0,
            injected_ns: now,
            enqueued_ns: now,
            last_worker: usize::MAX,
            hop_digest: HOP_HASH_INIT,
            hops: 0,
            guard,
            prev_guard: None,
            lc,
            cache_key: None,
        };
        let mut yields = 0u32;
        loop {
            // Gauge before push, undone on failure — same underflow
            // hazard as the worker's enqueue.
            self.depths.inc(dst);
            match self.to_workers[dst].try_push(pkt) {
                Ok(()) => {
                    self.bytes_injected += pkt_bytes;
                    if self.tracer.is_enabled() {
                        self.tracer.emit(
                            self.epoch.now_ns(),
                            EventKind::RingEnqueue {
                                queue: dst,
                                pkt: id,
                                flow,
                                qlen: self.depths.depth(dst),
                            },
                        );
                    }
                    return true;
                }
                Err(mut back) => {
                    self.depths.dec(dst);
                    yields += 1;
                    if yields >= INJECT_MAX_YIELDS {
                        if let Some(guard) = back.guard.as_deref() {
                            release(guard, back.lc);
                        }
                        // Recycle the dropped packet's wire buffer so a
                        // wedged worker can't bleed the slab pool dry.
                        if let Some(wire) = back.desc.wire.take() {
                            falcon_packet::slab::recycle(wire);
                        }
                        self.inject_drops += 1;
                        self.tracer.emit(
                            self.epoch.now_ns(),
                            EventKind::QueueDrop {
                                reason: DropReason::Ring,
                                cpu: dst,
                                pkt: id,
                                flow,
                            },
                        );
                        self.dropped.fetch_add(1, Ordering::Release);
                        return false;
                    }
                    pkt = back;
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// Worker-thread count a scenario actually runs with. Chaos and
/// oversubscribed runs deliberately skip the host-core clamp: their
/// correctness stress needs real multi-worker ring crossings even on a
/// 1-core CI host and doesn't care about perf-clean pinning.
fn effective_workers(scenario: &Scenario) -> usize {
    if scenario.chaos_steer_period > 0 || scenario.oversubscribe {
        scenario.workers.max(1)
    } else {
        clamp_workers(scenario.workers)
    }
}

/// Sizes the slab pool from the scenario's packet budget so the
/// steady-state wire path never falls back to the heap.
///
/// The number of segments alive at once is bounded by what the rings
/// and in-flight batches can hold: each of the `n` workers has `n + 1`
/// inbound rings (peers + injector) of `ring_capacity` slots, plus a
/// NAPI batch and an outbox per peer in flight on each worker, plus
/// injector slack. Short runs need no more than every packet resident
/// simultaneously, so take the min of the two bounds, convert packets
/// to wire segments per the traffic shape, and cap at 64 Ki slots so a
/// huge `packets` budget can't balloon the pool.
fn size_slab_for(scenario: &Scenario, cfg: &mut falcon_packet::SlabConfig) {
    let n = effective_workers(scenario);
    let (seg_payload, segs_per_pkt) = match scenario.shape {
        TrafficShape::Udp => (scenario.payload, 1),
        TrafficShape::TcpGro { mss } => (
            scenario.payload.min(mss.max(1)),
            scenario.payload.div_ceil(mss.max(1)).max(1),
        ),
    };
    let inflight_pkts =
        (n + 1) * n * scenario.ring_capacity + n * (n + 1) * scenario.napi_budget.max(1) + 64;
    let slots = (scenario.packets as usize)
        .min(inflight_pkts)
        .saturating_mul(segs_per_pkt)
        .saturating_add(64)
        .min(65_536);
    // Headers (ethernet + ipv4 + l4 + VXLAN encapsulation) add ~104
    // bytes on top of the segment payload; 128 leaves margin.
    if seg_payload + 128 <= falcon_packet::slab::MTU_SLOT {
        cfg.mtu_slots = cfg.mtu_slots.max(slots);
    } else {
        cfg.jumbo_slots = cfg.jumbo_slots.max(slots);
    }
}

/// The synthetic in-process packet source [`run_scenario`] runs:
/// `scenario.packets` descriptors round-robin across flows, with real
/// wire bytes (possibly chaos-corrupted) in wire mode. Returns the
/// number of segments the corruptor flipped.
///
/// Wire frames are built in place inside slab-pool slots
/// ([`falcon_wire::SlabFrameBuilder`]): the pool's slots and shells
/// recirculate through the workers' delivery/drop recycling, so after
/// the first lap of the pool the source allocates nothing per packet.
/// The bytes are identical to the old heap path by construction.
fn synthetic_source(scenario: &Scenario, inj: &mut Injector) -> u64 {
    let factory = FrameFactory::default();
    let mut corruptor = Corruptor::new(scenario.wire_seed, scenario.corrupt_per_million);
    let mut seqs = vec![0u64; scenario.flows.max(1) as usize];
    let mut slab = scenario.wire.then(|| {
        let mut cfg = falcon_packet::SlabConfig::default();
        if scenario.slab_slots > 0 {
            cfg.mtu_slots = scenario.slab_slots;
        } else {
            size_slab_for(scenario, &mut cfg);
        }
        let pool = falcon_packet::SlabPool::new(cfg);
        inj.attach_slab_counters(pool.counters());
        (pool, falcon_wire::SlabFrameBuilder::new(factory))
    });
    for i in 0..scenario.packets {
        let flow = i % scenario.flows.max(1);
        let seq = seqs[flow as usize];
        seqs[flow as usize] += 1;
        let mut desc = PktDesc::new(
            i,
            flow,
            seq,
            rss_hash_for_flow(flow),
            scenario.payload as u32,
        );
        if let Some((pool, builder)) = slab.as_mut() {
            // Real bytes: the exact segments a sender's TSO would
            // emit, possibly bit-flipped by the chaos corruptor before
            // they hit the "NIC".
            let mut wire = match scenario.shape {
                TrafficShape::Udp => builder.udp_wire(pool, flow, seq, scenario.payload),
                TrafficShape::TcpGro { mss } => {
                    builder.tcp_wire(pool, flow, seq, scenario.payload, mss)
                }
            };
            for seg in wire.segs.iter_mut() {
                corruptor.maybe_corrupt(seg);
            }
            desc = desc.with_wire(wire);
        }
        inj.inject(desc);
        if scenario.inject_gap_ns > 0 {
            spin_for_ns(scenario.inject_gap_ns);
        }
    }
    if let Some((pool, _)) = slab.as_mut() {
        // Let the pipeline finish, then drain the return rings once so
        // the run's final counters show the full recycle picture (and
        // leak diagnostics can compare free slots against the config).
        inj.wait_quiesced();
        pool.drain_returns();
    }
    corruptor.flipped
}

/// Runs one scenario to completion and returns the full output.
///
/// Spawns `scenario.workers` (clamped to the host) worker threads plus
/// an injector, waits for every injected packet to be delivered or
/// dropped, then joins everything and hands back per-worker stats.
pub fn run_scenario(scenario: &Scenario) -> RunOutput {
    let s = scenario.clone();
    let (mut out, flipped) = run_scenario_from(scenario, move |inj| synthetic_source(&s, inj));
    out.corrupted_segments = flipped;
    out
}

/// Runs one scenario with an external packet source in the injector
/// slot.
///
/// `source` runs on the injector thread after the start barrier and
/// drives [`Injector::inject`] until it has no more packets; its
/// return value is handed back next to the [`RunOutput`]. Quiescence
/// waits on the *actual* injected count, not `scenario.packets` —
/// `scenario.packets` only pre-sizes the per-worker logs, so a source
/// should still set it to its best packet-count estimate.
pub fn run_scenario_from<S, R>(scenario: &Scenario, source: S) -> (RunOutput, R)
where
    S: FnOnce(&mut Injector) -> R + Send + 'static,
    R: Send + 'static,
{
    let n = effective_workers(scenario);
    let cost = CostModel::kernel_5_4();
    let mut stage_ns = scenario.stage_service_ns(&cost);
    for s in stage_ns.iter_mut() {
        *s = *s * scenario.work_scale_milli / 1000;
    }
    let locality_penalty_ns = cost.locality_penalty_ns * scenario.work_scale_milli / 1000;
    let n_stages = stage_ns.len();

    // Wire mode: one factory describes every frame; the FDB is
    // programmed once with both endpoint MACs of every flow and shared
    // read-only across workers.
    let wire_setup = if scenario.wire {
        let factory = FrameFactory::default();
        let fdb = Arc::new(SharedFdb::new(Fdb::for_flows(
            &factory,
            scenario.flows.max(1),
        )));
        Some((factory, fdb))
    } else {
        None
    };

    let policy = Arc::new(Policy::with_two_choice(
        scenario.policy,
        n,
        scenario.steer_two_choice,
    ));
    let flows = Arc::new(FlowTable::new(n * 4));
    let depths = Arc::new(DepthGauge::new(n, scenario.napi_budget.max(1)));
    let delivered = Arc::new(AtomicU64::new(0));
    let dropped = Arc::new(AtomicU64::new(0));
    let shutdown = Arc::new(AtomicBool::new(false));
    // Workers + injector + the orchestrating thread.
    let barrier = Arc::new(Barrier::new(n + 2));
    let epoch = Epoch::start();

    // Ring mesh: producer side indexed [src][dst], consumer side
    // [dst][src]. Sources 0..n are workers; source n is the injector.
    let mut producers: Vec<Vec<Option<Producer<DpPkt>>>> =
        (0..=n).map(|_| (0..n).map(|_| None).collect()).collect();
    let mut consumers: Vec<Vec<Option<Consumer<DpPkt>>>> =
        (0..n).map(|_| (0..=n).map(|_| None).collect()).collect();
    for (src, row) in producers.iter_mut().enumerate() {
        for (dst, slot) in row.iter_mut().enumerate() {
            let (tx, rx) = ring::<DpPkt>(scenario.ring_capacity);
            *slot = Some(tx);
            consumers[dst][src] = Some(rx);
        }
    }

    let napi_budget = scenario.napi_budget.max(1);
    // NUMA/SMT-aware pin targets: worker slot `me` pins to
    // `pin_plan[me]`. Falls back to the identity plan when the sysfs
    // topology is unreadable.
    let pin_plan = crate::topology::core_plan(n);
    // Preallocate the per-worker logs from the packet budget: the
    // order log holds every stage execution plus the delivery record,
    // and a single worker can in the worst case run all of them.
    // Growing these mid-run reallocates inside the hot path and shows
    // up as latency outliers.
    let order_log_cap = (scenario.packets as usize).saturating_mul(n_stages + 1);

    // Rx-thread telemetry counters: always created (they are a few
    // atomics), attached to the sampler's hub when telemetry is on, and
    // handed to the packet source through the Injector.
    let rx_counters = Arc::new(falcon_telemetry::RxCounters::new());

    // Live telemetry: one shard per worker, writers handed out by
    // worker index; the sampler thread starts before the workers pass
    // the barrier so the run's first interval is covered.
    let mut telemetry_setup = scenario.telemetry.as_ref().map(|spec| {
        let labels = stage_labels(scenario.split_gro)
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (hub, writers) = Hub::new(n, labels, DropReason::ALL.len());
        let interval_ms = if spec.interval_ms == 0 {
            DEFAULT_INTERVAL_MS
        } else {
            spec.interval_ms
        };
        let sampler = Sampler::spawn(
            Arc::clone(&hub),
            move || epoch.now_ns(),
            SamplerConfig {
                interval_ms,
                jsonl_path: spec.jsonl_path.clone(),
                prom_addr: spec.prom_addr.clone(),
                meta: run_meta("telemetry"),
            },
        )
        .expect("telemetry sampler: bad --prom-addr or unwritable path");
        // Report the bound exposition address while the run is live —
        // with port 0 this is the only way a caller can learn it in
        // time to scrape mid-flight.
        if let (Some(tx), Some(addr)) = (&spec.prom_addr_tx, sampler.prom_addr()) {
            let _ = tx.send(addr);
        }
        (sampler, writers, hub)
    });
    let mut telem_writers: Vec<Option<ShardWriter>> = match telemetry_setup.as_mut() {
        Some((_, writers, _)) => std::mem::take(writers).into_iter().map(Some).collect(),
        None => (0..n).map(|_| None).collect(),
    };
    let telem_hub = telemetry_setup.as_ref().map(|(_, _, hub)| Arc::clone(hub));

    let mut handles = Vec::with_capacity(n);
    for (me, inbound_row) in consumers.into_iter().enumerate() {
        let ctx = WorkerCtx {
            me,
            core: pin_plan[me],
            stage_ns: stage_ns.clone(),
            split: scenario.split_gro,
            labels: stage_labels(scenario.split_gro),
            locality_penalty_ns,
            napi_budget,
            chaos_steer_period: scenario.chaos_steer_period,
            chaos_sweep_stall_ns: scenario.chaos_sweep_stall_ns,
            wire: wire_setup.as_ref().map(|(factory, fdb)| WireCtx {
                fdb: Arc::clone(fdb),
                host_mac: FrameFactory::host_mac(),
                vni: factory.vni,
            }),
            cache: (scenario.wire && scenario.flow_cache)
                .then(|| FlowCache::new(scenario.flow_cache_entries)),
            conntrack: scenario.wire.then(ConnShard::new),
            epoch,
            lc: 0,
            policy: Arc::clone(&policy),
            flows: Arc::clone(&flows),
            depths: Arc::clone(&depths),
            delivered: Arc::clone(&delivered),
            dropped: Arc::clone(&dropped),
            shutdown: Arc::clone(&shutdown),
            inbound: inbound_row.into_iter().flatten().collect(),
            outbound: producers[me]
                .iter_mut()
                .map(|p| p.take().expect("worker producer"))
                .collect(),
            batch: Vec::with_capacity(napi_budget),
            outbox: (0..n).map(|_| Vec::with_capacity(napi_budget)).collect(),
            delivered_delta: 0,
            dropped_delta: 0,
            tracer: if scenario.trace_capacity > 0 {
                Tracer::new(scenario.trace_capacity)
            } else {
                Tracer::disabled()
            },
            stats: WorkerStats {
                processed: vec![0; n_stages],
                order_log: Vec::with_capacity(order_log_cap),
                latencies: Vec::with_capacity(scenario.packets as usize),
                digests: Vec::with_capacity(if scenario.wire {
                    scenario.packets as usize
                } else {
                    0
                }),
                malformed_per_stage: vec![0; n_stages],
                bytes_per_stage: vec![0; n_stages],
                ..WorkerStats::default()
            },
            telemetry: telem_writers[me].take(),
            hist_scratch: Vec::with_capacity(napi_budget.saturating_mul(n_stages + 1)),
        };
        let barrier = Arc::clone(&barrier);
        let pin = scenario.pin;
        handles.push(
            std::thread::Builder::new()
                .name(format!("dp-worker-{me}"))
                .spawn(move || ctx.run(barrier, pin))
                .expect("spawn worker"),
        );
    }

    // Injector: source index n. The source (synthetic or external)
    // runs on this thread and drives the Injector handle.
    let injector = {
        let to_workers: Vec<Producer<DpPkt>> = producers[n]
            .iter_mut()
            .map(|p| p.take().expect("injector producer"))
            .collect();
        let policy = Arc::clone(&policy);
        let flows_table = Arc::clone(&flows);
        let depths = Arc::clone(&depths);
        let delivered = Arc::clone(&delivered);
        let dropped = Arc::clone(&dropped);
        let barrier = Arc::clone(&barrier);
        let rx_counters = Arc::clone(&rx_counters);
        let inj_fdb = wire_setup.as_ref().map(|(_, fdb)| Arc::clone(fdb));
        let trace_capacity = scenario.trace_capacity;
        std::thread::Builder::new()
            .name("dp-injector".to_string())
            .spawn(move || {
                let tracer = if trace_capacity > 0 {
                    Tracer::new(trace_capacity)
                } else {
                    Tracer::disabled()
                };
                barrier.wait();
                let mut inj = Injector {
                    to_workers,
                    policy,
                    flows: flows_table,
                    depths,
                    delivered,
                    dropped,
                    epoch,
                    tracer,
                    rx_counters,
                    telem_hub,
                    fdb: inj_fdb,
                    injected: 0,
                    inject_drops: 0,
                    bytes_injected: 0,
                    slab: None,
                };
                let result = source(&mut inj);
                let Injector {
                    injected,
                    inject_drops,
                    bytes_injected,
                    tracer,
                    slab,
                    ..
                } = inj;
                (
                    injected,
                    inject_drops,
                    bytes_injected,
                    tracer.overflow(),
                    tracer.events(),
                    slab,
                    result,
                )
            })
            .expect("spawn injector")
    };
    drop(producers);

    barrier.wait();
    let t0 = epoch.now_ns();
    let (
        injected,
        inject_drops,
        bytes_injected,
        injector_overflow,
        injector_events,
        slab_counters,
        source_out,
    ) = injector.join().expect("injector thread");

    // Quiescence: every injected packet is accounted for as a delivery
    // or a drop — against the count the source actually injected, which
    // for an external source may differ from `scenario.packets`. The
    // deadline only trips if the pipeline wedges.
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    while delivered.load(Ordering::Acquire) + dropped.load(Ordering::Acquire) < injected {
        if std::time::Instant::now() >= deadline {
            break;
        }
        std::thread::yield_now();
    }
    let wall_ns = epoch.now_ns() - t0;
    shutdown.store(true, Ordering::Release);

    let workers_stats: Vec<WorkerStats> = handles
        .into_iter()
        .map(|h| h.join().expect("worker thread"))
        .collect();

    // Stop the sampler only after the workers have joined: its final
    // snapshot then sees every worker's last publish, so the interval
    // deltas telescope exactly to the final stats.
    let telemetry = telemetry_setup.map(|(sampler, _, _)| sampler.finish());

    (
        RunOutput {
            policy: scenario.policy,
            workers: n,
            host_cores: available_cores(),
            split_gro: scenario.split_gro,
            injected,
            inject_drops,
            wall_ns,
            stage_ns,
            flow_pairs: flows.pairs(),
            workers_stats,
            injector_events,
            injector_overflow,
            wire: scenario.wire,
            bytes_injected,
            corrupted_segments: 0,
            meta: scenario.trace_meta(n),
            telemetry,
            slab: slab_counters.map(|c| c.snapshot()),
        },
        source_out,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fast scenario for unit tests: tiny work units, modest packet
    /// count, no pinning (CI runners may share cores).
    fn quick(policy: PolicyKind, workers: usize) -> Scenario {
        Scenario {
            policy,
            workers,
            packets: 2_000,
            flows: 3,
            payload: 64,
            ring_capacity: 256,
            napi_budget: 32,
            work_scale_milli: 20,
            inject_gap_ns: 0,
            pin: false,
            trace_capacity: 0,
            ..Scenario::default()
        }
    }

    #[test]
    fn telemetry_shards_match_final_stats_and_stall_closes() {
        let mut s = quick(PolicyKind::Falcon, 2);
        s.telemetry = Some(TelemetrySpec {
            interval_ms: 1,
            ..TelemetrySpec::default()
        });
        let out = run_scenario(&s);
        let run = out.telemetry.as_ref().expect("telemetry run");
        assert!(!run.samples.is_empty());
        let last = run.samples.last().expect("final snapshot");
        assert_eq!(last.workers.len(), out.workers);
        for (w, stats) in out.workers_stats.iter().enumerate() {
            let shard = &last.workers[w];
            // The sampler's final snapshot runs after the workers have
            // joined, so the cumulative shard equals the final stats.
            assert_eq!(shard.counters.delivered, stats.delivered);
            assert_eq!(shard.counters.sweeps, stats.sweeps);
            assert_eq!(shard.counters.processed_per_stage, stats.processed);
            assert_eq!(shard.counters.drops.as_slice(), &stats.drops[..]);
            assert_eq!(shard.counters.decisions, stats.decisions);
            assert_eq!(shard.counters.migrations, stats.migrations);
            assert_eq!(shard.stall, stats.stall);
            // Chained attribution: the five buckets sum to wall-clock
            // exactly, not just ≥ 95 %.
            assert_eq!(
                stats.stall.attributed_ns(),
                stats.stall.wall_ns,
                "worker {w} stall buckets must close"
            );
            assert!(stats.stall.wall_ns > 0);
            // The depth gauge's documented staleness bound, measured:
            // no batched update ever exceeded one NAPI budget.
            assert!(
                shard.depth_staleness <= s.napi_budget as u64,
                "worker {w} staleness {} > NAPI budget {}",
                shard.depth_staleness,
                s.napi_budget
            );
            // Every stage execution landed one service-time sample.
            let hist_count: u64 = shard.stage_service_ns.iter().map(|h| h.count()).sum();
            let processed: u64 = stats.processed.iter().sum();
            assert_eq!(hist_count, processed, "worker {w} histogram coverage");
        }
    }

    #[test]
    fn vanilla_conserves_and_orders() {
        let out = run_scenario(&quick(PolicyKind::Vanilla, 2));
        assert_eq!(out.delivered() + out.dropped(), out.injected);
        let (checks, violations) = out.order_audit();
        assert!(checks > 0);
        assert_eq!(violations, 0, "vanilla must never reorder");
    }

    #[test]
    fn falcon_conserves_and_orders() {
        let out = run_scenario(&quick(PolicyKind::Falcon, 2));
        assert_eq!(out.delivered() + out.dropped(), out.injected);
        let (checks, violations) = out.order_audit();
        assert!(checks > 0);
        assert_eq!(violations, 0, "falcon must never reorder");
    }

    #[test]
    fn every_stage_runs_once_per_delivered_packet() {
        let out = run_scenario(&quick(PolicyKind::Falcon, 2));
        let delivered = out.delivered();
        let per_stage = out.processed_per_stage();
        assert_eq!(per_stage.len(), STAGES);
        // Stage A ran for everything that entered; the last stage
        // exactly for deliveries; drops in between explain any
        // difference.
        assert_eq!(per_stage[STAGES - 1], delivered);
        assert!(per_stage.windows(2).all(|w| w[0] >= w[1]));
        assert_eq!(per_stage[0], out.injected - out.inject_drops);
    }

    #[test]
    fn split_gro_runs_five_stages() {
        let mut s = quick(PolicyKind::Falcon, 2);
        s.split_gro = true;
        s.shape = TrafficShape::TcpGro { mss: 1448 };
        s.payload = 4096;
        let out = run_scenario(&s);
        assert_eq!(out.stages(), SPLIT_STAGES);
        assert_eq!(out.stage_labels()[1], "pnic_gro");
        assert_eq!(out.delivered() + out.dropped(), out.injected);
        let per_stage = out.processed_per_stage();
        assert_eq!(per_stage.len(), SPLIT_STAGES);
        assert_eq!(per_stage[SPLIT_STAGES - 1], out.delivered());
        assert!(per_stage.windows(2).all(|w| w[0] >= w[1]));
        assert_eq!(per_stage[0], out.injected - out.inject_drops);
        let (checks, violations) = out.order_audit();
        assert!(checks > 0);
        assert_eq!(violations, 0, "split pipeline must never reorder");
    }

    /// The split half must be a real steering point: under Falcon the
    /// GRO half-stage keys the `(flow, device)` hash with its own
    /// synthetic ifindex, [`PNIC_SPLIT_IF`], so it lands on a core
    /// chosen independently of the allocation half's RSS placement.
    #[test]
    fn split_gro_steers_halves_to_distinct_workers() {
        let workers = 4;
        let mut s = quick(PolicyKind::Falcon, workers);
        s.oversubscribe = true; // genuine multi-worker even on 1-core CI
        s.split_gro = true;
        s.shape = TrafficShape::TcpGro { mss: 1448 };
        s.payload = 4096;
        s.packets = 1_200;
        s.flows = 8;
        // Pin steering to the (flow, device) hash's first choice: this
        // test asserts *placement* (the synthetic GRO device hashes the
        // half away from the RSS worker), and under oversubscribed
        // 1-core overload the load threshold rehashes almost every
        // decision — the second hash can legitimately land the GRO half
        // back on its RSS worker for every flow.
        s.steer_two_choice = false;
        s.work_scale_milli = 50;
        s.trace_capacity = 65_536;
        let out = run_scenario(&s);
        assert_eq!(out.workers, workers);
        assert_eq!(out.trace_overflow(), 0, "trace ring too small for test");
        // From the trace: per flow, which workers ran the alloc half
        // (checkpoint PNIC_IF) vs the GRO half (PNIC_SPLIT_IF)?
        use std::collections::{BTreeMap, BTreeSet};
        let mut alloc_cpus: BTreeMap<u64, BTreeSet<usize>> = BTreeMap::new();
        let mut gro_cpus: BTreeMap<u64, BTreeSet<usize>> = BTreeMap::new();
        for e in out.merged_events() {
            if let EventKind::StageExec {
                checkpoint,
                cpu,
                flow,
                ..
            } = e.kind
            {
                if checkpoint == PNIC_IF {
                    alloc_cpus.entry(flow).or_default().insert(cpu);
                } else if checkpoint == PNIC_SPLIT_IF {
                    gro_cpus.entry(flow).or_default().insert(cpu);
                }
            }
        }
        // Every flow's GRO half ran, and for at least one flow it ran
        // on a worker its alloc half never used: the halves are
        // genuinely steered apart, not riding the RSS placement.
        assert_eq!(gro_cpus.len() as u64, s.flows);
        let split_apart = gro_cpus.iter().any(|(flow, gro)| {
            let alloc = alloc_cpus.get(flow).expect("alloc half traced");
            gro.iter().any(|cpu| !alloc.contains(cpu))
        });
        assert!(
            split_apart,
            "no flow's GRO half ever left its alloc worker: alloc={alloc_cpus:?} gro={gro_cpus:?}"
        );
    }

    #[test]
    fn tracing_captures_the_pipeline() {
        let mut s = quick(PolicyKind::Falcon, 2);
        s.packets = 200;
        s.work_scale_milli = 200;
        s.trace_capacity = 16_384;
        let out = run_scenario(&s);
        assert_eq!(out.trace_overflow(), 0, "trace ring too small for test");
        let events = out.merged_events();
        let execs = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Exec { .. }))
            .count();
        let delivers = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Deliver { .. }))
            .count();
        assert_eq!(delivers as u64, out.delivered());
        assert!(execs as u64 >= out.delivered() * STAGES as u64);
        // Chronological after merge.
        assert!(events.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
        // And the stream is a valid conservation story: every enqueue
        // matched, hop digests agree, per-(flow, checkpoint) sequences
        // monotone.
        let report = falcon_trace::check_stream(&events);
        assert!(report.ok(), "conservation report failed: {report:?}");
        assert_eq!(report.delivered, out.delivered());
    }

    #[test]
    fn split_trace_stream_passes_conservation() {
        let mut s = quick(PolicyKind::Falcon, 3);
        s.oversubscribe = true;
        s.split_gro = true;
        s.shape = TrafficShape::TcpGro { mss: 1448 };
        s.payload = 4096;
        s.packets = 300;
        s.work_scale_milli = 200;
        s.trace_capacity = 32_768;
        let out = run_scenario(&s);
        assert_eq!(out.trace_overflow(), 0, "trace ring too small for test");
        let events = out.merged_events();
        let report = falcon_trace::check_stream(&events);
        assert!(report.ok(), "conservation report failed: {report:?}");
        // Five softirq checkpoints per delivered packet (the Deliver
        // event's hop count also includes the delivery checkpoint).
        for e in &events {
            if let EventKind::Deliver { hops, .. } = e.kind {
                assert_eq!(hops as usize, SPLIT_STAGES + 1);
            }
        }
        // The split device shows up as its own checkpoint.
        assert!(events.iter().any(|e| matches!(
            e.kind,
            EventKind::StageExec {
                checkpoint: PNIC_SPLIT_IF,
                ..
            }
        )));
    }

    /// The C-stage migration race: releasing a stage's guard before the
    /// packet lands at the next stage let a legal migration put two
    /// same-flow packets in flight to one stage-D worker over
    /// *different* source rings, where the fixed-order inbound sweep
    /// can pop them inverted. The reproducing shape needs all three
    /// chaos ingredients: per-packet steering rotation (so migrations
    /// are constantly requested), an injection gap that lands the next
    /// packet between its predecessor's C-execution and D-execution (so
    /// the migration is legal under the broken early release), and a
    /// stalled destination sweep (so the cross-ring enqueue inversion
    /// becomes an execution inversion). Under the early-release guard
    /// these configurations produce hundreds of violations per 3k
    /// packets even on a 1-core host; the hand-over-hand guard
    /// (previous hop held until the next stage executes) must hold the
    /// audit at zero.
    #[test]
    fn forced_migration_churn_never_reorders() {
        for (gap, stall) in [(4_000u64, 1_000u64), (4_000, 2_000), (8_000, 1_000)] {
            let mut s = quick(PolicyKind::Falcon, 4);
            s.packets = 3_000;
            s.flows = 1;
            s.work_scale_milli = 5;
            s.chaos_steer_period = 1;
            s.inject_gap_ns = gap;
            s.chaos_sweep_stall_ns = stall;
            let out = run_scenario(&s);
            assert_eq!(out.workers, 4, "chaos lifts the core clamp");
            assert_eq!(out.delivered() + out.dropped(), out.injected);
            let (checks, violations) = out.order_audit();
            assert!(checks > 0);
            assert_eq!(
                violations, 0,
                "reordered under migration churn (gap={gap} stall={stall})"
            );
        }
    }

    /// Paced companion to the churn test: with an injection gap longer
    /// than the whole pipeline, every packet finds its flow quiescent,
    /// so each chaos rotation actually migrates — proving the churn
    /// configuration exercises migration itself, not just refusals.
    #[test]
    fn paced_migration_churn_migrates_and_orders() {
        let mut s = quick(PolicyKind::Falcon, 4);
        s.packets = 300;
        s.flows = 1;
        s.work_scale_milli = 5;
        s.chaos_steer_period = 1;
        s.inject_gap_ns = 50_000;
        let out = run_scenario(&s);
        let (_, violations) = out.order_audit();
        assert_eq!(violations, 0);
        let migrations: u64 = out.workers_stats.iter().map(|w| w.migrations).sum();
        assert!(migrations > 0, "paced chaos steering must migrate");
    }

    #[test]
    fn sweep_order_rotates_without_skipping() {
        let nsrc = 5;
        let mut led = vec![0u32; nsrc];
        for sweep in 0..(nsrc as u64 * 3) {
            let order: Vec<usize> = sweep_order(sweep, nsrc).collect();
            // Each sweep visits every ring exactly once.
            let mut seen = order.clone();
            seen.sort_unstable();
            assert_eq!(seen, (0..nsrc).collect::<Vec<_>>());
            led[order[0]] += 1;
        }
        // Over 3 full rotations, each ring led exactly 3 times: no ring
        // keeps structural priority.
        assert!(led.iter().all(|&c| c == 3), "biased lead counts: {led:?}");
        // Degenerate cases don't panic or divide by zero.
        assert_eq!(sweep_order(7, 0).count(), 0);
        assert_eq!(sweep_order(7, 1).collect::<Vec<_>>(), vec![0]);
    }

    /// Starvation regression for the rotated sweep: three producers
    /// saturate tiny rings into one consumer that drains them exactly
    /// the way the worker loop does (rotated start, NAPI-bounded
    /// batches). With a fixed scan from index 0, ring 0's producer is
    /// always drained first and later rings eat nearly all the drops;
    /// rotation must keep every producer's acceptance share
    /// non-negligible.
    #[test]
    fn rotated_sweep_prevents_ring_starvation() {
        use crate::spsc::ring;
        const PRODUCERS: usize = 3;
        const TARGET: u64 = 3_000;
        let stop = Arc::new(AtomicBool::new(false));
        let mut txs = Vec::new();
        let mut rxs = Vec::new();
        for _ in 0..PRODUCERS {
            let (tx, rx) = ring::<u64>(8);
            txs.push(tx);
            rxs.push(rx);
        }
        let producers: Vec<_> = txs
            .into_iter()
            .map(|mut tx| {
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    // Open loop with tail drops, like a saturated
                    // steering hop; yield on full so the single-core CI
                    // host interleaves producers and consumer.
                    let mut i = 0u64;
                    while !stop.load(Ordering::Acquire) {
                        if tx.try_push(i).is_err() {
                            std::thread::yield_now();
                        }
                        i = i.wrapping_add(1);
                    }
                })
            })
            .collect();
        let mut accepted = vec![0u64; PRODUCERS];
        let mut batch = Vec::with_capacity(8);
        let mut sweep = 0u64;
        while accepted.iter().sum::<u64>() < TARGET {
            for src in sweep_order(sweep, PRODUCERS) {
                let got = rxs[src].pop_batch(&mut batch, 8);
                accepted[src] += got as u64;
                batch.clear();
            }
            sweep += 1;
        }
        stop.store(true, Ordering::Release);
        for h in producers {
            h.join().expect("producer");
        }
        let total: u64 = accepted.iter().sum();
        for (src, &acc) in accepted.iter().enumerate() {
            assert!(
                acc * 20 >= total,
                "ring {src} starved: {acc}/{total} accepted ({accepted:?})"
            );
        }
    }

    #[test]
    fn idle_backoff_is_recorded() {
        let out = run_scenario(&quick(PolicyKind::Falcon, 2));
        // Workers idle at least while the injector paces and at
        // shutdown; some tier must have registered steps.
        let idle: u64 = out
            .workers_stats
            .iter()
            .map(|w| w.idle_spins + w.idle_yields + w.idle_parks)
            .sum();
        assert!(idle > 0, "no idle steps recorded");
        let sweeps: u64 = out.workers_stats.iter().map(|w| w.sweeps).sum();
        assert!(sweeps > 0);
    }

    #[test]
    fn single_worker_degenerates_to_serial() {
        let out = run_scenario(&quick(PolicyKind::Falcon, 1));
        assert_eq!(out.workers, 1);
        assert_eq!(out.delivered() + out.dropped(), out.injected);
        let (_, violations) = out.order_audit();
        assert_eq!(violations, 0);
    }

    #[test]
    fn wire_mode_delivers_exact_payload_digests() {
        let mut s = quick(PolicyKind::Falcon, 2);
        s.wire = true;
        s.packets = 600;
        s.flows = 4;
        let out = run_scenario(&s);
        assert!(out.wire);
        assert_eq!(out.delivered() + out.dropped(), out.injected);
        assert!(out.bytes_injected > 0, "wire frames were injected");
        assert_eq!(out.corrupted_segments, 0);
        // Pristine frames: nothing is malformed, every delivered
        // payload digests to exactly what the factory generated.
        assert_eq!(out.malformed_per_stage().iter().sum::<u64>(), 0);
        let deliveries = out.deliveries();
        assert_eq!(deliveries.len() as u64, out.delivered());
        for (flow, seq, digest) in deliveries {
            assert_eq!(
                digest,
                FrameFactory::expected_digest(flow, seq, s.payload),
                "payload digest mismatch for flow {flow} seq {seq}"
            );
        }
        assert_eq!(out.bytes_delivered(), out.delivered() * s.payload as u64);
        let (checks, violations) = out.order_audit();
        assert!(checks > 0);
        assert_eq!(violations, 0);
    }

    #[test]
    fn replicate_conserves_and_stays_duplicate_free() {
        let mut s = quick(PolicyKind::Replicate, 4);
        s.oversubscribe = true; // genuine multi-worker even on 1-core CI
        let out = run_scenario(&s);
        assert_eq!(out.policy, PolicyKind::Replicate);
        assert_eq!(out.delivered() + out.dropped(), out.injected);
        // The relaxed SCR contract: per-flow order may break (that is
        // the point of round-robin spraying), but every (flow,
        // checkpoint, seq) still executes exactly once.
        let (checks, dups) = out.order_audit();
        assert!(checks > 0);
        assert_eq!(dups, 0, "replicate ran some (flow, checkpoint, seq) twice");
    }

    #[test]
    fn replicate_conntrack_merge_matches_vanilla_ground_truth() {
        let mk = |policy| {
            let mut s = quick(policy, 4);
            s.oversubscribe = true;
            s.wire = true;
            s.packets = 800;
            s.flows = 4;
            // Drop-free by construction (rings hold the whole run):
            // cross-policy table equality is only defined when both
            // policies process the same packet set.
            s.ring_capacity = 2_048;
            s
        };
        let vanilla = run_scenario(&mk(PolicyKind::Vanilla));
        let repl = run_scenario(&mk(PolicyKind::Replicate));
        assert_eq!(vanilla.dropped(), 0, "oracle precondition: drop-free");
        assert_eq!(repl.dropped(), 0, "oracle precondition: drop-free");
        let vt = vanilla.conntrack_table().expect("wire mode tracks conns");
        let rt = repl.conntrack_table().expect("wire mode tracks conns");
        assert_eq!(
            vt, rt,
            "replicated conntrack state must reconcile to serialized ground truth"
        );
        // The bridge stage saw every packet exactly once.
        assert_eq!(vt.summary().pkts, vanilla.injected);
        assert_eq!(vt.len() as u64, mk(PolicyKind::Vanilla).flows);
        let c = repl.conntrack_counters();
        assert_eq!(c.updates, repl.injected);
        // Round-robin injection with run-to-completion workers: every
        // worker owned a share of the flow's packets and tracked state
        // in its own shard.
        let active = repl
            .workers_stats
            .iter()
            .filter(|w| w.delivered > 0)
            .count();
        assert_eq!(
            active, 4,
            "replicate must spread one flow across all workers"
        );
    }

    #[test]
    fn wire_split_gro_coalesces_segments_back_to_one_message() {
        let mut s = quick(PolicyKind::Falcon, 2);
        s.wire = true;
        s.split_gro = true;
        s.shape = TrafficShape::TcpGro { mss: 1448 };
        s.payload = 4096;
        s.packets = 300;
        s.flows = 3;
        let out = run_scenario(&s);
        assert_eq!(out.stages(), SPLIT_STAGES);
        assert_eq!(out.delivered() + out.dropped(), out.injected);
        // Three wire segments per message land as one coalesced
        // delivery with the whole message's digest.
        for (flow, seq, digest) in out.deliveries() {
            assert_eq!(digest, FrameFactory::expected_digest(flow, seq, s.payload));
        }
        assert_eq!(out.bytes_delivered(), out.delivered() * s.payload as u64);
        // The wire carries per-segment headers, so bytes in exceeds
        // payload × packets.
        assert!(out.bytes_injected > out.injected * s.payload as u64);
    }

    #[test]
    fn wire_corruption_drops_malformed_with_exact_accounting() {
        let mut s = quick(PolicyKind::Falcon, 2);
        s.wire = true;
        s.packets = 1_000;
        s.flows = 4;
        s.corrupt_per_million = 300_000; // ~30 % of segments
        s.wire_seed = 7;
        let out = run_scenario(&s);
        assert!(out.corrupted_segments > 0, "corruptor must have fired");
        assert_eq!(out.delivered() + out.dropped(), out.injected);
        let malformed = out.drops_by_reason()[DropReason::Malformed.index()];
        assert!(malformed > 0, "corrupted frames must be caught");
        assert_eq!(
            malformed,
            out.malformed_per_stage().iter().sum::<u64>(),
            "per-stage malformed counts must sum to the reason total"
        );
        // Corruption can escape detection only in fields no check
        // covers (outer src MAC, VXLAN reserved bits, …) — and those
        // never touch the payload, so every delivery still digests to
        // the generated bytes.
        for (flow, seq, digest) in out.deliveries() {
            assert_eq!(digest, FrameFactory::expected_digest(flow, seq, s.payload));
        }
        let (_, violations) = out.order_audit();
        assert_eq!(violations, 0, "malformed drops must not break ordering");
    }
}

//! Ethernet II framing.

use serde::{Deserialize, Serialize};

use crate::CodecError;

/// Length of an Ethernet II header (no VLAN tag).
pub const ETHERNET_HDR_LEN: usize = 14;

/// A 48-bit MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xFF; 6]);

    /// Builds a locally administered unicast MAC from a small integer,
    /// handy for giving every simulated device a unique address.
    pub fn from_index(idx: u64) -> Self {
        let b = idx.to_be_bytes();
        // 0x02 = locally administered, unicast.
        MacAddr([0x02, b[3], b[4], b[5], b[6], b[7]])
    }

    /// Returns `true` for the broadcast address.
    pub fn is_broadcast(self) -> bool {
        self == Self::BROADCAST
    }
}

impl core::fmt::Display for MacAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let m = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            m[0], m[1], m[2], m[3], m[4], m[5]
        )
    }
}

/// EtherType values the simulation understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EtherType {
    /// IPv4 (0x0800).
    Ipv4,
    /// Anything else, preserved verbatim.
    Other(u16),
}

impl EtherType {
    /// Returns the wire value.
    pub fn to_u16(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Other(v) => v,
        }
    }

    /// Parses a wire value.
    pub fn from_u16(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            other => EtherType::Other(other),
        }
    }
}

/// An Ethernet II header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EthernetHdr {
    /// Destination MAC.
    pub dst: MacAddr,
    /// Source MAC.
    pub src: MacAddr,
    /// Payload EtherType.
    pub ethertype: EtherType,
}

impl EthernetHdr {
    /// Serializes the header into `buf`.
    ///
    /// # Panics
    ///
    /// Panics if `buf` is shorter than [`ETHERNET_HDR_LEN`].
    pub fn write(&self, buf: &mut [u8]) {
        buf[0..6].copy_from_slice(&self.dst.0);
        buf[6..12].copy_from_slice(&self.src.0);
        buf[12..14].copy_from_slice(&self.ethertype.to_u16().to_be_bytes());
    }

    /// Appends the header to a byte vector.
    pub fn push_onto(&self, out: &mut Vec<u8>) {
        let start = out.len();
        out.resize(start + ETHERNET_HDR_LEN, 0);
        self.write(&mut out[start..]);
    }

    /// Parses a header from the front of `buf`.
    pub fn parse(buf: &[u8]) -> Result<EthernetHdr, CodecError> {
        if buf.len() < ETHERNET_HDR_LEN {
            return Err(CodecError::Truncated {
                what: "ethernet",
                need: ETHERNET_HDR_LEN,
                have: buf.len(),
            });
        }
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&buf[0..6]);
        src.copy_from_slice(&buf[6..12]);
        Ok(EthernetHdr {
            dst: MacAddr(dst),
            src: MacAddr(src),
            ethertype: EtherType::from_u16(u16::from_be_bytes([buf[12], buf[13]])),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let hdr = EthernetHdr {
            dst: MacAddr::from_index(7),
            src: MacAddr::from_index(9),
            ethertype: EtherType::Ipv4,
        };
        let mut buf = Vec::new();
        hdr.push_onto(&mut buf);
        assert_eq!(buf.len(), ETHERNET_HDR_LEN);
        assert_eq!(EthernetHdr::parse(&buf).unwrap(), hdr);
    }

    #[test]
    fn truncated_rejected() {
        let err = EthernetHdr::parse(&[0u8; 13]).unwrap_err();
        assert!(matches!(
            err,
            CodecError::Truncated {
                what: "ethernet",
                ..
            }
        ));
    }

    #[test]
    fn mac_from_index_unique_and_local() {
        let a = MacAddr::from_index(1);
        let b = MacAddr::from_index(2);
        assert_ne!(a, b);
        assert_eq!(a.0[0] & 0x02, 0x02, "locally administered bit");
        assert_eq!(a.0[0] & 0x01, 0, "unicast bit");
    }

    #[test]
    fn broadcast() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(!MacAddr::from_index(3).is_broadcast());
    }

    #[test]
    fn display_format() {
        assert_eq!(
            MacAddr([0, 0x1b, 0x44, 0x11, 0x3a, 0xb7]).to_string(),
            "00:1b:44:11:3a:b7"
        );
    }

    #[test]
    fn unknown_ethertype_preserved() {
        let e = EtherType::from_u16(0x86DD);
        assert_eq!(e, EtherType::Other(0x86DD));
        assert_eq!(e.to_u16(), 0x86DD);
    }
}

//! Builds Perfetto counter tracks from the sampler's time series, so
//! queue depths and stall fractions render as stacked charts under the
//! existing slice timeline (`falcon-repro --dataplane-trace`).

use falcon_trace::{CounterPoint, CounterTrack};

use crate::sample::TelemetrySample;

/// Converts sampler output into per-worker counter tracks:
///
/// * `telemetry:qdepth` — the worker's inbound depth-gauge reading
///   (plus the max staleness bound observed), one point per tick;
/// * `telemetry:stall` — the five stall-attribution buckets as
///   fractions of each interval's wall time, stacked to ~1.0.
///
/// Track pids are worker indices, matching the dataplane trace's
/// one-process-per-core convention (worker *w* runs on core pid *w*
/// in unpinned runs; the counters sit on the same timeline either
/// way).
pub fn counter_tracks(samples: &[TelemetrySample]) -> Vec<CounterTrack> {
    let workers = samples.first().map_or(0, |s| s.workers.len());
    let mut out = Vec::with_capacity(workers * 2);
    for w in 0..workers {
        let mut depth = CounterTrack {
            name: format!("telemetry:qdepth w{w}"),
            pid: w,
            points: Vec::with_capacity(samples.len()),
        };
        for s in samples {
            depth.points.push(CounterPoint {
                at_ns: s.t_ns,
                values: vec![
                    ("depth".to_string(), s.workers[w].ring_depth as f64),
                    (
                        "staleness_max".to_string(),
                        s.workers[w].depth_staleness as f64,
                    ),
                ],
            });
        }
        let mut stall = CounterTrack {
            name: format!("telemetry:stall w{w}"),
            pid: w,
            points: Vec::with_capacity(samples.len().saturating_sub(1)),
        };
        for pair in samples.windows(2) {
            let d = pair[1].workers[w]
                .stall
                .delta_since(&pair[0].workers[w].stall);
            if d.wall_ns == 0 {
                continue;
            }
            let f = |ns: u64| ns as f64 / d.wall_ns as f64;
            stall.points.push(CounterPoint {
                at_ns: pair[1].t_ns,
                values: vec![
                    ("busy".to_string(), f(d.busy_ns)),
                    ("push".to_string(), f(d.stall_push_ns)),
                    ("pop".to_string(), f(d.stall_pop_ns)),
                    ("guard".to_string(), f(d.guard_wait_ns)),
                    ("idle".to_string(), f(d.idle_ns)),
                ],
            });
        }
        out.push(depth);
        out.push(stall);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::WorkerSample;

    #[test]
    fn tracks_cover_depth_and_stall_fractions() {
        let mut w0_a = WorkerSample::zeroed(2, 5);
        w0_a.ring_depth = 4;
        let mut w0_b = w0_a.clone();
        w0_b.ring_depth = 2;
        w0_b.stall.busy_ns = 60;
        w0_b.stall.stall_pop_ns = 20;
        w0_b.stall.idle_ns = 20;
        w0_b.stall.wall_ns = 100;
        let samples = vec![
            TelemetrySample {
                t_ns: 1_000,
                workers: vec![w0_a],
                rx: None,
                slab: None,
            },
            TelemetrySample {
                t_ns: 2_000,
                workers: vec![w0_b],
                rx: None,
                slab: None,
            },
        ];
        let tracks = counter_tracks(&samples);
        assert_eq!(tracks.len(), 2);
        let depth = &tracks[0];
        assert_eq!(depth.points.len(), 2);
        assert_eq!(depth.points[1].values[0].1, 2.0);
        let stall = &tracks[1];
        assert_eq!(stall.points.len(), 1);
        let total: f64 = stall.points[0].values.iter().map(|(_, v)| v).sum();
        assert!((total - 1.0).abs() < 1e-9, "fractions stack to 1.0");
        assert_eq!(counter_tracks(&[]).len(), 0);
    }
}

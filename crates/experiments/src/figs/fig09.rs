//! Figure 9a: a single device saturates a core under TCP 4 KB.
//!
//! With Falcon pipelining but *without* GRO splitting, the first stage
//! (physical NIC driver poll) pegs its core, and within that stage
//! `skb_allocation` and `napi_gro_receive` each contribute roughly half
//! — the condition that motivates softirq splitting.

use falcon_netdev::LinkSpeed;
use falcon_netstack::KernelVersion;
use falcon_workloads::{TcpStreams, TcpStreamsConfig};

use crate::measure::{run_measured, Scale};
use crate::scenario::{Mode, Scenario, SF_APP_CORE};
use crate::table::{pct, FigResult, Table};

/// First-stage saturation under TCP 4 KB with splitting off.
pub fn run(scale: Scale) -> FigResult {
    let mut fig = FigResult::new(
        "fig9a",
        "TCP 4KB: the pNIC stage saturates one core; skb_alloc and GRO split it ~evenly",
    );
    let scenario = Scenario::single_flow(
        Mode::Falcon(Scenario::sf_falcon()),
        KernelVersion::K419,
        LinkSpeed::HundredGbit,
    );
    let mut cfg = TcpStreamsConfig::single(4096);
    cfg.app_cores = vec![SF_APP_CORE];
    cfg.window = 256;
    let mut runner = scenario.build(Box::new(TcpStreams::new(cfg)));
    let stats = run_measured(&mut runner, scale);

    // Core 0 runs the hardirq + driver poll (stage A).
    let mut t = Table::new(&["metric", "value"]);
    let core0 = &stats.cores[0];
    t.row(vec!["stage-A core busy".into(), pct(core0.busy())]);
    let alloc = stats.func_ns("skb_allocation") as f64;
    let gro = stats.func_ns("napi_gro_receive") as f64;
    let window_ns = stats.window.as_nanos() as f64;
    t.row(vec!["skb_allocation CPU".into(), pct(alloc / window_ns)]);
    t.row(vec!["napi_gro_receive CPU".into(), pct(gro / window_ns)]);
    t.row(vec![
        "alloc : gro ratio".into(),
        format!("{:.2}", alloc / gro.max(1.0)),
    ]);
    fig.panel("", t);
    fig.note(format!(
        "stage-A core at {:.0}% — the bottleneck GRO-splitting removes",
        core0.busy() * 100.0
    ));
    fig
}

//! Ordered sets of CPU ids.
//!
//! Used for the Falcon CPU set (`FALCON_CPUS`, the cores softirq
//! pipelining may target), RPS masks, and the receive-core restriction
//! in the multi-container experiments (paper §6.1 limits packet
//! receiving to 6 cores).

use serde::{Deserialize, Serialize};

/// An ordered, duplicate-free set of core ids.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct CpuSet {
    cpus: Vec<usize>,
}

impl CpuSet {
    /// Creates a set from a list of core ids; duplicates are dropped,
    /// order is normalized ascending.
    pub fn new(mut cpus: Vec<usize>) -> Self {
        cpus.sort_unstable();
        cpus.dedup();
        CpuSet { cpus }
    }

    /// The set `{0, 1, ..., n-1}`.
    pub fn first_n(n: usize) -> Self {
        CpuSet {
            cpus: (0..n).collect(),
        }
    }

    /// The contiguous range `[start, end)`.
    pub fn range(start: usize, end: usize) -> Self {
        CpuSet {
            cpus: (start..end).collect(),
        }
    }

    /// Number of cores in the set.
    pub fn len(&self) -> usize {
        self.cpus.len()
    }

    /// Returns `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.cpus.is_empty()
    }

    /// Returns `true` if `cpu` is a member.
    pub fn contains(&self, cpu: usize) -> bool {
        self.cpus.binary_search(&cpu).is_ok()
    }

    /// Returns the `i`-th core (by ascending id).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn nth(&self, i: usize) -> usize {
        self.cpus[i]
    }

    /// Maps a hash value onto a member, `set[hash % len]` — how both RPS
    /// and Falcon turn a hash into a CPU choice.
    ///
    /// # Panics
    ///
    /// Panics if the set is empty.
    pub fn pick_by_hash(&self, hash: u32) -> usize {
        assert!(!self.cpus.is_empty(), "cannot pick from an empty CpuSet");
        self.cpus[hash as usize % self.cpus.len()]
    }

    /// Iterates over member ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.cpus.iter().copied()
    }

    /// Returns the members as a slice.
    pub fn as_slice(&self) -> &[usize] {
        &self.cpus
    }
}

impl FromIterator<usize> for CpuSet {
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        CpuSet::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_normalizes() {
        let s = CpuSet::new(vec![3, 1, 2, 1, 3]);
        assert_eq!(s.as_slice(), &[1, 2, 3]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn first_n_and_range() {
        assert_eq!(CpuSet::first_n(3).as_slice(), &[0, 1, 2]);
        assert_eq!(CpuSet::range(4, 7).as_slice(), &[4, 5, 6]);
        assert!(CpuSet::first_n(0).is_empty());
    }

    #[test]
    fn membership() {
        let s = CpuSet::new(vec![0, 2, 4]);
        assert!(s.contains(2));
        assert!(!s.contains(3));
        assert_eq!(s.nth(1), 2);
    }

    #[test]
    fn pick_by_hash_is_stable_modulo() {
        let s = CpuSet::new(vec![5, 6, 7]);
        assert_eq!(s.pick_by_hash(0), 5);
        assert_eq!(s.pick_by_hash(1), 6);
        assert_eq!(s.pick_by_hash(2), 7);
        assert_eq!(s.pick_by_hash(3), 5);
        assert_eq!(s.pick_by_hash(u32::MAX), s.pick_by_hash(u32::MAX % 3));
    }

    #[test]
    #[should_panic(expected = "empty CpuSet")]
    fn pick_from_empty_panics() {
        CpuSet::default().pick_by_hash(1);
    }

    #[test]
    fn from_iterator() {
        let s: CpuSet = [9, 3, 9].into_iter().collect();
        assert_eq!(s.as_slice(), &[3, 9]);
    }
}

//! Seedable pseudo-random numbers and the distributions the workloads use.
//!
//! The generator is xoshiro256** seeded through SplitMix64, the standard
//! construction recommended by the xoshiro authors. It is implemented
//! locally (rather than pulling in the `rand` crate) so that the entire
//! simulation has a single, auditable source of randomness and stays
//! deterministic across platforms and dependency upgrades.

/// A deterministic pseudo-random number generator (xoshiro256**).
///
/// # Examples
///
/// ```
/// use falcon_simcore::SimRng;
///
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
    /// Cached second normal variate from the Box-Muller transform.
    spare_normal: Option<f64>,
}

/// SplitMix64 step, used for seeding.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng {
            s,
            spare_normal: None,
        }
    }

    /// Derives an independent child generator.
    ///
    /// Each simulated component (a NIC queue, a traffic source, ...) gets
    /// its own stream so that adding a component does not perturb the
    /// random sequence seen by the others.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        // Mix the stream id into a fresh seed drawn from this generator.
        let mut sm = self.next_u64() ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng {
            s,
            spare_normal: None,
        }
    }

    /// Returns the next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Returns the next raw 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniformly distributed value in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method to avoid modulo bias.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        // Lemire's method on the full 64-bit range via 128-bit multiply.
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= (u64::MAX - bound + 1) % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns a uniformly distributed `usize` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn gen_index(&mut self, bound: usize) -> usize {
        self.gen_range(bound as u64) as usize
    }

    /// Returns a uniform float in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Samples an exponential distribution with the given mean.
    ///
    /// Used for Poisson-process packet inter-arrival times.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        // Inverse transform; 1 - U avoids ln(0).
        -mean * (1.0 - self.gen_f64()).ln()
    }

    /// Samples a standard normal via the Box-Muller transform.
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        let u1 = (1.0 - self.gen_f64()).max(f64::MIN_POSITIVE);
        let u2 = self.gen_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * core::f64::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Samples a normal distribution with the given mean and standard
    /// deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// Samples a Poisson distribution with rate `lambda` (Knuth's
    /// algorithm for small rates, normal approximation above 64).
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        if lambda <= 0.0 {
            return 0;
        }
        if lambda > 64.0 {
            let x = self.normal(lambda, lambda.sqrt());
            return x.max(0.0).round() as u64;
        }
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.gen_f64();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }
}

/// A Zipf-distributed sampler over `{0, 1, ..., n-1}`.
///
/// Rank 0 is the most popular item. The distribution is the standard
/// discrete Zipf with exponent `s`: `P(k) ∝ 1 / (k+1)^s`. Memcached-style
/// key popularity in the data-caching workload uses this sampler.
///
/// Sampling uses the rejection-inversion method of Hörmann and
/// Derflinger, which is O(1) per sample and needs no per-item table.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: f64,
    s: f64,
    h_x1: f64,
    h_n: f64,
    dense_threshold: f64,
}

impl Zipf {
    /// Creates a Zipf sampler over `n` items with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `s` is not finite and positive.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one item");
        assert!(s.is_finite() && s > 0.0, "Zipf exponent must be positive");
        let n_f = n as f64;
        let h = |x: f64, s: f64| -> f64 {
            // H(x) = integral of 1/x^s.
            if (s - 1.0).abs() < 1e-9 {
                x.ln()
            } else {
                (x.powf(1.0 - s) - 1.0) / (1.0 - s)
            }
        };
        let h_x1 = h(1.5, s) - 1.0;
        let h_n = h(n_f + 0.5, s);
        Zipf {
            n: n_f,
            s,
            h_x1,
            h_n,
            dense_threshold: h(2.5, s) - 2f64.powf(-s),
        }
    }

    fn h(&self, x: f64) -> f64 {
        if (self.s - 1.0).abs() < 1e-9 {
            x.ln()
        } else {
            (x.powf(1.0 - self.s) - 1.0) / (1.0 - self.s)
        }
    }

    fn h_inv(&self, x: f64) -> f64 {
        if (self.s - 1.0).abs() < 1e-9 {
            x.exp()
        } else {
            (1.0 + x * (1.0 - self.s)).powf(1.0 / (1.0 - self.s))
        }
    }

    /// Draws a rank in `[0, n)`; rank 0 is the hottest item.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        loop {
            let u = self.h_x1 + rng.gen_f64() * (self.h_n - self.h_x1);
            let x = self.h_inv(u);
            let k = (x + 0.5).floor().clamp(1.0, self.n);
            if k - x <= self.dense_threshold || u >= self.h(k + 0.5) - (-(k.ln() * self.s)).exp() {
                return k as usize - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn forked_streams_are_independent() {
        let mut root = SimRng::new(9);
        let mut c1 = root.fork(1);
        let mut c2 = root.fork(2);
        let same = (0..32).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn gen_range_respects_bound() {
        let mut rng = SimRng::new(3);
        for _ in 0..10_000 {
            assert!(rng.gen_range(17) < 17);
        }
        for _ in 0..100 {
            assert_eq!(rng.gen_range(1), 0);
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = SimRng::new(4);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(8) as usize] += 1;
        }
        for &c in &counts {
            assert!(
                (8_000..12_000).contains(&c),
                "bucket count {c} far from uniform"
            );
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = SimRng::new(5);
        for _ in 0..10_000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn exponential_mean_converges() {
        let mut rng = SimRng::new(6);
        let mean = 250.0;
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| rng.exponential(mean)).sum();
        let sample_mean = sum / n as f64;
        assert!(
            (sample_mean - mean).abs() < mean * 0.02,
            "sample mean {sample_mean} too far from {mean}"
        );
    }

    #[test]
    fn normal_moments_converge() {
        let mut rng = SimRng::new(8);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 3.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var - 9.0).abs() < 0.3, "variance {var}");
    }

    #[test]
    fn poisson_mean_converges() {
        let mut rng = SimRng::new(10);
        for &lambda in &[0.5, 4.0, 200.0] {
            let n = 50_000;
            let sum: u64 = (0..n).map(|_| rng.poisson(lambda)).sum();
            let mean = sum as f64 / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.max(1.0) * 0.05,
                "poisson({lambda}) sample mean {mean}"
            );
        }
        assert_eq!(rng.poisson(0.0), 0);
    }

    #[test]
    fn zipf_rank_zero_most_popular() {
        let mut rng = SimRng::new(11);
        let zipf = Zipf::new(1000, 0.99);
        let mut counts = vec![0u32; 1000];
        for _ in 0..100_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > counts[999]);
        // Roughly Zipfian head mass: rank 0 should take several percent.
        assert!(counts[0] as f64 / 100_000.0 > 0.05);
    }

    #[test]
    fn zipf_single_item() {
        let mut rng = SimRng::new(12);
        let zipf = Zipf::new(1, 1.0);
        for _ in 0..100 {
            assert_eq!(zipf.sample(&mut rng), 0);
        }
    }
}

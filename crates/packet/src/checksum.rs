//! The Internet checksum (RFC 1071).
//!
//! Used by the IPv4 header and (in the simulation, optionally) UDP/TCP.
//! Implemented with 32-bit accumulation and end-around carry folding,
//! the same structure as the kernel's `ip_compute_csum`.

/// Computes the ones'-complement Internet checksum over `data`.
///
/// An odd trailing byte is padded with zero, per RFC 1071.
///
/// # Examples
///
/// ```
/// use falcon_packet::checksum::internet_checksum;
///
/// // RFC 1071 example sequence.
/// let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
/// assert_eq!(internet_checksum(&data), !0xddf2u16);
/// ```
pub fn internet_checksum(data: &[u8]) -> u16 {
    !fold(sum_words(data, 0))
}

/// Accumulates 16-bit big-endian words of `data` into `acc` without
/// final folding, so multi-part checksums (pseudo-header + payload) can
/// be composed.
pub fn sum_words(data: &[u8], mut acc: u32) -> u32 {
    let mut chunks = data.chunks_exact(2);
    for chunk in &mut chunks {
        acc += u16::from_be_bytes([chunk[0], chunk[1]]) as u32;
    }
    if let [last] = chunks.remainder() {
        acc += (*last as u32) << 8;
    }
    acc
}

/// Accumulates the IPv4 pseudo-header for a UDP or TCP checksum
/// (RFC 768 / RFC 9293 §3.1): source address, destination address,
/// zero-padded protocol number, and L4 length (header plus payload).
///
/// Compose with [`sum_words`] over the L4 bytes and [`fold`] the result:
///
/// ```
/// use falcon_packet::checksum::{fold, pseudo_header_sum, sum_words};
///
/// let l4 = [0u8; 8]; // a zeroed UDP header
/// let acc = pseudo_header_sum(0x0A00_0001, 0x0A00_0002, 17, 8);
/// let csum = !fold(sum_words(&l4, acc));
/// assert_ne!(csum, 0);
/// ```
pub fn pseudo_header_sum(src_addr: u32, dst_addr: u32, proto: u8, l4_len: u16) -> u32 {
    (src_addr >> 16)
        + (src_addr & 0xFFFF)
        + (dst_addr >> 16)
        + (dst_addr & 0xFFFF)
        + proto as u32
        + l4_len as u32
}

/// Folds a 32-bit accumulator into 16 bits with end-around carry.
pub fn fold(mut acc: u32) -> u16 {
    while acc >> 16 != 0 {
        acc = (acc & 0xFFFF) + (acc >> 16);
    }
    acc as u16
}

/// Verifies a buffer that embeds its own checksum: summing everything
/// (checksum field included) must produce `0xFFFF` before complement,
/// i.e. a folded sum of `0xFFFF`.
pub fn verify(data: &[u8]) -> bool {
    fold(sum_words(data, 0)) == 0xFFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(fold(sum_words(&data, 0)), 0xddf2);
        assert_eq!(internet_checksum(&data), !0xddf2);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(internet_checksum(&[0xAB]), internet_checksum(&[0xAB, 0x00]));
    }

    #[test]
    fn empty_buffer() {
        assert_eq!(internet_checksum(&[]), 0xFFFF);
        assert!(!verify(&[]));
    }

    #[test]
    fn embedding_checksum_verifies() {
        // Build a 20-byte pseudo-header, embed the checksum at offset 10
        // (like IPv4), then verify.
        let mut buf = [0u8; 20];
        for (i, b) in buf.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(37);
        }
        buf[10] = 0;
        buf[11] = 0;
        let csum = internet_checksum(&buf);
        buf[10..12].copy_from_slice(&csum.to_be_bytes());
        assert!(verify(&buf));
        // Corrupt a byte: verification must fail.
        buf[3] ^= 0x40;
        assert!(!verify(&buf));
    }

    #[test]
    fn odd_length_is_order_sensitive_high_byte() {
        // RFC 1071: the odd trailing byte occupies the HIGH half of its
        // padded word, so [0xAB] sums like [0xAB, 0x00], not [0x00, 0xAB].
        assert_eq!(fold(sum_words(&[0xAB], 0)), 0xAB00);
        assert_ne!(internet_checksum(&[0xAB]), internet_checksum(&[0x00, 0xAB]));
    }

    #[test]
    fn pseudo_header_matches_manual_words() {
        // The pseudo-header is 12 bytes: src(4) dst(4) zero(1) proto(1)
        // len(2). Accumulating it wordwise must equal pseudo_header_sum.
        let src = 0xC0A8_0001u32;
        let dst = 0x0A00_002Au32;
        let proto = 17u8;
        let l4_len = 1501u16;
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&src.to_be_bytes());
        bytes.extend_from_slice(&dst.to_be_bytes());
        bytes.push(0);
        bytes.push(proto);
        bytes.extend_from_slice(&l4_len.to_be_bytes());
        assert_eq!(
            fold(sum_words(&bytes, 0)),
            fold(pseudo_header_sum(src, dst, proto, l4_len))
        );
    }

    #[test]
    fn composable_accumulation() {
        let part1 = [1u8, 2, 3, 4];
        let part2 = [5u8, 6, 7, 8];
        let whole = [1u8, 2, 3, 4, 5, 6, 7, 8];
        let split = fold(sum_words(&part2, sum_words(&part1, 0)));
        assert_eq!(split, fold(sum_words(&whole, 0)));
    }
}

//! sockperf-style micro-benchmarks.
//!
//! The paper's micro evaluation drives the server with sockperf (the paper's reference 23):
//! UDP throughput stress (multiple clients against one server socket),
//! fixed-rate latency probes, and TCP streams. These apps reproduce
//! those traffic shapes over the simulated stack.

use falcon_netstack::sim::{App, SimApi};
use falcon_netstack::{NetMode, Pacing};
use serde::{Deserialize, Serialize};

/// Configuration of a UDP stress run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UdpStressConfig {
    /// Number of flows (server sockets/containers; one flow each).
    pub n_flows: usize,
    /// Datagram payload bytes.
    pub payload: usize,
    /// Sender threads per flow (the paper uses 3 clients to overload a
    /// single UDP flow).
    pub senders_per_flow: usize,
    /// Pacing per flow.
    pub pacing: Pacing,
    /// Cores the application threads may run on (assigned round-robin
    /// per flow).
    pub app_cores: Vec<usize>,
    /// Per-message application service time, ns.
    pub app_service_ns: u64,
    /// One container per flow (overlay) or all flows on the host
    /// socket address space (host mode uses distinct ports).
    pub per_flow_containers: bool,
}

impl UdpStressConfig {
    /// The paper's single-flow stress: one flow, three senders, max
    /// rate.
    pub fn single_flow(payload: usize) -> Self {
        UdpStressConfig {
            n_flows: 1,
            payload,
            senders_per_flow: 3,
            pacing: Pacing::MaxRate,
            app_cores: vec![5],
            app_service_ns: 300,
            per_flow_containers: true,
        }
    }

    /// A multi-flow test with one sender per flow (paper §6.1
    /// multi-flow throughput).
    pub fn multi_flow(n_flows: usize, payload: usize) -> Self {
        UdpStressConfig {
            n_flows,
            payload,
            senders_per_flow: 1,
            pacing: Pacing::MaxRate,
            app_cores: vec![5, 6, 7],
            app_service_ns: 300,
            per_flow_containers: true,
        }
    }
}

/// Open-loop UDP stress traffic (sockperf throughput mode).
#[derive(Debug)]
pub struct UdpStressApp {
    /// Configuration.
    pub config: UdpStressConfig,
}

impl UdpStressApp {
    /// Creates the app.
    pub fn new(config: UdpStressConfig) -> Self {
        UdpStressApp { config }
    }
}

impl App for UdpStressApp {
    fn on_start(&mut self, api: &mut SimApi<'_>) {
        let overlay = api.inner.cfg.server.mode == NetMode::Overlay;
        for i in 0..self.config.n_flows {
            let container = if overlay && self.config.per_flow_containers {
                Some(api.add_container((i / 200) as u8, (i % 200) as u8 + 10))
            } else {
                None
            };
            let port = 5001 + i as u16;
            let app_core = self.config.app_cores[i % self.config.app_cores.len()];
            api.bind_udp(container, port, app_core, self.config.app_service_ns);
            let flow = api.udp_flow(container, port, self.config.payload);
            api.udp_stress(flow, self.config.senders_per_flow, self.config.pacing);
        }
    }
}

/// Closed-loop UDP ping-pong (sockperf latency mode): one message in
/// flight per flow; the server echoes; RTT lands in `counters.rtt`.
#[derive(Debug)]
pub struct UdpPingPong {
    /// Number of concurrent ping-pong flows.
    pub n_flows: usize,
    /// Payload bytes.
    pub payload: usize,
    /// Application cores (round-robin).
    pub app_cores: Vec<usize>,
    /// Echo service time, ns.
    pub app_service_ns: u64,
}

impl UdpPingPong {
    /// One flow of `payload`-byte pings.
    pub fn new(payload: usize) -> Self {
        UdpPingPong {
            n_flows: 1,
            payload,
            app_cores: vec![5],
            app_service_ns: 300,
        }
    }
}

impl App for UdpPingPong {
    fn on_start(&mut self, api: &mut SimApi<'_>) {
        let overlay = api.inner.cfg.server.mode == NetMode::Overlay;
        for i in 0..self.n_flows {
            let container = if overlay {
                Some(api.add_container(0, i as u8 + 10))
            } else {
                None
            };
            let port = 5001 + i as u16;
            let app_core = self.app_cores[i % self.app_cores.len()];
            api.bind_udp(container, port, app_core, self.app_service_ns);
            let flow = api.udp_flow(container, port, self.payload);
            api.udp_send(flow, self.payload);
        }
    }

    fn on_server_msg(
        &mut self,
        api: &mut SimApi<'_>,
        sock: falcon_netstack::SockId,
        meta: &falcon_netstack::MsgMeta,
    ) {
        api.respond(sock, meta, meta.bytes);
    }

    fn on_client_msg(
        &mut self,
        api: &mut SimApi<'_>,
        flow: falcon_netstack::FlowId,
        _meta: &falcon_netstack::MsgMeta,
    ) {
        api.udp_send(flow, self.payload);
    }
}

/// Configuration of TCP stream traffic.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TcpStreamsConfig {
    /// Number of connections (one container each in overlay mode).
    pub n_flows: usize,
    /// Application message size (segmented at the MSS).
    pub msg_size: usize,
    /// Sender window, segments.
    pub window: u32,
    /// Application cores (round-robin).
    pub app_cores: Vec<usize>,
    /// Per-message service time, ns.
    pub app_service_ns: u64,
}

impl TcpStreamsConfig {
    /// A single 4 KB-message stream (the paper's heavy GRO case).
    pub fn single(msg_size: usize) -> Self {
        TcpStreamsConfig {
            n_flows: 1,
            msg_size,
            window: 128,
            app_cores: vec![5],
            app_service_ns: 300,
        }
    }
}

/// Continuous windowed TCP streams (sockperf/iperf throughput mode).
#[derive(Debug)]
pub struct TcpStreams {
    /// Configuration.
    pub config: TcpStreamsConfig,
}

impl TcpStreams {
    /// Creates the app.
    pub fn new(config: TcpStreamsConfig) -> Self {
        TcpStreams { config }
    }
}

impl App for TcpStreams {
    fn on_start(&mut self, api: &mut SimApi<'_>) {
        let overlay = api.inner.cfg.server.mode == NetMode::Overlay;
        for i in 0..self.config.n_flows {
            let container = if overlay {
                Some(api.add_container((i / 200) as u8, (i % 200) as u8 + 10))
            } else {
                None
            };
            let port = 5201 + i as u16;
            let app_core = self.config.app_cores[i % self.config.app_cores.len()];
            api.bind_tcp(container, port, app_core, self.config.app_service_ns);
            let flow = api.tcp_flow(container, port, self.config.window);
            api.tcp_stream(flow, self.config.msg_size);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_flow_config() {
        let cfg = UdpStressConfig::single_flow(16);
        assert_eq!(cfg.n_flows, 1);
        assert_eq!(cfg.senders_per_flow, 3);
        assert!(matches!(cfg.pacing, Pacing::MaxRate));
    }

    #[test]
    fn multi_flow_config() {
        let cfg = UdpStressConfig::multi_flow(5, 4096);
        assert_eq!(cfg.n_flows, 5);
        assert_eq!(cfg.senders_per_flow, 1);
        assert_eq!(cfg.payload, 4096);
    }

    #[test]
    fn tcp_single_config() {
        let cfg = TcpStreamsConfig::single(4096);
        assert_eq!(cfg.n_flows, 1);
        assert_eq!(cfg.window, 128);
    }
}

//! Differential conformance: the discrete-event simulator and the
//! real-thread dataplane executor run the same logical pipeline, and
//! every engine-independent invariant must agree.
//!
//! The two engines share the cost model, the steering math, and the
//! trace vocabulary, but nothing else — virtual time vs wall clock,
//! one thread vs a pinned pool. Whatever still matches is therefore a
//! property of the *pipeline*, not of an engine:
//!
//! * **Packet conservation** — delivered + dropped == injected, and the
//!   trace stream's enqueue/consume ledger balances per packet.
//! * **Stage-count per packet** — every delivered packet's `Deliver`
//!   event carries a hop count and hop digest that `check_stream`
//!   revalidates against the observed `StageExec` sequence; with GRO
//!   splitting on, the pipeline is exactly one hop deeper.
//! * **Per-(flow, device) order** — zero violations wherever the engine
//!   promises them (dataplane always; sim vanilla always; sim Falcon
//!   may migrate off hotspots, so only the stream ledger is required).
//! * **Drop-reason totals** — the per-reason counters and the trace's
//!   `QueueDrop` events tell the same story on both engines.
//!
//! The last two tests are the satellite direction check: on the
//! Figure-13 TCP-4KB shape, GRO splitting must not cost throughput in
//! either engine (and on real cores should buy some).

use falcon_dataplane::{
    available_cores, run_scenario, DataplaneReport, PolicyKind, Scenario, TrafficShape,
    SPLIT_STAGES, STAGES,
};
use falcon_experiments::scenario::Mode;
use falcon_integration_tests::{
    assert_dataplane_conforms, assert_sim_conforms, small_udp_runner, stage_checkpoints,
    tcp4k_falcon, tcp4k_runner, DATAPLANE_SPLIT_IF,
};
use falcon_simcore::SimDuration;
use falcon_trace::{EventKind, DELIVERY_CHECK};

/// Large enough that no conformance run wraps the sim trace ring.
const SIM_RING: usize = 1 << 20;

/// A traced dataplane scenario sized for invariant checking: stage
/// costs scaled down but kept far enough apart (work_scale 100) that
/// consecutive stage executions of one packet get distinct timestamps,
/// and a trace ring that provably never wraps (asserted post-run).
fn dp_scenario(split_gro: bool, workers: usize, flows: u64, packets: u64) -> Scenario {
    let mut s = Scenario {
        policy: PolicyKind::Falcon,
        workers,
        flows,
        packets,
        payload: 512,
        work_scale_milli: 100,
        inject_gap_ns: 0,
        pin: false,
        oversubscribe: true,
        trace_capacity: 1 << 18,
        ..Scenario::default()
    };
    if split_gro {
        s.split_gro = true;
        s.shape = TrafficShape::TcpGro { mss: 1448 };
        s.payload = 4096;
    }
    s
}

/// Every `Deliver` event in a dataplane trace must report the same
/// pipeline depth: `stages` softirq hops plus the delivery checkpoint.
fn assert_uniform_depth(out: &falcon_dataplane::RunOutput) {
    let want = out.stages() as u32 + 1;
    let mut seen = 0u64;
    for e in out.merged_events() {
        if let EventKind::Deliver { hops, .. } = e.kind {
            assert_eq!(hops, want, "a packet traversed the wrong stage count");
            seen += 1;
        }
    }
    assert_eq!(seen, out.delivered(), "every delivery must be traced");
}

/// Four-stage pipeline: both engines conserve packets, balance their
/// trace ledgers, agree drop totals with their counters, and neither
/// visits the GRO-split checkpoint.
#[test]
fn four_stage_conformance_agrees_across_engines() {
    // Simulator side (vanilla: strict order is also promised).
    let mut sim = small_udp_runner(falcon_integration_tests::falcon_mode(), 250_000.0, 512, 11);
    sim.enable_tracing(SIM_RING);
    sim.run_for(SimDuration::from_millis(6));
    assert_sim_conforms(&sim, false);
    let split_if = sim.machine().ifx.pnic_split;
    let sim_cps = stage_checkpoints(&sim.tracer().events());
    assert!(
        !sim_cps.contains(&split_if),
        "4-stage sim run must never execute the split half-stage"
    );

    // Dataplane side.
    let out = run_scenario(&dp_scenario(false, 2, 3, 3_000));
    assert_eq!(out.stages(), STAGES);
    assert_dataplane_conforms(&out);
    assert_uniform_depth(&out);
    let dp_cps = stage_checkpoints(&out.merged_events());
    assert!(!dp_cps.contains(&DATAPLANE_SPLIT_IF));
    // Distinct softirq checkpoints == pipeline depth (stage B shares
    // the pNIC device but is flagged as its own checkpoint).
    let softirq: Vec<u32> = dp_cps
        .into_iter()
        .filter(|&c| c != DELIVERY_CHECK)
        .collect();
    assert_eq!(softirq.len(), STAGES);
}

/// Five-stage pipeline: with `split_gro` on, both engines grow exactly
/// one extra softirq hop, and that hop runs at the synthetic split
/// device so steering can place it on its own core.
#[test]
fn five_stage_split_conformance_agrees_across_engines() {
    // Simulator side: the Figure-13 TCP-4KB shape, Falcon with GRO
    // splitting. The split half-stage appears at `eth0:gro`.
    let mut sim = tcp4k_runner(tcp4k_falcon(true), 2, 7);
    sim.enable_tracing(SIM_RING);
    sim.run_for(SimDuration::from_millis(4));
    assert_sim_conforms(&sim, false);
    let split_if = sim.machine().ifx.pnic_split;
    assert!(
        stage_checkpoints(&sim.tracer().events()).contains(&split_if),
        "sim split run never executed the GRO half-stage"
    );

    // Control: the same shape without splitting never visits it.
    let mut ctrl = tcp4k_runner(tcp4k_falcon(false), 2, 7);
    ctrl.enable_tracing(SIM_RING);
    ctrl.run_for(SimDuration::from_millis(4));
    assert_sim_conforms(&ctrl, false);
    assert!(!stage_checkpoints(&ctrl.tracer().events()).contains(&split_if));

    // Dataplane side: same invariant set, plus exact per-packet depth.
    let out = run_scenario(&dp_scenario(true, 3, 4, 2_500));
    assert_eq!(out.stages(), SPLIT_STAGES);
    assert_dataplane_conforms(&out);
    assert_uniform_depth(&out);
    let dp_cps = stage_checkpoints(&out.merged_events());
    assert!(
        dp_cps.contains(&DATAPLANE_SPLIT_IF),
        "dataplane split run never executed the GRO half-stage"
    );
    let softirq: Vec<u32> = dp_cps
        .into_iter()
        .filter(|&c| c != DELIVERY_CHECK)
        .collect();
    assert_eq!(softirq.len(), SPLIT_STAGES);
}

/// The acceptance gate: the five-stage pipeline under the PR-2 chaos
/// knobs — steering rotated every other packet, destination sweeps
/// stalled — must still satisfy the full conformance set, including the
/// trace-stream ledger.
#[test]
fn five_stage_chaos_conformance_holds() {
    let mut s = dp_scenario(true, 4, 2, 2_000);
    s.chaos_steer_period = 2;
    s.chaos_sweep_stall_ns = 800;
    let out = run_scenario(&s);
    assert_eq!(out.stages(), SPLIT_STAGES);
    assert_dataplane_conforms(&out);
    assert_uniform_depth(&out);
}

/// The sweep grid, differentially: every (flows × workers) cell of a
/// small grid runs the batched executor under the full conformance set
/// — conservation, per-packet stage counts via the hop digest, the
/// order audit, and the trace-stream ledger — on both pipeline shapes.
/// Batching (ring batches, outbox staging, deferred counter flushes)
/// must be invisible to every one of these invariants at every cell.
#[test]
fn sweep_grid_conforms_at_every_point() {
    for split in [false, true] {
        for flows in 1..=2u64 {
            for workers in 1..=2usize {
                let out = run_scenario(&dp_scenario(split, workers, flows, 1_200));
                assert_eq!(
                    out.stages(),
                    if split { SPLIT_STAGES } else { STAGES },
                    "grid cell ({flows}, {workers}) ran the wrong shape"
                );
                assert_dataplane_conforms(&out);
                assert_uniform_depth(&out);
            }
        }
    }
}

/// The sweep grid under the chaos knobs: forced steering rotation plus
/// stalled destination sweeps at every multi-worker cell. This is the
/// adversarial half of the acceptance gate — the batched hot path must
/// hold the order audit at zero while migrations are being hammered at
/// every grid point.
#[test]
fn sweep_grid_chaos_conformance_holds() {
    for flows in 1..=2u64 {
        for workers in 2..=3usize {
            let mut s = dp_scenario(true, workers, flows, 1_000);
            s.chaos_steer_period = 2;
            s.chaos_sweep_stall_ns = 500;
            let out = run_scenario(&s);
            assert_dataplane_conforms(&out);
            assert_uniform_depth(&out);
        }
    }
}

/// The `--sweep` artifact path end-to-end: the experiments crate's grid
/// runner (the same code behind `falcon-repro --dataplane --sweep`)
/// must produce one comparison per cell with conservation intact and
/// zero reorder violations — here with chaos steering layered on top of
/// every point, so the JSON consumers' pass/fail line
/// (`total_reorder_violations`) is demonstrably adversarial, not idle.
#[test]
fn sweep_report_audits_zero_violations_under_chaos() {
    use falcon_experiments::dataplane::run_sweep;
    use falcon_experiments::measure::Scale;
    let sweep = run_sweep(Scale::Quick, 2, 2, true, 3, false, None, false);
    assert_eq!(sweep.points.len(), 4, "2 flows x 2 workers");
    assert_eq!(sweep.total_reorder_violations(), 0);
    for p in &sweep.points {
        let c = &p.comparison;
        assert_eq!(c.vanilla.delivered + c.vanilla.dropped, c.vanilla.injected);
        assert_eq!(c.falcon.delivered + c.falcon.dropped, c.falcon.injected);
        assert!(c.vanilla.order_checks > 0);
        assert!(c.falcon.order_checks > 0);
    }
}

/// Drop accounting under pressure: tiny rings force mid-pipeline drops
/// in the dataplane, a hot sender forces ring drops in the sim, and on
/// both engines the trace's `QueueDrop` events must equal the engine's
/// own drop counters (asserted inside the conformance helpers).
#[test]
fn drop_reason_totals_agree_with_traces() {
    // Dataplane: 4-slot rings on the 5-stage shape all but guarantee
    // drops. "All but": on an oversubscribed host the injector thread
    // can be starved hard enough that packets trickle through without
    // ever filling a ring, so retry the provocation a couple of times.
    // Conformance is asserted on every attempt either way.
    let mut s = dp_scenario(true, 3, 2, 4_000);
    s.ring_capacity = 4;
    let mut provoked = false;
    for _ in 0..3 {
        let out = run_scenario(&s);
        assert_dataplane_conforms(&out);
        if out.dropped() > 0 {
            provoked = true;
            break;
        }
    }
    assert!(provoked, "scenario failed to provoke drops in 3 attempts");

    // Simulator: overdrive the single-flow sender against the
    // serialized vanilla overlay, which saturates (and drops) first.
    let mut sim = small_udp_runner(Mode::Vanilla, 2_500_000.0, 512, 3);
    sim.enable_tracing(SIM_RING);
    sim.run_for(SimDuration::from_millis(6));
    assert_sim_conforms(&sim, false);
    assert!(
        sim.counters().total_drops() > 0,
        "sim scenario failed to provoke drops"
    );
}

/// Satellite direction check, simulator side: on the Figure-13 TCP-4KB
/// shape, the GRO-split pipeline must out-deliver the unsplit one.
///
/// The sim's split comparison is the figure's own: Host+ (the host
/// network with `split_gro`) against plain Host. Falcon-vs-Falcon is
/// *not* a clean split measurement in the simulator, because the
/// unsplit NIC poll coalesces consecutive same-flow segments right out
/// of the ring — a second confounding variable the split path
/// deliberately defers — while on real cores the dataplane test below
/// isolates the split itself. Virtual time makes this deterministic;
/// at 1–2 flows the sim shows the paper's Figure-13 lift (~1.5x at one
/// flow), and the band below only asserts the direction.
#[test]
fn sim_split_gro_lifts_tcp4k_throughput() {
    let delivered = |mode: Mode| {
        let mut runner = tcp4k_runner(mode, 1, 42);
        runner.run_for(SimDuration::from_millis(8));
        runner.counters().total_delivered()
    };
    let plain = delivered(Mode::Host);
    let split = delivered(match tcp4k_falcon(true) {
        Mode::Falcon(cfg) => Mode::HostPlus(cfg),
        _ => unreachable!(),
    });
    assert!(plain > 0, "no-split run delivered nothing");
    assert!(
        split as f64 >= plain as f64 * 1.05,
        "GRO splitting lost throughput in the sim: split {split} vs plain {plain}"
    );
}

/// Satellite direction check, dataplane side: the same comparison on
/// real cores. Needs at least four logical cores for pipelining to
/// beat serialization at all; on smaller hosts this test *skips
/// explicitly* (with a message) rather than passing silently.
#[test]
fn dataplane_split_gro_speedup_direction() {
    let cores = available_cores();
    if cores < 4 {
        eprintln!(
            "SKIPPED dataplane_split_gro_speedup_direction: needs >=4 logical \
             cores to pipeline across, host has {cores}"
        );
        return;
    }
    let throughput = |split: bool| {
        let mut s = Scenario {
            policy: PolicyKind::Falcon,
            workers: cores.min(SPLIT_STAGES),
            flows: 2,
            packets: 20_000,
            payload: 4096,
            shape: TrafficShape::TcpGro { mss: 1448 },
            split_gro: split,
            work_scale_milli: 250,
            inject_gap_ns: 0,
            trace_capacity: 0,
            ..Scenario::default()
        };
        if !split {
            s.workers = cores.min(STAGES);
        }
        DataplaneReport::from_run(&run_scenario(&s)).throughput_pps
    };
    let plain = throughput(false);
    let split = throughput(true);
    assert!(
        split >= plain * 0.9,
        "GRO splitting lost throughput on real cores: split {split:.0} vs plain {plain:.0} pps"
    );
}

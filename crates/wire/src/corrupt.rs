//! [`Corruptor`]: the deterministic bit-flip chaos knob.
//!
//! Wire mode's drop accounting is only exact if corruption is exact:
//! the corruptor is a seeded xorshift64* stream, so a given
//! `(seed, rate)` flips the same bits of the same segments in every
//! run, and a conformance test can assert per-stage drop counts instead
//! of ranges. No wall clock, no global RNG.

/// Flips one random bit per "corrupted" segment at a configured rate.
#[derive(Debug, Clone)]
pub struct Corruptor {
    state: u64,
    per_million: u32,
    /// Segments corrupted so far.
    pub flipped: u64,
}

impl Corruptor {
    /// A corruptor flipping a bit in roughly `per_million` out of every
    /// million segments. Rate 0 never corrupts.
    pub fn new(seed: u64, per_million: u32) -> Self {
        Corruptor {
            // xorshift64* must not start at zero.
            state: seed | 1,
            per_million,
            flipped: 0,
        }
    }

    fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Possibly flips one bit of `seg`. Returns whether it did.
    pub fn maybe_corrupt(&mut self, seg: &mut [u8]) -> bool {
        if self.per_million == 0 || seg.is_empty() {
            return false;
        }
        if self.next() % 1_000_000 >= self.per_million as u64 {
            return false;
        }
        let bit = self.next() % (seg.len() as u64 * 8);
        seg[(bit / 8) as usize] ^= 1 << (bit % 8);
        self.flipped += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut c = Corruptor::new(seed, 500_000);
            let mut segs: Vec<Vec<u8>> = (0..64).map(|i| vec![i as u8; 32]).collect();
            for s in &mut segs {
                c.maybe_corrupt(s);
            }
            (segs, c.flipped)
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).0, run(8).0);
    }

    #[test]
    fn rate_zero_never_flips_rate_million_always_flips() {
        let mut never = Corruptor::new(1, 0);
        let mut always = Corruptor::new(1, 1_000_000);
        let mut buf = [0u8; 16];
        for _ in 0..100 {
            assert!(!never.maybe_corrupt(&mut buf));
        }
        assert_eq!(buf, [0u8; 16]);
        for _ in 0..100 {
            assert!(always.maybe_corrupt(&mut buf));
        }
        assert_eq!(always.flipped, 100);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn flips_exactly_one_bit() {
        let mut c = Corruptor::new(99, 1_000_000);
        let mut buf = [0u8; 64];
        c.maybe_corrupt(&mut buf);
        let ones: u32 = buf.iter().map(|b| b.count_ones()).sum();
        assert_eq!(ones, 1);
    }
}

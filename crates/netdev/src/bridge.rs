//! The Linux bridge's forwarding database (FDB).
//!
//! Containers attach to the host through a bridge (`docker0` or an
//! overlay bridge) plus a veth pair. `br_handle_frame` looks up the
//! destination MAC in the FDB to pick the egress port; unknown
//! destinations flood. The simulation learns source MACs like a real
//! bridge so the forwarding path settles into unicast after the first
//! frame in each direction.

use std::collections::HashMap;

use falcon_packet::MacAddr;

/// A bridge port identifier (index of the attached device).
pub type PortId = usize;

/// A learning forwarding database.
#[derive(Debug, Default)]
pub struct Fdb {
    entries: HashMap<MacAddr, PortId>,
    lookups: u64,
    floods: u64,
}

impl Fdb {
    /// Creates an empty FDB.
    pub fn new() -> Self {
        Fdb::default()
    }

    /// Learns that `mac` is reachable via `port` (called with the
    /// source MAC of every frame the bridge sees).
    pub fn learn(&mut self, mac: MacAddr, port: PortId) {
        self.entries.insert(mac, port);
    }

    /// Looks up the egress port for `dst`. `None` means flood (unknown
    /// unicast or broadcast).
    pub fn lookup(&mut self, dst: MacAddr) -> Option<PortId> {
        self.lookups += 1;
        if dst.is_broadcast() {
            self.floods += 1;
            return None;
        }
        let hit = self.entries.get(&dst).copied();
        if hit.is_none() {
            self.floods += 1;
        }
        hit
    }

    /// Number of learned entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if nothing has been learned.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total lookups performed.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Lookups that had to flood.
    pub fn floods(&self) -> u64 {
        self.floods
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learn_then_lookup() {
        let mut fdb = Fdb::new();
        let mac = MacAddr::from_index(5);
        assert!(fdb.is_empty());
        assert_eq!(fdb.lookup(mac), None);
        fdb.learn(mac, 3);
        assert_eq!(fdb.lookup(mac), Some(3));
        assert_eq!(fdb.len(), 1);
        assert_eq!(fdb.lookups(), 2);
        assert_eq!(fdb.floods(), 1);
    }

    #[test]
    fn relearning_moves_port() {
        let mut fdb = Fdb::new();
        let mac = MacAddr::from_index(1);
        fdb.learn(mac, 1);
        fdb.learn(mac, 2);
        assert_eq!(fdb.lookup(mac), Some(2));
        assert_eq!(fdb.len(), 1);
    }

    #[test]
    fn broadcast_always_floods() {
        let mut fdb = Fdb::new();
        fdb.learn(MacAddr::BROADCAST, 1); // Nonsense a real bridge never does.
        assert_eq!(fdb.lookup(MacAddr::BROADCAST), None);
        assert_eq!(fdb.floods(), 1);
    }
}

//! Data caching (memcached style) over the overlay, vanilla vs Falcon —
//! the paper's Figure 18 scenario as a runnable demo.
//!
//! ```text
//! cargo run --release -p falcon-examples --bin data_caching [threads]
//! ```

use falcon::{enable_falcon, FalconConfig};
use falcon_cpusim::CpuSet;
use falcon_netdev::NicConfig;
use falcon_netstack::sim::SimRunner;
use falcon_netstack::{KernelVersion, NetMode, SimConfig, StackConfig, StayLocal, Steering};
use falcon_simcore::SimDuration;
use falcon_workloads::{DataCaching, DataCachingConfig};

fn run(threads: usize, use_falcon: bool) -> SimRunner {
    let mut stack = StackConfig::new(NetMode::Overlay, KernelVersion::K419, 14);
    stack.nic = NicConfig::multi_queue(4, 1024, 4);
    stack.rps = Some(CpuSet::range(0, 6));
    let steering: Box<dyn Steering> = if use_falcon {
        enable_falcon(&mut stack, FalconConfig::new(CpuSet::range(0, 6)))
    } else {
        Box::new(StayLocal)
    };
    let mut dc = DataCachingConfig::open_loop(threads, 15_000.0);
    dc.app_cores = vec![8, 9, 10, 11, 12, 13];
    let mut runner = SimRunner::new(
        SimConfig::new(stack),
        steering,
        Box::new(DataCaching::new(dc)),
    );
    // Warm up, then measure steady state.
    runner.run_for(SimDuration::from_millis(10));
    runner.begin_measurement();
    runner.run_for(SimDuration::from_millis(40));
    runner
}

fn main() {
    let threads: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(10);
    println!("Data caching: {threads} client threads, 550B objects, Zipf keys\n");

    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>12}",
        "config", "requests/s", "avg us", "p99 us", "drops"
    );
    let mut results = Vec::new();
    for use_falcon in [false, true] {
        let runner = run(threads, use_falcon);
        let c = runner.counters();
        let rtt = &c.rtt;
        let name = if use_falcon { "Falcon" } else { "Con" };
        println!(
            "{:<10} {:>12.0} {:>12.1} {:>12.1} {:>12}",
            name,
            rtt.count() as f64 / 0.040,
            rtt.mean() / 1e3,
            rtt.percentile(99.0) as f64 / 1e3,
            c.total_drops(),
        );
        results.push((rtt.mean(), rtt.percentile(99.0)));
    }
    let avg_cut = 1.0 - results[1].0 / results[0].0.max(1.0);
    let p99_cut = 1.0 - results[1].1 as f64 / results[0].1.max(1) as f64;
    println!(
        "\nFalcon reduces average latency by {:.0}% and p99 by {:.0}%.",
        avg_cut * 100.0,
        p99_cut * 100.0
    );
    println!("(The paper reports 51% and 53% at ten client threads.)");
}

//! Scalar vs vectorized inner byte loops, at the three frame sizes
//! that matter: a minimum Ethernet frame (64 B), a full MTU frame
//! (1500 B), and a jumbo/GRO superframe (9000 B).
//!
//! * `checksum/scalar` — the two-bytes-per-iteration RFC 1071 walk
//!   ([`sum_words_scalar`]), the auditable reference.
//! * `checksum/folded` — the shipping path ([`sum_words`]): 8 bytes
//!   per iteration into a u64 with end-around carry, SSE2/NEON where
//!   the host has them.
//! * `digest/scalar` — byte-at-a-time [`mix64_scalar`], the spec for
//!   the payload digest that replaced FNV-1a.
//! * `digest/chunked` — the shipping [`mix64`] (8-byte lanes).
//!
//! The acceptance bar is folded/chunked ≥ 2× scalar at 1500 B.
//! Throughput is reported in bytes so the gap reads directly as GB/s.
//!
//! [`sum_words`]: falcon_packet::checksum::sum_words
//! [`sum_words_scalar`]: falcon_packet::checksum::sum_words_scalar
//! [`mix64`]: falcon_packet::mix64
//! [`mix64_scalar`]: falcon_packet::mix64_scalar

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use falcon_packet::checksum::{fold, sum_words, sum_words_scalar};
use falcon_packet::{mix64, mix64_scalar};

const SIZES: [usize; 3] = [64, 1500, 9000];
const DIGEST_SEED: u64 = 0xcbf2_9ce4_8422_2325;

fn frame(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i as u8).wrapping_mul(167)).collect()
}

fn bench_checksum(c: &mut Criterion) {
    let mut g = c.benchmark_group("checksum");
    for len in SIZES {
        let data = frame(len);
        g.throughput(Throughput::Bytes(len as u64));
        g.bench_function(&format!("scalar/{len}B"), |b| {
            b.iter(|| fold(sum_words_scalar(black_box(&data), 0)))
        });
        g.bench_function(&format!("folded/{len}B"), |b| {
            b.iter(|| fold(sum_words(black_box(&data), 0)))
        });
    }
    g.finish();
}

fn bench_digest(c: &mut Criterion) {
    let mut g = c.benchmark_group("digest");
    for len in SIZES {
        let data = frame(len);
        g.throughput(Throughput::Bytes(len as u64));
        g.bench_function(&format!("scalar/{len}B"), |b| {
            b.iter(|| mix64_scalar(black_box(DIGEST_SEED), black_box(&data)))
        });
        g.bench_function(&format!("chunked/{len}B"), |b| {
            b.iter(|| mix64(black_box(DIGEST_SEED), black_box(&data)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_checksum, bench_digest);
criterion_main!(benches);

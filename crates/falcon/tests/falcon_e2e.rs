//! End-to-end Falcon-vs-vanilla tests: the paper's headline behaviours,
//! at miniature scale.

use falcon::{enable_falcon, FalconConfig};
use falcon_cpusim::CpuSet;
use falcon_netstack::sim::{App, SimApi, SimRunner};
use falcon_netstack::{
    KernelVersion, NetMode, Pacing, SimConfig, StackConfig, StayLocal, Steering,
};
use falcon_simcore::SimDuration;

const APP_CORE: usize = 5;

struct UdpStress {
    payload: usize,
    pacing: Pacing,
    senders: usize,
}

impl App for UdpStress {
    fn on_start(&mut self, api: &mut SimApi<'_>) {
        let c = api.add_container(0, 10);
        api.bind_udp(Some(c), 5001, APP_CORE, 300);
        let flow = api.udp_flow(Some(c), 5001, self.payload);
        api.udp_stress(flow, self.senders, self.pacing);
    }
}

fn run_overlay_udp(steering: Option<FalconConfig>, pacing: Pacing, millis: u64) -> SimRunner {
    let mut server = StackConfig::new(NetMode::Overlay, KernelVersion::K419, 8);
    let policy: Box<dyn Steering> = match steering {
        Some(cfg) => enable_falcon(&mut server, cfg),
        None => Box::new(StayLocal),
    };
    let cfg = SimConfig::new(server);
    let app = UdpStress {
        payload: 16,
        pacing,
        senders: 3,
    };
    let mut runner = SimRunner::new(cfg, policy, Box::new(app));
    runner.run_for(SimDuration::from_millis(millis));
    runner
}

fn falcon_cfg() -> FalconConfig {
    FalconConfig::new(CpuSet::range(1, 5))
}

#[test]
fn falcon_improves_single_flow_udp_throughput() {
    let vanilla = run_overlay_udp(None, Pacing::MaxRate, 30);
    let falcon = run_overlay_udp(Some(falcon_cfg()), Pacing::MaxRate, 30);
    let v = vanilla.counters().total_delivered();
    let f = falcon.counters().total_delivered();
    assert!(
        f as f64 > v as f64 * 1.3,
        "falcon {f} should clearly beat vanilla {v} on a single flow"
    );
    assert_eq!(
        falcon.machine().order.violations(),
        0,
        "pipelining must not reorder"
    );
}

#[test]
fn falcon_spreads_softirqs_over_more_cores() {
    let vanilla = run_overlay_udp(None, Pacing::MaxRate, 20);
    let falcon = run_overlay_udp(Some(falcon_cfg()), Pacing::MaxRate, 20);
    let busy = |runner: &SimRunner| {
        let ledger = &runner.machine().cores.ledger;
        let top = (0..8).map(|c| ledger.core(c).softirq_ns).max().unwrap();
        (0..8)
            .filter(|&c| ledger.core(c).softirq_ns > top / 10)
            .count()
    };
    let vb = busy(&vanilla);
    let fb = busy(&falcon);
    assert!(fb > vb, "falcon uses {fb} softirq cores vs vanilla {vb}");
}

#[test]
fn falcon_cuts_overload_latency() {
    // Drive near the vanilla saturation point: queues build on the
    // serialized core, and Falcon's extra cores absorb them.
    let rate = Pacing::FixedPps(450_000.0);
    let vanilla = run_overlay_udp(None, rate, 30);
    let falcon = run_overlay_udp(Some(falcon_cfg()), rate, 30);
    let vp99 = vanilla.counters().latency.percentile(99.0);
    let fp99 = falcon.counters().latency.percentile(99.0);
    assert!(
        (fp99 as f64) < vp99 as f64 * 0.7,
        "falcon p99 {fp99}ns should be well under vanilla p99 {vp99}ns"
    );
}

#[test]
fn falcon_never_hurts_when_gated_off() {
    // With the threshold at zero Falcon is permanently gated off; the
    // result must match vanilla behaviour (same steering decisions).
    let gated = run_overlay_udp(Some(falcon_cfg().with_threshold(0.0)), Pacing::MaxRate, 10);
    let vanilla = run_overlay_udp(None, Pacing::MaxRate, 10);
    let g = gated.counters().total_delivered() as f64;
    let v = vanilla.counters().total_delivered() as f64;
    assert!((g - v).abs() / v < 0.05, "gated falcon {g} ~= vanilla {v}");
    assert_eq!(
        gated.counters().steered_remote,
        0,
        "no pipelining while gated"
    );
}

struct TcpStream {
    msg_size: usize,
}

impl App for TcpStream {
    fn on_start(&mut self, api: &mut SimApi<'_>) {
        let c = api.add_container(0, 10);
        api.bind_tcp(Some(c), 5201, APP_CORE, 300);
        let flow = api.tcp_flow(Some(c), 5201, 128);
        api.tcp_stream(flow, self.msg_size);
    }
}

fn run_overlay_tcp(steering: Option<FalconConfig>, millis: u64) -> SimRunner {
    let mut server = StackConfig::new(NetMode::Overlay, KernelVersion::K419, 8);
    let policy: Box<dyn Steering> = match steering {
        Some(cfg) => enable_falcon(&mut server, cfg),
        None => Box::new(StayLocal),
    };
    let cfg = SimConfig::new(server);
    let mut runner = SimRunner::new(cfg, policy, Box::new(TcpStream { msg_size: 4096 }));
    runner.run_for(SimDuration::from_millis(millis));
    runner
}

#[test]
fn falcon_tcp_pipeline_preserves_order_and_delivers() {
    let falcon = run_overlay_tcp(Some(falcon_cfg()), 20);
    assert_eq!(falcon.machine().order.violations(), 0);
    assert!(falcon.counters().total_delivered() > 500);
}

#[test]
fn gro_splitting_relieves_the_first_stage() {
    // TCP 4 KB: skb_allocation + napi_gro_receive saturate the pNIC
    // stage core (paper Figure 9a); splitting moves GRO off it.
    let unsplit = run_overlay_tcp(Some(falcon_cfg()), 25);
    let split = run_overlay_tcp(Some(falcon_cfg().with_split_gro(true)), 25);

    // Where does GRO run? Unsplit: on the IRQ core (0). Split: on a
    // falcon CPU.
    let gro_on_core0 = |r: &SimRunner| {
        r.machine()
            .cores
            .ledger
            .function_on_core(0, "napi_gro_receive")
    };
    assert!(gro_on_core0(&unsplit) > 0);
    assert_eq!(gro_on_core0(&split), 0, "split moved GRO off the IRQ core");
    // Adaptive rebalancing may migrate a saturated stage occasionally;
    // the transient reordering must stay negligible.
    let delivered = split.counters().total_delivered().max(1);
    let violations = split.machine().order.violations();
    assert!(
        (violations as f64) < delivered as f64 * 0.005,
        "reordering rate too high: {violations} / {delivered}"
    );

    // The IRQ core's softirq load drops under splitting.
    let core0 = |r: &SimRunner| r.machine().cores.ledger.core(0).softirq_ns;
    assert!(
        core0(&split) < core0(&unsplit),
        "split core0 {} vs unsplit {}",
        core0(&split),
        core0(&unsplit)
    );
}

#[test]
fn runs_are_deterministic() {
    let a = run_overlay_udp(Some(falcon_cfg()), Pacing::MaxRate, 10);
    let b = run_overlay_udp(Some(falcon_cfg()), Pacing::MaxRate, 10);
    assert_eq!(
        a.counters().total_delivered(),
        b.counters().total_delivered()
    );
    assert_eq!(
        a.machine().cores.ledger.total_busy(),
        b.machine().cores.ledger.total_busy()
    );
}

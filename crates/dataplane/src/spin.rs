//! Deadline busy-spinning: turning modeled nanosecond costs into real
//! CPU occupancy.
//!
//! Each pipeline stage's cost model says "this stage costs N ns of CPU"
//! — the worker must actually *occupy its core* for that long, or the
//! wall-clock comparison between serialized (vanilla) and pipelined
//! (Falcon) execution would measure nothing. Spinning against a
//! monotonic-clock deadline (rather than a calibrated iteration count)
//! is robust to frequency scaling and preemption: a worker that gets
//! descheduled mid-stage simply finishes its stage later, exactly like
//! a real softirq losing its core.

use std::time::{Duration, Instant};

/// A shared epoch for cross-thread timestamps. `Instant` is a monotonic
/// clock, so nanosecond offsets from one copied epoch are comparable
/// across worker threads — the property the post-run ordering merge
/// relies on.
#[derive(Debug, Clone, Copy)]
pub struct Epoch(Instant);

impl Epoch {
    /// Starts the clock.
    pub fn start() -> Self {
        Epoch(Instant::now())
    }

    /// Nanoseconds since the epoch.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.0.elapsed().as_nanos() as u64
    }
}

impl Default for Epoch {
    fn default() -> Self {
        Epoch::start()
    }
}

/// Busy-spins the calling thread for `ns` nanoseconds of wall time and
/// returns the actually-elapsed duration (≥ `ns`; more if preempted).
#[inline]
pub fn spin_for_ns(ns: u64) -> u64 {
    if ns == 0 {
        return 0;
    }
    let start = Instant::now();
    let target = Duration::from_nanos(ns);
    loop {
        let elapsed = start.elapsed();
        if elapsed >= target {
            return elapsed.as_nanos() as u64;
        }
        // A few pause hints between clock reads keep the loop polite to
        // SMT siblings without losing deadline precision.
        for _ in 0..8 {
            std::hint::spin_loop();
        }
    }
}

/// Which tier an idle step landed in. Ordered by escalation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum IdleTier {
    /// Busy spin-hint: cheapest, keeps the core hot for an imminent
    /// arrival.
    Spin,
    /// `yield_now`: gives the scheduler a chance (essential when
    /// producers share this core).
    Yield,
    /// Short timed park: stops burning the core entirely when the ring
    /// mesh has been dry for a while.
    Park,
}

/// Tiered idle backoff for the worker sweep loop: a run of spin-hints,
/// then a run of yields, then short timed parks until work reappears.
///
/// A bare `yield_now` loop (the previous idle strategy) is the worst of
/// both worlds: on a dedicated core it burns full power making syscalls
/// for nothing, and on a shared core it thrashes the run queue. The
/// tiers mirror what real busy-poll NAPI drivers do — stay hot while an
/// arrival is plausibly imminent, get politer as the idle stretch
/// grows. `reset()` on any work snaps straight back to the hot tier.
#[derive(Debug)]
pub struct Backoff {
    step: u32,
}

impl Backoff {
    /// Idle steps spent in the spin-hint tier before yielding.
    const SPIN_STEPS: u32 = 64;
    /// Further idle steps spent yielding before parking.
    const YIELD_STEPS: u32 = 64;
    /// Park duration once fully backed off. Short enough that a
    /// post-park sweep catches new arrivals well inside the injector's
    /// patience, long enough to actually rest the core.
    const PARK: Duration = Duration::from_micros(50);

    /// A fresh backoff, starting at the hot tier.
    pub fn new() -> Self {
        Backoff { step: 0 }
    }

    /// Work was found: snap back to the hot tier.
    #[inline]
    pub fn reset(&mut self) {
        self.step = 0;
    }

    /// One idle step: waits according to the current tier, escalates,
    /// and reports which tier this step used.
    #[inline]
    pub fn idle(&mut self) -> IdleTier {
        let tier = if self.step < Self::SPIN_STEPS {
            for _ in 0..32 {
                std::hint::spin_loop();
            }
            IdleTier::Spin
        } else if self.step < Self::SPIN_STEPS + Self::YIELD_STEPS {
            std::thread::yield_now();
            IdleTier::Yield
        } else {
            std::thread::park_timeout(Self::PARK);
            IdleTier::Park
        };
        self.step = self.step.saturating_add(1);
        tier
    }
}

impl Default for Backoff {
    fn default() -> Self {
        Backoff::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spin_meets_its_deadline() {
        let spent = spin_for_ns(200_000);
        assert!(spent >= 200_000, "returned early: {spent}ns");
        // Not absurdly late either (schedulers permitting); allow 50x
        // slack for loaded CI machines.
        assert!(spent < 10_000_000, "suspiciously long spin: {spent}ns");
    }

    #[test]
    fn zero_is_free() {
        assert_eq!(spin_for_ns(0), 0);
    }

    #[test]
    fn backoff_escalates_and_resets() {
        let mut b = Backoff::new();
        assert_eq!(b.idle(), IdleTier::Spin);
        for _ in 0..Backoff::SPIN_STEPS {
            b.idle();
        }
        assert_eq!(b.idle(), IdleTier::Yield);
        for _ in 0..Backoff::YIELD_STEPS {
            b.idle();
        }
        assert_eq!(b.idle(), IdleTier::Park);
        assert_eq!(b.idle(), IdleTier::Park, "stays parked while idle");
        b.reset();
        assert_eq!(b.idle(), IdleTier::Spin, "work snaps back to hot tier");
    }

    #[test]
    fn epoch_is_monotonic() {
        let e = Epoch::start();
        let a = e.now_ns();
        spin_for_ns(10_000);
        let b = e.now_ns();
        assert!(b > a);
    }
}

//! Bob Jenkins' lookup3 hash, as carried in `include/linux/jhash.h`.
//!
//! This is the hash the Linux flow dissector uses to derive `skb->hash`
//! from the flow keys, so the reproduction uses the exact same mixing
//! constants and rotation schedule.

/// Arbitrary initial parameter from the kernel (`JHASH_INITVAL`).
pub const JHASH_INITVAL: u32 = 0xDEAD_BEEF;

#[inline]
fn rol32(x: u32, r: u32) -> u32 {
    x.rotate_left(r)
}

/// The `__jhash_mix` macro: mix three 32-bit values reversibly.
#[inline]
fn jhash_mix(a: &mut u32, b: &mut u32, c: &mut u32) {
    *a = a.wrapping_sub(*c);
    *a ^= rol32(*c, 4);
    *c = c.wrapping_add(*b);
    *b = b.wrapping_sub(*a);
    *b ^= rol32(*a, 6);
    *a = a.wrapping_add(*c);
    *c = c.wrapping_sub(*b);
    *c ^= rol32(*b, 8);
    *b = b.wrapping_add(*a);
    *a = a.wrapping_sub(*c);
    *a ^= rol32(*c, 16);
    *c = c.wrapping_add(*b);
    *b = b.wrapping_sub(*a);
    *b ^= rol32(*a, 19);
    *a = a.wrapping_add(*c);
    *c = c.wrapping_sub(*b);
    *c ^= rol32(*b, 4);
    *b = b.wrapping_add(*a);
}

/// The `__jhash_final` macro: final mixing of the three values.
#[inline]
fn jhash_final(mut a: u32, mut b: u32, mut c: u32) -> u32 {
    c ^= b;
    c = c.wrapping_sub(rol32(b, 14));
    a ^= c;
    a = a.wrapping_sub(rol32(c, 11));
    b ^= a;
    b = b.wrapping_sub(rol32(a, 25));
    c ^= b;
    c = c.wrapping_sub(rol32(b, 16));
    a ^= c;
    a = a.wrapping_sub(rol32(c, 4));
    b ^= a;
    b = b.wrapping_sub(rol32(a, 14));
    c ^= b;
    c = c.wrapping_sub(rol32(b, 24));
    c
}

/// `jhash2`: hash an array of `u32` words with an initial value.
///
/// Matches the kernel implementation word for word, so hash values (and
/// therefore RPS CPU choices) are bit-identical to a real kernel given
/// the same inputs.
///
/// # Examples
///
/// ```
/// use falcon_khash::jhash2;
///
/// let h1 = jhash2(&[1, 2, 3, 4, 5], 0);
/// let h2 = jhash2(&[1, 2, 3, 4, 5], 0);
/// assert_eq!(h1, h2);
/// assert_ne!(h1, jhash2(&[1, 2, 3, 4, 6], 0));
/// ```
pub fn jhash2(k: &[u32], initval: u32) -> u32 {
    let mut length = k.len() as u32;
    let mut a = JHASH_INITVAL
        .wrapping_add(length << 2)
        .wrapping_add(initval);
    let mut b = a;
    let mut c = a;

    let mut idx = 0usize;
    while length > 3 {
        a = a.wrapping_add(k[idx]);
        b = b.wrapping_add(k[idx + 1]);
        c = c.wrapping_add(k[idx + 2]);
        jhash_mix(&mut a, &mut b, &mut c);
        length -= 3;
        idx += 3;
    }

    // Handle the last 3 u32's.
    if length >= 3 {
        c = c.wrapping_add(k[idx + 2]);
    }
    if length >= 2 {
        b = b.wrapping_add(k[idx + 1]);
    }
    if length >= 1 {
        a = a.wrapping_add(k[idx]);
        return jhash_final(a, b, c);
    }
    // Zero-length input: nothing to add, c holds the initialized state.
    c
}

/// `jhash_3words`: hash exactly three words (the kernel's fast path for
/// (saddr, daddr, ports) flow hashing).
pub fn jhash_3words(a: u32, b: u32, c: u32, initval: u32) -> u32 {
    let a = a.wrapping_add(JHASH_INITVAL);
    let b = b.wrapping_add(JHASH_INITVAL);
    let c = c.wrapping_add(initval);
    jhash_final(a, b, c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let words = [0x0A00_0001u32, 0x0A00_0002, 0x1234_5678];
        assert_eq!(jhash2(&words, 7), jhash2(&words, 7));
        assert_eq!(jhash_3words(1, 2, 3, 4), jhash_3words(1, 2, 3, 4));
    }

    #[test]
    fn initval_changes_hash() {
        let words = [1u32, 2, 3, 4];
        assert_ne!(jhash2(&words, 0), jhash2(&words, 1));
        assert_ne!(jhash_3words(1, 2, 3, 0), jhash_3words(1, 2, 3, 1));
    }

    #[test]
    fn length_sensitivity() {
        // A trailing zero word must change the hash (length is mixed in).
        assert_ne!(jhash2(&[1, 2], 0), jhash2(&[1, 2, 0], 0));
    }

    #[test]
    fn empty_input_is_stable() {
        assert_eq!(jhash2(&[], 5), jhash2(&[], 5));
        assert_ne!(jhash2(&[], 5), jhash2(&[], 6));
    }

    #[test]
    fn multi_block_inputs() {
        // More than 3 words exercises the mixing loop.
        let long: Vec<u32> = (0..16).collect();
        let h1 = jhash2(&long, 0);
        let mut tweaked = long.clone();
        tweaked[0] ^= 1;
        assert_ne!(h1, jhash2(&tweaked, 0));
        tweaked[0] ^= 1;
        tweaked[15] ^= 1;
        assert_ne!(h1, jhash2(&tweaked, 0));
    }

    #[test]
    fn avalanche_quality() {
        // Flipping one input bit should flip roughly half the output
        // bits on average. Accept a generous band.
        let base = [0x0A01_0203u32, 0x0A04_0506, 0xABCD_1234];
        let h0 = jhash2(&base, 0);
        let mut total_flips = 0u32;
        let mut trials = 0u32;
        for w in 0..3 {
            for bit in 0..32 {
                let mut m = base;
                m[w] ^= 1 << bit;
                total_flips += (jhash2(&m, 0) ^ h0).count_ones();
                trials += 1;
            }
        }
        let avg = total_flips as f64 / trials as f64;
        assert!((10.0..22.0).contains(&avg), "poor avalanche: {avg} bits");
    }
}

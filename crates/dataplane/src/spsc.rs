//! A hand-rolled bounded single-producer/single-consumer ring.
//!
//! This is the real-thread analogue of [`falcon_netdev`]'s modeled
//! `RxRing`: a fixed-capacity tail-drop FIFO, except here "concurrent"
//! means actual cores, so the indices are atomics and the hot fields
//! live on their own cache lines. The design is the classic Lamport
//! queue with index caching:
//!
//! * the producer owns `tail`, the consumer owns `head`; each side
//!   *reads* the other's index only when its cached copy says the ring
//!   looks full/empty, so steady-state push/pop touches one shared
//!   cache line, not two;
//! * slots are written before the `Release` store of `tail` publishes
//!   them, and read after the `Acquire` load that observes them — the
//!   only synchronization a SPSC FIFO needs;
//! * capacity is rounded up to a power of two so the index wrap is a
//!   mask, not a division.
//!
//! `std`-only by design: the point of this crate is to demonstrate the
//! paper's wall-clock parallelism without reaching for crossbeam.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Pads a value to a cache line so the producer's and consumer's hot
/// indices never false-share.
#[repr(align(64))]
#[derive(Debug, Default)]
struct CachePadded<T>(T);

/// The shared ring storage. `head` trails `tail`; both increase
/// monotonically and are reduced modulo capacity only at slot access.
#[derive(Debug)]
struct Shared<T> {
    mask: usize,
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Consumer position (next slot to pop).
    head: CachePadded<AtomicUsize>,
    /// Producer position (next slot to fill).
    tail: CachePadded<AtomicUsize>,
}

// SAFETY: slots are only accessed by the side that owns the index range
// covering them (producer: head..head+cap unfilled region; consumer:
// published head..tail region), with Release/Acquire pairs ordering the
// handoff. T must be Send because values cross threads.
unsafe impl<T: Send> Sync for Shared<T> {}
unsafe impl<T: Send> Send for Shared<T> {}

impl<T> Drop for Shared<T> {
    fn drop(&mut self) {
        // Exclusive access here: drain whatever was never popped.
        let mut head = *self.head.0.get_mut();
        let tail = *self.tail.0.get_mut();
        while head != tail {
            unsafe { (*self.buf[head & self.mask].get()).assume_init_drop() };
            head = head.wrapping_add(1);
        }
    }
}

/// The producing half of a ring; `Send` but tied to one thread at a
/// time.
#[derive(Debug)]
pub struct Producer<T> {
    shared: Arc<Shared<T>>,
    /// Local copy of `tail` (only we advance it).
    tail: usize,
    /// Last observed consumer position; refreshed only on apparent
    /// full.
    cached_head: usize,
    /// Packets rejected because the ring was full (tail-drop
    /// accounting, mirroring the modeled `RxRing::dropped`).
    dropped: u64,
}

/// The consuming half of a ring.
#[derive(Debug)]
pub struct Consumer<T> {
    shared: Arc<Shared<T>>,
    /// Local copy of `head` (only we advance it).
    head: usize,
    /// Last observed producer position; refreshed only on apparent
    /// empty.
    cached_tail: usize,
}

/// Creates a bounded SPSC ring holding at least `capacity` items
/// (rounded up to a power of two, minimum 2).
pub fn ring<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let cap = capacity.max(2).next_power_of_two();
    let buf: Box<[UnsafeCell<MaybeUninit<T>>]> = (0..cap)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect();
    let shared = Arc::new(Shared {
        mask: cap - 1,
        buf,
        head: CachePadded(AtomicUsize::new(0)),
        tail: CachePadded(AtomicUsize::new(0)),
    });
    (
        Producer {
            shared: Arc::clone(&shared),
            tail: 0,
            cached_head: 0,
            dropped: 0,
        },
        Consumer {
            shared,
            head: 0,
            cached_tail: 0,
        },
    )
}

impl<T> Producer<T> {
    /// Slots in the ring.
    pub fn capacity(&self) -> usize {
        self.shared.mask + 1
    }

    /// Attempts to enqueue; on a full ring the value is handed back.
    #[inline]
    pub fn try_push(&mut self, value: T) -> Result<(), T> {
        let cap = self.shared.mask + 1;
        if self.tail.wrapping_sub(self.cached_head) == cap {
            self.cached_head = self.shared.head.0.load(Ordering::Acquire);
            if self.tail.wrapping_sub(self.cached_head) == cap {
                return Err(value);
            }
        }
        unsafe {
            (*self.shared.buf[self.tail & self.shared.mask].get()).write(value);
        }
        self.tail = self.tail.wrapping_add(1);
        self.shared.tail.0.store(self.tail, Ordering::Release);
        Ok(())
    }

    /// Enqueues, or counts a tail-drop and discards the value. Returns
    /// whether the value was accepted.
    #[inline]
    pub fn push_or_drop(&mut self, value: T) -> bool {
        match self.try_push(value) {
            Ok(()) => true,
            Err(_) => {
                self.dropped += 1;
                false
            }
        }
    }

    /// Items dropped by [`push_or_drop`](Self::push_or_drop) and
    /// [`push_batch_or_drop`](Self::push_batch_or_drop).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Enqueues as many items as fit from the front of `batch`,
    /// draining exactly the accepted prefix, and returns how many were
    /// accepted. The whole batch costs at most one `Acquire` refresh of
    /// the consumer index (only when the ring looks full) and exactly
    /// one `Release` publish — versus one of each per item on the
    /// [`try_push`](Self::try_push) path. Items that don't fit stay in
    /// `batch`, in order, for the caller to retry or drop.
    pub fn push_batch(&mut self, batch: &mut Vec<T>) -> usize {
        if batch.is_empty() {
            return 0;
        }
        let cap = self.shared.mask + 1;
        let mut free = cap - self.tail.wrapping_sub(self.cached_head);
        if free < batch.len() {
            self.cached_head = self.shared.head.0.load(Ordering::Acquire);
            free = cap - self.tail.wrapping_sub(self.cached_head);
        }
        let n = free.min(batch.len());
        if n == 0 {
            return 0;
        }
        for value in batch.drain(..n) {
            unsafe {
                (*self.shared.buf[self.tail & self.shared.mask].get()).write(value);
            }
            self.tail = self.tail.wrapping_add(1);
        }
        self.shared.tail.0.store(self.tail, Ordering::Release);
        n
    }

    /// Enqueues what fits from `batch` and tail-drops the rest, with
    /// exact drop accounting: `batch` is left empty, the return value
    /// is the accepted count, and [`dropped`](Self::dropped) grows by
    /// exactly `batch.len() - accepted`.
    pub fn push_batch_or_drop(&mut self, batch: &mut Vec<T>) -> usize {
        let accepted = self.push_batch(batch);
        self.dropped += batch.len() as u64;
        batch.clear();
        accepted
    }

    /// Occupancy as seen from the producer side (exact for our own
    /// pushes, conservative about concurrent pops).
    pub fn len(&self) -> usize {
        let head = self.shared.head.0.load(Ordering::Acquire);
        self.tail.wrapping_sub(head)
    }

    /// Whether the ring looks empty from the producer side.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Consumer<T> {
    /// Slots in the ring.
    pub fn capacity(&self) -> usize {
        self.shared.mask + 1
    }

    /// Dequeues the oldest item, if any.
    #[inline]
    pub fn pop(&mut self) -> Option<T> {
        if self.head == self.cached_tail {
            self.cached_tail = self.shared.tail.0.load(Ordering::Acquire);
            if self.head == self.cached_tail {
                return None;
            }
        }
        let value =
            unsafe { (*self.shared.buf[self.head & self.shared.mask].get()).assume_init_read() };
        self.head = self.head.wrapping_add(1);
        self.shared.head.0.store(self.head, Ordering::Release);
        Some(value)
    }

    /// Dequeues up to `max` items into `out`, preserving FIFO order,
    /// and returns how many arrived. The whole batch costs at most one
    /// `Acquire` refresh of the producer index (only when the ring
    /// looks empty) and exactly one `Release` publish of the consumer
    /// index — versus one of each per item on the [`pop`](Self::pop)
    /// path.
    pub fn pop_batch(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        if max == 0 {
            return 0;
        }
        let mut avail = self.cached_tail.wrapping_sub(self.head);
        if avail == 0 {
            self.cached_tail = self.shared.tail.0.load(Ordering::Acquire);
            avail = self.cached_tail.wrapping_sub(self.head);
            if avail == 0 {
                return 0;
            }
        }
        let n = avail.min(max);
        out.reserve(n);
        for _ in 0..n {
            let value = unsafe {
                (*self.shared.buf[self.head & self.shared.mask].get()).assume_init_read()
            };
            out.push(value);
            self.head = self.head.wrapping_add(1);
        }
        self.shared.head.0.store(self.head, Ordering::Release);
        n
    }

    /// Occupancy as seen from the consumer side (exact for our own
    /// pops, conservative about concurrent pushes).
    pub fn len(&self) -> usize {
        let tail = self.shared.tail.0.load(Ordering::Acquire);
        tail.wrapping_sub(self.head)
    }

    /// Whether the ring looks empty from the consumer side.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_one_thread() {
        let (mut tx, mut rx) = ring::<u32>(4);
        assert_eq!(tx.capacity(), 4);
        assert!(rx.pop().is_none());
        for i in 0..4 {
            assert!(tx.try_push(i).is_ok());
        }
        assert_eq!(tx.try_push(99), Err(99), "full ring hands the value back");
        assert_eq!(rx.len(), 4);
        for i in 0..4 {
            assert_eq!(rx.pop(), Some(i));
        }
        assert!(rx.pop().is_none());
        // Space reclaimed after pops.
        assert!(tx.try_push(7).is_ok());
        assert_eq!(rx.pop(), Some(7));
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        let (tx, _rx) = ring::<u8>(5);
        assert_eq!(tx.capacity(), 8);
        let (tx, _rx) = ring::<u8>(0);
        assert_eq!(tx.capacity(), 2);
    }

    #[test]
    fn drop_accounting() {
        let (mut tx, _rx) = ring::<u64>(2);
        assert!(tx.push_or_drop(1));
        assert!(tx.push_or_drop(2));
        assert!(!tx.push_or_drop(3));
        assert!(!tx.push_or_drop(4));
        assert_eq!(tx.dropped(), 2);
    }

    #[test]
    fn unread_items_are_dropped_with_the_ring() {
        // Arc payload proves slot destructors run on ring teardown.
        let marker = Arc::new(());
        {
            let (mut tx, _rx) = ring::<Arc<()>>(8);
            for _ in 0..5 {
                assert!(tx.try_push(Arc::clone(&marker)).is_ok());
            }
            assert_eq!(Arc::strong_count(&marker), 6);
        }
        assert_eq!(Arc::strong_count(&marker), 1);
    }

    #[test]
    fn batch_roundtrip_preserves_fifo() {
        let (mut tx, mut rx) = ring::<u32>(8);
        let mut batch: Vec<u32> = (0..5).collect();
        assert_eq!(tx.push_batch(&mut batch), 5);
        assert!(batch.is_empty(), "accepted prefix is drained");
        let mut more: Vec<u32> = (5..12).collect();
        assert_eq!(tx.push_batch(&mut more), 3, "only 3 slots left");
        assert_eq!(more, vec![8, 9, 10, 11], "rejects stay in order");
        let mut out = Vec::new();
        assert_eq!(rx.pop_batch(&mut out, 64), 8);
        assert_eq!(out, (0..8).collect::<Vec<u32>>());
        assert_eq!(rx.pop_batch(&mut out, 64), 0, "empty ring pops nothing");
    }

    #[test]
    fn batch_drop_accounting_is_exact() {
        let (mut tx, mut rx) = ring::<u32>(4);
        let mut batch: Vec<u32> = (0..10).collect();
        assert_eq!(tx.push_batch_or_drop(&mut batch), 4);
        assert!(batch.is_empty());
        assert_eq!(tx.dropped(), 6, "exactly the overflow suffix dropped");
        let mut out = Vec::new();
        assert_eq!(rx.pop_batch(&mut out, 2), 2, "max bounds the batch");
        assert_eq!(out, vec![0, 1]);
        // Space reclaimed: a second batch now partially fits.
        let mut again: Vec<u32> = (10..15).collect();
        assert_eq!(tx.push_batch_or_drop(&mut again), 2);
        assert_eq!(tx.dropped(), 9);
    }

    #[test]
    fn undrained_batches_run_destructors() {
        // Arc payloads prove destructors run wherever batch items end
        // up parked: still in the ring, still in the pop buffer, or
        // still in the rejected suffix of a push batch.
        let marker = Arc::new(());
        {
            let (mut tx, mut rx) = ring::<Arc<()>>(4);
            let mut batch: Vec<Arc<()>> = (0..6).map(|_| Arc::clone(&marker)).collect();
            assert_eq!(tx.push_batch(&mut batch), 4);
            assert_eq!(batch.len(), 2, "2 rejects left in the batch vec");
            let mut out = Vec::new();
            assert_eq!(rx.pop_batch(&mut out, 2), 2);
            assert_eq!(Arc::strong_count(&marker), 7);
            // `batch` (rejects), `out` (undrained pops), and the ring
            // (2 never-popped slots) all drop here.
        }
        assert_eq!(Arc::strong_count(&marker), 1);
    }

    #[test]
    fn cross_thread_handoff() {
        let (mut tx, mut rx) = ring::<u64>(64);
        let n = 100_000u64;
        let producer = std::thread::spawn(move || {
            for i in 0..n {
                loop {
                    match tx.try_push(i) {
                        Ok(()) => break,
                        Err(_) => std::thread::yield_now(),
                    }
                }
            }
        });
        let mut expected = 0u64;
        while expected < n {
            match rx.pop() {
                Some(v) => {
                    assert_eq!(v, expected, "FIFO across threads");
                    expected += 1;
                }
                None => std::thread::yield_now(),
            }
        }
        producer.join().expect("producer thread");
        assert!(rx.pop().is_none());
    }
}

//! Property tests pinning the SCR shard + delta-log merge to the
//! single-threaded reference model: for *any* packet stream, *any*
//! assignment of packets to shards, and *any* per-shard arrival order,
//! `merge_shards` must reproduce exactly the table obtained by folding
//! the stream in sequence order through `ConnTable::observe`.

use falcon_conntrack::{merge_shards, ConnKey, ConnShard, ConnState, ConnTable, SegFlags};
use proptest::prelude::*;

fn key(id: u8) -> ConnKey {
    ConnKey {
        src_addr: 0x0a01_0000 | u32::from(id),
        dst_addr: 0x0a02_0001,
        src_port: 40_000 + u16::from(id),
        dst_port: 5201,
        proto: 6,
    }
}

const SYN: SegFlags = SegFlags {
    syn: true,
    fin: false,
    rst: false,
};
const FIN: SegFlags = SegFlags {
    syn: false,
    fin: true,
    rst: false,
};

/// Decodes one generated word into a packet: (flow id, flags, bytes).
/// The flag selector is weighted toward data segments the way real
/// traffic is, with enough control density to hit every edge —
/// including multi-bit segments where priority resolution matters.
fn decode(word: u64) -> (u8, SegFlags, u64) {
    let flow = (word & 0x3) as u8;
    let bytes = (word >> 2) % 2000;
    let flags = match (word >> 40) % 16 {
        0..=7 => SegFlags::data(),
        8 | 9 => SYN,
        10 | 11 => FIN,
        12 => SegFlags {
            syn: false,
            fin: false,
            rst: true,
        },
        13 => SegFlags {
            syn: true,
            fin: true,
            rst: false,
        },
        14 => SegFlags {
            syn: false,
            fin: true,
            rst: true,
        },
        _ => SegFlags {
            syn: true,
            fin: true,
            rst: true,
        },
    };
    (flow, flags, bytes)
}

/// One packet stream; the virtual-time seq of a packet is its index in
/// the vector — distinct per flow, as the executor guarantees.
fn stream() -> impl Strategy<Value = Vec<(u8, SegFlags, u64)>> {
    prop::collection::vec(any::<u64>(), 0..64).prop_map(|ws| ws.into_iter().map(decode).collect())
}

fn reference_table(pkts: &[(u8, SegFlags, u64)]) -> ConnTable {
    let mut t = ConnTable::new();
    for (seq, (flow, flags, bytes)) in pkts.iter().enumerate() {
        t.observe(key(*flow), *flags, *bytes, seq as u64);
    }
    t
}

proptest! {
    /// Arbitrary shard assignment + per-shard arrival permutation
    /// converges to the reference.
    #[test]
    fn sharded_merge_equals_reference(
        pkts in stream(),
        assignment in prop::collection::vec(0usize..4, 0..64),
        perm_seed in any::<u64>(),
    ) {
        let reference = reference_table(&pkts);

        // Partition packets across 4 shards by the assignment vector.
        let mut buckets: Vec<Vec<(u64, u8, SegFlags, u64)>> = vec![Vec::new(); 4];
        for (seq, (flow, flags, bytes)) in pkts.iter().enumerate() {
            let shard = assignment.get(seq).copied().unwrap_or(seq % 4);
            buckets[shard].push((seq as u64, *flow, *flags, *bytes));
        }

        // Deterministically scramble each shard's arrival order with a
        // cheap LCG keyed off perm_seed (Fisher–Yates).
        let mut state = perm_seed | 1;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut shards = Vec::new();
        for bucket in &mut buckets {
            for i in (1..bucket.len()).rev() {
                let j = (next() % (i as u64 + 1)) as usize;
                bucket.swap(i, j);
            }
            let mut shard = ConnShard::new();
            for &(seq, flow, flags, bytes) in bucket.iter() {
                shard.record(key(flow), flags, bytes, seq);
            }
            shards.push(shard);
        }

        let merged = merge_shards(shards.iter());
        prop_assert_eq!(&merged, &reference);

        // Counter invariant: every packet is exactly one update.
        let updates: u64 = shards.iter().map(|s| s.counters.updates).sum();
        prop_assert_eq!(updates, pkts.len() as u64);
    }

    /// Merging is insensitive to shard count: 1 shard (fully serialized)
    /// and N shards agree.
    #[test]
    fn shard_count_invariance(pkts in stream(), n_shards in 1usize..6) {
        let mut single = ConnShard::new();
        let mut shards = vec![ConnShard::new(); n_shards];
        for (seq, (flow, flags, bytes)) in pkts.iter().enumerate() {
            single.record(key(*flow), *flags, *bytes, seq as u64);
            shards[seq % n_shards].record(key(*flow), *flags, *bytes, seq as u64);
        }
        prop_assert_eq!(merge_shards([&single]), merge_shards(shards.iter()));
    }

    /// SYN/FIN/RST edges: the merged state machine respects the exact
    /// lifecycle regardless of where the stream is split across shards.
    #[test]
    fn lifecycle_edges_survive_sharding(split in 0usize..5) {
        // syn data fin fin syn data — the reopened incarnation's final
        // state is SynSeen (data after SYN is a self-loop; one
        // direction never sees the handshake complete).
        let lifecycle = [SYN, SegFlags::data(), FIN, FIN, SYN, SegFlags::data()];
        let mut a = ConnShard::new();
        let mut b = ConnShard::new();
        for (seq, flags) in lifecycle.iter().enumerate() {
            let shard = if seq <= split { &mut a } else { &mut b };
            shard.record(key(0), *flags, 100, seq as u64);
        }
        let merged = merge_shards([&a, &b]);
        let e = merged.get(&key(0)).unwrap();
        prop_assert_eq!(e.state, ConnState::SynSeen);
        prop_assert_eq!(e.pkts, 6);
        prop_assert_eq!(e.last_seen, 5);
    }

    /// Byte counters saturate instead of wrapping, on any shard split.
    #[test]
    fn saturation_survives_merge(splits in prop::collection::vec(0usize..3, 4)) {
        let mut shards = vec![ConnShard::new(); 3];
        for (seq, shard_idx) in splits.iter().enumerate() {
            shards[*shard_idx].record(key(1), SegFlags::data(), u64::MAX / 2, seq as u64);
        }
        let merged = merge_shards(shards.iter());
        let e = merged.get(&key(1)).unwrap();
        prop_assert_eq!(e.pkts, 4);
        prop_assert_eq!(e.bytes, u64::MAX, "4 x (MAX/2) saturates");
    }
}

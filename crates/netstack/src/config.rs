//! Configuration of the simulated machines and experiments.

use falcon_cpusim::CpuSet;
use falcon_netdev::{LinkSpeed, NicConfig};
use falcon_simcore::SimDuration;
use serde::{Deserialize, Serialize};

use crate::cost::{CostModel, KernelVersion};

/// Networking mode of the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetMode {
    /// Native host network: single softirq stage ("Host" in figures).
    Host,
    /// Docker-style VXLAN overlay: pNIC → VXLAN → bridge/veth stages
    /// ("Con" in figures).
    Overlay,
}

impl NetMode {
    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            NetMode::Host => "Host",
            NetMode::Overlay => "Con",
        }
    }
}

/// How a traffic source paces its sends.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Pacing {
    /// Send as fast as the sender threads can (stress test).
    MaxRate,
    /// Fixed deterministic rate, datagrams (or messages) per second.
    FixedPps(f64),
    /// Poisson arrivals at the given mean rate.
    PoissonPps(f64),
}

/// Configuration of the server's network stack.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StackConfig {
    /// Number of cores on the server.
    pub n_cores: usize,
    /// Kernel cost profile.
    pub kernel: KernelVersion,
    /// Host or overlay networking.
    pub mode: NetMode,
    /// Physical NIC configuration (queues, ring size, IRQ affinity).
    pub nic: NicConfig,
    /// RPS CPU mask; `None` disables RPS.
    pub rps: Option<CpuSet>,
    /// Whether GRO is enabled (TCP coalescing in the driver poll).
    pub gro: bool,
    /// Maximum segments GRO may coalesce per poll visit.
    pub gro_batch: usize,
    /// Falcon softirq splitting: defer `napi_gro_receive` to a second
    /// pipeline half-stage ("GRO-splitting", paper §4.2/§5).
    pub split_gro: bool,
    /// Capacity of each per-CPU backlog (`netdev_max_backlog`).
    pub backlog_capacity: usize,
    /// Capacity of each per-CPU VXLAN gro_cell.
    pub gro_cell_capacity: usize,
    /// Host-side MTU in bytes.
    pub mtu: usize,
    /// Container-side MTU (smaller: VXLAN overhead must still fit the
    /// host MTU; Docker uses 1450).
    pub overlay_mtu: usize,
    /// Per-function CPU costs.
    pub costs: CostModel,
    /// Load sampling period (the timer tick driving `LoadTracker` and
    /// Falcon's monitor).
    pub load_sample_every: SimDuration,
    /// Scheduler wake latency when task work lands on an idle core.
    pub wake_latency: SimDuration,
    /// ksoftirqd fairness: after this many consecutive softirq work
    /// units on a core with task work pending, one task unit runs
    /// (mirrors the kernel's softirq budget + ksoftirqd deferral, which
    /// keeps softirq storms from starving user space entirely).
    pub softirq_quantum: u32,
}

impl StackConfig {
    /// A sensible default server: `n_cores` cores, multi-queue NIC with
    /// one queue pinned to core 0 (the paper's single-flow layout), RPS
    /// on cores 1..n, GRO on.
    pub fn new(mode: NetMode, kernel: KernelVersion, n_cores: usize) -> Self {
        assert!(n_cores >= 2, "server needs at least 2 cores");
        StackConfig {
            n_cores,
            kernel,
            mode,
            nic: NicConfig::single_queue(1024),
            rps: Some(CpuSet::range(1, n_cores.min(5))),
            gro: true,
            gro_batch: 8,
            split_gro: false,
            backlog_capacity: 1000,
            gro_cell_capacity: 1000,
            mtu: 1500,
            overlay_mtu: 1450,
            costs: CostModel::for_kernel(kernel),
            load_sample_every: SimDuration::from_millis(1),
            wake_latency: SimDuration::from_micros(2),
            softirq_quantum: 2,
        }
    }

    /// The MTU that applies to a flow's *inner* frames in this mode.
    pub fn effective_mtu(&self) -> usize {
        match self.mode {
            NetMode::Host => self.mtu,
            NetMode::Overlay => self.overlay_mtu,
        }
    }

    /// Maximum L4 payload per wire frame: MTU minus IP (20) and UDP (8)
    /// headers (UDP case).
    pub fn max_udp_payload(&self) -> usize {
        self.effective_mtu() - 28
    }

    /// TCP maximum segment size: MTU minus IP (20) and TCP (20) headers.
    pub fn mss(&self) -> usize {
        self.effective_mtu() - 40
    }
}

/// Configuration of a complete client–server simulation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    /// Server stack configuration.
    pub server: StackConfig,
    /// Physical link speed.
    pub link: LinkSpeed,
    /// Link propagation delay.
    pub propagation: SimDuration,
    /// Fixed client-side receive cost (the simplified peer: hardirq +
    /// stack + wakeup on the client machine, which the paper does not
    /// instrument).
    pub client_rx_delay: SimDuration,
    /// Per-datagram/message transmit CPU cost of one client sender
    /// thread (caps a single sender's packet rate).
    pub client_tx_cost: SimDuration,
    /// Per-segment transmit cost of a TCP sender thread. Much cheaper
    /// than a datagram: TSO hands the NIC multi-segment bursts, so
    /// consecutive segments hit the receiver's ring back to back —
    /// which is what gives GRO segments to coalesce.
    pub client_tx_tcp_seg: SimDuration,
    /// Random seed.
    pub seed: u64,
    /// Boot-time flow-hash salt (`hashrnd`).
    pub hashrnd: u32,
}

impl SimConfig {
    /// Defaults around a given server config: 100 G link, 500 ns
    /// propagation, 2 µs client rx, ~1.45 µs client tx per datagram.
    pub fn new(server: StackConfig) -> Self {
        SimConfig {
            server,
            link: LinkSpeed::HundredGbit,
            propagation: SimDuration::from_nanos(500),
            client_rx_delay: SimDuration::from_micros(2),
            client_tx_cost: SimDuration::from_nanos(1450),
            client_tx_tcp_seg: SimDuration::from_nanos(250),
            seed: 0x5EED_F00D,
            hashrnd: 0x9E37_79B9,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(NetMode::Host.label(), "Host");
        assert_eq!(NetMode::Overlay.label(), "Con");
    }

    #[test]
    fn default_stack_shape() {
        let cfg = StackConfig::new(NetMode::Overlay, KernelVersion::K419, 8);
        assert_eq!(cfg.n_cores, 8);
        assert!(cfg.gro);
        assert!(!cfg.split_gro);
        assert_eq!(cfg.backlog_capacity, 1000);
        let rps = cfg.rps.unwrap();
        assert!(!rps.contains(0), "RPS mask avoids the IRQ core");
    }

    #[test]
    fn mtu_depends_on_mode() {
        let host = StackConfig::new(NetMode::Host, KernelVersion::K419, 4);
        let con = StackConfig::new(NetMode::Overlay, KernelVersion::K419, 4);
        assert_eq!(host.effective_mtu(), 1500);
        assert_eq!(con.effective_mtu(), 1450);
        assert_eq!(host.max_udp_payload(), 1472);
        assert_eq!(host.mss(), 1460);
        assert_eq!(con.mss(), 1410);
    }

    #[test]
    #[should_panic(expected = "at least 2 cores")]
    fn tiny_server_rejected() {
        let _ = StackConfig::new(NetMode::Host, KernelVersion::K419, 1);
    }

    #[test]
    fn sim_defaults() {
        let cfg = SimConfig::new(StackConfig::new(NetMode::Host, KernelVersion::K54, 4));
        assert_eq!(cfg.link, LinkSpeed::HundredGbit);
        assert!(cfg.client_rx_delay.as_nanos() > 0);
    }
}

//! Multi-core CPU execution model.
//!
//! The network stack simulation charges all packet processing to
//! simulated cores. This crate provides:
//!
//! * [`Cores`] — the occupancy state machine: a core is either idle or
//!   busy until a known completion time; beginning work charges the
//!   [`falcon_metrics::CpuLedger`] with per-function attribution.
//! * [`LoadTracker`] — windowed per-core load (the simulation's
//!   `/proc/stat` reader) with exponential smoothing, sampled from the
//!   timer tick like Falcon's `do_timer` hook does (paper §5).
//! * [`CpuSet`] — an ordered set of core ids (`FALCON_CPUS`, RPS masks).
//!
//! Scheduling *policy* (what a core runs next: hardirqs before softirqs
//! before task work, NAPI budgets, backlog draining) lives in
//! `falcon-netstack`; this crate only models the physical resource.

pub mod cores;
pub mod cpuset;
pub mod load;

pub use cores::{CoreState, Cores};
pub use cpuset::CpuSet;
pub use load::LoadTracker;

//! The real-thread dataplane experiment: vanilla vs Falcon on actual
//! cores.
//!
//! Everything else in this crate measures the *simulation* (virtual
//! time, one thread). This module drives
//! [`falcon_dataplane::run_scenario`], where the same modeled stage
//! costs are busy-spun on real pinned threads and the clock on the wall
//! is the result. It provides the scenario presets for the two scales,
//! the back-to-back vanilla/Falcon comparison that becomes
//! `BENCH_dataplane.json`, a human-readable rendering, and a Perfetto
//! export of a traced Falcon run so the thread-level pipelining is
//! visible.
//!
//! With `split_gro` the preset switches to the Figure-13 TCP-4KB shape
//! (one GRO-coalesced 4096-byte message per injected unit, MSS 1448)
//! and runs the five-hop pipeline: that is the traffic whose pNIC
//! stage carries the ~45 %/~45 % alloc/GRO halves splitting exists to
//! peel apart. On UDP the pNIC stage is never the bottleneck, so a
//! split run there would measure nothing.

use falcon_dataplane::{
    run_scenario, DataplaneComparison, DataplaneReport, PolicyKind, Scenario, SweepPoint,
    SweepReport, TrafficShape,
};
use falcon_trace::chrome;

use crate::measure::Scale;

/// The dataplane scenario at a given scale.
///
/// `Quick` shrinks the packet count and scales the stage costs down so
/// a smoke run finishes in tens of milliseconds even on a loaded 2-core
/// CI runner; `Full` runs the model costs as-is for a measurement worth
/// quoting. With `split_gro`, the scenario injects the TCP-4KB shape
/// and the pipeline grows the fifth (GRO-half) hop. With `wire`, every
/// injected unit carries real VXLAN-encapsulated bytes and each stage
/// does its byte-level slice of work inside the modeled budget.
pub fn scenario_for(
    scale: Scale,
    workers: usize,
    flows: u64,
    split_gro: bool,
    wire: bool,
) -> Scenario {
    let mut base = Scenario {
        wire,
        ..Scenario::default()
    };
    if split_gro {
        base.split_gro = true;
        base.shape = TrafficShape::TcpGro { mss: 1448 };
        base.payload = 4096;
    }
    match scale {
        Scale::Quick => Scenario {
            workers,
            flows,
            packets: 6_000,
            work_scale_milli: 250,
            ..base
        },
        Scale::Full => Scenario {
            workers,
            flows,
            packets: if split_gro { 40_000 } else { 80_000 },
            work_scale_milli: 1000,
            ..base
        },
    }
}

/// Runs the same scenario under both policies and pairs the reports.
pub fn run_comparison(
    scale: Scale,
    workers: usize,
    flows: u64,
    split_gro: bool,
    wire: bool,
) -> DataplaneComparison {
    let scenario = scenario_for(scale, workers, flows, split_gro, wire);
    let vanilla = DataplaneReport::from_run(&run_scenario(
        &scenario.clone().with_policy(PolicyKind::Vanilla),
    ));
    let falcon = DataplaneReport::from_run(&run_scenario(
        &scenario.clone().with_policy(PolicyKind::Falcon),
    ));
    DataplaneComparison::new(&scenario, vanilla, falcon)
}

/// Renders one report as an indented block.
fn render_report(r: &DataplaneReport, out: &mut String) {
    use std::fmt::Write;
    let _ = writeln!(
        out,
        "  {:<8}  {:>10.0} pps  wall {:>7.1} ms  delivered {}/{} (drops {})",
        r.policy,
        r.throughput_pps,
        r.wall_ns as f64 / 1e6,
        r.delivered,
        r.injected,
        r.dropped,
    );
    let _ = writeln!(
        out,
        "            latency mean {:.1} us  p50 {:.1} us  p99 {:.1} us  max {:.1} us",
        r.latency.mean_ns as f64 / 1e3,
        r.latency.p50_ns as f64 / 1e3,
        r.latency.p99_ns as f64 / 1e3,
        r.latency.max_ns as f64 / 1e3,
    );
    let _ = writeln!(
        out,
        "            per-worker stage execs {:?}  second-choices {}  migrations {}",
        r.per_worker_processed, r.second_choices, r.migrations,
    );
    if r.wire {
        let malformed: u64 = r.malformed_per_stage.values().sum();
        let _ = writeln!(
            out,
            "            wire: {:.2} MiB in, {:.2} MiB out, goodput {:.3} Gbit/s, malformed {} ({} segs corrupted)",
            r.bytes_in as f64 / (1024.0 * 1024.0),
            r.bytes_out as f64 / (1024.0 * 1024.0),
            r.goodput_gbps,
            malformed,
            r.corrupted_segments,
        );
    }
    // The placement picture: which worker carried the bulk of each
    // stage. For a split run this is where the alloc and GRO halves
    // visibly land on distinct cores.
    if r.stages > 0 && !r.per_worker_stage_processed.is_empty() {
        let labels = falcon_dataplane::stage_labels(r.split_gro);
        let mut line = String::new();
        for (s, label) in labels.iter().enumerate().take(r.stages) {
            let (best_w, _) = r
                .per_worker_stage_processed
                .iter()
                .enumerate()
                .map(|(w, row)| (w, row.get(s).copied().unwrap_or(0)))
                .max_by_key(|&(_, n)| n)
                .unwrap_or((0, 0));
            let _ = write!(line, " {label}->w{best_w}");
        }
        let _ = writeln!(out, "            stage placement (busiest worker):{line}");
    }
    let _ = writeln!(
        out,
        "            ordering: {} checks, {} violations",
        r.order_checks, r.reorder_violations,
    );
}

/// Human-readable comparison summary.
pub fn render(cmp: &DataplaneComparison) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "dataplane: {} packets, {} flow(s), payload {} B ({}{}), {} worker(s) on {} host core(s)",
        cmp.packets,
        cmp.flows,
        cmp.payload,
        cmp.shape,
        if cmp.split_gro {
            ", split-gro: 5 stages"
        } else {
            ""
        },
        cmp.workers,
        cmp.host_cores,
    );
    render_report(&cmp.vanilla, &mut out);
    render_report(&cmp.falcon, &mut out);
    let _ = writeln!(
        out,
        "  speedup   {:.2}x (falcon/vanilla throughput)",
        cmp.speedup
    );
    if cmp.host_cores < 4 {
        let _ = writeln!(
            out,
            "  note: only {} logical core(s) visible; pipelining cannot beat \
             serialization without cores to pipeline across (the paper's claim \
             is for >=4 cores{})",
            cmp.host_cores,
            if cmp.split_gro {
                ", and the 5-stage split wants a 5th"
            } else {
                ""
            },
        );
    }
    out
}

/// Runs the (1..=max_flows × 1..=max_workers) scaling grid, both
/// policies per point — the paper's Figure-12 aggregate-scaling story
/// on real threads.
///
/// Each point is a full [`run_comparison`]-equivalent pass at the given
/// scale, with the packet budget per point capped so a whole grid stays
/// tractable; worker counts above the host's cores are clamped by the
/// executor exactly as single runs are (the grid then repeats the
/// clamped column, which the JSON records honestly via each point's
/// `workers` field). `chaos_steer_period` is a test hook: nonzero runs
/// every point under forced-migration churn (and lifts the core clamp)
/// so the conformance suite can prove the order audit holds at every
/// grid cell under adversarial steering.
pub fn run_sweep(
    scale: Scale,
    max_flows: u64,
    max_workers: usize,
    split_gro: bool,
    chaos_steer_period: u64,
    wire: bool,
) -> SweepReport {
    let max_flows = max_flows.max(1);
    let max_workers = max_workers.max(1);
    let mut points = Vec::new();
    let mut packets_per_point = 0;
    let mut shape = String::new();
    for flows in 1..=max_flows {
        for workers in 1..=max_workers {
            let mut scenario = scenario_for(scale, workers, flows, split_gro, wire);
            // A grid multiplies run count by flows × workers; cap the
            // per-point budget so a full sweep finishes in minutes.
            scenario.packets = scenario.packets.min(match scale {
                Scale::Quick => 3_000,
                Scale::Full => 20_000,
            });
            scenario.chaos_steer_period = chaos_steer_period;
            // The workers axis is the whole point of the sweep: keep it
            // honest on small hosts by oversubscribing instead of letting
            // the executor clamp every point down to the core count.
            scenario.oversubscribe = true;
            packets_per_point = scenario.packets;
            shape = scenario.shape.label();
            let vanilla = DataplaneReport::from_run(&run_scenario(
                &scenario.clone().with_policy(PolicyKind::Vanilla),
            ));
            let falcon = DataplaneReport::from_run(&run_scenario(
                &scenario.clone().with_policy(PolicyKind::Falcon),
            ));
            let comparison = DataplaneComparison::new(&scenario, vanilla, falcon);
            points.push(SweepPoint {
                flows,
                workers: comparison.workers,
                comparison,
            });
        }
    }
    SweepReport {
        host_cores: falcon_dataplane::available_cores(),
        split_gro,
        shape,
        packets_per_point,
        max_flows,
        max_workers,
        points,
    }
}

/// Human-readable sweep table: one line per grid point.
pub fn render_sweep(sweep: &SweepReport) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "dataplane sweep: {} packets/point, shape {}{}, grid {}x{} (flows x workers) on {} host core(s)",
        sweep.packets_per_point,
        sweep.shape,
        if sweep.split_gro { " split-gro" } else { "" },
        sweep.max_flows,
        sweep.max_workers,
        sweep.host_cores,
    );
    let _ = writeln!(
        out,
        "  {:>5} {:>7} | {:>12} {:>12} {:>8} | {:>10} {:>10} | {:>6}",
        "flows", "workers", "van pps", "fal pps", "speedup", "van p99us", "fal p99us", "viol"
    );
    for p in &sweep.points {
        let c = &p.comparison;
        let _ = writeln!(
            out,
            "  {:>5} {:>7} | {:>12.0} {:>12.0} {:>7.2}x | {:>10.1} {:>10.1} | {:>6}",
            p.flows,
            p.workers,
            c.vanilla.throughput_pps,
            c.falcon.throughput_pps,
            c.speedup,
            c.vanilla.latency.p99_ns as f64 / 1e3,
            c.falcon.latency.p99_ns as f64 / 1e3,
            c.vanilla.reorder_violations + c.falcon.reorder_violations,
        );
    }
    let _ = writeln!(
        out,
        "  total reorder violations: {}",
        sweep.total_reorder_violations()
    );
    out
}

/// Runs a traced Falcon dataplane pass and returns Perfetto JSON.
///
/// Uses a reduced packet count so the trace stays loadable; the point
/// of the artifact is *seeing* the stages of one flow overlap on
/// different worker tracks, not volume.
pub fn chrome_trace(scale: Scale, workers: usize, flows: u64, split_gro: bool) -> String {
    let mut scenario =
        scenario_for(scale, workers, flows, split_gro, false).with_policy(PolicyKind::Falcon);
    scenario.packets = scenario.packets.min(3_000);
    scenario.trace_capacity = 64 * 1024;
    let out = run_scenario(&scenario);
    chrome::export(&out.merged_events(), &out.meta)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_comparison_is_sound() {
        let cmp = run_comparison(Scale::Quick, 2, 1, false, false);
        assert_eq!(
            cmp.vanilla.delivered + cmp.vanilla.dropped,
            cmp.vanilla.injected
        );
        assert_eq!(
            cmp.falcon.delivered + cmp.falcon.dropped,
            cmp.falcon.injected
        );
        assert_eq!(cmp.vanilla.reorder_violations, 0);
        assert_eq!(cmp.falcon.reorder_violations, 0);
        let text = render(&cmp);
        assert!(text.contains("speedup"));
        let json = serde_json::to_string(&cmp).expect("serializes");
        assert!(json.contains("\"falcon\""));
    }

    #[test]
    fn quick_wire_comparison_carries_bytes() {
        let cmp = run_comparison(Scale::Quick, 2, 2, false, true);
        for r in [&cmp.vanilla, &cmp.falcon] {
            assert!(r.wire);
            assert_eq!(r.delivered + r.dropped, r.injected);
            assert!(r.bytes_in > 0, "wire bytes were injected");
            assert_eq!(r.bytes_out, r.delivered * 64, "64 B payload per packet");
            assert!(r.goodput_gbps > 0.0);
            assert_eq!(r.corrupted_segments, 0);
            assert_eq!(r.malformed_per_stage.values().sum::<u64>(), 0);
            assert_eq!(r.reorder_violations, 0);
        }
        let text = render(&cmp);
        assert!(text.contains("goodput"), "wire line rendered: {text}");
        let json = serde_json::to_string(&cmp).expect("serializes");
        assert!(json.contains("\"goodput_gbps\""));
    }

    #[test]
    fn quick_split_comparison_runs_five_stages() {
        let cmp = run_comparison(Scale::Quick, 2, 1, true, false);
        assert!(cmp.split_gro);
        assert_eq!(cmp.vanilla.stages, 5);
        assert_eq!(cmp.falcon.stages, 5);
        assert_eq!(
            cmp.falcon.delivered + cmp.falcon.dropped,
            cmp.falcon.injected
        );
        assert_eq!(cmp.falcon.reorder_violations, 0);
        let text = render(&cmp);
        assert!(text.contains("split-gro: 5 stages"));
        assert!(text.contains("pnic_gro"), "placement line names the half");
        let json = serde_json::to_string(&cmp).expect("serializes");
        assert!(json.contains("\"pnic_gro\""));
    }

    #[test]
    fn tiny_sweep_covers_the_grid() {
        let sweep = run_sweep(Scale::Quick, 2, 1, false, 0, false);
        assert_eq!(sweep.points.len(), 2, "2 flows x 1 worker");
        assert_eq!(sweep.total_reorder_violations(), 0);
        for p in &sweep.points {
            assert_eq!(
                p.comparison.falcon.delivered + p.comparison.falcon.dropped,
                p.comparison.falcon.injected
            );
            assert_eq!(p.workers, p.comparison.workers);
        }
        let text = render_sweep(&sweep);
        assert!(text.contains("speedup"));
        assert!(text.contains("total reorder violations: 0"));
        let json = serde_json::to_string(&sweep).expect("serializes");
        assert!(json.contains("\"points\""));
    }

    #[test]
    fn dataplane_trace_exports_perfetto_json() {
        let json = chrome_trace(Scale::Quick, 2, 1, false);
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("pnic_poll"), "stage slices present");
    }

    #[test]
    fn split_trace_exports_the_gro_half() {
        let json = chrome_trace(Scale::Quick, 2, 1, true);
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("pnic_gro"), "gro half slices present");
    }
}

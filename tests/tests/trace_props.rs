//! Property tests over the trace event stream: the tracepoints must
//! tell a story consistent with the packets' actual journey, across
//! steering policies, payload sizes (including fragmentation), rates
//! and seeds.
//!
//! Invariants checked by [`falcon_trace::check_stream`]:
//!
//! * **Conservation** — every ring/backlog/gro_cell enqueue is matched
//!   by exactly one consume (stage execution or GRO absorption), or the
//!   packet is still sitting in exactly one queue at stream end.
//! * **Hop agreement** — the per-packet (checkpoint, cpu) sequence
//!   reconstructed from `StageExec` events hashes to the same digest
//!   the netstack computed from the skb's own hop log at delivery.
//! * **Order** — per-(flow, checkpoint) sequence numbers are strictly
//!   increasing. Guaranteed for the vanilla overlay; Falcon may break
//!   it transiently on hotspot-escape migrations, so it is asserted
//!   only for vanilla.

use falcon_experiments::scenario::Mode;
use falcon_integration_tests::{falcon_mode, small_udp_runner};
use falcon_simcore::SimDuration;
use falcon_trace::check_stream;
use proptest::prelude::*;

/// Large enough that no tested (rate, window) combination wraps the
/// ring — `check_stream` needs the complete history.
const RING_CAPACITY: usize = 1 << 19;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn trace_stream_conserves_packets(
        rate in 50_000.0f64..400_000.0,
        payload in prop::sample::select(vec![16usize, 256, 1024, 4000]),
        seed in 0u64..1000,
        falcon_on in any::<bool>(),
    ) {
        let mode = if falcon_on { falcon_mode() } else { Mode::Vanilla };
        let mut runner = small_udp_runner(mode, rate, payload, seed);
        runner.enable_tracing(RING_CAPACITY);
        runner.run_for(SimDuration::from_millis(6));

        let tracer = runner.tracer();
        prop_assert_eq!(tracer.overflow(), 0, "ring wrapped; stream incomplete");
        let events = tracer.events();
        let report = check_stream(&events);

        prop_assert!(report.enqueues > 0, "trace saw no traffic");
        prop_assert!(report.delivered > 0, "trace saw no deliveries");
        prop_assert!(
            report.unmatched.is_empty(),
            "unbalanced packets (first 5): {:?}",
            &report.unmatched[..report.unmatched.len().min(5)]
        );
        prop_assert!(
            report.hop_mismatches.is_empty(),
            "hop-digest mismatches (first 5): {:?}",
            &report.hop_mismatches[..report.hop_mismatches.len().min(5)]
        );
        if !falcon_on {
            prop_assert!(
                report.order_violations.is_empty(),
                "vanilla must keep per-(flow, stage) order: {:?}",
                report.order_violations
            );
        }

        // The unified drop counters and the trace must agree: every
        // counted drop produced exactly one QueueDrop event.
        prop_assert_eq!(report.drops, runner.counters().total_drops());
    }
}

//! CloudSuite-style data caching (memcached).
//!
//! The paper's Figure 18 workload: a memcached server container, a
//! client with 1–10 threads spreading requests over many connections,
//! 550-byte objects, and the Twitter dataset's skewed key popularity
//! (modelled as Zipf). Clients are closed-loop with a small think time;
//! the metric is request round-trip latency (average and 99th
//! percentile).

use falcon_netstack::sim::{App, SimApi};
use falcon_netstack::{FlowId, MsgMeta, NetMode, SockId};
use falcon_simcore::rng::Zipf;
use falcon_simcore::SimDuration;
use serde::{Deserialize, Serialize};

/// Configuration of the data-caching workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DataCachingConfig {
    /// Client threads (the paper sweeps 1 → 10).
    pub client_threads: usize,
    /// Connections per client thread (the paper uses 100 connections
    /// total over 10 threads).
    pub connections_per_thread: usize,
    /// Requests a thread keeps outstanding across its connections.
    pub pipeline_depth: usize,
    /// Object (value) size, bytes.
    pub object_size: usize,
    /// GET fraction (rest are SETs).
    pub get_ratio: f64,
    /// Number of distinct keys.
    pub key_space: usize,
    /// Zipf exponent of key popularity.
    pub zipf_s: f64,
    /// Server application core(s).
    pub app_cores: Vec<usize>,
    /// memcached service time per request, ns.
    pub service_ns: u64,
    /// Client think time between a response and the next request.
    pub think: SimDuration,
    /// Open-loop mode: each connection issues Poisson requests at this
    /// rate (requests/s), regardless of responses — the CloudSuite
    /// client's fixed target load. `None` = closed loop.
    pub open_loop_rate_per_conn: Option<f64>,
    /// Fraction of connections using TCP (memcached speaks both; the
    /// paper highlights the "mixture of TCP and UDP packets").
    pub tcp_fraction: f64,
}

impl DataCachingConfig {
    /// Figure 18's setup scaled to the simulation: `threads` client
    /// threads, 10 connections each, 550-byte objects.
    pub fn new(threads: usize) -> Self {
        DataCachingConfig {
            client_threads: threads,
            connections_per_thread: 10,
            pipeline_depth: 6,
            object_size: 550,
            get_ratio: 0.9,
            key_space: 10_000,
            zipf_s: 0.99,
            app_cores: vec![5, 6, 7, 8],
            service_ns: 600,
            think: SimDuration::from_micros(2),
            open_loop_rate_per_conn: None,
            tcp_fraction: 0.0,
        }
    }

    /// Open-loop variant: `threads` client threads, each connection
    /// firing Poisson requests at `rate_per_conn` per second.
    pub fn open_loop(threads: usize, rate_per_conn: f64) -> Self {
        DataCachingConfig {
            open_loop_rate_per_conn: Some(rate_per_conn),
            ..Self::new(threads)
        }
    }
}

/// The data-caching application (client and server sides).
pub struct DataCaching {
    config: DataCachingConfig,
    zipf: Zipf,
    flows: Vec<FlowId>,
    /// Requests issued.
    pub requests: u64,
    /// Responses received.
    pub responses: u64,
}

/// GET request wire size: command + key.
const GET_REQUEST_BYTES: usize = 40;
/// SET request wire size: command + key + value.
fn set_request_bytes(object: usize) -> usize {
    48 + object
}

impl DataCaching {
    /// Creates the app.
    pub fn new(config: DataCachingConfig) -> Self {
        let zipf = Zipf::new(config.key_space, config.zipf_s);
        DataCaching {
            config,
            zipf,
            flows: Vec::new(),
            requests: 0,
            responses: 0,
        }
    }

    fn issue_request(&mut self, api: &mut SimApi<'_>, flow: FlowId) {
        // Key choice only affects sizes here (all keys hit the same
        // simulated cache), but keeps the generated stream faithful.
        let _key = self.zipf.sample(api.rng());
        let is_get = api.rng().gen_bool(self.config.get_ratio);
        let bytes = if is_get {
            GET_REQUEST_BYTES
        } else {
            set_request_bytes(self.config.object_size)
        };
        let is_tcp = api.inner.client.flow(flow).keys.ip_proto == 6;
        if is_tcp {
            // TCP requests must fit one segment; clamp large SETs.
            let mss = api.inner.cfg.server.mss();
            api.tcp_request(flow, bytes.min(mss));
        } else {
            api.udp_send(flow, bytes);
        }
        self.requests += 1;
    }
}

impl App for DataCaching {
    fn on_start(&mut self, api: &mut SimApi<'_>) {
        let overlay = api.inner.cfg.server.mode == NetMode::Overlay;
        let container = if overlay {
            Some(api.add_container(0, 10))
        } else {
            None
        };
        // memcached: one UDP port per connection (the UDP protocol path
        // of memcached; the paper notes the mix of TCP and UDP).
        let n_conns = self.config.client_threads * self.config.connections_per_thread;
        let n_tcp = (n_conns as f64 * self.config.tcp_fraction).round() as usize;
        for i in 0..n_conns {
            let port = 11211 + i as u16;
            let app_core = self.config.app_cores[i % self.config.app_cores.len()];
            let flow = if i < n_tcp {
                api.bind_tcp(container, port, app_core, self.config.service_ns);
                api.tcp_flow(container, port, 32)
            } else {
                api.bind_udp(container, port, app_core, self.config.service_ns);
                api.udp_flow(container, port, GET_REQUEST_BYTES)
            };
            self.flows.push(flow);
        }
        let flows: Vec<FlowId> = self.flows.clone();
        if let Some(rate) = self.config.open_loop_rate_per_conn {
            // Open loop: every connection fires at its own Poisson rate.
            for flow in flows {
                let gap = api.rng().exponential(1.0 / rate);
                api.set_timer(SimDuration::from_secs_f64(gap), flow.0 as u64);
            }
        } else {
            // Closed loop: each thread keeps `pipeline_depth` requests
            // outstanding, spread over its connections.
            let per_thread = self.config.connections_per_thread;
            for t in 0..self.config.client_threads {
                for d in 0..self.config.pipeline_depth {
                    let flow = flows[t * per_thread + d % per_thread];
                    self.issue_request(api, flow);
                }
            }
        }
    }

    fn on_server_msg(&mut self, api: &mut SimApi<'_>, sock: SockId, meta: &MsgMeta) {
        // GETs return the object; SETs return a small STORED line.
        let response = if meta.bytes <= GET_REQUEST_BYTES {
            self.config.object_size + 24
        } else {
            8
        };
        api.respond(sock, meta, response);
    }

    fn on_client_msg(&mut self, api: &mut SimApi<'_>, flow: FlowId, _meta: &MsgMeta) {
        self.responses += 1;
        if self.config.open_loop_rate_per_conn.is_none() {
            // Closed loop: next request on this connection after the
            // think time. Timer tokens encode the flow id.
            let think = self.config.think;
            api.set_timer(think, flow.0 as u64);
        }
    }

    fn on_timer(&mut self, api: &mut SimApi<'_>, token: u64) {
        let flow = FlowId(token as u32);
        self.issue_request(api, flow);
        if let Some(rate) = self.config.open_loop_rate_per_conn {
            let gap = api.rng().exponential(1.0 / rate);
            api.set_timer(SimDuration::from_secs_f64(gap), token);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_scaling() {
        let c1 = DataCachingConfig::new(1);
        let c10 = DataCachingConfig::new(10);
        assert_eq!(c1.client_threads, 1);
        assert_eq!(c10.client_threads, 10);
        assert_eq!(c10.object_size, 550);
        assert!(c10.get_ratio > 0.5);
    }

    #[test]
    fn request_sizes() {
        assert!(set_request_bytes(550) > GET_REQUEST_BYTES);
        assert_eq!(set_request_bytes(550), 598);
    }
}

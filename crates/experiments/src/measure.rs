//! The measurement protocol.
//!
//! Every experiment follows the same shape: build the runner, run a
//! *warmup* window (queues fill, loads stabilize, the load tracker
//! converges), snapshot all counters, run the *measurement* window,
//! and report deltas. [`RunStats`] carries everything the figures
//! need.

use falcon_metrics::{Histogram, IrqKind};
use falcon_netstack::sim::SimRunner;
use falcon_netstack::SimCounters;
use falcon_simcore::SimDuration;
use serde::{Deserialize, Serialize};

/// Experiment scale: `Quick` for tests/benches, `Full` for the real
/// reproduction run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Short windows, reduced parameter sweeps.
    Quick,
    /// Paper-scale windows and sweeps.
    Full,
}

impl Scale {
    /// Warmup window.
    pub fn warmup(self) -> SimDuration {
        match self {
            Scale::Quick => SimDuration::from_millis(5),
            Scale::Full => SimDuration::from_millis(30),
        }
    }

    /// Measurement window.
    pub fn window(self) -> SimDuration {
        match self {
            Scale::Quick => SimDuration::from_millis(15),
            Scale::Full => SimDuration::from_millis(100),
        }
    }
}

/// Per-core usage shares over the measured window, 0–1.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CoreShare {
    /// Hardirq share.
    pub hardirq: f64,
    /// Softirq share.
    pub softirq: f64,
    /// Task share.
    pub task: f64,
}

impl CoreShare {
    /// Total busy share.
    pub fn busy(&self) -> f64 {
        self.hardirq + self.softirq + self.task
    }
}

/// Results of one measured window.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Window length.
    pub window: SimDuration,
    /// Messages delivered to applications during the window.
    pub delivered: u64,
    /// Payload bytes delivered during the window.
    pub delivered_bytes: u64,
    /// Messages sent during the window.
    pub sent: u64,
    /// Drops (ring + backlog + gro_cell) during the window.
    pub drops: u64,
    /// One-way latency histogram (samples recorded during the window).
    pub latency: Histogram,
    /// Receive-path latency (NIC arrival → delivery).
    pub rx_latency: Histogram,
    /// Round-trip histogram for request/response workloads.
    pub rtt: Histogram,
    /// Per-core context shares.
    pub cores: Vec<CoreShare>,
    /// Interrupt deltas by kind.
    pub irqs: Vec<(IrqKind, u64)>,
    /// Per-function CPU nanoseconds during the window.
    pub functions: Vec<(&'static str, u64)>,
    /// Steering decisions that crossed cores.
    pub steered_remote: u64,
    /// TCP retransmissions.
    pub retransmits: u64,
}

impl RunStats {
    /// Delivered messages per second.
    pub fn pps(&self) -> f64 {
        self.delivered as f64 / self.window.as_secs_f64()
    }

    /// Delivered payload bits per second.
    pub fn bps(&self) -> f64 {
        self.delivered_bytes as f64 * 8.0 / self.window.as_secs_f64()
    }

    /// Delivered payload in Gbit/s.
    pub fn gbps(&self) -> f64 {
        self.bps() / 1e9
    }

    /// Total machine busy share (sum of per-core busy, in core-units).
    pub fn total_busy_cores(&self) -> f64 {
        self.cores.iter().map(|c| c.busy()).sum()
    }

    /// An interrupt kind's delta.
    pub fn irq(&self, kind: IrqKind) -> u64 {
        self.irqs
            .iter()
            .find(|(k, _)| *k == kind)
            .map_or(0, |&(_, n)| n)
    }

    /// A function's CPU nanoseconds.
    pub fn func_ns(&self, name: &str) -> u64 {
        self.functions
            .iter()
            .find(|(f, _)| *f == name)
            .map_or(0, |&(_, ns)| ns)
    }
}

struct Snapshot {
    counters: SimCounters,
    busy: Vec<[u64; 3]>,
    irqs: Vec<(IrqKind, u64)>,
    functions: Vec<(usize, &'static str, u64)>,
}

fn snapshot(runner: &SimRunner) -> Snapshot {
    let m = runner.machine();
    Snapshot {
        counters: runner.counters().clone(),
        busy: (0..m.cfg.n_cores)
            .map(|c| {
                let u = m.cores.ledger.core(c);
                [u.hardirq_ns, u.softirq_ns, u.task_ns]
            })
            .collect(),
        irqs: IrqKind::ALL
            .iter()
            .map(|&k| (k, m.cores.irqs.total(k)))
            .collect(),
        functions: m.cores.ledger.iter_attribution().collect(),
    }
}

/// Runs the standard protocol on `runner` and returns the stats of the
/// measured window.
pub fn run_measured(runner: &mut SimRunner, scale: Scale) -> RunStats {
    runner.run_for(scale.warmup());
    runner.begin_measurement();
    let before = snapshot(runner);
    let window = scale.window();
    runner.run_for(window);
    let after = snapshot(runner);

    let d = |f: fn(&SimCounters) -> u64| f(&after.counters) - f(&before.counters);
    let window_ns = window.as_nanos() as f64;

    let cores = before
        .busy
        .iter()
        .zip(after.busy.iter())
        .map(|(b, a)| CoreShare {
            hardirq: (a[0] - b[0]) as f64 / window_ns,
            softirq: (a[1] - b[1]) as f64 / window_ns,
            task: (a[2] - b[2]) as f64 / window_ns,
        })
        .collect();

    let irqs = before
        .irqs
        .iter()
        .zip(after.irqs.iter())
        .map(|(&(k, b), &(_, a))| (k, a - b))
        .collect();

    // Function deltas: aggregate after minus before across cores.
    let mut func_before: std::collections::HashMap<&'static str, u64> =
        std::collections::HashMap::new();
    for (_, f, ns) in &before.functions {
        *func_before.entry(f).or_insert(0) += ns;
    }
    let mut func_delta: std::collections::HashMap<&'static str, u64> =
        std::collections::HashMap::new();
    for (_, f, ns) in &after.functions {
        *func_delta.entry(f).or_insert(0) += ns;
    }
    for (f, ns) in func_before {
        if let Some(v) = func_delta.get_mut(f) {
            *v -= ns;
        }
    }
    let mut functions: Vec<(&'static str, u64)> = func_delta.into_iter().collect();
    functions.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));

    // The latency/rtt histograms accumulate from begin_measurement()
    // (they cannot be diffed bucket-wise without cloning; we rely on
    // measure_from gating instead).
    RunStats {
        window,
        delivered: d(SimCounters::total_delivered),
        delivered_bytes: d(SimCounters::total_delivered_bytes),
        sent: d(SimCounters::total_sent),
        drops: d(SimCounters::total_drops),
        latency: after.counters.latency.clone(),
        rx_latency: after.counters.rx_latency.clone(),
        rtt: after.counters.rtt.clone(),
        cores,
        irqs,
        functions,
        steered_remote: after.counters.steered_remote - before.counters.steered_remote,
        retransmits: after.counters.retransmits - before.counters.retransmits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Mode, Scenario, SF_APP_CORE};
    use falcon_netdev::LinkSpeed;
    use falcon_netstack::sim::{App, SimApi};
    use falcon_netstack::{KernelVersion, Pacing};

    struct MiniUdp;
    impl App for MiniUdp {
        fn on_start(&mut self, api: &mut SimApi<'_>) {
            let c = api.add_container(0, 10);
            api.bind_udp(Some(c), 5001, SF_APP_CORE, 300);
            let flow = api.udp_flow(Some(c), 5001, 16);
            api.udp_stress(flow, 1, Pacing::FixedPps(50_000.0));
        }
    }

    #[test]
    fn measured_window_reports_rates() {
        let scenario =
            Scenario::single_flow(Mode::Vanilla, KernelVersion::K419, LinkSpeed::HundredGbit);
        let mut runner = scenario.build(Box::new(MiniUdp));
        let stats = run_measured(&mut runner, Scale::Quick);
        // 50 kpps paced: the measured window should see ~50k/s.
        let pps = stats.pps();
        assert!((40_000.0..60_000.0).contains(&pps), "pps {pps}");
        assert!(stats.latency.count() > 100);
        assert!(stats.total_busy_cores() > 0.05);
        assert!(stats.irq(falcon_metrics::IrqKind::NetRx) > 0);
        assert!(stats.func_ns("vxlan_rcv") > 0);
        assert_eq!(stats.drops, 0);
    }

    #[test]
    fn scale_windows() {
        assert!(Scale::Quick.window() < Scale::Full.window());
        assert!(Scale::Quick.warmup() < Scale::Full.warmup());
    }
}

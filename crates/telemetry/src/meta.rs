//! `RunMeta`: the shared provenance header every BENCH artifact
//! carries, so the bench trajectory is comparable across PRs — which
//! commit produced a number, on what host, with what core layout, and
//! when.

use std::time::{SystemTime, UNIX_EPOCH};

use serde::Serialize;

/// Provenance stamped into every BENCH artifact.
#[derive(Debug, Clone, Serialize)]
pub struct RunMeta {
    /// Version of the artifact schema (bump on breaking layout change).
    pub schema_version: u32,
    /// Artifact family, e.g. `"dataplane"`, `"wire"`, `"telemetry"`.
    pub artifact: String,
    /// `git rev-parse HEAD` of the producing tree, or `"unknown"`.
    pub git_sha: String,
    /// Producing host's name, or `"unknown"`.
    pub hostname: String,
    /// Online cores the run could use.
    pub host_cores: usize,
    /// Physical packages / NUMA domains detected.
    pub numa_packages: usize,
    /// One-line core/NUMA summary from `topology` (human-readable).
    pub topology: String,
    /// UTC wall-clock time the artifact was produced, RFC 3339.
    pub created_utc: String,
}

impl RunMeta {
    /// Current artifact schema version.
    pub const SCHEMA_VERSION: u32 = 1;

    /// Collects provenance for `artifact`. The topology triple comes
    /// from the caller (the `topology` module lives in the dataplane
    /// crate, which depends on this one).
    pub fn collect(
        artifact: &str,
        host_cores: usize,
        numa_packages: usize,
        topology: impl Into<String>,
    ) -> RunMeta {
        RunMeta {
            schema_version: Self::SCHEMA_VERSION,
            artifact: artifact.to_string(),
            git_sha: git_sha(),
            hostname: hostname(),
            host_cores,
            numa_packages,
            topology: topology.into(),
            created_utc: utc_now_rfc3339(),
        }
    }
}

/// Best-effort `git rev-parse HEAD`, falling back to the `GIT_SHA`
/// environment variable and then `"unknown"` (artifact generation must
/// never fail on provenance).
pub fn git_sha() -> String {
    let from_git = std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty());
    from_git
        .or_else(|| std::env::var("GIT_SHA").ok().filter(|s| !s.is_empty()))
        .unwrap_or_else(|| "unknown".to_string())
}

/// Best-effort hostname: `/proc/sys/kernel/hostname`, then `HOSTNAME`.
pub fn hostname() -> String {
    std::fs::read_to_string("/proc/sys/kernel/hostname")
        .ok()
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .or_else(|| std::env::var("HOSTNAME").ok().filter(|s| !s.is_empty()))
        .unwrap_or_else(|| "unknown".to_string())
}

/// Current UTC time as `YYYY-MM-DDTHH:MM:SSZ` (RFC 3339), computed
/// directly from the Unix epoch (no date-time dependency available).
pub fn utc_now_rfc3339() -> String {
    let secs = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    format_epoch_secs(secs)
}

/// Formats Unix seconds as RFC 3339 UTC, using Howard Hinnant's
/// civil-from-days algorithm for the date part.
pub fn format_epoch_secs(secs: u64) -> String {
    let days = (secs / 86_400) as i64;
    let tod = secs % 86_400;
    let (h, m, s) = (tod / 3_600, (tod / 60) % 60, tod % 60);
    let (y, mo, d) = civil_from_days(days);
    format!("{y:04}-{mo:02}-{d:02}T{h:02}:{m:02}:{s:02}Z")
}

/// Days-since-epoch → (year, month, day), proleptic Gregorian.
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u32; // [1, 12]
    (y + i64::from(m <= 2), m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_formatting_known_values() {
        assert_eq!(format_epoch_secs(0), "1970-01-01T00:00:00Z");
        // 2021-04-26 00:00:00 UTC (EuroSys '21 week).
        assert_eq!(format_epoch_secs(1_619_395_200), "2021-04-26T00:00:00Z");
        // Leap-year day: 2024-02-29 12:34:56 UTC.
        assert_eq!(format_epoch_secs(1_709_210_096), "2024-02-29T12:34:56Z");
    }

    #[test]
    fn collect_is_total() {
        let m = RunMeta::collect("test", 8, 1, "8 cores / 1 package");
        assert_eq!(m.schema_version, RunMeta::SCHEMA_VERSION);
        assert_eq!(m.artifact, "test");
        assert!(!m.git_sha.is_empty());
        assert!(!m.hostname.is_empty());
        assert_eq!(m.host_cores, 8);
        assert!(m.created_utc.ends_with('Z'));
        assert_eq!(m.created_utc.len(), 20);
    }
}

//! Property-based tests of the CPU substrate.

use falcon_cpusim::{Cores, CpuSet, LoadTracker};
use falcon_metrics::Context;
use falcon_simcore::{SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// pick_by_hash always returns a member, and is stable.
    #[test]
    fn cpuset_pick_is_member(cpus in prop::collection::vec(0usize..64, 1..16), hash in any::<u32>()) {
        let set = CpuSet::new(cpus);
        let pick = set.pick_by_hash(hash);
        prop_assert!(set.contains(pick));
        prop_assert_eq!(set.pick_by_hash(hash), pick);
    }

    /// CpuSet construction is order- and duplicate-insensitive.
    #[test]
    fn cpuset_normalizes(mut cpus in prop::collection::vec(0usize..64, 1..32)) {
        let a = CpuSet::new(cpus.clone());
        cpus.reverse();
        cpus.extend(a.iter());
        let b = CpuSet::new(cpus);
        prop_assert_eq!(a.as_slice(), b.as_slice());
    }

    /// Work accounting: total busy equals the sum of charged items, and
    /// completion times are consistent.
    #[test]
    fn cores_account_exactly(durations in prop::collection::vec(1u64..10_000, 1..50)) {
        let mut cores = Cores::new(1);
        let mut now = SimTime::ZERO;
        let mut expected_total = 0u64;
        for &d in &durations {
            let until = cores.begin_work(
                0,
                Context::SoftIrq,
                now,
                &[("work", SimDuration::from_nanos(d))],
            );
            prop_assert_eq!(until.as_nanos(), now.as_nanos() + d);
            cores.complete(0, until);
            now = until;
            expected_total += d;
        }
        prop_assert_eq!(cores.ledger.core(0).softirq_ns, expected_total);
        prop_assert_eq!(cores.ledger.total_busy().as_nanos(), expected_total);
    }

    /// Loads are always within [0, 1] and the average is the mean.
    #[test]
    fn load_tracker_bounds(
        busy_fracs in prop::collection::vec(0.0f64..2.0, 1..8),
        ticks in 1u64..30,
    ) {
        let n = busy_fracs.len();
        let mut ledger = falcon_metrics::CpuLedger::new(n);
        let mut tracker = LoadTracker::new(n);
        for t in 1..=ticks {
            for (c, &frac) in busy_fracs.iter().enumerate() {
                let ns = (frac * 1e6) as u64;
                if ns > 0 {
                    ledger.charge(c, Context::Task, "w", SimDuration::from_nanos(ns));
                }
            }
            tracker.sample(SimTime::from_millis(t), &ledger);
        }
        let mut sum = 0.0;
        for c in 0..n {
            let load = tracker.core_load(c);
            prop_assert!((0.0..=1.0).contains(&load), "load {load}");
            sum += load;
        }
        prop_assert!((tracker.avg_load() - sum / n as f64).abs() < 1e-9);
    }
}

//! CLI driver for the live-socket ingestion comparison (`--ingest`).
//!
//! Both `falcon-repro` and `falcon-bench` call through here: size an
//! [`IngestConfig`] for the requested [`Scale`], run vanilla vs Falcon
//! over real loopback datagrams, and render the result for humans. The
//! JSON artifact (`BENCH_ingest.json`) is the serialized
//! [`IngestComparison`] itself.

use falcon_dataplane::TelemetrySpec;
use falcon_ingest::{run_ingest_comparison, IngestComparison, IngestConfig, IngestSideReport};

use crate::measure::Scale;

/// Sizes a live-ingestion run the way [`crate::dataplane::scenario_for`]
/// sizes a synthetic one: quick is CI-sized, full is a measurement.
/// The stage-cost scale is lowered versus the synthetic runs because
/// the sender and rx thread occupy cores too — at full modeled cost a
/// small host backs the socket up into kernel drops, which is a
/// measurement of the host, not of the steering policy.
pub fn config_for(scale: Scale, workers: usize, flows: u64, rx_batch: usize) -> IngestConfig {
    let base = IngestConfig {
        workers,
        flows: flows.max(1),
        rx_batch,
        ..IngestConfig::default()
    };
    match scale {
        Scale::Quick => IngestConfig {
            packets: 6_000,
            payload: 256,
            work_scale_milli: 100,
            ..base
        },
        Scale::Full => IngestConfig {
            packets: 60_000,
            payload: 256,
            work_scale_milli: 250,
            ..base
        },
    }
}

/// Runs the comparison with optional live telemetry on the Falcon leg.
pub fn run_comparison_with(
    scale: Scale,
    workers: usize,
    flows: u64,
    rx_batch: usize,
    telemetry: Option<TelemetrySpec>,
) -> std::io::Result<IngestComparison> {
    let mut cfg = config_for(scale, workers, flows, rx_batch);
    cfg.telemetry = telemetry;
    run_ingest_comparison(&cfg)
}

fn render_side(label: &str, side: &IngestSideReport) -> String {
    let p = &side.pipeline;
    format!(
        "  {:<8} {:>10.0} pps  {:>6.3} gbps  delivered {:<7} malformed {:<5} \
         socket-loss {:<5} rx {} ({} batches, {} empty polls{})  oracle {}\n",
        label,
        p.throughput_pps,
        p.goodput_gbps,
        p.delivered,
        side.malformed,
        side.socket_loss,
        side.rx_backend,
        side.rx_batches,
        side.rx_eagain_spins,
        match side.rx_sock_drops {
            Some(d) => format!(", {d} kernel drops"),
            None => String::new(),
        },
        if side.oracle_ok { "ok" } else { "FAIL" },
    )
}

/// Human-readable summary, matching the dataplane render style.
pub fn render(cmp: &IngestComparison) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "live ingestion: {} datagrams x {} flows, {}B payload, rx batch {}\n",
        cmp.packets, cmp.flows, cmp.payload, cmp.rx_batch
    ));
    out.push_str(&render_side("vanilla", &cmp.vanilla));
    out.push_str(&render_side("falcon", &cmp.falcon));
    out.push_str(&format!("  speedup  {:>10.2}x\n", cmp.speedup));
    // The rx batch histogram tells whether batching actually engaged:
    // all-ones means the rx thread kept pace syscall-per-datagram.
    let hist = &cmp.falcon.rx_batch_hist;
    let peak = hist
        .iter()
        .enumerate()
        .skip(1)
        .max_by_key(|&(_, c)| *c)
        .map(|(n, _)| n)
        .unwrap_or(0);
    out.push_str(&format!(
        "  falcon rx batch histogram peaks at {} datagram(s)/read\n",
        peak
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_comparison_runs_and_renders() {
        let mut cfg = config_for(Scale::Quick, 2, 4, 16);
        cfg.packets = 2_000;
        cfg.work_scale_milli = 20;
        cfg.oversubscribe = true;
        let cmp = run_ingest_comparison(&cfg).expect("comparison");
        assert!(cmp.vanilla.oracle_ok, "{:?}", cmp.vanilla.oracle_errors);
        assert!(cmp.falcon.oracle_ok, "{:?}", cmp.falcon.oracle_errors);
        assert_eq!(cmp.meta.artifact, "ingest");
        let text = render(&cmp);
        assert!(text.contains("speedup"));
        assert!(text.contains("oracle ok"));
        // The artifact must serialize (it is BENCH_ingest.json).
        let json = serde_json::to_string_pretty(&cmp).expect("serializable");
        assert!(json.contains("\"schema_version\""));
    }
}

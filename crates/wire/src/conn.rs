//! Bridge-stage conntrack observation: the slice of the inner frame
//! the stateful bridge feeds into `falcon-conntrack`.
//!
//! [`conn_observe`] parses the decapsulated inner frame into the
//! 5-tuple key, the TCP control flags (UDP datagrams observe as
//! flag-less data), and the application payload length — exactly the
//! inputs `ConnShard::record` / `ConnTable::observe` take. It runs in
//! the bridge stage next to `bridge_lookup` (and *instead of* it on the
//! flow-cache fast path, where the cached verdict skips the FDB work
//! but must never skip the state update).

use falcon_conntrack::{ConnKey, SegFlags};
use falcon_packet::{
    EtherType, EthernetHdr, IpProto, Ipv4Hdr, TcpHdr, UdpHdr, ETHERNET_HDR_LEN, IPV4_HDR_LEN,
    TCP_HDR_LEN, UDP_HDR_LEN,
};

/// One packet's contribution to the conntrack table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnObservation {
    /// The inner 5-tuple.
    pub key: ConnKey,
    /// Control flags driving the state machine (all-clear for UDP).
    pub flags: SegFlags,
    /// Application payload bytes (the byte-counter increment).
    pub payload_len: u64,
}

/// Parses the inner frame into a conntrack observation. Returns `None`
/// for frames that don't dissect to a supported 5-tuple — the caller
/// treats that as a no-op, which cannot happen for frames that passed
/// the bridge's own `dissect_flow` (or a cached verdict, which proved
/// the same thing when it was filled).
pub fn conn_observe(inner: &[u8]) -> Option<ConnObservation> {
    let eth = EthernetHdr::parse(inner).ok()?;
    if eth.ethertype != EtherType::Ipv4 {
        return None;
    }
    let ip = Ipv4Hdr::parse(inner.get(ETHERNET_HDR_LEN..)?).ok()?;
    let l4 = inner.get(ETHERNET_HDR_LEN + IPV4_HDR_LEN..)?;
    let l4_len = (ip.total_len as usize).checked_sub(IPV4_HDR_LEN)?;
    match ip.proto {
        IpProto::Tcp => {
            let tcp = TcpHdr::parse(l4).ok()?;
            Some(ConnObservation {
                key: ConnKey {
                    src_addr: ip.src.0,
                    dst_addr: ip.dst.0,
                    src_port: tcp.src_port,
                    dst_port: tcp.dst_port,
                    proto: 6,
                },
                flags: SegFlags {
                    syn: tcp.flags.syn,
                    fin: tcp.flags.fin,
                    rst: tcp.flags.rst,
                },
                payload_len: l4_len.checked_sub(TCP_HDR_LEN)? as u64,
            })
        }
        IpProto::Udp => {
            let udp = UdpHdr::parse(l4).ok()?;
            Some(ConnObservation {
                key: ConnKey {
                    src_addr: ip.src.0,
                    dst_addr: ip.dst.0,
                    src_port: udp.src_port,
                    dst_port: udp.dst_port,
                    proto: 17,
                },
                flags: SegFlags::data(),
                payload_len: l4_len.checked_sub(UDP_HDR_LEN)? as u64,
            })
        }
        IpProto::Other(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FrameFactory;
    use falcon_packet::encap::decap_bounds;
    use falcon_packet::TcpFlags;

    #[test]
    fn udp_frame_observes_as_data() {
        let f = FrameFactory::default();
        let inner = f.inner_frame(false, 2, 0, 300);
        let obs = conn_observe(&inner).unwrap();
        assert_eq!(obs.flags, SegFlags::data());
        assert_eq!(obs.payload_len, 300);
        assert_eq!(obs.key.proto, 17);
        assert_eq!(obs.key.dst_port, f.inner_keys(2, false).dst_port);
    }

    #[test]
    fn tcp_frame_observes_header_flags() {
        let f = FrameFactory::default();
        let inner = f.inner_frame(true, 1, 7, 512);
        let obs = conn_observe(&inner).unwrap();
        // Factory data frames are ACK-only: ACK never drives the
        // machine, so the observation is flag-less data.
        assert_eq!(obs.flags, SegFlags::data());
        assert_eq!(obs.payload_len, 512);
        assert_eq!(obs.key.proto, 6);
        let keys = f.inner_keys(1, true);
        assert_eq!(obs.key.src_port, keys.src_port);
        assert_eq!(obs.key.dst_port, keys.dst_port);
    }

    #[test]
    fn ctrl_frame_carries_syn_fin_rst() {
        let f = FrameFactory::default();
        for (tf, want) in [
            (
                TcpFlags {
                    syn: true,
                    ack: false,
                    fin: false,
                    psh: false,
                    rst: false,
                },
                SegFlags {
                    syn: true,
                    fin: false,
                    rst: false,
                },
            ),
            (
                TcpFlags {
                    syn: false,
                    ack: true,
                    fin: true,
                    psh: false,
                    rst: false,
                },
                SegFlags {
                    syn: false,
                    fin: true,
                    rst: false,
                },
            ),
            (
                TcpFlags {
                    syn: false,
                    ack: false,
                    fin: false,
                    psh: false,
                    rst: true,
                },
                SegFlags {
                    syn: false,
                    fin: false,
                    rst: true,
                },
            ),
        ] {
            let wire = f.tcp_ctrl_wire(0, 9, 64, tf);
            let b = decap_bounds(&wire).unwrap();
            let obs = conn_observe(&wire[b.inner]).unwrap();
            assert_eq!(obs.flags, want);
            assert_eq!(obs.payload_len, 64);
        }
    }

    #[test]
    fn garbage_is_a_silent_no_op() {
        assert_eq!(conn_observe(&[]), None);
        assert_eq!(conn_observe(&[0u8; 64]), None);
    }
}

//! Property-based tests of the hash primitives.

use falcon_khash::{
    flow_hash_from_keys, hash_32, jhash2, toeplitz_hash, FlowKeys, MICROSOFT_RSS_KEY,
};
use proptest::prelude::*;

proptest! {
    /// jhash2 is a pure function.
    #[test]
    fn jhash2_deterministic(words in prop::collection::vec(any::<u32>(), 0..32), iv in any::<u32>()) {
        prop_assert_eq!(jhash2(&words, iv), jhash2(&words, iv));
    }

    /// Appending a word changes the hash (length is mixed in), except
    /// with negligible collision probability — so assert on a batch.
    #[test]
    fn jhash2_length_sensitive(words in prop::collection::vec(any::<u32>(), 1..16)) {
        let h1 = jhash2(&words, 0);
        let mut extended = words.clone();
        extended.push(0);
        let h2 = jhash2(&extended, 0);
        // A collision is possible but so rare that hitting one in a
        // proptest run indicates a real length-handling bug.
        prop_assert_ne!(h1, h2);
    }

    /// hash_32 with fewer bits is a strict truncation of the full mix.
    #[test]
    fn hash_32_truncation(val in any::<u32>(), bits in 1u32..=32) {
        let full = hash_32(val, 32);
        prop_assert_eq!(hash_32(val, bits), full >> (32 - bits));
    }

    /// The flow hash is never zero and depends only on the keys.
    #[test]
    fn flow_hash_nonzero_and_stable(
        src in any::<u32>(), dst in any::<u32>(),
        sport in any::<u16>(), dport in any::<u16>(),
        proto in prop::sample::select(vec![6u8, 17]),
        rnd in any::<u32>(),
    ) {
        let keys = FlowKeys { src_addr: src, dst_addr: dst, src_port: sport, dst_port: dport, ip_proto: proto };
        let h = flow_hash_from_keys(&keys, rnd);
        prop_assert_ne!(h, 0);
        prop_assert_eq!(h, flow_hash_from_keys(&keys.clone(), rnd));
    }

    /// Toeplitz is linear over GF(2): H(a ^ b) == H(a) ^ H(b).
    #[test]
    fn toeplitz_linearity(a in prop::collection::vec(any::<u8>(), 12), b in prop::collection::vec(any::<u8>(), 12)) {
        let xored: Vec<u8> = a.iter().zip(&b).map(|(x, y)| x ^ y).collect();
        prop_assert_eq!(
            toeplitz_hash(&MICROSOFT_RSS_KEY, &xored),
            toeplitz_hash(&MICROSOFT_RSS_KEY, &a) ^ toeplitz_hash(&MICROSOFT_RSS_KEY, &b)
        );
    }

    /// Toeplitz of the zero vector is zero (linearity's identity).
    #[test]
    fn toeplitz_zero(len in 0usize..=36) {
        let zeros = vec![0u8; len];
        prop_assert_eq!(toeplitz_hash(&MICROSOFT_RSS_KEY, &zeros), 0);
    }
}

//! SCR conntrack differential conformance: replicated state must
//! converge to serialized ground truth.
//!
//! The stateful bridge stage mutates a per-flow conntrack entry on
//! every packet, which is exactly the kind of shared state the paper's
//! per-(flow, device) serialization exists to protect. `Policy::
//! Replicate` drops that protection — one flow's packets run
//! concurrently on every worker — and compensates with State-Compute
//! Replication: each worker tracks state in a private shard plus a
//! compact delta log, and the post-run merge replays the logs in
//! virtual-time order. The contract these tests enforce is the relaxed
//! SCR contract:
//!
//! * the merged conntrack table is **byte-identical** to the table a
//!   serialized policy builds from the same packets (state machine,
//!   packet/byte counters, last-seen clocks — everything);
//! * the delivered `(flow, seq, digest)` multiset is identical
//!   (replication may reorder, never corrupt or drop);
//! * delivery order per flow is allowed to differ — that is the whole
//!   trade — but no (flow, checkpoint, seq) may execute twice.
//!
//! Corruption and chaos steering layer on top: bit-flip drops are
//! content-based and the observation only runs after the bridge op
//! succeeds, so all three policies track the identical packet set even
//! when a third of the wire is being flipped.

use falcon_conntrack::ConnState;
use falcon_dataplane::{
    rss_hash_for_flow, run_scenario, run_scenario_from, Injector, PolicyKind, RunOutput, Scenario,
    TrafficShape,
};
use falcon_packet::{PktDesc, TcpFlags, WireBuf};
use falcon_trace::DropReason;
use falcon_wire::FrameFactory;

/// Wire-mode scenario sized for differential checking: the ring holds
/// the whole run, so backpressure can never drop a packet. Ring drops
/// are timing accidents — two policies would legitimately track
/// different packet sets — so every differential config here must be
/// drop-free at the rings by construction.
fn conn_scenario(policy: PolicyKind, workers: usize, flows: u64, packets: u64) -> Scenario {
    Scenario {
        policy,
        workers,
        flows,
        packets,
        payload: 512,
        work_scale_milli: 100,
        inject_gap_ns: 0,
        pin: false,
        oversubscribe: true,
        trace_capacity: 1 << 18,
        ring_capacity: 1 << 15,
        wire: true,
        ..Scenario::default()
    }
}

/// Same, on the Figure-13 TCP-4KB split-GRO shape.
fn conn_split_scenario(policy: PolicyKind, workers: usize, flows: u64, packets: u64) -> Scenario {
    let mut s = conn_scenario(policy, workers, flows, packets);
    s.split_gro = true;
    s.shape = TrafficShape::TcpGro { mss: 1448 };
    s.payload = 4096;
    s
}

/// The differential oracle across steering policies: byte-identical
/// merged conntrack tables, identical delivery multisets, identical
/// drop books, and a clean (policy-appropriate) order audit on every
/// leg.
fn assert_convergence(legs: &[(&str, &RunOutput)]) {
    let (ground_name, ground) = legs[0];
    for (name, out) in legs {
        assert_eq!(
            out.drops_by_reason()[DropReason::Ring.index()],
            0,
            "{name} leg dropped at a ring; differential runs must be sized loss-free"
        );
        let (checks, violations) = out.order_audit();
        assert!(checks > 0, "{name} leg audited nothing");
        assert_eq!(violations, 0, "{name} leg failed its order audit");
    }
    let ground_table = ground.conntrack_table().expect("wire runs track state");
    let mut ground_deliveries = ground.deliveries();
    ground_deliveries.sort_unstable();
    for (name, out) in &legs[1..] {
        let table = out.conntrack_table().expect("wire runs track state");
        assert_eq!(
            ground_table, table,
            "{name} conntrack table diverged from {ground_name} ground truth"
        );
        let mut deliveries = out.deliveries();
        deliveries.sort_unstable();
        assert_eq!(
            ground_deliveries, deliveries,
            "{name} delivered a different (flow, seq, digest) multiset than {ground_name}"
        );
        assert_eq!(
            ground.drops_by_reason(),
            out.drops_by_reason(),
            "{name} changed drop accounting vs {ground_name}"
        );
        assert_eq!(
            ground.malformed_per_stage(),
            out.malformed_per_stage(),
            "{name} moved a malformed drop to a different stage vs {ground_name}"
        );
    }
}

/// Clean UDP wire: all three policies build byte-identical tables and
/// the bridge stage observed every packet exactly once.
#[test]
fn three_policies_build_identical_tables_on_clean_udp() {
    let base = conn_scenario(PolicyKind::Vanilla, 3, 4, 3_000);
    let vanilla = run_scenario(&base);
    let falcon = run_scenario(&base.clone().with_policy(PolicyKind::Falcon));
    let replicate = run_scenario(&base.clone().with_policy(PolicyKind::Replicate));
    assert_convergence(&[
        ("vanilla", &vanilla),
        ("falcon", &falcon),
        ("replicate", &replicate),
    ]);
    let table = vanilla.conntrack_table().expect("wire run tracks state");
    assert_eq!(table.len() as u64, base.flows);
    let summary = table.summary();
    assert_eq!(summary.pkts, base.packets);
    // UDP never carries control flags: every flow folds to Established.
    assert_eq!(summary.established, base.flows);
    for (name, out) in [("vanilla", &vanilla), ("replicate", &replicate)] {
        let c = out.conntrack_counters();
        assert_eq!(c.updates, base.packets, "{name} shard update count");
        assert!(c.delta_records > 0, "{name} logged no merge deltas");
    }
    // Replicate actually sprayed the flows across workers.
    let active = replicate
        .workers_stats
        .iter()
        .filter(|w| w.delivered > 0)
        .count();
    assert_eq!(
        active, 3,
        "replicate must spread packets across all workers"
    );
}

/// Split-GRO TCP: the multi-segment trains coalesce before the bridge,
/// so the shards observe one coalesced frame per message on every
/// policy — and the tables still match byte for byte.
#[test]
fn three_policies_converge_on_split_gro_tcp() {
    let base = conn_split_scenario(PolicyKind::Vanilla, 3, 2, 1_200);
    let vanilla = run_scenario(&base);
    let falcon = run_scenario(&base.clone().with_policy(PolicyKind::Falcon));
    let replicate = run_scenario(&base.clone().with_policy(PolicyKind::Replicate));
    assert_convergence(&[
        ("vanilla", &vanilla),
        ("falcon", &falcon),
        ("replicate", &replicate),
    ]);
    let summary = vanilla
        .conntrack_table()
        .expect("wire run tracks state")
        .summary();
    assert_eq!(summary.entries, base.flows);
    assert_eq!(
        summary.pkts, base.packets,
        "one coalesced observation per injected message"
    );
}

/// ~30 % corruption: flips kill frames at content-determined stages, so
/// the surviving packet set — and therefore the tables — stay identical
/// across all three policies. A frame the bridge rejects must never
/// touch the table.
#[test]
fn corruption_drops_identically_across_policies() {
    let mut base = conn_scenario(PolicyKind::Vanilla, 3, 4, 4_000);
    base.corrupt_per_million = 300_000;
    base.wire_seed = 7;
    let vanilla = run_scenario(&base);
    assert!(vanilla.corrupted_segments > 0, "the corruptor never fired");
    assert!(
        vanilla.drops_by_reason()[DropReason::Malformed.index()] > 0,
        "30 % corruption must kill some frames"
    );
    let falcon = run_scenario(&base.clone().with_policy(PolicyKind::Falcon));
    let replicate = run_scenario(&base.clone().with_policy(PolicyKind::Replicate));
    assert_eq!(vanilla.corrupted_segments, replicate.corrupted_segments);
    assert_convergence(&[
        ("vanilla", &vanilla),
        ("falcon", &falcon),
        ("replicate", &replicate),
    ]);
    // The table saw exactly the packets that survived *to* the bridge:
    // deliveries plus the frames the later deliver-verify stage killed
    // (observed, then dropped on the inner checksum).
    let summary = vanilla
        .conntrack_table()
        .expect("wire run tracks state")
        .summary();
    assert!(summary.pkts < base.packets, "corruption thinned the stream");
    let per_stage = vanilla.malformed_per_stage();
    let post_bridge = per_stage.last().copied().unwrap_or(0);
    assert_eq!(
        summary.pkts,
        vanilla.delivered() + post_bridge,
        "table pkts must equal deliveries plus post-bridge kills"
    );
}

/// Chaos steering under Replicate: forced rotation bounces packets
/// across workers mid-pipeline (guard-free hops, the merge's worst
/// case), while vanilla stays the serialized reference — the merge
/// still reconciles exactly.
#[test]
fn chaos_steering_cannot_break_the_merge() {
    let mut base = conn_scenario(PolicyKind::Vanilla, 3, 2, 2_000);
    base.chaos_steer_period = 2;
    let vanilla = run_scenario(&base);
    let replicate = run_scenario(&base.clone().with_policy(PolicyKind::Replicate));
    assert_convergence(&[("vanilla", &vanilla), ("replicate", &replicate)]);
    // Chaos rotation forced real cross-worker hops on the replicate
    // leg: more than one worker must have run bridge work per flow.
    let active = replicate
        .workers_stats
        .iter()
        .filter(|w| w.processed.iter().sum::<u64>() > 0)
        .count();
    assert!(active > 1, "chaos steering never left the home worker");
}

/// Corruption and chaos steering together on the split shape — the
/// adversarial config from the flow-cache suite, now with three
/// policies and the state oracle on top.
#[test]
fn corruption_and_chaos_survive_on_split_shape() {
    let mut base = conn_split_scenario(PolicyKind::Vanilla, 3, 2, 1_200);
    base.corrupt_per_million = 200_000;
    base.wire_seed = 21;
    base.chaos_steer_period = 2;
    let vanilla = run_scenario(&base);
    assert!(vanilla.corrupted_segments > 0, "the corruptor never fired");
    let falcon = run_scenario(&base.clone().with_policy(PolicyKind::Falcon));
    let replicate = run_scenario(&base.clone().with_policy(PolicyKind::Replicate));
    assert_convergence(&[
        ("vanilla", &vanilla),
        ("falcon", &falcon),
        ("replicate", &replicate),
    ]);
}

/// Scripted TCP lifecycle source: for every flow, a SYN, `data_per_flow`
/// data segments, a FIN, and a second FIN — plus an RST tail on flow 0.
/// Sequence numbers are the virtual clock, so the reference end state is
/// exact: flow 0 ends `Reset`, everything else `Closed`.
fn lifecycle_source(flows: u64, data_per_flow: u64) -> impl FnOnce(&mut Injector) + Send + 'static {
    move |inj: &mut Injector| {
        let factory = FrameFactory::default();
        let payload = 256usize;
        let mut id = 0u64;
        let syn = TcpFlags {
            syn: true,
            ack: false,
            psh: false,
            fin: false,
            rst: false,
        };
        let fin = TcpFlags {
            syn: false,
            ack: true,
            psh: false,
            fin: true,
            rst: false,
        };
        let rst = TcpFlags {
            syn: false,
            ack: false,
            psh: false,
            fin: false,
            rst: true,
        };
        let mut send = |inj: &mut Injector, flow: u64, seq: u64, flags: TcpFlags| {
            let wire = factory.tcp_ctrl_wire(flow, seq, payload, flags);
            let desc = PktDesc::new(id, flow, seq, rss_hash_for_flow(flow), payload as u32)
                .with_wire(WireBuf::segments(vec![wire]));
            inj.inject(desc);
            id += 1;
        };
        // Interleave flows on purpose: arrival order across flows is
        // irrelevant, virtual time within a flow is what replays.
        for seq in 0..data_per_flow + 3 {
            for flow in 0..flows {
                let flags = match seq {
                    0 => syn,
                    s if s <= data_per_flow => TcpFlags::data(),
                    s if s == data_per_flow + 1 => fin,
                    _ => fin,
                };
                send(inj, flow, seq, flags);
            }
        }
        // Flow 0's connection dies hard after the close.
        send(inj, 0, data_per_flow + 3, rst);
    }
}

/// The SYN/data/FIN/FIN(/RST) lifecycle through the real pipeline, all
/// three policies: every leg's merged table lands on the exact
/// reference end states, byte-identically.
#[test]
fn tcp_lifecycle_reaches_exact_end_states_on_all_policies() {
    let flows = 3u64;
    let data_per_flow = 40u64;
    let packets = flows * (data_per_flow + 3) + 1;
    let factory = FrameFactory::default();
    let mut legs: Vec<(&str, RunOutput)> = Vec::new();
    for (name, policy) in [
        ("vanilla", PolicyKind::Vanilla),
        ("falcon", PolicyKind::Falcon),
        ("replicate", PolicyKind::Replicate),
    ] {
        let s = conn_scenario(policy, 3, flows, packets);
        let (out, ()) = run_scenario_from(&s, lifecycle_source(flows, data_per_flow));
        legs.push((name, out));
    }
    let views: Vec<(&str, &RunOutput)> = legs.iter().map(|(n, o)| (*n, o)).collect();
    assert_convergence(&views);
    let table = legs[0].1.conntrack_table().expect("wire run tracks state");
    assert_eq!(table.len() as u64, flows);
    for flow in 0..flows {
        let key = {
            let keys = factory.inner_keys(flow, true);
            falcon_conntrack::ConnKey {
                src_addr: keys.src_addr,
                dst_addr: keys.dst_addr,
                src_port: keys.src_port,
                dst_port: keys.dst_port,
                proto: 6,
            }
        };
        let entry = table.get(&key).expect("flow tracked");
        let want = if flow == 0 {
            ConnState::Reset
        } else {
            ConnState::Closed
        };
        assert_eq!(entry.state, want, "flow {flow} end state");
        let pkts = data_per_flow + 3 + u64::from(flow == 0);
        assert_eq!(entry.pkts, pkts, "flow {flow} packet count");
        assert_eq!(entry.bytes, pkts * 256, "flow {flow} byte count");
        assert_eq!(
            entry.last_seen,
            data_per_flow + 2 + u64::from(flow == 0),
            "flow {flow} virtual last-seen"
        );
    }
}

/// Satellite: the flow-verdict fast path is stateful-correct. A fresh
/// cache hit skips the FDB lookup but must never skip the conntrack
/// update — cached and uncached legs build byte-identical tables with
/// identical update counts.
#[test]
fn flow_cache_hit_never_skips_the_conntrack_update() {
    for policy in [
        PolicyKind::Vanilla,
        PolicyKind::Falcon,
        PolicyKind::Replicate,
    ] {
        let s = conn_scenario(policy, 2, 3, 3_000);
        let uncached = run_scenario(&s);
        let mut hot_s = s.clone();
        hot_s.flow_cache = true;
        hot_s.flow_cache_entries = 4096;
        let hot = run_scenario(&hot_s);
        let stats = hot.flow_cache_stats();
        assert!(stats.hits > 0, "{policy:?} cached leg never hit");
        let cold_table = uncached.conntrack_table().expect("wire run tracks state");
        let hot_table = hot.conntrack_table().expect("wire run tracks state");
        assert_eq!(
            cold_table, hot_table,
            "{policy:?}: a cache hit skipped a conntrack update"
        );
        assert_eq!(
            uncached.conntrack_counters().updates,
            hot.conntrack_counters().updates,
            "{policy:?}: cached leg absorbed a different observation count"
        );
        assert_eq!(hot.conntrack_counters().updates, s.packets);
    }
}

//! Packet substrate for the Falcon reproduction.
//!
//! Real byte-level framing keeps the simulation honest: the overlay path
//! genuinely encapsulates the container frame inside an outer
//! Ethernet/IPv4/UDP/VXLAN envelope (RFC 7348), the flow dissector
//! really parses the headers it hashes, and decapsulation really strips
//! the 50-byte outer envelope. The modules are:
//!
//! * [`ethernet`], [`ipv4`], [`udp`], [`tcp`], [`vxlan`] — header codecs.
//! * [`checksum`] — the Internet checksum.
//! * [`skbuff`] — the [`SkBuff`] metadata wrapper that
//!   travels through the simulated kernel (device pointer, rx hash,
//!   timestamps, GRO segment count, per-flow sequence numbers).
//! * [`encap`] — VXLAN encapsulation/decapsulation.
//! * [`desc`] — the compact [`PktDesc`] descriptor the real-thread
//!   dataplane (`falcon-dataplane`) moves through its lock-free rings.

pub mod checksum;
pub mod desc;
pub mod encap;
pub mod ethernet;
pub mod ipv4;
pub mod mix;
pub mod skbuff;
pub mod slab;
pub mod tcp;
pub mod udp;
pub mod vxlan;

pub use desc::{PktDesc, WireBuf};
pub use encap::{
    build_tcp_frame, build_udp_frame, decap_bounds, dissect_flow, fill_l4_checksum,
    verify_l4_checksum, vxlan_decapsulate, vxlan_encapsulate, vxlan_encapsulate_into, DecapBounds,
    EncapParams, VXLAN_OVERHEAD,
};
pub use ethernet::{EtherType, EthernetHdr, MacAddr, ETHERNET_HDR_LEN};
pub use ipv4::{IpProto, Ipv4Addr4, Ipv4Hdr, IPV4_HDR_LEN};
pub use mix::{mix64, mix64_scalar};
pub use skbuff::{FragMeta, PacketId, SkBuff, TraceHop};
pub use slab::{RawSlot, SlabConfig, SlabCounters, SlabPool, SlabSample, SlabSeg};
pub use tcp::{TcpFlags, TcpHdr, TCP_HDR_LEN};
pub use udp::{UdpHdr, UDP_HDR_LEN, VXLAN_PORT};
pub use vxlan::{VxlanHdr, VXLAN_HDR_LEN};

/// Errors produced when parsing packet bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer is shorter than the header being parsed.
    Truncated {
        /// Header or layer that failed to parse.
        what: &'static str,
        /// Bytes required.
        need: usize,
        /// Bytes available.
        have: usize,
    },
    /// A header field has an unsupported or corrupt value.
    Malformed {
        /// Header or layer that failed to parse.
        what: &'static str,
        /// Human-readable description of the problem.
        why: &'static str,
    },
    /// A checksum did not verify.
    BadChecksum {
        /// Header whose checksum failed.
        what: &'static str,
    },
}

impl core::fmt::Display for CodecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CodecError::Truncated { what, need, have } => {
                write!(f, "truncated {what}: need {need} bytes, have {have}")
            }
            CodecError::Malformed { what, why } => write!(f, "malformed {what}: {why}"),
            CodecError::BadChecksum { what } => write!(f, "bad {what} checksum"),
        }
    }
}

impl std::error::Error for CodecError {}

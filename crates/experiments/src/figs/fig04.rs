//! Figure 4: hardware and software interrupt rates, host vs overlay.
//!
//! Expected shape: at the same fixed packet rate, the overlay triggers
//! ~3× the `NET_RX` softirqs (three devices, three softirqs) and many
//! more rescheduling/backlog IPIs.

use falcon_metrics::IrqKind;
use falcon_netdev::LinkSpeed;
use falcon_netstack::{KernelVersion, Pacing};
use falcon_workloads::{UdpStressApp, UdpStressConfig};

use crate::measure::{run_measured, Scale};
use crate::scenario::{Mode, Scenario, SF_APP_CORE};
use crate::table::{FigResult, Table};

fn irq_rates(mode: Mode, scale: Scale) -> Vec<(IrqKind, f64)> {
    let scenario = Scenario::single_flow(mode, KernelVersion::K419, LinkSpeed::HundredGbit);
    let mut cfg = UdpStressConfig::single_flow(16);
    cfg.senders_per_flow = 2;
    // Pacing is per sender thread: 2 x 75 kpps Poisson = 150 kpps
    // aggregate, low enough that queues drain between packets and the
    // per-packet softirq structure is visible (not coalesced away).
    cfg.pacing = Pacing::PoissonPps(75_000.0);
    cfg.app_cores = vec![SF_APP_CORE];
    let mut runner = scenario.build(Box::new(UdpStressApp::new(cfg)));
    let stats = run_measured(&mut runner, scale);
    let secs = stats.window.as_secs_f64();
    stats
        .irqs
        .iter()
        .map(|&(k, n)| (k, n as f64 / secs))
        .collect()
}

/// Compares interrupt rates at a fixed 150 kpps UDP load.
pub fn run(scale: Scale) -> FigResult {
    let mut fig = FigResult::new(
        "fig4",
        "Interrupt rates at fixed 150kpps UDP (host vs overlay)",
    );
    let host = irq_rates(Mode::Host, scale);
    let con = irq_rates(Mode::Vanilla, scale);

    let mut t = Table::new(&["interrupt", "Host /s", "Con /s", "Con/Host"]);
    for (idx, &(kind, h)) in host.iter().enumerate() {
        let c = con[idx].1;
        if h == 0.0 && c == 0.0 {
            continue;
        }
        t.row(vec![
            kind.label().into(),
            format!("{h:.0}"),
            format!("{c:.0}"),
            if h > 0.0 {
                format!("{:.2}", c / h)
            } else {
                "inf".into()
            },
        ]);
    }
    fig.panel("", t);

    let h_netrx = host.iter().find(|(k, _)| *k == IrqKind::NetRx).unwrap().1;
    let c_netrx = con.iter().find(|(k, _)| *k == IrqKind::NetRx).unwrap().1;
    fig.note(format!(
        "overlay NET_RX is {:.1}x the host's (paper: ~3.6x)",
        c_netrx / h_netrx.max(1.0)
    ));
    fig
}

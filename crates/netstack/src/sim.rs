//! The simulation world: a traffic-engine client, a wire, and a fully
//! modelled server kernel, driven by an [`App`].
//!
//! [`Sim`] is the event-engine world type. [`SimInner`] holds all
//! simulation state; the application (workload) is held in a take/put
//! slot so callbacks can borrow the rest of the world mutably.
//! [`SimApi`] is the facade workloads use: open flows, send traffic,
//! bind server sockets, respond to requests, set timers.

use falcon_khash::FlowKeys;
use falcon_metrics::IrqKind;
use falcon_packet::{
    build_tcp_frame, build_udp_frame, vxlan_encapsulate, EncapParams, FragMeta, Ipv4Addr4, MacAddr,
    PacketId, SkBuff, TcpFlags,
};
use falcon_simcore::{Engine, SimDuration, SimRng, SimTime};

use std::collections::HashMap;

use crate::config::{NetMode, Pacing, SimConfig};
use crate::counters::SimCounters;
use crate::machine::{Machine, TaskWork, CLIENT_HOST_IP, OVERLAY_VNI, SERVER_HOST_IP};
use crate::rxpath::{self, PendingOutcome};
use crate::socket::SockId;
use crate::steering::Steering;
use crate::transport::{ClientEngine, ClientFlow, FlowId, FlowKind, StressState, TcpState};

/// Metadata of a delivered message (server side) or response (client
/// side).
#[derive(Debug, Clone, Copy)]
pub struct MsgMeta {
    /// The flow it belongs to.
    pub flow: FlowId,
    /// Application payload bytes.
    pub bytes: usize,
    /// Correlation id (0 = none).
    pub msg_id: u64,
    /// When the payload entered the sending stack.
    pub sent_at: SimTime,
    /// Wire segments the message arrived as (after GRO, >= 1).
    pub segments: u32,
}

/// A workload driving the simulation.
///
/// All methods have empty defaults; implement what the workload needs.
#[allow(unused_variables)]
pub trait App {
    /// Called once at simulation start: create containers, sockets,
    /// flows, and kick off traffic.
    fn on_start(&mut self, api: &mut SimApi<'_>) {}

    /// A message reached the server application (user space).
    fn on_server_msg(&mut self, api: &mut SimApi<'_>, sock: SockId, meta: &MsgMeta) {}

    /// A server response reached the client application.
    fn on_client_msg(&mut self, api: &mut SimApi<'_>, flow: FlowId, meta: &MsgMeta) {}

    /// A timer set with [`SimApi::set_timer`] fired.
    fn on_timer(&mut self, api: &mut SimApi<'_>, token: u64) {}
}

/// All simulation state except the application.
pub struct SimInner {
    /// Configuration.
    pub cfg: SimConfig,
    /// The server machine.
    pub machine: Machine,
    /// The physical link.
    pub wire: falcon_netdev::Wire,
    /// Run counters.
    pub counters: SimCounters,
    /// Deterministic RNG.
    pub rng: SimRng,
    /// Client traffic engine.
    pub client: ClientEngine,
    /// Per-server-core pending work outcome (set while a core is busy).
    pub running: Vec<Option<PendingOutcome>>,
    /// Server-side per-flow next expected TCP segment.
    pub tcp_expected: HashMap<u64, u64>,
    /// Out-of-order-flow protection (like RPS's `rps_dev_flow` table):
    /// per (flow, stage-device), the CPU the stage currently runs on
    /// and how many packets are queued towards it. A steering switch to
    /// a different CPU is deferred until the old queue drains.
    pub steer_flows: HashMap<(u64, u32), SteerFlowState>,
    /// Latency/RTT samples before this instant are discarded (warmup).
    pub measure_from: SimTime,
    /// Tracepoint sink. Inert ([`falcon_trace::Tracer::disabled`])
    /// unless [`SimRunner::enable_tracing`] was called.
    pub tracer: falcon_trace::Tracer,
    next_pkt_id: u64,
    next_client_ip: u32,
}

/// Per-(flow, stage-device) steering state for out-of-order-flow
/// protection.
#[derive(Debug, Clone, Copy)]
pub struct SteerFlowState {
    /// CPU the stage currently runs on.
    pub cpu: usize,
    /// Packets enqueued towards that CPU and not yet processed there.
    pub inflight: u32,
    /// Load-sample index of the last in-flight migration (cooldown
    /// against ping-ponging between two candidates).
    pub last_migrate_sample: u64,
}

/// The event-engine world: simulation state plus the workload.
pub struct Sim {
    /// Simulation state.
    pub inner: SimInner,
    /// The workload (take/put slot; `None` only during a callback).
    pub app: Option<Box<dyn App>>,
}

/// The facade workloads use inside callbacks.
pub struct SimApi<'a> {
    /// Simulation state.
    pub inner: &'a mut SimInner,
    /// The event engine (for time and scheduling).
    pub eng: &'a mut Engine<Sim>,
}

impl SimInner {
    fn new(cfg: SimConfig, steering: Box<dyn Steering>) -> Self {
        let machine = Machine::new(cfg.server.clone(), steering, cfg.hashrnd);
        let wire = falcon_netdev::Wire::new(cfg.link, cfg.propagation);
        let n = cfg.server.n_cores;
        SimInner {
            machine,
            wire,
            counters: SimCounters::new(),
            rng: SimRng::new(cfg.seed),
            client: ClientEngine::new(),
            running: (0..n).map(|_| None).collect(),
            tcp_expected: HashMap::new(),
            steer_flows: HashMap::new(),
            measure_from: SimTime::ZERO,
            tracer: falcon_trace::Tracer::disabled(),
            next_pkt_id: 0,
            next_client_ip: 0,
            cfg,
        }
    }

    /// Allocates a packet id.
    pub fn alloc_pkt_id(&mut self) -> PacketId {
        self.next_pkt_id += 1;
        PacketId(self.next_pkt_id)
    }

    /// Allocates a unique client-side private IP (10.1.x.y).
    fn alloc_client_ip(&mut self) -> Ipv4Addr4 {
        let n = self.next_client_ip;
        self.next_client_ip += 1;
        Ipv4Addr4::new(10, 1, (n >> 8) as u8, (n & 0xFF) as u8 + 1)
    }

    /// The server NIC's MAC address.
    pub fn server_nic_mac(&self) -> MacAddr {
        MacAddr::from_index(2)
    }

    /// Builds the wire frame(s) for one UDP datagram of `payload` bytes
    /// on `flow` and returns them with their metadata set.
    fn build_udp_frames(
        &mut self,
        flow_id: FlowId,
        payload: usize,
        msg_id: u64,
        sent_at: SimTime,
    ) -> Vec<SkBuff> {
        let overlay = self.cfg.server.mode == NetMode::Overlay;
        let max_frag = self.cfg.server.max_udp_payload();
        let flow = &mut self.client.flows[flow_id.0 as usize];
        let n_frags = payload.div_ceil(max_frag).max(1);
        let datagram_id = flow.next_datagram;
        flow.next_datagram += 1;

        let mut frames = Vec::with_capacity(n_frags);
        for i in 0..n_frags {
            let chunk = if i + 1 == n_frags {
                payload - i * max_frag
            } else {
                max_frag
            };
            // Simplification: every fragment carries a full UDP header
            // in its bytes (real IP fragmentation puts L4 headers only
            // in the first fragment), so per-fragment dissection works
            // uniformly. The CPU model charges reassembly separately.
            let inner = build_udp_frame(flow.src_mac, flow.dst_mac, &flow.keys, &vec![0u8; chunk]);
            let data = if overlay {
                let inner_hash = falcon_khash::flow_hash_from_keys(&flow.keys, 0x517);
                vxlan_encapsulate(
                    &inner,
                    &EncapParams {
                        src_mac: MacAddr::from_index(1),
                        dst_mac: MacAddr::from_index(2),
                        src_ip: CLIENT_HOST_IP,
                        dst_ip: SERVER_HOST_IP,
                        src_port: 49152 + (inner_hash % 16384) as u16,
                        vni: OVERLAY_VNI,
                    },
                )
            } else {
                inner
            };
            let mut skb = SkBuff::new(PacketId(0), data);
            skb.flow_id = flow_id.0 as u64;
            skb.flow_seq = flow.alloc_seq();
            skb.sent_at = sent_at;
            skb.payload_len = payload;
            skb.msg_id = msg_id;
            if n_frags > 1 {
                skb.frag = Some(FragMeta {
                    datagram_id,
                    index: i as u32,
                    count: n_frags as u32,
                });
            }
            frames.push(skb);
        }
        let stats = self.counters.flow_mut(flow_id.0 as u64);
        stats.sent_msgs += 1;
        stats.sent_bytes += payload as u64;
        for f in &mut frames {
            f.id = PacketId(0); // placeholder; assigned at transmit
        }
        frames
    }

    /// Builds the wire frame for one TCP segment.
    #[allow(clippy::too_many_arguments)]
    fn build_tcp_segment(
        &mut self,
        flow_id: FlowId,
        seg: u64,
        bytes: usize,
        msg_id: u64,
        push: bool,
        sent_at: SimTime,
        count_as_sent: bool,
    ) -> SkBuff {
        let overlay = self.cfg.server.mode == NetMode::Overlay;
        let flow = &mut self.client.flows[flow_id.0 as usize];
        let flags = TcpFlags {
            ack: true,
            psh: push,
            ..Default::default()
        };
        let inner = build_tcp_frame(
            flow.src_mac,
            flow.dst_mac,
            &flow.keys,
            (seg & 0xFFFF_FFFF) as u32,
            0,
            flags,
            65_535,
            &vec![0u8; bytes],
        );
        let data = if overlay {
            let inner_hash = falcon_khash::flow_hash_from_keys(&flow.keys, 0x517);
            vxlan_encapsulate(
                &inner,
                &EncapParams {
                    src_mac: MacAddr::from_index(1),
                    dst_mac: MacAddr::from_index(2),
                    src_ip: CLIENT_HOST_IP,
                    dst_ip: SERVER_HOST_IP,
                    src_port: 49152 + (inner_hash % 16384) as u16,
                    vni: OVERLAY_VNI,
                },
            )
        } else {
            inner
        };
        let mut skb = SkBuff::new(PacketId(0), data);
        skb.flow_id = flow_id.0 as u64;
        skb.flow_seq = flow.alloc_seq();
        skb.tcp_seg = seg;
        skb.psh = push;
        skb.sent_at = sent_at;
        skb.payload_len = bytes;
        skb.msg_id = msg_id;
        if count_as_sent {
            let stats = self.counters.flow_mut(flow_id.0 as u64);
            stats.sent_msgs += 1;
            stats.sent_bytes += bytes as u64;
        }
        skb
    }
}

/// Runs `f` with the application and an API over the rest of the world.
pub fn with_app(
    sim: &mut Sim,
    eng: &mut Engine<Sim>,
    f: impl FnOnce(&mut dyn App, &mut SimApi<'_>),
) {
    let mut app = sim.app.take().expect("re-entrant app callback");
    {
        let mut api = SimApi {
            inner: &mut sim.inner,
            eng,
        };
        f(app.as_mut(), &mut api);
    }
    sim.app = Some(app);
}

/// Periodic timer tick: samples load, informs the steering policy.
fn timer_tick(sim: &mut Sim, eng: &mut Engine<Sim>) {
    let now = eng.now();
    let m = &mut sim.inner.machine;
    m.load.sample(now, &m.cores.ledger);
    m.steering.on_load_sample(&m.load);
    m.cores.irqs.count(0, IrqKind::Timer);
    if sim.inner.tracer.is_enabled() {
        let events = sim.inner.machine.steering.take_trace();
        for kind in events {
            sim.inner.tracer.emit(now.as_nanos(), kind);
        }
    }
    let period = sim.inner.machine.cfg.load_sample_every;
    eng.schedule_after(period, timer_tick);
}

/// Puts `frames` on the wire from sender `thread`, no earlier than the
/// thread's availability, charging it `cost` total. Returns the send
/// instant.
pub fn client_transmit(
    sim: &mut SimInner,
    eng: &mut Engine<Sim>,
    thread: usize,
    cost: SimDuration,
    frames: Vec<SkBuff>,
) -> SimTime {
    let now = eng.now();
    let send_at = sim.client.reserve_thread(thread, now, cost);
    for mut skb in frames {
        skb.id = sim.alloc_pkt_id();
        skb.sent_at = if skb.sent_at == SimTime::ZERO {
            send_at
        } else {
            skb.sent_at
        };
        let wire_bytes = skb.wire_bytes();
        let arrival = sim
            .wire
            .transmit(falcon_netdev::wire::Dir::AtoB, send_at, wire_bytes);
        sim.counters.frames_sent += 1;
        eng.schedule_at(arrival, move |s: &mut Sim, e: &mut Engine<Sim>| {
            rxpath::frame_arrival(s, e, skb);
        });
    }
    send_at
}

/// One open-loop UDP stress send plus rescheduling per its pacing.
fn udp_stress_tick(sim: &mut Sim, eng: &mut Engine<Sim>, flow_id: FlowId, thread: usize) {
    let (payload, pacing, active) = {
        let flow = sim.inner.client.flow(flow_id);
        match &flow.kind {
            FlowKind::Udp {
                payload,
                stress: Some(s),
            } => (*payload, s.pacing, s.active),
            _ => return,
        }
    };
    if !active {
        return;
    }
    let now = eng.now();
    let msg_id = 0; // Stress datagrams are not RTT-correlated.
    let frames = sim.inner.build_udp_frames(flow_id, payload, msg_id, now);
    let n_frags = frames.len() as u64;
    let cost =
        sim.inner.cfg.client_tx_cost + SimDuration::from_nanos(300) * n_frags.saturating_sub(1);
    let sent_at = client_transmit(&mut sim.inner, eng, thread, cost, frames);
    // Schedule the next send per the pacing discipline.
    let next = match pacing {
        Pacing::MaxRate => sim.inner.client.threads[thread],
        Pacing::FixedPps(pps) => sent_at + SimDuration::from_secs_f64(1.0 / pps),
        Pacing::PoissonPps(pps) => {
            let gap = sim.inner.rng.exponential(1.0 / pps);
            sent_at + SimDuration::from_secs_f64(gap)
        }
    };
    eng.schedule_at(next, move |s: &mut Sim, e: &mut Engine<Sim>| {
        udp_stress_tick(s, e, flow_id, thread);
    });
}

/// Sends as much TCP data as the window allows.
pub fn tcp_pump(sim: &mut SimInner, eng: &mut Engine<Sim>, flow_id: FlowId) {
    loop {
        let flow = &mut sim.client.flows[flow_id.0 as usize];
        let FlowKind::Tcp(ref mut t) = flow.kind else {
            return;
        };
        if !t.can_send() {
            break;
        }
        let (msg_id, bytes, push) = if let Some((id, b)) = t.pending_msgs.pop_front() {
            (id, b, true)
        } else if let Some(msg) = t.stream_msg_size {
            // Stream mode: endless supply, segmented at the MSS with a
            // PSH on each message's final segment (GRO flush point).
            let remaining = msg - t.stream_msg_progress;
            let bytes = remaining.min(t.mss);
            t.stream_msg_progress = (t.stream_msg_progress + bytes) % msg;
            (0, bytes, t.stream_msg_progress == 0)
        } else {
            break;
        };
        let seg = t.next_seg;
        t.next_seg += 1;
        t.inflight += 1;
        t.seg_msgs.insert(seg, (msg_id, bytes));
        let thread = flow.thread;
        let skb = sim.build_tcp_segment(flow_id, seg, bytes, msg_id, push, eng.now(), true);
        let cost = sim.cfg.client_tx_tcp_seg;
        client_transmit(sim, eng, thread, cost, vec![skb]);
    }
    arm_rto(sim, eng, flow_id);
}

/// Arms the retransmission timer if data is in flight.
fn arm_rto(sim: &mut SimInner, eng: &mut Engine<Sim>, flow_id: FlowId) {
    let flow = &sim.client.flows[flow_id.0 as usize];
    let FlowKind::Tcp(ref t) = flow.kind else {
        return;
    };
    if t.inflight == 0 {
        return;
    }
    let gen = t.rto_gen;
    let rto = t.rto;
    eng.schedule_after(rto, move |s: &mut Sim, e: &mut Engine<Sim>| {
        rto_fire(s, e, flow_id, gen);
    });
}

/// Retransmission timeout: window decrease + go-back-N resend.
fn rto_fire(sim: &mut Sim, eng: &mut Engine<Sim>, flow_id: FlowId, gen: u64) {
    let inner = &mut sim.inner;
    let resend: Vec<(u64, u64, usize)> = {
        let flow = &mut inner.client.flows[flow_id.0 as usize];
        let FlowKind::Tcp(ref mut t) = flow.kind else {
            return;
        };
        if t.rto_gen != gen || t.inflight == 0 {
            return;
        }
        let range = t.on_timeout();
        let mss = t.mss;
        let stream = t.stream_msg_size;
        range
            .map(|seg| {
                let (msg_id, bytes) = t
                    .seg_msgs
                    .get(&seg)
                    .copied()
                    .unwrap_or((0, stream.map(|m| m.min(mss)).unwrap_or(mss)));
                (seg, msg_id, bytes)
            })
            .collect()
    };
    inner.counters.retransmits += resend.len() as u64;
    for (seg, msg_id, bytes) in resend {
        let thread = inner.client.flows[flow_id.0 as usize].thread;
        let push = msg_id != 0;
        let skb = inner.build_tcp_segment(flow_id, seg, bytes, msg_id, push, eng.now(), false);
        let cost = inner.cfg.client_tx_tcp_seg;
        client_transmit(inner, eng, thread, cost, vec![skb]);
    }
    arm_rto(inner, eng, flow_id);
}

/// Client-side ack processing.
pub fn client_on_ack(sim: &mut Sim, eng: &mut Engine<Sim>, flow_id: FlowId, upto: u64) {
    let newly = {
        let flow = &mut sim.inner.client.flows[flow_id.0 as usize];
        let FlowKind::Tcp(ref mut t) = flow.kind else {
            return;
        };
        t.on_ack(upto)
    };
    let flow_stats = sim.inner.counters.flow_mut(flow_id.0 as u64);
    flow_stats.responses += newly;
    if newly > 0 {
        tcp_pump(&mut sim.inner, eng, flow_id);
    }
}

/// Client-side response processing: record RTT and call the app.
pub fn client_on_response(
    sim: &mut Sim,
    eng: &mut Engine<Sim>,
    flow_id: FlowId,
    msg_id: u64,
    bytes: usize,
) {
    let now = eng.now();
    sim.inner.counters.flow_mut(flow_id.0 as u64).responses += 1;
    let sent_at = sim.inner.client.msg_send_times.remove(&msg_id);
    if let Some(t0) = sent_at {
        if now >= sim.inner.measure_from {
            sim.inner
                .counters
                .rtt
                .record(now.saturating_since(t0).as_nanos());
        }
    }
    let meta = MsgMeta {
        flow: flow_id,
        bytes,
        msg_id,
        sent_at: sent_at.unwrap_or(SimTime::ZERO),
        segments: 1,
    };
    with_app(sim, eng, |app, api| app.on_client_msg(api, flow_id, &meta));
}

impl<'a> SimApi<'a> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.eng.now()
    }

    /// The deterministic RNG.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.inner.rng
    }

    /// Attaches a server container with private IP `10.0.a.b`.
    pub fn add_container(&mut self, a: u8, b: u8) -> usize {
        self.inner
            .machine
            .add_container(Ipv4Addr4::new(10, 0, a, b))
    }

    /// Binds a server UDP socket. `container = None` means the host
    /// network namespace.
    pub fn bind_udp(
        &mut self,
        container: Option<usize>,
        port: u16,
        app_core: usize,
        app_service_ns: u64,
    ) -> SockId {
        let addr = match container {
            Some(c) => self.inner.machine.containers[c].addr,
            None => SERVER_HOST_IP,
        };
        self.inner
            .machine
            .sockets
            .bind(17, addr.0, port, app_core, app_service_ns)
    }

    /// Binds a server TCP socket.
    pub fn bind_tcp(
        &mut self,
        container: Option<usize>,
        port: u16,
        app_core: usize,
        app_service_ns: u64,
    ) -> SockId {
        let addr = match container {
            Some(c) => self.inner.machine.containers[c].addr,
            None => SERVER_HOST_IP,
        };
        self.inner
            .machine
            .sockets
            .bind(6, addr.0, port, app_core, app_service_ns)
    }

    /// Opens a UDP flow towards a server socket. Returns its id.
    pub fn udp_flow(
        &mut self,
        dst_container: Option<usize>,
        dst_port: u16,
        payload: usize,
    ) -> FlowId {
        self.open_flow(17, dst_container, dst_port, FlowKindSpec::Udp { payload })
    }

    /// Opens a TCP flow with the given window (in segments).
    pub fn tcp_flow(&mut self, dst_container: Option<usize>, dst_port: u16, window: u32) -> FlowId {
        self.open_flow(6, dst_container, dst_port, FlowKindSpec::Tcp { window })
    }

    fn open_flow(
        &mut self,
        proto: u8,
        dst_container: Option<usize>,
        dst_port: u16,
        spec: FlowKindSpec,
    ) -> FlowId {
        let id = FlowId(self.inner.client.flows.len() as u32);
        let src_ip = match self.inner.cfg.server.mode {
            NetMode::Overlay => self.inner.alloc_client_ip(),
            NetMode::Host => CLIENT_HOST_IP,
        };
        let (dst_ip, dst_mac) = match dst_container {
            Some(c) => {
                let cn = &self.inner.machine.containers[c];
                (cn.addr, cn.mac)
            }
            None => (SERVER_HOST_IP, self.inner.server_nic_mac()),
        };
        let src_port = 40_000 + id.0 as u16;
        let keys = if proto == 17 {
            FlowKeys::udp(src_ip.0, src_port, dst_ip.0, dst_port)
        } else {
            FlowKeys::tcp(src_ip.0, src_port, dst_ip.0, dst_port)
        };
        let thread = self.inner.client.new_thread();
        let mss = self.inner.cfg.server.mss();
        let (kind, gro_ok) = match spec {
            FlowKindSpec::Udp { payload } => (
                FlowKind::Udp {
                    payload,
                    stress: None,
                },
                false,
            ),
            FlowKindSpec::Tcp { window } => (FlowKind::Tcp(TcpState::new(window, mss)), true),
        };
        self.inner.client.flows.push(ClientFlow {
            id,
            keys,
            dst_container,
            dst_mac,
            src_mac: MacAddr::from_index(0x900 + id.0 as u64),
            thread,
            next_flow_seq: 0,
            next_datagram: 0,
            gro_ok,
            kind,
        });
        id
    }

    /// Starts `senders` open-loop sender threads on a UDP flow.
    pub fn udp_stress(&mut self, flow: FlowId, senders: usize, pacing: Pacing) {
        let mut threads = vec![self.inner.client.flow(flow).thread];
        for _ in 1..senders {
            threads.push(self.inner.client.new_thread());
        }
        {
            let f = self.inner.client.flow_mut(flow);
            let FlowKind::Udp { ref mut stress, .. } = f.kind else {
                panic!("udp_stress on a non-UDP flow");
            };
            *stress = Some(StressState {
                pacing,
                senders: threads.clone(),
                active: true,
            });
        }
        // Stagger the senders a little so they do not tick in lockstep.
        for (i, t) in threads.into_iter().enumerate() {
            let delay = SimDuration::from_nanos(137 * i as u64);
            self.eng
                .schedule_after(delay, move |s: &mut Sim, e: &mut Engine<Sim>| {
                    udp_stress_tick(s, e, flow, t);
                });
        }
    }

    /// Stops a flow's stress senders.
    pub fn udp_stop(&mut self, flow: FlowId) {
        if let FlowKind::Udp {
            stress: Some(ref mut s),
            ..
        } = self.inner.client.flow_mut(flow).kind
        {
            s.active = false;
        }
    }

    /// Changes the pacing of a running stress flow (the adaptability
    /// test's sudden intensity change).
    pub fn udp_set_pacing(&mut self, flow: FlowId, pacing: Pacing) {
        if let FlowKind::Udp {
            stress: Some(ref mut s),
            ..
        } = self.inner.client.flow_mut(flow).kind
        {
            s.pacing = pacing;
        }
    }

    /// Sends one UDP datagram now; returns the correlation id.
    pub fn udp_send(&mut self, flow: FlowId, payload: usize) -> u64 {
        let now = self.eng.now();
        let msg_id = self.inner.client.new_msg(now);
        let frames = self.inner.build_udp_frames(flow, payload, msg_id, now);
        let n = frames.len() as u64;
        let cost =
            self.inner.cfg.client_tx_cost + SimDuration::from_nanos(300) * n.saturating_sub(1);
        let thread = self.inner.client.flow(flow).thread;
        client_transmit(self.inner, self.eng, thread, cost, frames);
        msg_id
    }

    /// Starts a continuous TCP stream of `msg_size`-byte messages.
    pub fn tcp_stream(&mut self, flow: FlowId, msg_size: usize) {
        {
            let f = self.inner.client.flow_mut(flow);
            let FlowKind::Tcp(ref mut t) = f.kind else {
                panic!("tcp_stream on a non-TCP flow");
            };
            t.stream_msg_size = Some(msg_size);
        }
        tcp_pump(self.inner, self.eng, flow);
    }

    /// Queues a (single-segment) TCP request; returns its id.
    pub fn tcp_request(&mut self, flow: FlowId, bytes: usize) -> u64 {
        let now = self.eng.now();
        let msg_id = self.inner.client.new_msg(now);
        {
            let f = self.inner.client.flow_mut(flow);
            // Requests carry PSH, which flushes GRO: do not coalesce
            // them (merging would collapse distinct requests into one
            // delivery and lose their correlation ids).
            f.gro_ok = false;
            let FlowKind::Tcp(ref mut t) = f.kind else {
                panic!("tcp_request on a non-TCP flow");
            };
            assert!(bytes <= t.mss, "requests must fit one segment");
            t.pending_msgs.push_back((msg_id, bytes));
        }
        tcp_pump(self.inner, self.eng, flow);
        msg_id
    }

    /// Server app: send a response of `bytes` back to the client of
    /// `meta`'s flow. Charged to the socket's app core.
    pub fn respond(&mut self, sock: SockId, meta: &MsgMeta, bytes: usize) {
        self.respond_with_service(sock, meta, bytes, 0);
    }

    /// Like [`SimApi::respond`], charging `service_ns` of request
    /// handling work on the app core before the send (per-request work
    /// that differs across requests, e.g. per-operation page rendering).
    pub fn respond_with_service(
        &mut self,
        sock: SockId,
        meta: &MsgMeta,
        bytes: usize,
        service_ns: u64,
    ) {
        let app_core = self.inner.machine.sockets.get(sock).app_core;
        self.inner.machine.task_q[app_core].push_back(TaskWork::ServerSend {
            flow: meta.flow.0 as u64,
            bytes,
            msg_id: meta.msg_id,
            service_ns,
        });
        rxpath::kick(self.inner, self.eng, app_core);
    }

    /// Schedules [`App::on_timer`] with `token` after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.eng
            .schedule_after(delay, move |s: &mut Sim, e: &mut Engine<Sim>| {
                with_app(s, e, |app, api| app.on_timer(api, token));
            });
    }
}

enum FlowKindSpec {
    Udp { payload: usize },
    Tcp { window: u32 },
}

/// Owns the engine and the world; the harness entry point.
pub struct SimRunner {
    /// The event engine.
    pub engine: Engine<Sim>,
    /// The world.
    pub sim: Sim,
}

impl SimRunner {
    /// Builds a simulation and schedules its initialization (timer tick
    /// plus the app's `on_start`).
    pub fn new(cfg: SimConfig, steering: Box<dyn Steering>, app: Box<dyn App>) -> Self {
        let inner = SimInner::new(cfg, steering);
        let sim = Sim {
            inner,
            app: Some(app),
        };
        let mut engine = Engine::new();
        engine.schedule_now(|s: &mut Sim, e: &mut Engine<Sim>| {
            timer_tick(s, e);
            with_app(s, e, |app, api| app.on_start(api));
        });
        SimRunner { engine, sim }
    }

    /// Runs for `d` of simulated time.
    pub fn run_for(&mut self, d: SimDuration) {
        let deadline = self.engine.now() + d;
        self.engine.run_until(&mut self.sim, deadline);
    }

    /// Marks the start of the measurement window: latency and RTT
    /// samples recorded before this call are already in; subsequent
    /// analysis should snapshot counters here and diff at the end.
    pub fn begin_measurement(&mut self) {
        self.sim.inner.measure_from = self.engine.now();
    }

    /// The run counters.
    pub fn counters(&self) -> &SimCounters {
        &self.sim.inner.counters
    }

    /// The server machine.
    pub fn machine(&self) -> &Machine {
        &self.sim.inner.machine
    }

    /// Arms the tracepoint layer with a bounded ring of `capacity`
    /// events and tells the steering policy to record its decisions.
    /// Call before [`SimRunner::run_for`]; tracing adds one branch per
    /// tracepoint when armed and nothing otherwise.
    pub fn enable_tracing(&mut self, capacity: usize) {
        self.sim.inner.tracer = falcon_trace::Tracer::new(capacity);
        self.sim.inner.machine.steering.set_tracing(true);
    }

    /// The tracepoint sink (inert unless
    /// [`SimRunner::enable_tracing`] was called).
    pub fn tracer(&self) -> &falcon_trace::Tracer {
        &self.sim.inner.tracer
    }

    /// Device-name and core-count context for trace exporters.
    pub fn trace_meta(&self) -> falcon_trace::TraceMeta {
        let m = self.machine();
        falcon_trace::TraceMeta {
            n_cores: m.cores.n(),
            devices: m
                .devices
                .iter()
                .map(|d| (d.ifindex, d.name.clone()))
                .collect(),
        }
    }
}

//! Trace-stream invariants.
//!
//! A correct trace must *conserve packets*: every queue enqueue is
//! eventually matched by exactly one consume (a stage execution or a
//! GRO absorption), drops are enqueue-rejections that never produce an
//! enqueue event, and at any instant a packet sits in at most one
//! queue. Additionally, per-(flow, checkpoint) stage executions must
//! observe strictly increasing sequence numbers, and the per-packet
//! (checkpoint, cpu) hop digest reconstructed from `StageExec` events
//! must equal the digest the netstack computed from the skb's own hop
//! log at delivery. The property tests drive [`check_stream`] across
//! steering policies and seeds.

use crate::{hop_hash, Event, EventKind, DELIVERY_CHECK};
use std::collections::BTreeMap;

/// Outcome of validating an event stream.
#[derive(Debug, Clone, Default)]
pub struct ConservationReport {
    /// Total queue-enqueue events (ring + backlog + gro_cell).
    pub enqueues: u64,
    /// Total queue-consume events (non-delivery stage execs + GRO and
    /// fragment absorptions).
    pub consumes: u64,
    /// Total drop events.
    pub drops: u64,
    /// Total delivery events.
    pub delivered: u64,
    /// Packets whose enqueue/consume balance is not 0 or 1 at stream
    /// end (0 = fully consumed, 1 = still sitting in one queue).
    pub unmatched: Vec<u64>,
    /// Delivered packets whose reconstructed hop digest disagrees with
    /// the skb hop log digest embedded in the `Deliver` event.
    pub hop_mismatches: Vec<u64>,
    /// (flow, checkpoint) pairs that saw a non-increasing sequence.
    pub order_violations: Vec<(u64, u32)>,
}

impl ConservationReport {
    /// Whether every invariant held.
    pub fn ok(&self) -> bool {
        self.unmatched.is_empty()
            && self.hop_mismatches.is_empty()
            && self.order_violations.is_empty()
    }
}

#[derive(Default)]
struct PktState {
    enq: i64,
    cons: i64,
    /// (checkpoint, cpu) hops seen via StageExec, in stream order.
    hops: Vec<(u32, usize)>,
}

/// Validates conservation, ordering, and hop-digest agreement over a
/// chronological event stream. The stream must be complete (no ring
/// overflow) for the verdict to be meaningful.
pub fn check_stream(events: &[Event]) -> ConservationReport {
    let mut report = ConservationReport::default();
    let mut pkts: BTreeMap<u64, PktState> = BTreeMap::new();
    // (flow, checkpoint) → last sequence seen.
    let mut last_seq: BTreeMap<(u64, u32), u64> = BTreeMap::new();
    // (pkt, declared digest, declared hop count) at delivery.
    let mut deliveries: Vec<(u64, u64, u32)> = Vec::new();

    for ev in events {
        match ev.kind {
            EventKind::RingEnqueue { pkt, .. }
            | EventKind::BacklogEnqueue { pkt, .. }
            | EventKind::GroCellEnqueue { pkt, .. } => {
                report.enqueues += 1;
                pkts.entry(pkt).or_default().enq += 1;
            }
            EventKind::QueueDrop { .. } => {
                report.drops += 1;
            }
            EventKind::StageExec {
                checkpoint,
                cpu,
                pkt,
                flow,
                seq,
                ..
            } => {
                let st = pkts.entry(pkt).or_default();
                st.hops.push((checkpoint, cpu));
                if checkpoint != DELIVERY_CHECK {
                    report.consumes += 1;
                    st.cons += 1;
                }
                let key = (flow, checkpoint);
                if let Some(&prev) = last_seq.get(&key) {
                    if seq <= prev && !report.order_violations.contains(&key) {
                        report.order_violations.push(key);
                    }
                }
                last_seq.insert(key, seq);
            }
            EventKind::GroMerge { absorbed, .. } => {
                report.consumes += 1;
                pkts.entry(absorbed).or_default().cons += 1;
            }
            EventKind::FragAbsorbed { .. } => {
                // The absorbing stage-D StageExec already consumed the
                // fragment's backlog slot; this only marks that the
                // packet id ends here.
            }
            EventKind::Deliver {
                pkt,
                hops,
                hop_hash: declared,
                ..
            } => {
                report.delivered += 1;
                deliveries.push((pkt, declared, hops));
            }
            _ => {}
        }
    }

    for (pkt, st) in &pkts {
        let balance = st.enq - st.cons;
        if balance != 0 && balance != 1 {
            report.unmatched.push(*pkt);
        }
    }

    for (pkt, declared, hops) in deliveries {
        let st = pkts.get(&pkt);
        let observed = st.map(|s| s.hops.as_slice()).unwrap_or(&[]);
        if observed.len() as u32 != hops || hop_hash(observed.iter().copied()) != declared {
            report.hop_mismatches.push(pkt);
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Context, DropReason};

    fn enq(at: u64, pkt: u64) -> Event {
        Event {
            at_ns: at,
            kind: EventKind::BacklogEnqueue {
                cpu: 0,
                pkt,
                flow: 1,
                qlen: 1,
            },
        }
    }

    fn stage(at: u64, cp: u32, cpu: usize, pkt: u64, seq: u64) -> Event {
        Event {
            at_ns: at,
            kind: EventKind::StageExec {
                checkpoint: cp,
                cpu,
                ctx: Context::SoftIrq,
                pkt,
                flow: 1,
                seq,
                queued_ns: 0,
                service_ns: 10,
            },
        }
    }

    fn deliver(at: u64, pkt: u64, hops: &[(u32, usize)]) -> Event {
        Event {
            at_ns: at,
            kind: EventKind::Deliver {
                cpu: 5,
                pkt,
                flow: 1,
                latency_ns: at,
                hops: hops.len() as u32,
                hop_hash: hop_hash(hops.iter().copied()),
            },
        }
    }

    #[test]
    fn balanced_stream_passes() {
        let hops = [(1u32, 0usize), (DELIVERY_CHECK, 5)];
        let events = vec![
            enq(0, 7),
            stage(10, 1, 0, 7, 1),
            stage(20, DELIVERY_CHECK, 5, 7, 1),
            deliver(25, 7, &hops),
        ];
        let r = check_stream(&events);
        assert!(r.ok(), "{r:?}");
        assert_eq!(r.enqueues, 1);
        assert_eq!(r.consumes, 1);
        assert_eq!(r.delivered, 1);
    }

    #[test]
    fn packet_waiting_in_queue_is_fine() {
        let r = check_stream(&[enq(0, 7)]);
        assert!(r.ok(), "in-flight packets are balance 1");
    }

    #[test]
    fn double_consume_is_flagged() {
        let events = vec![enq(0, 7), stage(10, 1, 0, 7, 1), stage(20, 1, 0, 7, 2)];
        let r = check_stream(&events);
        assert_eq!(r.unmatched, vec![7]);
        assert!(!r.ok());
    }

    #[test]
    fn gro_merge_consumes_absorbed() {
        let events = vec![
            enq(0, 7),
            enq(1, 8),
            Event {
                at_ns: 5,
                kind: EventKind::GroMerge {
                    checkpoint: 1,
                    cpu: 0,
                    absorbed: 8,
                    into: 7,
                    flow: 1,
                },
            },
            stage(10, 1, 0, 7, 2),
        ];
        let r = check_stream(&events);
        assert!(r.ok(), "{r:?}");
        assert_eq!(r.consumes, 2);
    }

    #[test]
    fn drops_do_not_unbalance() {
        let events = vec![Event {
            at_ns: 0,
            kind: EventKind::QueueDrop {
                reason: DropReason::Ring,
                cpu: 0,
                pkt: 9,
                flow: 1,
            },
        }];
        let r = check_stream(&events);
        assert!(r.ok());
        assert_eq!(r.drops, 1);
    }

    #[test]
    fn seq_regression_is_flagged() {
        let events = vec![
            enq(0, 7),
            enq(1, 8),
            stage(10, 1, 0, 7, 5),
            stage(20, 1, 0, 8, 4),
        ];
        let r = check_stream(&events);
        assert_eq!(r.order_violations, vec![(1, 1)]);
    }

    #[test]
    fn hop_digest_mismatch_is_flagged() {
        let wrong = [(2u32, 3usize)];
        let events = vec![enq(0, 7), stage(10, 1, 0, 7, 1), deliver(25, 7, &wrong)];
        let r = check_stream(&events);
        assert_eq!(r.hop_mismatches, vec![7]);
    }
}

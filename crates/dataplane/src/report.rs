//! Machine-readable run reports: what `BENCH_dataplane.json` contains.
//!
//! A [`DataplaneReport`] condenses one [`RunOutput`] into the numbers
//! the paper's evaluation cares about — throughput, one-way latency
//! distribution, per-stage/per-worker occupancy, steering behavior, and
//! the ordering audit. [`DataplaneComparison`] pairs a vanilla and a
//! Falcon run of the same scenario, which is the headline artifact: the
//! wall-clock speedup of pipelining the same modeled work across cores.

use std::collections::BTreeMap;

use falcon_conntrack::ConnSummary;
use falcon_telemetry::{RunMeta, StallBreakdown};
use serde::Serialize;

use crate::executor::{run_meta, RunOutput, Scenario};

/// Summary statistics over one-way delivery latencies.
#[derive(Debug, Clone, Serialize)]
pub struct LatencySummary {
    /// Arithmetic mean, ns.
    pub mean_ns: u64,
    /// Median, ns.
    pub p50_ns: u64,
    /// 99th percentile, ns.
    pub p99_ns: u64,
    /// Worst observed, ns.
    pub max_ns: u64,
}

impl LatencySummary {
    /// Computes the summary; all zeros when nothing was delivered.
    pub fn from_samples(samples: &mut [u64]) -> Self {
        if samples.is_empty() {
            return LatencySummary {
                mean_ns: 0,
                p50_ns: 0,
                p99_ns: 0,
                max_ns: 0,
            };
        }
        samples.sort_unstable();
        let sum: u128 = samples.iter().map(|&v| v as u128).sum();
        LatencySummary {
            mean_ns: (sum / samples.len() as u128) as u64,
            p50_ns: percentile(samples, 50.0),
            p99_ns: percentile(samples, 99.0),
            max_ns: *samples.last().expect("non-empty"),
        }
    }
}

/// Nearest-rank percentile over a sorted slice.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    debug_assert!(!sorted.is_empty());
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// One run, condensed for JSON output.
#[derive(Debug, Clone, Serialize)]
pub struct DataplaneReport {
    /// Steering policy ("vanilla" or "falcon").
    pub policy: String,
    /// Pipeline stages this run executed (4, or 5 with `split_gro`).
    /// Conservation checkers must use this — never a hardcoded 4 — to
    /// assert `executions == packets × stages` on fully-delivered runs.
    pub stages: usize,
    /// Whether the pNIC stage ran split into its alloc/GRO halves.
    pub split_gro: bool,
    /// Worker threads actually used.
    pub workers: usize,
    /// Logical cores on the host.
    pub host_cores: usize,
    /// Whether every worker's core pin succeeded.
    pub pinned: bool,
    /// Packets injected.
    pub injected: u64,
    /// Packets delivered end-to-end.
    pub delivered: u64,
    /// Packets dropped anywhere.
    pub dropped: u64,
    /// Drops keyed by reason label.
    pub drops_by_reason: BTreeMap<String, u64>,
    /// Wall-clock duration of the run, ns.
    pub wall_ns: u64,
    /// Delivered packets per second of wall time.
    pub throughput_pps: f64,
    /// One-way latency distribution.
    pub latency: LatencySummary,
    /// Modeled per-stage service cost, ns, keyed by stage label.
    pub stage_service_ns: BTreeMap<String, u64>,
    /// Stage executions keyed by stage label.
    pub processed_per_stage: BTreeMap<String, u64>,
    /// Stage executions per worker per stage (`[worker][stage]`) — the
    /// placement picture that shows the split halves landing on
    /// distinct cores.
    pub per_worker_stage_processed: Vec<Vec<u64>>,
    /// Total stage executions per worker (the load-spread picture).
    pub per_worker_processed: Vec<u64>,
    /// Busy-spun ns per worker.
    pub per_worker_busy_ns: Vec<u64>,
    /// Steering decisions taken at the B→C and C→D hops.
    pub steer_decisions: u64,
    /// Decisions that engaged the two-choice rehash.
    pub second_choices: u64,
    /// (flow, device) migrations the flow table allowed.
    pub migrations: u64,
    /// (flow, device) pairs tracked.
    pub flow_pairs: usize,
    /// Ordering-audit checks performed.
    pub order_checks: u64,
    /// Ordering-audit violations (must be 0).
    pub reorder_violations: u64,
    /// Whether the run carried real bytes through the stages.
    pub wire: bool,
    /// Wire mode: wire bytes the injector enqueued (headers +
    /// envelopes + payload; 0 outside wire mode).
    pub bytes_in: u64,
    /// Wire mode: application payload bytes delivered to containers.
    pub bytes_out: u64,
    /// Wire mode: delivered-payload goodput, Gbit/s of wall time.
    pub goodput_gbps: f64,
    /// Wire mode: segments the chaos corruptor bit-flipped.
    pub corrupted_segments: u64,
    /// Wire mode: malformed-frame drops keyed by the label of the
    /// stage whose verification caught them.
    pub malformed_per_stage: BTreeMap<String, u64>,
    /// Wire mode: bytes each stage touched, keyed by stage label
    /// (on-wire size until decap, inner-frame size after).
    pub bytes_per_stage: BTreeMap<String, u64>,
    /// Flow-verdict cache counters plus the derived hit rate, when the
    /// run consulted a cache (`None` on uncached runs).
    pub flow_cache: Option<FlowCacheReport>,
    /// The run's final conntrack table (per-worker SCR shards merged)
    /// plus the shard counters (`None` outside wire mode).
    pub conntrack: Option<ConntrackReport>,
    /// Slab buffer-pool counters, when the run built its frames in a
    /// pool (`None` outside wire mode).
    pub slab: Option<SlabReport>,
    /// Per-worker stall attribution: where each worker's wall-clock
    /// went (busy / push-stalled / pop-sweeping / guard-steering /
    /// idle), summing to that worker's `wall_ns` by construction.
    pub per_worker_stall: Vec<StallBreakdown>,
    /// Smallest per-worker stall coverage (attributed / wall); the
    /// conformance bar is ≥ 0.95, the construction gives 1.0.
    pub stall_coverage_min: f64,
    /// Live-telemetry summary, when the run sampled shards.
    pub telemetry: Option<TelemetrySummary>,
}

/// Slab buffer-pool counters for one wire run: the numbers the
/// zero-alloc claim rides on. `fallbacks` is the honesty counter — a
/// steady-state run sized correctly reports 0.
#[derive(Debug, Clone, Serialize)]
pub struct SlabReport {
    /// Segments leased from the pool freelists.
    pub leases: u64,
    /// Heap-fallback segments handed out because a class was dry.
    pub fallbacks: u64,
    /// Returned slots restored onto a freelist.
    pub recycles: u64,
    /// Ring pushes from consumers (shells + segments).
    pub returns: u64,
    /// Returns dropped because a ring was full (buffer freed instead).
    pub ring_drops: u64,
    /// Returns rejected by the generation check (must be 0).
    pub gen_errors: u64,
    /// Buffers the workers recycled at delivery/drop sites.
    pub worker_recycles: u64,
}

/// Bridge-stage conntrack state for one run: the merged table's
/// per-state summary plus the SCR shard counters summed across
/// workers.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ConntrackReport {
    /// Per-state entry counts and packet/byte totals of the final
    /// merged table.
    pub summary: ConnSummary,
    /// Observations absorbed by the workers' shards.
    pub updates: u64,
    /// Observations that moved a connection's state machine.
    pub transitions: u64,
    /// Compact state-delta records appended for the SCR merge.
    pub scr_delta_records: u64,
}

/// The SCR differential oracle recorded next to the replicate leg: the
/// replicated run's merged conntrack table must be *byte-identical* to
/// the serialized ground truth's, and the delivery multiset (flow, seq,
/// digest, sorted) must match exactly. This is the relaxed SCR
/// contract's pass/fail line — order may differ, state and data may
/// not.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ConntrackOracle {
    /// Merged-table equality (serialized ground truth vs replicated).
    pub tables_equal: bool,
    /// Sorted delivery-multiset equality.
    pub deliveries_equal: bool,
    /// Connections in the ground-truth table.
    pub entries: u64,
    /// Packets the ground-truth table absorbed.
    pub pkts: u64,
}

impl ConntrackOracle {
    /// Compares a serialized ground-truth run against a replicated run
    /// of the same scenario.
    pub fn new(ground: &RunOutput, replicated: &RunOutput) -> Self {
        let gt = ground.conntrack_table().unwrap_or_default();
        let rt = replicated.conntrack_table().unwrap_or_default();
        let mut gd = ground.deliveries();
        let mut rd = replicated.deliveries();
        gd.sort_unstable();
        rd.sort_unstable();
        ConntrackOracle {
            tables_equal: gt == rt,
            deliveries_equal: gd == rd,
            entries: gt.len() as u64,
            pkts: gt.summary().pkts,
        }
    }

    /// Whether both halves of the contract held.
    pub fn holds(&self) -> bool {
        self.tables_equal && self.deliveries_equal
    }
}

/// Flow-verdict cache counters for one run, summed across the workers'
/// private caches, with the derived hit rate.
#[derive(Debug, Clone, Serialize)]
pub struct FlowCacheReport {
    /// Consults that returned a fresh same-epoch verdict.
    pub hits: u64,
    /// Consults that took the verifying slow path (stale finds
    /// included — the caller pays the slow path either way).
    pub misses: u64,
    /// Entries replaced to make room for new flows.
    pub evictions: u64,
    /// Entries dropped because an FDB epoch bump outdated them.
    pub invalidations: u64,
    /// `hits / (hits + misses)`.
    pub hit_rate: f64,
}

/// The cached-vs-uncached differential recorded in `BENCH_wire.json`
/// when `--flow-cache` is on: the same Falcon wire scenario re-run with
/// per-worker flow-verdict caches, paired against the uncached Falcon
/// leg. The acceptance bar is `goodput_ratio >= 1.0` with
/// `hit_rate >= 0.9` on a steady-flow workload.
#[derive(Debug, Clone, Serialize)]
pub struct FlowCacheComparison {
    /// Entries per worker cache.
    pub entries: usize,
    /// The cached Falcon leg (the uncached leg is the comparison's
    /// `falcon` report).
    pub cached: DataplaneReport,
    /// Cached / uncached Falcon goodput (throughput ratio outside wire
    /// mode); 1.0 when the baseline is degenerate.
    pub goodput_ratio: f64,
    /// Hit rate of the cached leg.
    pub hit_rate: f64,
}

impl FlowCacheComparison {
    /// Pairs the cached leg against the uncached Falcon baseline.
    pub fn new(entries: usize, uncached: &DataplaneReport, cached: DataplaneReport) -> Self {
        let (num, den) = if uncached.wire && uncached.goodput_gbps > 0.0 {
            (cached.goodput_gbps, uncached.goodput_gbps)
        } else {
            (cached.throughput_pps, uncached.throughput_pps)
        };
        let hit_rate = cached.flow_cache.as_ref().map_or(0.0, |f| f.hit_rate);
        FlowCacheComparison {
            entries,
            cached,
            goodput_ratio: if den > 0.0 { num / den } else { 1.0 },
            hit_rate,
        }
    }
}

/// What the telemetry sampler did during one run, condensed for the
/// artifact (the full time series streams to `BENCH_telemetry.jsonl`).
#[derive(Debug, Clone, Serialize)]
pub struct TelemetrySummary {
    /// Sampling interval actually used, ms.
    pub interval_ms: u64,
    /// Snapshots taken (the last one post-quiescence).
    pub samples: u64,
    /// JSONL artifact path, if streaming was on.
    pub jsonl_path: Option<String>,
    /// Data lines written to the JSONL artifact.
    pub jsonl_lines: u64,
    /// First JSONL I/O error, if any.
    pub jsonl_error: Option<String>,
    /// Bound Prometheus exposition address, if serving was on.
    pub prom_addr: Option<String>,
    /// Scrapes the exposition listener answered.
    pub scrapes: u64,
    /// Largest depth-gauge staleness any worker observed (bounded by
    /// one NAPI budget; see `DepthGauge`).
    pub max_depth_staleness: u64,
}

/// The telemetry-overhead experiment recorded side-by-side in
/// `BENCH_wire.json`: the same Falcon wire scenario run with the
/// sampler off and on, so the artifact proves what observability
/// costs. The acceptance bar is `ratio ≥ 0.98` (≤ 2 % goodput loss at
/// the default interval).
#[derive(Debug, Clone, Serialize)]
pub struct TelemetryOverhead {
    /// Sampling interval of the telemetry-on run, ms.
    pub interval_ms: u64,
    /// Goodput with telemetry off, Gbit/s.
    pub goodput_off_gbps: f64,
    /// Goodput with telemetry on, Gbit/s.
    pub goodput_on_gbps: f64,
    /// Throughput with telemetry off, pps.
    pub throughput_off_pps: f64,
    /// Throughput with telemetry on, pps.
    pub throughput_on_pps: f64,
    /// `on / off` goodput ratio (pps ratio outside wire mode);
    /// 1.0 when the baseline is degenerate.
    pub ratio: f64,
}

impl TelemetryOverhead {
    /// Pairs a telemetry-off baseline with the telemetry-on run.
    pub fn new(off: &DataplaneReport, on: &DataplaneReport, interval_ms: u64) -> Self {
        let (num, den) = if off.wire && off.goodput_gbps > 0.0 {
            (on.goodput_gbps, off.goodput_gbps)
        } else {
            (on.throughput_pps, off.throughput_pps)
        };
        TelemetryOverhead {
            interval_ms,
            goodput_off_gbps: off.goodput_gbps,
            goodput_on_gbps: on.goodput_gbps,
            throughput_off_pps: off.throughput_pps,
            throughput_on_pps: on.throughput_pps,
            ratio: if den > 0.0 { num / den } else { 1.0 },
        }
    }
}

impl DataplaneReport {
    /// Condenses a finished run.
    pub fn from_run(out: &RunOutput) -> Self {
        let labels = out.stage_labels();
        let delivered = out.delivered();
        let dropped = out.dropped();
        let mut latencies: Vec<u64> = out
            .workers_stats
            .iter()
            .flat_map(|w| w.latencies.iter().copied())
            .collect();
        let per_stage = out.processed_per_stage();
        let (order_checks, reorder_violations) = out.order_audit();
        let throughput_pps = if out.wall_ns > 0 {
            delivered as f64 * 1e9 / out.wall_ns as f64
        } else {
            0.0
        };
        let bytes_out = out.bytes_delivered();
        let goodput_gbps = if out.wall_ns > 0 {
            bytes_out as f64 * 8.0 / out.wall_ns as f64
        } else {
            0.0
        };
        DataplaneReport {
            policy: out.policy.label().to_string(),
            stages: out.stages(),
            split_gro: out.split_gro,
            workers: out.workers,
            host_cores: out.host_cores,
            pinned: !out.workers_stats.is_empty() && out.workers_stats.iter().all(|w| w.pinned),
            injected: out.injected,
            delivered,
            dropped,
            drops_by_reason: falcon_trace::DropReason::ALL
                .iter()
                .zip(out.drops_by_reason().iter())
                .map(|(r, &n)| (r.label().to_string(), n))
                .collect(),
            wall_ns: out.wall_ns,
            throughput_pps,
            latency: LatencySummary::from_samples(&mut latencies),
            stage_service_ns: labels
                .iter()
                .zip(out.stage_ns.iter())
                .map(|(l, &ns)| (l.to_string(), ns))
                .collect(),
            processed_per_stage: labels
                .iter()
                .zip(per_stage.iter())
                .map(|(l, &n)| (l.to_string(), n))
                .collect(),
            per_worker_stage_processed: out
                .workers_stats
                .iter()
                .map(|w| w.processed.clone())
                .collect(),
            per_worker_processed: out
                .workers_stats
                .iter()
                .map(|w| w.processed.iter().sum())
                .collect(),
            per_worker_busy_ns: out.workers_stats.iter().map(|w| w.busy_ns).collect(),
            steer_decisions: out.workers_stats.iter().map(|w| w.decisions).sum(),
            second_choices: out.workers_stats.iter().map(|w| w.second_choices).sum(),
            migrations: out.workers_stats.iter().map(|w| w.migrations).sum(),
            flow_pairs: out.flow_pairs,
            order_checks,
            reorder_violations,
            wire: out.wire,
            bytes_in: out.bytes_injected,
            bytes_out,
            goodput_gbps,
            corrupted_segments: out.corrupted_segments,
            malformed_per_stage: labels
                .iter()
                .zip(out.malformed_per_stage().iter())
                .map(|(l, &n)| (l.to_string(), n))
                .collect(),
            bytes_per_stage: labels
                .iter()
                .zip(out.bytes_per_stage().iter())
                .map(|(l, &n)| (l.to_string(), n))
                .collect(),
            flow_cache: {
                let s = out.flow_cache_stats();
                let consults = s.hits + s.misses;
                (consults > 0).then(|| FlowCacheReport {
                    hits: s.hits,
                    misses: s.misses,
                    evictions: s.evictions,
                    invalidations: s.invalidations,
                    hit_rate: s.hits as f64 / consults as f64,
                })
            },
            conntrack: out.conntrack_table().map(|t| {
                let c = out.conntrack_counters();
                ConntrackReport {
                    summary: t.summary(),
                    updates: c.updates,
                    transitions: c.transitions,
                    scr_delta_records: c.delta_records,
                }
            }),
            slab: out.slab.as_ref().map(|s| SlabReport {
                leases: s.leases,
                fallbacks: s.fallbacks,
                recycles: s.recycles,
                returns: s.returns,
                ring_drops: s.ring_drops,
                gen_errors: s.gen_errors,
                worker_recycles: out.workers_stats.iter().map(|w| w.slab_recycles).sum(),
            }),
            per_worker_stall: out.workers_stats.iter().map(|w| w.stall.clone()).collect(),
            stall_coverage_min: out
                .workers_stats
                .iter()
                .map(|w| w.stall.coverage())
                .fold(1.0f64, f64::min),
            telemetry: out.telemetry.as_ref().map(|run| TelemetrySummary {
                interval_ms: run.interval_ms,
                samples: run.samples.len() as u64,
                jsonl_path: run.jsonl_path.clone(),
                jsonl_lines: run.jsonl_lines,
                jsonl_error: run.jsonl_error.clone(),
                prom_addr: run.prom_addr.clone(),
                scrapes: run.scrapes,
                max_depth_staleness: run
                    .samples
                    .last()
                    .map(|s| {
                        s.workers
                            .iter()
                            .map(|w| w.depth_staleness)
                            .max()
                            .unwrap_or(0)
                    })
                    .unwrap_or(0),
            }),
        }
    }
}

/// The headline artifact: vanilla vs Falcon on the same scenario.
#[derive(Debug, Clone, Serialize)]
pub struct DataplaneComparison {
    /// Provenance header shared by every BENCH artifact.
    pub meta: RunMeta,
    /// Logical cores on the host (speedups on <4 cores are not
    /// meaningful; consumers should gate on this).
    pub host_cores: usize,
    /// Workers used by both runs.
    pub workers: usize,
    /// Packets injected per run.
    pub packets: u64,
    /// Flows per run.
    pub flows: u64,
    /// Payload bytes per injected unit.
    pub payload: usize,
    /// Traffic shape label ("udp" or "tcp-gro(mss=…)").
    pub shape: String,
    /// Whether both runs split the pNIC stage (five-hop pipeline).
    pub split_gro: bool,
    /// The serialized baseline.
    pub vanilla: DataplaneReport,
    /// The pipelined contender.
    pub falcon: DataplaneReport,
    /// The SCR contender: per-flow round-robin spraying with
    /// replicated conntrack shards (`None` unless the comparison ran
    /// the third policy).
    pub replicate: Option<DataplaneReport>,
    /// `falcon.throughput_pps / vanilla.throughput_pps`.
    pub speedup: f64,
    /// `replicate.throughput_pps / vanilla.throughput_pps`, when the
    /// replicate leg ran.
    pub speedup_replicate: Option<f64>,
    /// The SCR differential oracle pairing the replicate leg against
    /// the vanilla ground truth, when the replicate leg ran in wire
    /// mode.
    pub conntrack_oracle: Option<ConntrackOracle>,
    /// The sampler-on vs sampler-off cost record, when the comparison
    /// ran the overhead experiment (wire + telemetry runs).
    pub telemetry_overhead: Option<TelemetryOverhead>,
    /// The cached-vs-uncached flow-verdict-cache differential, when the
    /// comparison was asked for one (`--flow-cache`).
    pub flow_cache: Option<FlowCacheComparison>,
}

impl DataplaneComparison {
    /// Pairs two condensed runs of `scenario` (one per policy).
    pub fn new(scenario: &Scenario, vanilla: DataplaneReport, falcon: DataplaneReport) -> Self {
        let speedup = if vanilla.throughput_pps > 0.0 {
            falcon.throughput_pps / vanilla.throughput_pps
        } else {
            0.0
        };
        let artifact = if falcon.wire { "wire" } else { "dataplane" };
        DataplaneComparison {
            meta: run_meta(artifact),
            host_cores: crate::affinity::available_cores(),
            workers: falcon.workers,
            packets: scenario.packets,
            flows: scenario.flows,
            payload: scenario.payload,
            shape: scenario.shape.label(),
            split_gro: scenario.split_gro,
            vanilla,
            falcon,
            replicate: None,
            speedup,
            speedup_replicate: None,
            conntrack_oracle: None,
            telemetry_overhead: None,
            flow_cache: None,
        }
    }

    /// Attaches the SCR leg: the condensed replicate run, its speedup
    /// over vanilla, and (wire mode) the differential oracle.
    pub fn set_replicate(&mut self, report: DataplaneReport, oracle: Option<ConntrackOracle>) {
        self.speedup_replicate = (self.vanilla.throughput_pps > 0.0)
            .then(|| report.throughput_pps / self.vanilla.throughput_pps);
        self.replicate = Some(report);
        self.conntrack_oracle = oracle;
    }
}

/// One grid point of the multi-flow scaling sweep: the full
/// vanilla-vs-Falcon comparison at a given (flows, workers) setting.
#[derive(Debug, Clone, Serialize)]
pub struct SweepPoint {
    /// Distinct flows injected at this point.
    pub flows: u64,
    /// Worker threads used at this point.
    pub workers: usize,
    /// The per-point headline comparison.
    pub comparison: DataplaneComparison,
}

/// What `BENCH_sweep.json` contains: one [`SweepPoint`] per cell of the
/// (1..=flows × 1..=workers) grid, the paper's Figure-12 aggregate
/// scaling story measured on this host. Consumers should gate scaling
/// conclusions on `host_cores` the same way they do for
/// [`DataplaneComparison`].
#[derive(Debug, Clone, Serialize)]
pub struct SweepReport {
    /// Provenance header shared by every BENCH artifact.
    pub meta: RunMeta,
    /// Logical cores on the host.
    pub host_cores: usize,
    /// Whether every point ran the five-hop split pipeline.
    pub split_gro: bool,
    /// Traffic shape label shared by every point.
    pub shape: String,
    /// Packets injected per run (each point runs both policies).
    pub packets_per_point: u64,
    /// Largest flow count in the grid.
    pub max_flows: u64,
    /// Largest worker count in the grid.
    pub max_workers: usize,
    /// The grid, flows-major then workers.
    pub points: Vec<SweepPoint>,
}

impl SweepReport {
    /// Total ordering-audit violations across every point and both
    /// policies — the sweep's pass/fail line; must be zero.
    pub fn total_reorder_violations(&self) -> u64 {
        self.points
            .iter()
            .map(|p| {
                p.comparison.vanilla.reorder_violations
                    + p.comparison.falcon.reorder_violations
                    + p.comparison
                        .replicate
                        .as_ref()
                        .map_or(0, |r| r.reorder_violations)
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::run_scenario;
    use crate::steer::PolicyKind;

    fn tiny(policy: PolicyKind) -> Scenario {
        Scenario {
            policy,
            workers: 2,
            packets: 500,
            flows: 2,
            work_scale_milli: 20,
            pin: false,
            ..Scenario::default()
        }
    }

    #[test]
    fn latency_summary_percentiles() {
        let mut v: Vec<u64> = (1..=100).collect();
        let s = LatencySummary::from_samples(&mut v);
        assert_eq!(s.p50_ns, 50);
        assert_eq!(s.p99_ns, 99);
        assert_eq!(s.max_ns, 100);
        assert_eq!(s.mean_ns, 50);
        let mut empty: Vec<u64> = vec![];
        assert_eq!(LatencySummary::from_samples(&mut empty).max_ns, 0);
    }

    #[test]
    fn report_is_consistent_and_serializes() {
        let out = run_scenario(&tiny(PolicyKind::Falcon));
        let report = DataplaneReport::from_run(&out);
        assert_eq!(report.stages, 4);
        assert_eq!(report.delivered + report.dropped, report.injected);
        assert_eq!(report.reorder_violations, 0);
        assert_eq!(report.per_worker_processed.len(), report.workers);
        let total_drops: u64 = report.drops_by_reason.values().sum();
        assert_eq!(total_drops, report.dropped);
        let json = serde_json::to_string_pretty(&report).expect("serializes");
        assert!(json.contains("\"throughput_pps\""));
        assert!(json.contains("\"falcon\""));
    }

    #[test]
    fn split_report_records_five_stages() {
        let mut s = tiny(PolicyKind::Falcon);
        s.split_gro = true;
        s.shape = crate::executor::TrafficShape::TcpGro { mss: 1448 };
        s.payload = 4096;
        let out = run_scenario(&s);
        let report = DataplaneReport::from_run(&out);
        assert_eq!(report.stages, 5);
        assert!(report.split_gro);
        assert_eq!(report.stage_service_ns.len(), 5);
        assert_eq!(report.processed_per_stage.len(), 5);
        assert!(report.stage_service_ns.contains_key("pnic_alloc"));
        assert!(report.stage_service_ns.contains_key("pnic_gro"));
        // The matrix agrees with the per-stage totals — the
        // stages-aware conservation identity: on a drop-free run every
        // stage executes exactly `packets` times, so total executions
        // equal `packets × stages`.
        for (w, row) in report.per_worker_stage_processed.iter().enumerate() {
            assert_eq!(row.len(), report.stages);
            assert_eq!(
                row.iter().sum::<u64>(),
                report.per_worker_processed[w],
                "worker {w} matrix disagrees with its total"
            );
        }
        if report.dropped == 0 {
            let execs: u64 = report.processed_per_stage.values().sum();
            assert_eq!(execs, report.injected * report.stages as u64);
        }
    }

    #[test]
    fn comparison_computes_speedup() {
        let scenario = tiny(PolicyKind::Vanilla);
        let v = DataplaneReport::from_run(&run_scenario(&scenario));
        let f = DataplaneReport::from_run(&run_scenario(
            &scenario.clone().with_policy(PolicyKind::Falcon),
        ));
        let cmp = DataplaneComparison::new(&scenario, v, f);
        assert!(cmp.speedup > 0.0, "both runs delivered packets");
        let json = serde_json::to_string(&cmp).expect("serializes");
        assert!(json.contains("\"speedup\""));
    }
}

//! The per-function CPU cost model.
//!
//! Every kernel function the receive path executes is assigned a fixed
//! cost plus (where it matters) a per-byte component. The values are
//! calibration constants, chosen so that the *vanilla* data path
//! reproduces the magnitudes the paper measures on real hardware:
//!
//! * a native host receive of a small UDP packet costs ~2 µs of CPU
//!   spread over three cores (hardirq+driver poll, RPS-steered stack
//!   softirq, app-side copy), sustaining ~1.2 Mpps for one flow;
//! * the overlay path adds decapsulation plus two more device stages,
//!   roughly tripling the per-packet softirq cost serialized on a single
//!   core (paper §3.2: NET_RX ×3.6, one core pegged);
//! * for TCP at 4 KB messages, `skb_allocation` and `napi_gro_receive`
//!   each contribute ~45 % of the first stage's load (paper Figure 9a).
//!
//! Two kernel generations are provided, because the paper evaluates
//! both 4.19 and 5.4 and notes 5.4's `sk_buff` allocation changes
//! "achieve performance improvements as well as causing regressions":
//! [`CostModel::kernel_4_19`] and [`CostModel::kernel_5_4`] (cheaper
//! allocation, slightly costlier UDP receive).

use falcon_simcore::SimDuration;
use serde::{Deserialize, Serialize};

/// Which kernel generation's cost profile to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KernelVersion {
    /// Linux 4.19 (the paper's primary target).
    K419,
    /// Linux 5.4 (the port, with allocator changes).
    K54,
}

impl KernelVersion {
    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            KernelVersion::K419 => "4.19",
            KernelVersion::K54 => "5.4",
        }
    }
}

/// Nanosecond costs of the simulated kernel functions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostModel {
    /// `pNIC_interrupt`: the top-half IRQ handler.
    pub hardirq_ns: u64,
    /// `skb_allocation`: driver ring refill + skb metadata setup, per
    /// wire segment.
    pub skb_alloc_ns: u64,
    /// Extra allocation cost per byte (buffer zeroing/DMA sync).
    pub skb_alloc_per_byte: f64,
    /// `napi_gro_receive` per TCP segment (flow table walk + checksum).
    pub gro_receive_tcp_ns: u64,
    /// GRO per-byte cost on TCP segments (pull-up + checksum).
    pub gro_per_byte: f64,
    /// `napi_gro_receive` for non-coalescable traffic (UDP): the early
    /// "not GRO-able" exit.
    pub gro_receive_other_ns: u64,
    /// `netif_receive_skb` / `__netif_receive_skb_core` dispatch.
    pub netif_receive_ns: u64,
    /// `get_rps_cpu`: flow hash + table lookup.
    pub get_rps_cpu_ns: u64,
    /// `enqueue_to_backlog`: remote queue insert.
    pub enqueue_backlog_ns: u64,
    /// Cost charged on the *target* core for an inter-processor
    /// interrupt (backlog kick or rescheduling).
    pub ipi_cost_ns: u64,
    /// Latency before the IPI is seen by the target core.
    pub ipi_latency_ns: u64,
    /// `process_backlog` per-packet overhead.
    pub process_backlog_ns: u64,
    /// `ip_rcv` + routing for a non-fragment.
    pub ip_rcv_ns: u64,
    /// Per-fragment `ip_defrag` bookkeeping.
    pub ip_defrag_frag_ns: u64,
    /// `udp_rcv` lookup + socket charge.
    pub udp_rcv_ns: u64,
    /// `tcp_v4_rcv` fixed cost (state machine, sequence checks).
    pub tcp_rcv_ns: u64,
    /// `vxlan_rcv`: outer header strip + VNI lookup + inner dissect.
    pub vxlan_rcv_ns: u64,
    /// VXLAN per-byte touch cost.
    pub vxlan_per_byte: f64,
    /// `gro_cell_poll` per-packet overhead.
    pub gro_cell_poll_ns: u64,
    /// `br_handle_frame` + `br_forward`: FDB lookup + forward.
    pub bridge_ns: u64,
    /// `veth_xmit`: hand-off into the peer namespace.
    pub veth_xmit_ns: u64,
    /// `netif_rx` itself (stage transition function entry).
    pub netif_rx_ns: u64,
    /// `sock_queue_rcv_skb`: socket receive-queue insert + wakeup.
    pub sock_queue_ns: u64,
    /// `copy_to_user`, per byte (~17 GB/s single-core copy).
    pub copy_to_user_per_byte: f64,
    /// `sock_recvmsg` syscall fixed overhead.
    pub sock_recvmsg_ns: u64,
    /// Cache-miss penalty charged to a stage that runs on a different
    /// core than the packet's previous stage (Falcon's loss-of-locality
    /// overhead, paper §6.3).
    pub locality_penalty_ns: u64,
    /// Server-side `sendmsg` fixed cost (responses, acks).
    pub tx_sendmsg_ns: u64,
    /// Server-side transmit per-byte cost (copy from user).
    pub tx_per_byte: f64,
    /// VXLAN encapsulation on transmit.
    pub tx_encap_ns: u64,
    /// Driver + qdisc transmit cost.
    pub tx_driver_ns: u64,
    /// `tcp_send_ack` from softirq context.
    pub tcp_send_ack_ns: u64,
}

impl CostModel {
    /// The Linux 4.19 profile.
    pub fn kernel_4_19() -> Self {
        CostModel {
            hardirq_ns: 250,
            skb_alloc_ns: 360,
            skb_alloc_per_byte: 0.010,
            gro_receive_tcp_ns: 180,
            gro_per_byte: 0.15,
            gro_receive_other_ns: 40,
            netif_receive_ns: 150,
            get_rps_cpu_ns: 60,
            enqueue_backlog_ns: 90,
            ipi_cost_ns: 150,
            ipi_latency_ns: 600,
            process_backlog_ns: 120,
            ip_rcv_ns: 180,
            ip_defrag_frag_ns: 150,
            udp_rcv_ns: 260,
            tcp_rcv_ns: 500,
            vxlan_rcv_ns: 320,
            vxlan_per_byte: 0.02,
            gro_cell_poll_ns: 110,
            bridge_ns: 230,
            veth_xmit_ns: 160,
            netif_rx_ns: 70,
            sock_queue_ns: 100,
            copy_to_user_per_byte: 0.06,
            sock_recvmsg_ns: 500,
            locality_penalty_ns: 60,
            tx_sendmsg_ns: 450,
            tx_per_byte: 0.05,
            tx_encap_ns: 350,
            tx_driver_ns: 250,
            tcp_send_ack_ns: 250,
        }
    }

    /// The Linux 5.4 profile: cheaper `sk_buff` allocation (the paper's
    /// "major changes in sk_buff allocation"), slightly costlier UDP
    /// receive (the regression the paper alludes to).
    pub fn kernel_5_4() -> Self {
        CostModel {
            skb_alloc_ns: 300,
            skb_alloc_per_byte: 0.008,
            netif_receive_ns: 140,
            udp_rcv_ns: 300,
            ..Self::kernel_4_19()
        }
    }

    /// Profile for a kernel version.
    pub fn for_kernel(kernel: KernelVersion) -> Self {
        match kernel {
            KernelVersion::K419 => Self::kernel_4_19(),
            KernelVersion::K54 => Self::kernel_5_4(),
        }
    }

    /// Fixed + per-byte cost helper.
    pub fn with_bytes(fixed_ns: u64, per_byte: f64, bytes: usize) -> SimDuration {
        SimDuration::from_nanos(fixed_ns + (per_byte * bytes as f64) as u64)
    }

    /// Cost of `skb_allocation` for one wire segment of `bytes`.
    pub fn skb_alloc(&self, bytes: usize) -> SimDuration {
        Self::with_bytes(self.skb_alloc_ns, self.skb_alloc_per_byte, bytes)
    }

    /// Cost of `napi_gro_receive` for one segment.
    pub fn gro_receive(&self, is_tcp: bool, bytes: usize) -> SimDuration {
        if is_tcp {
            Self::with_bytes(self.gro_receive_tcp_ns, self.gro_per_byte, bytes)
        } else {
            SimDuration::from_nanos(self.gro_receive_other_ns)
        }
    }

    /// Cost of `vxlan_rcv` for one packet of `bytes`.
    pub fn vxlan_rcv(&self, bytes: usize) -> SimDuration {
        Self::with_bytes(self.vxlan_rcv_ns, self.vxlan_per_byte, bytes)
    }

    /// Cost of copying `bytes` to user space plus the recvmsg syscall.
    pub fn copy_to_user(&self, bytes: usize) -> SimDuration {
        Self::with_bytes(0, self.copy_to_user_per_byte, bytes)
    }

    /// Server-side transmit cost for a payload of `bytes` (fixed +
    /// copy), excluding encap and driver.
    pub fn tx_sendmsg(&self, bytes: usize) -> SimDuration {
        Self::with_bytes(self.tx_sendmsg_ns, self.tx_per_byte, bytes)
    }

    /// Service-time decomposition of the overlay UDP receive path into
    /// its four softirq stages, for a UDP payload of `payload` bytes.
    ///
    /// This is the stage extraction the real-thread dataplane executes:
    /// each entry is the summed cost of the kernel functions one stage
    /// runs, exactly as [`rxpath`](crate::rxpath) plans them for a
    /// non-GRO overlay packet:
    ///
    /// 0. pNIC driver poll (`mlx5e_napi_poll`): allocation, GRO
    ///    fast-exit, `netif_receive_skb`, backlog handoff;
    /// 1. outer stack (`process_backlog` on the pNIC backlog): IP/UDP
    ///    receive and VXLAN decapsulation, `netif_rx` into the cell;
    /// 2. VXLAN `gro_cell_poll`: bridge forward, veth crossing, backlog
    ///    handoff;
    /// 3. container stack: `process_backlog`, inner IP/UDP receive,
    ///    socket queueing.
    ///
    /// The cache-miss penalty a stage pays when it runs on a different
    /// core than its predecessor is *not* included — it is a property
    /// of the placement, not the stage; callers add
    /// [`locality_penalty_ns`](Self::locality_penalty_ns) per remote
    /// transition.
    pub fn overlay_udp_stage_ns(&self, payload: usize) -> [u64; 4] {
        // Outer frame: Ethernet(14) + IP(20) + UDP(8) + payload, inside
        // a 50-byte VXLAN envelope.
        let inner_frame = 14 + 20 + 8 + payload;
        let wire_frame = inner_frame + falcon_packet::VXLAN_OVERHEAD;
        let a = self.skb_alloc(wire_frame).as_nanos()
            + self.gro_receive(false, wire_frame).as_nanos()
            + self.netif_receive_ns
            + self.enqueue_backlog_ns;
        let b = self.process_backlog_ns
            + self.ip_rcv_ns
            + self.udp_rcv_ns
            + self.vxlan_rcv(wire_frame).as_nanos()
            + self.netif_rx_ns;
        let c = self.gro_cell_poll_ns
            + self.netif_receive_ns
            + self.bridge_ns
            + self.veth_xmit_ns
            + self.netif_rx_ns
            + self.enqueue_backlog_ns;
        let d = self.process_backlog_ns + self.ip_rcv_ns + self.udp_rcv_ns + self.sock_queue_ns;
        [a, b, c, d]
    }

    /// Labels for the four stages of
    /// [`overlay_udp_stage_ns`](Self::overlay_udp_stage_ns).
    pub const OVERLAY_STAGE_LABELS: [&'static str; 4] =
        ["pnic_poll", "outer_stack", "gro_cell", "container_stack"];

    /// Labels for the five stages of the `_split` shapes.
    pub const OVERLAY_STAGE_LABELS_SPLIT: [&'static str; 5] = [
        "pnic_alloc",
        "pnic_gro",
        "outer_stack",
        "gro_cell",
        "container_stack",
    ];

    /// Labels for the four stages of
    /// [`overlay_udp_stage_ns`](Self::overlay_udp_stage_ns).
    pub fn overlay_udp_stage_labels() -> [&'static str; 4] {
        Self::OVERLAY_STAGE_LABELS
    }

    /// The split shape of [`overlay_udp_stage_ns`](Self::overlay_udp_stage_ns):
    /// the pNIC stage decomposed into its `skb_allocation` and
    /// `napi_gro_receive` halves (paper §4.2, the Figure 9a split).
    ///
    /// The partition is exact — `split[0] + split[1]` equals the
    /// unsplit stage 0 cost, and the later stages are unchanged. The
    /// alloc half keeps `enqueue_to_backlog` (it ends by handing the
    /// skb to the GRO half's backlog); the GRO half keeps
    /// `netif_receive_skb` (GRO completion flows straight into stack
    /// dispatch). Splitting itself is free at the cost-model level: the
    /// price of the extra hop is the placement's
    /// [`locality_penalty_ns`](Self::locality_penalty_ns), charged by
    /// the executor like any other remote transition.
    pub fn overlay_udp_stage_ns_split(&self, payload: usize) -> [u64; 5] {
        let [a, b, c, d] = self.overlay_udp_stage_ns(payload);
        let wire_frame = 14 + 20 + 8 + payload + falcon_packet::VXLAN_OVERHEAD;
        let a1 = self.skb_alloc(wire_frame).as_nanos() + self.enqueue_backlog_ns;
        let a2 = a - a1;
        [a1, a2, b, c, d]
    }

    /// Per-segment `skb_allocation` and `napi_gro_receive` totals for a
    /// GRO-coalesced TCP message of `msg` bytes arriving as wire
    /// segments of at most `mss` payload bytes each.
    fn tcp_pnic_halves(&self, msg: usize, mss: usize) -> (u64, u64) {
        let msg = msg.max(1);
        let mss = mss.max(1);
        let mut alloc = 0u64;
        let mut gro = 0u64;
        let mut off = 0usize;
        while off < msg {
            let chunk = (msg - off).min(mss);
            // Ethernet(14) + IP(20) + TCP(20) per wire segment, inside
            // the VXLAN envelope.
            let wire_seg = 14 + 20 + 20 + chunk + falcon_packet::VXLAN_OVERHEAD;
            alloc += self.skb_alloc(wire_seg).as_nanos();
            gro += self.gro_receive(true, wire_seg).as_nanos();
            off += chunk;
        }
        (alloc, gro)
    }

    /// Service-time decomposition of the overlay receive path for one
    /// GRO-coalesced TCP message of `msg` bytes segmented at `mss` on
    /// the wire — the Figure-13 TCP-4KB shape.
    ///
    /// Unlike UDP, the pNIC stage pays allocation and GRO **per wire
    /// segment** (`ceil(msg / mss)` of them) before the merged
    /// super-skb traverses the rest of the path once. That is what
    /// makes the first stage the bottleneck (~45 % alloc / ~45 % GRO,
    /// paper Figure 9a) and GRO splitting worth a core.
    pub fn overlay_tcp_stage_ns(&self, msg: usize, mss: usize) -> [u64; 4] {
        let (alloc, gro) = self.tcp_pnic_halves(msg, mss);
        let a = alloc + gro + self.netif_receive_ns + self.enqueue_backlog_ns;
        // The merged skb: one set of inner headers over the full
        // message. The outer stack still parses IP/UDP/VXLAN (the
        // envelope is UDP regardless of the inner protocol).
        let wire_total = 14 + 20 + 20 + msg.max(1) + falcon_packet::VXLAN_OVERHEAD;
        let b = self.process_backlog_ns
            + self.ip_rcv_ns
            + self.udp_rcv_ns
            + self.vxlan_rcv(wire_total).as_nanos()
            + self.netif_rx_ns;
        let c = self.gro_cell_poll_ns
            + self.netif_receive_ns
            + self.bridge_ns
            + self.veth_xmit_ns
            + self.netif_rx_ns
            + self.enqueue_backlog_ns;
        let d = self.process_backlog_ns + self.ip_rcv_ns + self.tcp_rcv_ns + self.sock_queue_ns;
        [a, b, c, d]
    }

    /// The split shape of [`overlay_tcp_stage_ns`](Self::overlay_tcp_stage_ns),
    /// same exact-partition rule as
    /// [`overlay_udp_stage_ns_split`](Self::overlay_udp_stage_ns_split).
    pub fn overlay_tcp_stage_ns_split(&self, msg: usize, mss: usize) -> [u64; 5] {
        let [a, b, c, d] = self.overlay_tcp_stage_ns(msg, mss);
        let (alloc, _) = self.tcp_pnic_halves(msg, mss);
        let a1 = alloc + self.enqueue_backlog_ns;
        let a2 = a - a1;
        [a1, a2, b, c, d]
    }

    /// Labels for the five stages of the split shapes.
    pub fn overlay_stage_labels_split() -> [&'static str; 5] {
        Self::OVERLAY_STAGE_LABELS_SPLIT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_profiles_differ_where_documented() {
        let k419 = CostModel::kernel_4_19();
        let k54 = CostModel::kernel_5_4();
        assert!(k54.skb_alloc_ns < k419.skb_alloc_ns, "5.4 allocates faster");
        assert!(k54.udp_rcv_ns > k419.udp_rcv_ns, "5.4 UDP regression");
        assert_eq!(
            k54.vxlan_rcv_ns, k419.vxlan_rcv_ns,
            "unchanged costs shared"
        );
    }

    #[test]
    fn for_kernel_dispatch() {
        assert_eq!(
            CostModel::for_kernel(KernelVersion::K419).skb_alloc_ns,
            CostModel::kernel_4_19().skb_alloc_ns
        );
        assert_eq!(
            CostModel::for_kernel(KernelVersion::K54).skb_alloc_ns,
            CostModel::kernel_5_4().skb_alloc_ns
        );
    }

    #[test]
    fn per_byte_components() {
        let m = CostModel::kernel_4_19();
        assert_eq!(m.skb_alloc(0).as_nanos(), 360);
        assert_eq!(m.skb_alloc(1000).as_nanos(), 370);
        assert!(m.gro_receive(true, 1448) > m.gro_receive(false, 1448));
        assert_eq!(
            m.gro_receive(false, 64_000).as_nanos(),
            40,
            "UDP ignores size"
        );
        assert_eq!(m.copy_to_user(10_000).as_nanos(), 600);
    }

    #[test]
    fn gro_dominates_at_large_tcp_segments() {
        // The Figure 9a condition: alloc and GRO comparable, both large.
        let m = CostModel::kernel_4_19();
        let alloc = m.skb_alloc(1448).as_nanos() as f64;
        let gro = m.gro_receive(true, 1448).as_nanos() as f64;
        let ratio = gro / alloc;
        assert!((0.7..1.5).contains(&ratio), "alloc vs GRO balance: {ratio}");
    }

    #[test]
    fn overlay_stage_extraction_matches_path_shape() {
        let m = CostModel::kernel_4_19();
        let stages = m.overlay_udp_stage_ns(64);
        // Every stage costs something, and the serialized total is the
        // ~3 µs the paper measures for one overlay packet (§3.2).
        for (label, ns) in CostModel::overlay_udp_stage_labels().iter().zip(stages) {
            assert!(ns > 0, "stage {label} has zero cost");
        }
        let total: u64 = stages.iter().sum();
        assert!(
            (2_000..6_000).contains(&total),
            "overlay per-packet cost {total}ns out of calibration range"
        );
        // The pipeline bottleneck must be well under the serialized
        // total, or running stages on different cores buys nothing.
        let max = *stages.iter().max().expect("non-empty");
        assert!(
            (max as f64) < 0.5 * total as f64,
            "bottleneck {max}ns vs total {total}ns leaves no parallelism"
        );
        // Larger payloads only grow byte-dependent stages.
        let big = m.overlay_udp_stage_ns(1400);
        assert!(big[0] > stages[0]);
        assert!(big[1] > stages[1]);
        assert_eq!(big[2], stages[2]);
        assert_eq!(big[3], stages[3]);
    }

    #[test]
    fn kernel_labels() {
        assert_eq!(KernelVersion::K419.label(), "4.19");
        assert_eq!(KernelVersion::K54.label(), "5.4");
    }

    #[test]
    fn split_shape_partitions_the_pnic_stage_exactly() {
        for m in [CostModel::kernel_4_19(), CostModel::kernel_5_4()] {
            for payload in [0usize, 64, 1400, 4096, 65_000] {
                let four = m.overlay_udp_stage_ns(payload);
                let five = m.overlay_udp_stage_ns_split(payload);
                assert_eq!(five[0] + five[1], four[0], "payload {payload}");
                assert_eq!(&five[2..], &four[1..]);
            }
            let four = m.overlay_tcp_stage_ns(4096, 1448);
            let five = m.overlay_tcp_stage_ns_split(4096, 1448);
            assert_eq!(five[0] + five[1], four[0]);
            assert_eq!(&five[2..], &four[1..]);
        }
    }

    #[test]
    fn tcp_4k_pnic_stage_splits_near_forty_five_forty_five() {
        // Figure 9a: at TCP 4KB, skb_allocation and napi_gro_receive
        // each carry ~45 % of the pNIC stage.
        let m = CostModel::kernel_4_19();
        let [a, ..] = m.overlay_tcp_stage_ns(4096, 1448);
        let [a1, a2, ..] = m.overlay_tcp_stage_ns_split(4096, 1448);
        let alloc_share = a1 as f64 / a as f64;
        let gro_share = a2 as f64 / a as f64;
        assert!(
            (0.35..0.55).contains(&alloc_share),
            "alloc share {alloc_share}"
        );
        assert!((0.35..0.55).contains(&gro_share), "gro share {gro_share}");
    }

    #[test]
    fn tcp_4k_bottleneck_moves_under_split() {
        // Unsplit, the per-segment pNIC stage dominates the TCP-4KB
        // path; the split must knock the bottleneck down far enough
        // that a fifth core can buy throughput.
        let m = CostModel::kernel_5_4();
        let four = m.overlay_tcp_stage_ns(4096, 1448);
        let five = m.overlay_tcp_stage_ns_split(4096, 1448);
        let unsplit_max = *four.iter().max().expect("non-empty");
        let split_max = *five.iter().max().expect("non-empty");
        assert_eq!(unsplit_max, four[0], "pNIC stage is the TCP bottleneck");
        assert!(
            (split_max as f64) < 0.75 * unsplit_max as f64,
            "split bottleneck {split_max}ns vs unsplit {unsplit_max}ns"
        );
        // Still one message's worth of work overall.
        assert_eq!(
            five.iter().sum::<u64>(),
            four.iter().sum::<u64>(),
            "splitting adds no modeled work"
        );
    }
}

//! The paper's headline claims, checked end to end through the
//! experiment harness at miniature scale. Each test names the paper
//! section or figure it guards.

use falcon_experiments::measure::{run_measured, Scale};
use falcon_experiments::ratesearch::max_sustainable;
use falcon_experiments::scenario::{Mode, Scenario, SF_APP_CORE};
use falcon_integration_tests::{falcon_mode, small_udp_runner};
use falcon_metrics::IrqKind;
use falcon_netdev::LinkSpeed;
use falcon_netstack::{KernelVersion, Pacing};
use falcon_simcore::SimDuration;
use falcon_workloads::{UdpStressApp, UdpStressConfig};

fn plateau(mode: Mode) -> f64 {
    let build = move |rate: f64| {
        let scenario =
            Scenario::single_flow(mode.clone(), KernelVersion::K419, LinkSpeed::HundredGbit);
        let mut cfg = UdpStressConfig::single_flow(16);
        cfg.senders_per_flow = 4;
        cfg.pacing = Pacing::FixedPps(rate / 4.0);
        cfg.app_cores = vec![SF_APP_CORE];
        scenario.build(Box::new(UdpStressApp::new(cfg)))
    };
    max_sustainable(&build, 60_000.0, Scale::Quick).delivered_pps
}

/// §2.2 / Figure 2: the overlay loses most of the host's single-flow
/// packet rate on the fast link.
#[test]
fn overlay_loses_badly_on_fast_links() {
    let host = plateau(Mode::Host);
    let con = plateau(Mode::Vanilla);
    assert!(
        con < host * 0.5,
        "overlay {con:.0} pps should be under half of host {host:.0} pps"
    );
}

/// §6.1 / Figure 10: Falcon brings the single-flow UDP rate to a large
/// fraction of the host's (the paper reports up to 87%).
#[test]
fn falcon_recovers_most_of_the_loss() {
    let host = plateau(Mode::Host);
    let falcon = plateau(falcon_mode());
    let ratio = falcon / host;
    assert!(
        (0.7..=1.05).contains(&ratio),
        "falcon/host ratio {ratio:.2} out of the expected band"
    );
}

/// §3.2 / Figure 4: the overlay triggers a multiple of the host's
/// NET_RX softirqs for the same traffic.
#[test]
fn overlay_multiplies_net_rx() {
    let count = |mode: Mode| {
        let mut runner = small_udp_runner(mode, 150_000.0, 16, 7);
        let stats = run_measured(&mut runner, Scale::Quick);
        stats.irq(IrqKind::NetRx)
    };
    let host = count(Mode::Host);
    let con = count(Mode::Vanilla);
    assert!(
        con as f64 > host as f64 * 1.8,
        "overlay NET_RX {con} vs host {host}"
    );
}

/// §3.2 / Figure 5: the vanilla overlay serializes a flow's softirqs on
/// few cores; Falcon uses more.
#[test]
fn falcon_parallelizes_the_pipeline() {
    let busy_softirq_cores = |mode: Mode| {
        let mut runner = small_udp_runner(mode, 330_000.0, 16, 7);
        runner.run_for(SimDuration::from_millis(15));
        let ledger = &runner.machine().cores.ledger;
        (0..8)
            .filter(|&c| ledger.core(c).softirq_ns > 1_000_000)
            .count()
    };
    let con = busy_softirq_cores(Mode::Vanilla);
    let falcon = busy_softirq_cores(falcon_mode());
    assert!(
        falcon > con,
        "falcon softirq cores {falcon} vs vanilla {con}"
    );
}

/// §6.3 / Figure 19: at the same fixed rate Falcon costs bounded extra
/// CPU while raising more softirqs.
#[test]
fn falcon_overhead_is_bounded() {
    let measure = |mode: Mode| {
        let mut runner = small_udp_runner(mode, 250_000.0, 16, 7);
        run_measured(&mut runner, Scale::Quick)
    };
    let con = measure(Mode::Vanilla);
    let falcon = measure(falcon_mode());
    let delivered_ratio = falcon.delivered as f64 / con.delivered.max(1) as f64;
    assert!(
        (0.99..=1.01).contains(&delivered_ratio),
        "same delivered load: {} vs {}",
        falcon.delivered,
        con.delivered
    );
    let cpu_ratio = falcon.total_busy_cores() / con.total_busy_cores();
    assert!(
        cpu_ratio < 1.20,
        "falcon CPU {:.2} vs con {:.2} (ratio {cpu_ratio:.2})",
        falcon.total_busy_cores(),
        con.total_busy_cores()
    );
    assert!(
        falcon.irq(IrqKind::NetRx) > con.irq(IrqKind::NetRx),
        "falcon raises more softirqs"
    );
}

/// §4.3 / Figure 14: when the system is saturated, Falcon gates itself
/// off rather than degrading throughput.
#[test]
fn falcon_never_collapses_when_saturated() {
    let measure = |mode: Mode| {
        let mut runner = small_udp_runner(mode, 360_000.0, 16, 7);
        run_measured(&mut runner, Scale::Quick).pps()
    };
    let con = measure(Mode::Vanilla);
    let falcon = measure(falcon_mode());
    assert!(
        falcon > con * 0.9,
        "falcon {falcon:.0} pps must not collapse below vanilla {con:.0} pps"
    );
}

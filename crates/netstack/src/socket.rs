//! Server-side sockets.
//!
//! A socket binds `(protocol, address, port)` — the demultiplexing key
//! `udp_rcv`/`tcp_v4_rcv` use — and names the application core its
//! owning thread runs on. Delivery latency (application send time to
//! user-space delivery) is recorded per socket; the aggregate feeds the
//! paper's latency figures.

use std::collections::HashMap;

use falcon_metrics::Histogram;
use serde::{Deserialize, Serialize};

/// Socket identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SockId(pub u32);

/// Demultiplexing key: `(ip_proto, dst_addr, dst_port)`.
pub type BindKey = (u8, u32, u16);

/// One bound server socket.
#[derive(Debug)]
pub struct Socket {
    /// Identifier.
    pub id: SockId,
    /// IP protocol (6 or 17).
    pub proto: u8,
    /// Bound local address (the container's or host's IP).
    pub addr: u32,
    /// Bound local port.
    pub port: u16,
    /// Core the owning application thread runs on.
    pub app_core: usize,
    /// Extra per-message application service time, beyond copy +
    /// syscall (models request handling).
    pub app_service_ns: u64,
    /// Messages delivered to the application.
    pub delivered_msgs: u64,
    /// Payload bytes delivered.
    pub delivered_bytes: u64,
    /// One-way latency (send timestamp → user-space delivery), ns.
    pub latency: Histogram,
}

/// The server's socket table.
#[derive(Debug, Default)]
pub struct SocketTable {
    sockets: Vec<Socket>,
    by_key: HashMap<BindKey, SockId>,
}

impl SocketTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        SocketTable::default()
    }

    /// Binds a new socket.
    ///
    /// # Panics
    ///
    /// Panics if the `(proto, addr, port)` tuple is already bound.
    pub fn bind(
        &mut self,
        proto: u8,
        addr: u32,
        port: u16,
        app_core: usize,
        app_service_ns: u64,
    ) -> SockId {
        let key = (proto, addr, port);
        assert!(
            !self.by_key.contains_key(&key),
            "address already in use: {key:?}"
        );
        let id = SockId(self.sockets.len() as u32);
        self.sockets.push(Socket {
            id,
            proto,
            addr,
            port,
            app_core,
            app_service_ns,
            delivered_msgs: 0,
            delivered_bytes: 0,
            latency: Histogram::new(),
        });
        self.by_key.insert(key, id);
        id
    }

    /// Looks up the socket for a delivered packet.
    pub fn lookup(&self, proto: u8, addr: u32, port: u16) -> Option<SockId> {
        self.by_key.get(&(proto, addr, port)).copied()
    }

    /// Returns a socket by id.
    pub fn get(&self, id: SockId) -> &Socket {
        &self.sockets[id.0 as usize]
    }

    /// Returns a socket mutably.
    pub fn get_mut(&mut self, id: SockId) -> &mut Socket {
        &mut self.sockets[id.0 as usize]
    }

    /// Number of bound sockets.
    pub fn len(&self) -> usize {
        self.sockets.len()
    }

    /// Returns `true` if no sockets are bound.
    pub fn is_empty(&self) -> bool {
        self.sockets.is_empty()
    }

    /// Iterates over all sockets.
    pub fn iter(&self) -> impl Iterator<Item = &Socket> {
        self.sockets.iter()
    }

    /// Total messages delivered across sockets.
    pub fn total_delivered(&self) -> u64 {
        self.sockets.iter().map(|s| s.delivered_msgs).sum()
    }

    /// Merged latency histogram across sockets.
    pub fn merged_latency(&self) -> Histogram {
        let mut h = Histogram::new();
        for s in &self.sockets {
            h.merge(&s.latency);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_and_lookup() {
        let mut table = SocketTable::new();
        let s1 = table.bind(17, 0x0A00_0002, 5001, 2, 300);
        let s2 = table.bind(6, 0x0A00_0002, 5001, 3, 0);
        assert_ne!(s1, s2, "different protocols may share a port");
        assert_eq!(table.lookup(17, 0x0A00_0002, 5001), Some(s1));
        assert_eq!(table.lookup(6, 0x0A00_0002, 5001), Some(s2));
        assert_eq!(table.lookup(17, 0x0A00_0002, 5002), None);
        assert_eq!(table.len(), 2);
        assert_eq!(table.get(s1).app_core, 2);
    }

    #[test]
    #[should_panic(expected = "address already in use")]
    fn double_bind_panics() {
        let mut table = SocketTable::new();
        table.bind(17, 1, 80, 0, 0);
        table.bind(17, 1, 80, 1, 0);
    }

    #[test]
    fn delivery_accounting() {
        let mut table = SocketTable::new();
        let id = table.bind(17, 1, 80, 0, 0);
        let sock = table.get_mut(id);
        sock.delivered_msgs += 1;
        sock.delivered_bytes += 100;
        sock.latency.record(5_000);
        assert_eq!(table.total_delivered(), 1);
        assert_eq!(table.merged_latency().count(), 1);
    }

    #[test]
    fn containers_bind_same_port_different_ips() {
        // The multi-container tests: every container binds :5001 on its
        // own private IP.
        let mut table = SocketTable::new();
        for i in 0..10u32 {
            table.bind(17, 0x0A00_0100 + i, 5001, i as usize % 4, 0);
        }
        assert_eq!(table.len(), 10);
        assert!(table.lookup(17, 0x0A00_0105, 5001).is_some());
    }
}

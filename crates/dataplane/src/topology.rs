//! NUMA/SMT-aware core selection for worker pinning.
//!
//! `affinity` used to pin workers to logical cores `0..n-1` blindly.
//! On multi-socket hosts that is the worst possible plan: Linux often
//! enumerates CPUs round-robin across packages (cpu0 on node 0, cpu1
//! on node 1, …), so "adjacent" workers — which exchange every packet
//! over an SPSC ring — land on different sockets and every handoff
//! crosses the interconnect. This module parses the sysfs topology
//! tree and builds a pin plan that keeps adjacent workers on one node
//! for as long as the node has cores, and spreads across physical
//! cores before doubling up on SMT siblings.
//!
//! Reading sysfs goes through the [`Sysfs`] trait so tests can feed a
//! fake tree; any parse failure degrades to the old identity plan
//! (`0..n-1`), never to a panic — pinning is an optimization, not a
//! correctness requirement.

use std::collections::BTreeMap;

/// The filesystem surface the topology parser needs — abstracted so
/// tests can supply a fake `/sys`.
pub trait Sysfs {
    /// Reads a file to a string, `None` on any error.
    fn read_to_string(&self, path: &str) -> Option<String>;
}

/// The real `/sys`.
pub struct HostSysfs;

impl Sysfs for HostSysfs {
    fn read_to_string(&self, path: &str) -> Option<String> {
        std::fs::read_to_string(path).ok()
    }
}

/// One logical CPU's place in the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CpuSlot {
    /// Logical CPU number (the `sched_setaffinity` target).
    cpu: usize,
    /// Physical package (socket / NUMA node surrogate).
    package: u32,
    /// Physical core within the package; logical CPUs sharing it are
    /// SMT siblings.
    core: u32,
}

/// The parsed CPU topology: every online logical CPU located by
/// (package, physical core).
#[derive(Debug, Clone)]
pub struct CpuTopology {
    slots: Vec<CpuSlot>,
}

/// Parses a sysfs CPU list ("0-3,5,8-9") into CPU numbers.
fn parse_cpu_list(list: &str) -> Option<Vec<usize>> {
    let mut cpus = Vec::new();
    for part in list.trim().split(',') {
        if part.is_empty() {
            continue;
        }
        match part.split_once('-') {
            Some((lo, hi)) => {
                let lo: usize = lo.trim().parse().ok()?;
                let hi: usize = hi.trim().parse().ok()?;
                if lo > hi || hi - lo > 4096 {
                    return None;
                }
                cpus.extend(lo..=hi);
            }
            None => cpus.push(part.trim().parse().ok()?),
        }
    }
    if cpus.is_empty() {
        None
    } else {
        Some(cpus)
    }
}

impl CpuTopology {
    /// Parses the topology from a sysfs tree. `None` when the tree is
    /// missing or any per-CPU file fails to parse — callers fall back
    /// to the identity plan.
    pub fn from_sysfs(fs: &dyn Sysfs) -> Option<CpuTopology> {
        let online = fs.read_to_string("/sys/devices/system/cpu/online")?;
        let cpus = parse_cpu_list(&online)?;
        let mut slots = Vec::with_capacity(cpus.len());
        for cpu in cpus {
            let base = format!("/sys/devices/system/cpu/cpu{cpu}/topology");
            let package: u32 = fs
                .read_to_string(&format!("{base}/physical_package_id"))?
                .trim()
                .parse()
                .ok()?;
            let core: u32 = fs
                .read_to_string(&format!("{base}/core_id"))?
                .trim()
                .parse()
                .ok()?;
            slots.push(CpuSlot { cpu, package, core });
        }
        Some(CpuTopology { slots })
    }

    /// Parses the host's real topology.
    pub fn detect() -> Option<CpuTopology> {
        Self::from_sysfs(&HostSysfs)
    }

    /// Number of online logical CPUs the topology covers.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no CPU was parsed.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Number of distinct physical packages (sockets).
    pub fn packages(&self) -> usize {
        let mut pkgs: Vec<u32> = self.slots.iter().map(|s| s.package).collect();
        pkgs.sort_unstable();
        pkgs.dedup();
        pkgs.len()
    }

    /// The pin plan for `n` workers: worker `i` pins to `plan[i]`.
    ///
    /// Adjacent workers are adjacent pipeline stages' hot partners, so
    /// the plan is node-major — a node's cores are exhausted before the
    /// next node opens — and within a node one logical CPU per physical
    /// core comes first (SMT siblings only after every physical core
    /// has a worker). Asking for more workers than logical CPUs wraps
    /// the plan (the oversubscribed-chaos case, where pinning is moot).
    pub fn plan(&self, n: usize) -> Vec<usize> {
        // (package, seen-count-of-core) sorts primaries of node 0
        // first, then node 0's siblings, then node 1, …
        let mut per_core_rank: BTreeMap<(u32, u32), u32> = BTreeMap::new();
        let mut keyed: Vec<(u32, u32, usize, usize)> = self
            .slots
            .iter()
            .map(|s| {
                let rank = per_core_rank.entry((s.package, s.core)).or_insert(0);
                let k = (s.package, *rank, s.cpu);
                *rank += 1;
                (k.0, k.1, k.2, s.cpu)
            })
            .collect();
        keyed.sort_unstable();
        let ordered: Vec<usize> = keyed.into_iter().map(|(_, _, _, cpu)| cpu).collect();
        if ordered.is_empty() {
            return (0..n).collect();
        }
        (0..n).map(|i| ordered[i % ordered.len()]).collect()
    }
}

/// The pin plan for `n` workers on this host: the topology-aware plan
/// when sysfs parses, the identity plan `0..n-1` otherwise (non-Linux,
/// containers with masked sysfs, or malformed trees).
pub fn core_plan(n: usize) -> Vec<usize> {
    match CpuTopology::detect() {
        Some(topo) if !topo.is_empty() => topo.plan(n),
        _ => (0..n).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fake `/sys` built from (path, contents) pairs.
    struct FakeSysfs(BTreeMap<String, String>);

    impl FakeSysfs {
        fn new(files: &[(&str, &str)]) -> FakeSysfs {
            FakeSysfs(
                files
                    .iter()
                    .map(|(p, c)| (p.to_string(), c.to_string()))
                    .collect(),
            )
        }
    }

    impl Sysfs for FakeSysfs {
        fn read_to_string(&self, path: &str) -> Option<String> {
            self.0.get(path).cloned()
        }
    }

    fn cpu_files(cpu: usize, package: u32, core: u32) -> Vec<(String, String)> {
        let base = format!("/sys/devices/system/cpu/cpu{cpu}/topology");
        vec![
            (
                format!("{base}/physical_package_id"),
                format!("{package}\n"),
            ),
            (format!("{base}/core_id"), format!("{core}\n")),
        ]
    }

    fn fake_host(online: &str, cpus: &[(usize, u32, u32)]) -> FakeSysfs {
        let mut files = vec![(
            "/sys/devices/system/cpu/online".to_string(),
            format!("{online}\n"),
        )];
        for &(cpu, pkg, core) in cpus {
            files.extend(cpu_files(cpu, pkg, core));
        }
        FakeSysfs(files.into_iter().collect())
    }

    #[test]
    fn parses_cpu_lists() {
        assert_eq!(parse_cpu_list("0-3"), Some(vec![0, 1, 2, 3]));
        assert_eq!(parse_cpu_list("0,2-3,7\n"), Some(vec![0, 2, 3, 7]));
        assert_eq!(parse_cpu_list("5"), Some(vec![5]));
        assert_eq!(parse_cpu_list(""), None);
        assert_eq!(parse_cpu_list("3-1"), None);
        assert_eq!(parse_cpu_list("a-b"), None);
    }

    /// The Linux-typical interleaved enumeration: even CPUs on socket
    /// 0, odd CPUs on socket 1. The blind identity plan alternates
    /// sockets between adjacent workers; the topology plan must fill
    /// socket 0 first.
    #[test]
    fn two_socket_interleaved_fills_one_node_first() {
        let cpus: Vec<(usize, u32, u32)> = (0..8)
            .map(|i| (i, (i % 2) as u32, (i / 2) as u32))
            .collect();
        let fs = fake_host("0-7", &cpus);
        let topo = CpuTopology::from_sysfs(&fs).expect("parses");
        assert_eq!(topo.len(), 8);
        assert_eq!(topo.packages(), 2);
        assert_eq!(topo.plan(4), vec![0, 2, 4, 6], "all of socket 0 first");
        assert_eq!(topo.plan(8), vec![0, 2, 4, 6, 1, 3, 5, 7]);
        // Wrapping beyond the host reuses the same order.
        assert_eq!(topo.plan(10), vec![0, 2, 4, 6, 1, 3, 5, 7, 0, 2]);
    }

    /// SMT host: logical CPUs 0..4 where cpu2/cpu3 are the hyperthread
    /// siblings of cpu0/cpu1. Two workers must get two distinct
    /// physical cores, not one core's two threads.
    #[test]
    fn smt_siblings_come_after_physical_primaries() {
        let fs = fake_host("0-3", &[(0, 0, 0), (1, 0, 1), (2, 0, 0), (3, 0, 1)]);
        let topo = CpuTopology::from_sysfs(&fs).expect("parses");
        assert_eq!(topo.packages(), 1);
        assert_eq!(topo.plan(2), vec![0, 1], "distinct physical cores");
        assert_eq!(topo.plan(4), vec![0, 1, 2, 3]);
    }

    /// Two sockets *and* SMT: node-major wins over primaries-first —
    /// a node's siblings are still preferred over the other node's
    /// primaries, because the ring handoff crossing the interconnect
    /// costs more than sharing a physical core.
    #[test]
    fn node_major_beats_smt_spread() {
        let fs = fake_host(
            "0-7",
            &[
                (0, 0, 0),
                (1, 0, 1),
                (2, 1, 0),
                (3, 1, 1),
                (4, 0, 0),
                (5, 0, 1),
                (6, 1, 0),
                (7, 1, 1),
            ],
        );
        let topo = CpuTopology::from_sysfs(&fs).expect("parses");
        assert_eq!(topo.plan(8), vec![0, 1, 4, 5, 2, 3, 6, 7]);
    }

    #[test]
    fn missing_or_partial_sysfs_yields_none() {
        // No tree at all.
        assert!(CpuTopology::from_sysfs(&FakeSysfs::new(&[])).is_none());
        // Online list but a CPU's files missing.
        let fs = fake_host("0-1", &[(0, 0, 0)]);
        assert!(CpuTopology::from_sysfs(&fs).is_none());
        // Garbage package id.
        let mut files = vec![(
            "/sys/devices/system/cpu/online".to_string(),
            "0".to_string(),
        )];
        files.push((
            "/sys/devices/system/cpu/cpu0/topology/physical_package_id".to_string(),
            "banana".to_string(),
        ));
        files.push((
            "/sys/devices/system/cpu/cpu0/topology/core_id".to_string(),
            "0".to_string(),
        ));
        let fs = FakeSysfs(files.into_iter().collect());
        assert!(CpuTopology::from_sysfs(&fs).is_none());
    }

    /// `core_plan` never panics and always hands back exactly `n`
    /// targets, whatever the host looks like.
    #[test]
    fn core_plan_is_total() {
        for n in [0usize, 1, 2, 7, 64] {
            assert_eq!(core_plan(n).len(), n);
        }
    }

    /// On the real host (when sysfs is readable), the plan pins within
    /// the online CPU set.
    #[test]
    fn detected_plan_targets_online_cpus() {
        if let Some(topo) = CpuTopology::detect() {
            let cpus: Vec<usize> = topo.slots.iter().map(|s| s.cpu).collect();
            for target in topo.plan(topo.len()) {
                assert!(cpus.contains(&target));
            }
        }
    }
}

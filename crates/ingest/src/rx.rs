//! Batched datagram receive behind one trait.
//!
//! [`MmsgRx`] drains the socket with `recvmmsg` — one syscall per
//! batch, the way a NAPI poll amortizes per-interrupt cost. [`LoopRx`]
//! is the portable fallback: a `recv` loop over the same nonblocking
//! socket with identical batch semantics, so everything above the
//! [`BatchRx`] trait behaves the same on any target (and the two
//! backends can be benchmarked against each other on Linux).
//!
//! Buffers are recycled: one flat set of `MAX_DATAGRAM` scratch
//! segments lives for the whole run, and each batch only rewrites
//! lengths — the per-datagram allocation happens once, downstream, when
//! a frame is copied into its `WireBuf`.

use std::io;
use std::net::UdpSocket;

use crate::sock;

/// Scratch buffer size per datagram. VXLAN outer frames in this
/// workspace stay under standard MTU; 2 KiB leaves headroom without
/// blowing the cache.
pub const MAX_DATAGRAM: usize = 2048;

/// Recycled receive scratch for one batch.
pub struct RecvBatch {
    /// Datagram scratch buffers, each `MAX_DATAGRAM` long.
    bufs: Vec<Vec<u8>>,
    /// Valid length of each received datagram.
    lens: Vec<usize>,
    /// Datagrams valid in this batch (set by the last `recv_batch`).
    count: usize,
    /// Latest cumulative `SO_RXQ_OVFL` reading, if the kernel attached
    /// one to any datagram so far.
    pub sock_drops: Option<u64>,
}

impl RecvBatch {
    /// Allocates scratch for up to `batch` datagrams per read.
    pub fn new(batch: usize) -> RecvBatch {
        let batch = batch.max(1);
        RecvBatch {
            bufs: (0..batch).map(|_| vec![0u8; MAX_DATAGRAM]).collect(),
            lens: vec![0; batch],
            count: 0,
            sock_drops: None,
        }
    }

    /// Max datagrams per read.
    pub fn capacity(&self) -> usize {
        self.bufs.len()
    }

    /// The datagrams received by the last `recv_batch` call.
    pub fn datagrams(&self) -> impl Iterator<Item = &[u8]> {
        self.bufs
            .iter()
            .zip(self.lens.iter())
            .take(self.count)
            .map(|(b, &l)| &b[..l.min(MAX_DATAGRAM)])
    }
}

/// One batched, nonblocking read of up to `batch.capacity()` datagrams.
pub trait BatchRx: Send {
    /// Fills `batch` and returns how many datagrams arrived. An empty
    /// queue is `Err(WouldBlock)`, never `Ok(0)`.
    fn recv_batch(&mut self, batch: &mut RecvBatch) -> io::Result<usize>;

    /// Backend name for reports ("recvmmsg" or "recv-loop").
    fn backend(&self) -> &'static str;
}

/// `recvmmsg`-backed receive (Linux).
pub struct MmsgRx {
    sock: UdpSocket,
}

impl BatchRx for MmsgRx {
    fn recv_batch(&mut self, batch: &mut RecvBatch) -> io::Result<usize> {
        let mut ovfl = None;
        let n = sock::recv_batch(&self.sock, &mut batch.bufs, &mut batch.lens, &mut ovfl)?;
        if let Some(v) = ovfl {
            batch.sock_drops = Some(v);
        }
        batch.count = n;
        if n == 0 {
            return Err(io::Error::new(io::ErrorKind::WouldBlock, "empty batch"));
        }
        Ok(n)
    }

    fn backend(&self) -> &'static str {
        "recvmmsg"
    }
}

/// Portable fallback: a `recv` loop with the same batch semantics.
pub struct LoopRx {
    sock: UdpSocket,
}

impl BatchRx for LoopRx {
    fn recv_batch(&mut self, batch: &mut RecvBatch) -> io::Result<usize> {
        let mut n = 0;
        while n < batch.capacity() {
            match self.sock.recv(&mut batch.bufs[n]) {
                Ok(len) => {
                    batch.lens[n] = len;
                    n += 1;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        batch.count = n;
        if n == 0 {
            return Err(io::Error::new(io::ErrorKind::WouldBlock, "empty batch"));
        }
        Ok(n)
    }

    fn backend(&self) -> &'static str {
        "recv-loop"
    }
}

/// Wraps a bound socket in the best available backend: `recvmmsg`
/// where compiled in, the portable loop elsewhere (or on request).
/// Marks the socket nonblocking and asks for the kernel-drop counter.
pub fn batch_rx(sock: UdpSocket, force_portable: bool) -> io::Result<Box<dyn BatchRx>> {
    sock.set_nonblocking(true)?;
    sock::enable_rxq_ovfl(&sock);
    if sock::batched_io_available() && !force_portable {
        Ok(Box::new(MmsgRx { sock }))
    } else {
        Ok(Box::new(LoopRx { sock }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (UdpSocket, UdpSocket) {
        let rx = UdpSocket::bind("127.0.0.1:0").unwrap();
        let tx = UdpSocket::bind("127.0.0.1:0").unwrap();
        tx.connect(rx.local_addr().unwrap()).unwrap();
        (rx, tx)
    }

    fn drain(rx: &mut dyn BatchRx, batch: &mut RecvBatch, want: usize) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        for _ in 0..10_000 {
            match rx.recv_batch(batch) {
                Ok(_) => {
                    out.extend(batch.datagrams().map(|d| d.to_vec()));
                    if out.len() >= want {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(std::time::Duration::from_micros(100));
                }
                Err(e) => panic!("recv: {e}"),
            }
        }
        out
    }

    /// Both backends must present identical datagram streams.
    #[test]
    fn backends_agree_on_loopback() {
        for portable in [true, false] {
            let (rxs, tx) = pair();
            let mut rx = batch_rx(rxs, portable).unwrap();
            let frames: Vec<Vec<u8>> = (0..20u8).map(|i| vec![i; 60 + i as usize]).collect();
            sock::send_batch(&tx, &frames).unwrap();
            let mut batch = RecvBatch::new(7);
            let got = drain(rx.as_mut(), &mut batch, frames.len());
            assert_eq!(got, frames, "backend {}", rx.backend());
        }
    }

    #[test]
    fn empty_queue_is_would_block_for_both_backends() {
        for portable in [true, false] {
            let (rxs, _tx) = pair();
            let mut rx = batch_rx(rxs, portable).unwrap();
            let mut batch = RecvBatch::new(4);
            let err = rx.recv_batch(&mut batch).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        }
    }
}

//! Workload applications for the Falcon reproduction.
//!
//! Implementations of [`falcon_netstack::App`] matching the traffic the
//! paper evaluates with:
//!
//! * [`sockperf`] — the micro-benchmarks: open-loop UDP stress
//!   (single- and multi-flow), UDP/TCP ping-pong latency probes, and
//!   windowed TCP streams (Figures 2, 10–16, 19).
//! * [`memcached`] — CloudSuite *data caching*: closed-loop GET/SET
//!   clients over per-connection flows, Zipf-popular keys, 550-byte
//!   objects (Figure 18).
//! * [`webserving`] — CloudSuite *web serving*: an Elgg-style operation
//!   mix against an nginx container backed by cache and database
//!   service times (Figure 17).
//!
//! All workloads communicate results through the simulation's counters
//! (`SimCounters`, socket stats) plus — where the paper reports per-
//! operation numbers — shared [`std::rc::Rc`] stats handles returned at
//! construction.

pub mod memcached;
pub mod sockperf;
pub mod webserving;

pub use memcached::{DataCaching, DataCachingConfig};
pub use sockperf::{TcpStreams, TcpStreamsConfig, UdpPingPong, UdpStressApp, UdpStressConfig};
pub use webserving::{WebServing, WebServingConfig, WebStats};

//! Thread-to-core pinning and worker-count clamping.
//!
//! Pinning goes through `sched_setaffinity(2)` declared directly
//! against libc (std already links it on Linux targets), so the crate
//! stays dependency-free. On non-Linux targets pinning is a no-op that
//! reports failure; the executor records whether pinning actually took
//! effect so benchmark output never silently claims isolation it did
//! not have.

/// Logical CPUs available to this process (1 if undetectable).
pub fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Clamps a requested worker count to the host: never more workers
/// than available logical cores, never zero. CI runners with 2 cores
/// get 2 workers no matter what the scenario asks for.
pub fn clamp_workers(requested: usize) -> usize {
    requested.max(1).min(available_cores())
}

#[cfg(target_os = "linux")]
mod sys {
    // Raw cpu_set_t: 1024 bits, as glibc defines it.
    const SETSIZE_BYTES: usize = 128;

    extern "C" {
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u8) -> i32;
    }

    pub fn pin_current_thread(core: usize) -> bool {
        if core >= SETSIZE_BYTES * 8 {
            return false;
        }
        let mut mask = [0u8; SETSIZE_BYTES];
        mask[core / 8] |= 1 << (core % 8);
        // pid 0 = the calling thread.
        unsafe { sched_setaffinity(0, SETSIZE_BYTES, mask.as_ptr()) == 0 }
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    pub fn pin_current_thread(_core: usize) -> bool {
        false
    }
}

/// Pins the calling thread to `core`. Returns whether the kernel
/// accepted the mask.
pub fn pin_current_thread(core: usize) -> bool {
    sys::pin_current_thread(core)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamp_respects_host_and_floor() {
        let avail = available_cores();
        assert!(avail >= 1);
        assert_eq!(clamp_workers(0), 1);
        assert_eq!(clamp_workers(1), 1);
        assert!(clamp_workers(1024) <= avail);
        assert_eq!(clamp_workers(avail), avail);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn pinning_to_core_zero_succeeds() {
        // Core 0 always exists; pin from a scratch thread so the test
        // runner's own affinity is untouched.
        let ok = std::thread::spawn(|| pin_current_thread(0))
            .join()
            .expect("pin thread");
        assert!(ok, "sched_setaffinity(core 0) failed");
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn pinning_out_of_range_fails_cleanly() {
        assert!(!pin_current_thread(100_000));
    }
}

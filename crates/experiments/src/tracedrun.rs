//! Representative traced runs backing `falcon-repro --trace` and
//! `--stage-latency`.
//!
//! Both flags run the single-flow topology (the Figure 11 shape: one
//! UDP flow, single-queue NIC on core 0, RPS on cores 1–4, application
//! on core 5) with the tracer armed for the measured window only —
//! the warmup runs untraced so the ring holds steady-state behaviour.

use falcon_netdev::LinkSpeed;
use falcon_netstack::sim::{App, SimApi};
use falcon_netstack::{KernelVersion, Pacing};
use falcon_trace::{chrome, Event, StageLatency, TraceMeta};

use crate::measure::Scale;
use crate::scenario::{Mode, Scenario, SF_APP_CORE};

/// The traced workload: one paced UDP flow into the container, same as
/// the Figure 11 breakdown uses.
struct TraceUdp;

impl App for TraceUdp {
    fn on_start(&mut self, api: &mut SimApi<'_>) {
        let c = api.add_container(0, 10);
        api.bind_udp(Some(c), 5001, SF_APP_CORE, 300);
        let flow = api.udp_flow(Some(c), 5001, 16);
        api.udp_stress(flow, 1, Pacing::FixedPps(50_000.0));
    }
}

/// Ring capacity: sized so a full measurement window fits without
/// wrapping (each packet generates a few dozen events across stages).
fn ring_capacity(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 1 << 19,
        Scale::Full => 1 << 22,
    }
}

/// Runs the single-flow scenario in `mode` with tracing enabled for
/// the measured window. Returns the event stream, the trace metadata,
/// and the number of events the ring had to overwrite (0 means the
/// stream is complete).
pub fn traced_run(mode: Mode, scale: Scale) -> (Vec<Event>, TraceMeta, u64) {
    let scenario = Scenario::single_flow(mode, KernelVersion::K419, LinkSpeed::HundredGbit);
    let mut runner = scenario.build(Box::new(TraceUdp));
    runner.run_for(scale.warmup());
    runner.enable_tracing(ring_capacity(scale));
    runner.run_for(scale.window());
    let meta = runner.trace_meta();
    let tracer = runner.tracer();
    (tracer.events(), meta, tracer.overflow())
}

/// Chrome trace-event JSON for a Falcon-mode single-flow run: one
/// process per core, one thread per context, loadable in Perfetto or
/// `chrome://tracing`.
pub fn chrome_trace(scale: Scale) -> String {
    let (events, meta, overflow) = traced_run(Mode::Falcon(Scenario::sf_falcon()), scale);
    if overflow > 0 {
        eprintln!("warning: trace ring overflowed, {overflow} oldest events dropped");
    }
    chrome::export(&events, &meta)
}

/// Per-stage latency decomposition, vanilla overlay vs Falcon, as a
/// plain-text report. This is the observable form of the paper's core
/// claim: vanilla serializes every softirq stage of a flow onto one
/// core, Falcon pipelines the stages across cores.
pub fn stage_latency_report(scale: Scale) -> String {
    let mut out = String::new();
    for mode in [Mode::Vanilla, Mode::Falcon(Scenario::sf_falcon())] {
        let label = mode.label();
        let (events, meta, overflow) = traced_run(mode, scale);
        let lat = StageLatency::from_events(&events);
        out.push_str(&format!("== {label} ==\n"));
        if overflow > 0 {
            out.push_str(&format!("(ring overflowed: {overflow} events lost)\n"));
        }
        out.push_str(&lat.render(&meta));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use falcon_trace::{check_stream, DELIVERY_CHECK, STAGE_B_CHECK};

    /// The acceptance criterion of the tracing issue: the stage-latency
    /// decomposition shows vanilla serializing softirq stages on one
    /// core while Falcon spreads them over several.
    #[test]
    fn vanilla_serializes_falcon_pipelines() {
        let (v_events, _, v_ovf) = traced_run(Mode::Vanilla, Scale::Quick);
        let (f_events, _, f_ovf) = traced_run(Mode::Falcon(Scenario::sf_falcon()), Scale::Quick);
        assert_eq!(v_ovf, 0, "quick ring must hold the whole window");
        assert_eq!(f_ovf, 0);

        let v = StageLatency::from_events(&v_events);
        let f = StageLatency::from_events(&f_events);
        assert!(!v.is_empty() && !f.is_empty());

        // Softirq stage checkpoints (everything except final delivery).
        let softirq_stages: Vec<u32> = v
            .per_stage()
            .into_iter()
            .map(|(cp, _)| cp)
            .filter(|&cp| cp != DELIVERY_CHECK)
            .collect();
        assert!(
            softirq_stages.len() >= 3,
            "expected NIC + decap + delivery-side stages, got {softirq_stages:?}"
        );

        // With one flow every (flow, stage) placement is deterministic,
        // so the pipelining shows up as *different stages on different
        // cores*, not one stage on many. Compare the union of cores
        // over the steerable stages (everything past the NIC poll,
        // which is pinned to the IRQ core in both modes).
        let steerable: Vec<u32> = softirq_stages
            .iter()
            .copied()
            .filter(|&cp| cp & STAGE_B_CHECK != 0 || cp > 1)
            .collect();
        let union = |sl: &StageLatency| -> std::collections::BTreeSet<usize> {
            steerable
                .iter()
                .flat_map(|&cp| sl.cores_for_stage(cp))
                .collect()
        };
        let v_union = union(&v);
        let f_union = union(&f);
        assert_eq!(
            v_union.len(),
            1,
            "vanilla must serialize all steerable stages on the flow's \
             RPS core, saw {v_union:?}"
        );
        assert!(
            f_union.len() >= 2,
            "Falcon must pipeline stages across cores, saw {f_union:?}"
        );

        // Same claim in service-time terms: the busiest core's share of
        // steerable softirq service drops once the stages pipeline.
        let dominant = |sl: &StageLatency| -> f64 {
            let mut per_core = std::collections::BTreeMap::new();
            for (&(cp, cpu), stat) in sl.cells() {
                if steerable.contains(&cp) {
                    *per_core.entry(cpu).or_insert(0u64) += stat.service_ns;
                }
            }
            let total: u64 = per_core.values().sum();
            let max = per_core.values().copied().max().unwrap_or(0);
            if total == 0 {
                0.0
            } else {
                max as f64 / total as f64
            }
        };
        let (vd, fd) = (dominant(&v), dominant(&f));
        assert!(
            (vd - 1.0).abs() < 1e-9,
            "vanilla: one core does all steerable service, got {vd}"
        );
        assert!(fd < 0.95, "Falcon dominant share should fall, got {fd}");
    }

    /// The traced stream must satisfy packet conservation in both modes.
    #[test]
    fn traced_runs_conserve_packets() {
        for mode in [Mode::Vanilla, Mode::Falcon(Scenario::sf_falcon())] {
            let label = mode.label();
            let (events, _, ovf) = traced_run(mode, Scale::Quick);
            assert_eq!(ovf, 0);
            let report = check_stream(&events);
            assert!(report.ok(), "{label}: {report:?}");
        }
    }

    /// The Chrome export contains events from all four instrumented
    /// layers: cpusim (Exec slices), netdev (ring enqueues), netstack
    /// (stage checkpoints), falcon (steering decisions).
    #[test]
    fn chrome_trace_covers_all_layers() {
        let json = chrome_trace(Scale::Quick);
        assert!(json.starts_with("{\"traceEvents\":["));
        for needle in [
            "\"ph\":\"X\"",  // cpusim work slices
            "ring_enqueue",  // netdev
            "\"stage:",      // netstack stage checkpoints
            "falcon_choice", // falcon steering
            "\"deliver\"",   // end-to-end delivery instants
        ] {
            assert!(json.contains(needle), "missing {needle}");
        }
    }
}

//! Adaptive balancing: a sudden traffic hotspot, handled by Falcon's
//! two-random-choice balancer vs the static first-choice-only variant —
//! the paper's Figure 16 experiment, runnable standalone.
//!
//! ```text
//! cargo run --release -p falcon-examples --bin adaptive_balancing [--full]
//! ```

use falcon_experiments::figs::fig16;
use falcon_experiments::measure::Scale;

fn main() {
    let scale = if std::env::args().any(|a| a == "--full") {
        Scale::Full
    } else {
        Scale::Quick
    };
    println!("Adaptability test: sudden hotspot, dynamic vs static balancing");
    println!("(six paced flows; one flow's intensity jumps 8x mid-run)\n");
    let result = fig16::run(scale);
    print!("{result}");
    println!();
    println!("The two-choice algorithm steers softirqs away from the overloaded core");
    println!("but commits to its second choice, avoiding load-chasing fluctuations —");
    println!("hence the higher mean with a similarly small coefficient of variation.");
}

//! Log-linear histograms for latency recording.
//!
//! Bucketing follows the HdrHistogram idea: values below
//! `2 * SUB_BUCKETS` are exact; above that, each power-of-two octave is
//! divided into `SUB_BUCKETS` (64) linear sub-buckets, giving a bounded
//! relative error of `1 / SUB_BUCKETS` (< 1.6 %) at any magnitude. That
//! is plenty for reproducing "average / 90th / 99th / 99.9th percentile"
//! figures while keeping recording O(1) with no allocation.

use serde::{Deserialize, Serialize};

/// Linear sub-buckets per octave. 64 gives < 1.6 % relative error.
const SUB_BUCKETS: u64 = 64;
/// log2 of `SUB_BUCKETS`.
const SUB_BITS: u32 = 6;

/// Number of buckets needed to cover the full `u64` range.
const BUCKET_COUNT: usize = ((64 - SUB_BITS as usize) + 1) * SUB_BUCKETS as usize;

/// A log-linear histogram of `u64` samples (nanoseconds, typically).
///
/// # Examples
///
/// ```
/// use falcon_metrics::Histogram;
///
/// let mut h = Histogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 1000);
/// let p50 = h.percentile(50.0);
/// assert!((490..=515).contains(&p50), "p50 was {p50}");
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

fn bucket_index(value: u64) -> usize {
    if value < 2 * SUB_BUCKETS {
        return value as usize;
    }
    // The octave is determined by the position of the highest set bit.
    let msb = 63 - value.leading_zeros();
    let octave = msb - SUB_BITS; // >= 1 here.
    let sub = (value >> octave) - SUB_BUCKETS; // In [0, SUB_BUCKETS).
    ((octave as u64 + 1) * SUB_BUCKETS + sub) as usize
}

/// Returns a representative value (upper bound) for a bucket index.
fn bucket_value(index: usize) -> u64 {
    let index = index as u64;
    if index < 2 * SUB_BUCKETS {
        return index;
    }
    let octave = index / SUB_BUCKETS - 1;
    let sub = index % SUB_BUCKETS;
    // Upper edge of the sub-bucket minus one (the largest value mapping
    // to this bucket). Computed in u128: the topmost bucket's edge is
    // 2^64, which overflows u64.
    let edge = ((SUB_BUCKETS + sub + 1) as u128) << octave;
    (edge - 1).min(u64::MAX as u128) as u64
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; BUCKET_COUNT],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` identical samples.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_index(value)] += n;
        self.count += n;
        self.sum += value as u128 * n as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Returns the number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Returns the arithmetic mean, or 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Returns the smallest recorded sample, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Returns the largest recorded sample, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Returns the value at percentile `p` (0–100), with the bucketing's
    /// bounded relative error. Returns 0 for an empty histogram.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> u64 {
        assert!((0.0..=100.0).contains(&p), "percentile must be in 0..=100");
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_value(i).min(self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Returns the histogram of the samples recorded into `self` after
    /// the snapshot `earlier` was taken, by bucket-wise subtraction.
    ///
    /// This is what makes per-worker histogram *shards* snapshotable:
    /// a sampler can keep the previous cumulative snapshot and compute
    /// the interval histogram without coordinating with the writer.
    /// `earlier` must be a prior snapshot of the same recording stream
    /// (every bucket of `earlier` ≤ the matching bucket of `self`);
    /// mismatched snapshots saturate to zero rather than underflow.
    ///
    /// The delta's `min`/`max` are bucket-resolution approximations:
    /// the exact extremes of the interval are not recoverable from two
    /// cumulative snapshots.
    pub fn delta_since(&self, earlier: &Histogram) -> Histogram {
        let mut out = Histogram::new();
        for (i, (&cur, &old)) in self.counts.iter().zip(earlier.counts.iter()).enumerate() {
            let d = cur.saturating_sub(old);
            if d > 0 {
                let rep = bucket_value(i);
                out.counts[i] = d;
                out.count += d;
                out.min = out.min.min(rep);
                out.max = out.max.max(rep);
            }
        }
        out.sum = self.sum.saturating_sub(earlier.sum);
        out
    }

    /// Iterates over `(representative_value, count)` for non-empty
    /// buckets, in increasing value order.
    pub fn iter_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_value(i), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..128u64 {
            h.record(v);
        }
        for (i, (val, count)) in h.iter_buckets().enumerate() {
            assert_eq!(val, i as u64);
            assert_eq!(count, 1);
        }
    }

    #[test]
    fn bucket_relative_error_bounded() {
        for value in [
            100u64,
            1_000,
            10_000,
            123_456,
            9_999_999,
            u32::MAX as u64 * 3,
        ] {
            let rep = bucket_value(bucket_index(value));
            assert!(rep >= value, "representative below sample: {rep} < {value}");
            let err = (rep - value) as f64 / value as f64;
            assert!(
                err < 1.0 / SUB_BUCKETS as f64 + 1e-9,
                "error {err} for {value}"
            );
        }
    }

    #[test]
    fn bucket_index_monotone_at_boundaries() {
        // Crossing every octave boundary must never decrease the index.
        let mut last = 0usize;
        for shift in 6..32 {
            for delta in [-1i64, 0, 1] {
                let v = ((1u64 << shift) as i64 + delta) as u64;
                let idx = bucket_index(v);
                assert!(idx >= last, "index regressed at {v}");
                last = idx;
            }
        }
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.percentile(99.0), 0);
    }

    #[test]
    fn mean_min_max() {
        let mut h = Histogram::new();
        h.record(10);
        h.record(20);
        h.record(30);
        assert_eq!(h.mean(), 20.0);
        assert_eq!(h.min(), 10);
        assert_eq!(h.max(), 30);
    }

    #[test]
    fn percentiles_of_uniform_data() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for (p, expected) in [
            (50.0, 5_000u64),
            (90.0, 9_000),
            (99.0, 9_900),
            (100.0, 10_000),
        ] {
            let got = h.percentile(p);
            let err = (got as f64 - expected as f64).abs() / expected as f64;
            assert!(err < 0.02, "p{p}: got {got}, expected ~{expected}");
        }
    }

    #[test]
    fn p100_is_max_even_with_bucketing() {
        let mut h = Histogram::new();
        h.record(1_000_003);
        assert_eq!(h.percentile(100.0), 1_000_003);
    }

    #[test]
    fn record_n_equivalent_to_loop() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record_n(12345, 100);
        for _ in 0..100 {
            b.record(12345);
        }
        assert_eq!(a.count(), b.count());
        assert_eq!(a.percentile(50.0), b.percentile(50.0));
        assert_eq!(a.mean(), b.mean());
        a.record_n(77, 0);
        assert_eq!(a.count(), 100);
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in 1..=100u64 {
            a.record(v);
        }
        for v in 101..=200u64 {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 200);
        assert_eq!(a.min(), 1);
        assert_eq!(a.max(), 200);
        let p50 = a.percentile(50.0);
        assert!((98..=103).contains(&p50), "merged p50 {p50}");
    }

    #[test]
    fn delta_since_recovers_interval() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let snap = h.clone();
        for v in 1_000..1_050u64 {
            h.record(v);
        }
        let d = h.delta_since(&snap);
        assert_eq!(d.count(), 50);
        assert!(d.min() >= 999, "delta min {} in interval", d.min());
        assert!(d.percentile(100.0) >= 1_049);
        // Snapshot of an unchanged stream is empty.
        assert_eq!(h.delta_since(&h.clone()).count(), 0);
    }

    #[test]
    fn huge_values_do_not_panic() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX / 2);
        assert_eq!(h.count(), 2);
        assert!(h.percentile(100.0) >= u64::MAX / 2);
    }
}

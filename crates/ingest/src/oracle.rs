//! Differential oracle with explicit loss accounting.
//!
//! The sender logged, per flow, the digest of every frame it
//! generated. The pipeline logged, per delivery, the digest it
//! computed from the bytes that actually survived the socket and all
//! seven stages. Because datagrams can be lost (kernel queue
//! overflow, deliberate suppression) and corrupted (pre-send bit
//! flips the stages reject), equality is the wrong check — the right
//! one is that each flow's delivered digests form an **in-order
//! subsequence** of the sender's log, plus a conservation identity
//! that names where every missing frame went. Nothing is allowed to
//! vanish silently.

use falcon_dataplane::RunOutput;

use crate::source::RxStats;
use crate::tx::SentLog;

/// The oracle's verdict plus the loss-accounting breakdown.
#[derive(Clone, Debug)]
pub struct OracleReport {
    /// All checks passed.
    pub ok: bool,
    /// Delivered digests that were not an in-order subsequence of the
    /// sender's log (per-flow count summed). Bounded by the
    /// corruptor's flip count — see `check`.
    pub digest_mismatches: u64,
    /// Deliveries on flow ids the sender never used. A pre-send bit
    /// flip in the outer UDP source port survives every stage (the
    /// outer UDP checksum is legitimately zero per RFC 7348 §4.1) and
    /// re-steers the frame, exactly as hardware RSS would; each such
    /// frame is one misattribution, never silent loss.
    pub misattributed: u64,
    /// Frames that left the sender but never reached the rx thread:
    /// `sent - datagrams` (includes deliberate suppression).
    pub socket_loss: u64,
    /// Frames the stages rejected as malformed (summed over stages).
    pub malformed: u64,
    /// Ring tail-drops inside the pipeline (injector + workers).
    pub ring_drops: u64,
    /// Human-readable failures, empty when `ok`.
    pub errors: Vec<String>,
}

/// Runs the subsequence check and the conservation identities.
pub fn check(sent: &SentLog, rx: &RxStats, out: &RunOutput) -> OracleReport {
    let mut errors = Vec::new();

    // --- conservation identities -------------------------------------
    // Sender → socket: anything generated but never read off the
    // socket is socket loss (kernel drop or deliberate suppression).
    let socket_loss = match sent.sent.checked_sub(rx.datagrams) {
        Some(l) => l,
        None => {
            errors.push(format!(
                "rx saw more datagrams ({}) than sender generated ({})",
                rx.datagrams, sent.sent
            ));
            0
        }
    };
    if socket_loss < sent.suppressed {
        errors.push(format!(
            "socket loss {} below deliberate suppression {}",
            socket_loss, sent.suppressed
        ));
    }

    // Socket → rings: the rx thread injects everything that is not a
    // runt, exactly once.
    if rx.injected != rx.datagrams - rx.runts {
        errors.push(format!(
            "rx injected {} != datagrams {} - runts {}",
            rx.injected, rx.datagrams, rx.runts
        ));
    }
    if out.injected != rx.injected {
        errors.push(format!(
            "pipeline counted {} injected, rx thread handed it {}",
            out.injected, rx.injected
        ));
    }

    // Rings → exit: every injected packet is delivered or dropped
    // (quiescence guarantees this; check it anyway).
    let delivered = out.delivered();
    let dropped = out.dropped();
    if delivered + dropped != out.injected {
        errors.push(format!(
            "pipeline leaked packets: delivered {} + dropped {} != injected {}",
            delivered, dropped, out.injected
        ));
    }

    // End to end: every generated frame is delivered, rejected as
    // malformed, ring-dropped, a runt, or socket loss.
    let malformed: u64 = out.malformed_per_stage().iter().sum();
    let other_drops = dropped - malformed.min(dropped);
    let accounted = delivered + malformed + other_drops + rx.runts + socket_loss;
    if accounted != sent.sent {
        errors.push(format!(
            "conservation broken: delivered {} + malformed {} + other drops {} \
             + runts {} + socket loss {} = {} != sent {}",
            delivered, malformed, other_drops, rx.runts, socket_loss, accounted, sent.sent
        ));
    }

    // --- per-flow digest subsequence ---------------------------------
    // Deliveries carry the rx-assigned arrival seq; sorting by it
    // recovers each flow's arrival order regardless of which worker
    // delivered what.
    let mut per_flow: Vec<Vec<(u64, u64)>> = vec![Vec::new(); sent.per_flow.len()];
    let mut misattributed = 0u64;
    for (flow, seq, digest) in out.deliveries() {
        match per_flow.get_mut(flow as usize) {
            Some(v) => v.push((seq, digest)),
            None => misattributed += 1,
        }
    }

    let mut digest_mismatches = 0u64;
    for (flow, got) in per_flow.iter_mut().enumerate() {
        got.sort_unstable_by_key(|&(seq, _)| seq);
        let expected = &sent.per_flow[flow];
        // Two-pointer subsequence scan: each delivered digest must
        // appear in the sender's log at or after the previous match.
        let mut ei = 0usize;
        let mut miss = 0u64;
        for &(_, digest) in got.iter() {
            while ei < expected.len() && expected[ei] != digest {
                ei += 1;
            }
            if ei == expected.len() {
                miss += 1;
            } else {
                ei += 1;
            }
        }
        if miss > 0 && sent.corrupted == 0 {
            errors.push(format!(
                "flow {}: {} delivered digests fall outside the in-order \
                 subsequence of the send log",
                flow, miss
            ));
        }
        digest_mismatches += miss;
    }

    // A non-checksummed-header flip (outer src port, outer src MAC)
    // survives the stages and either lands on a foreign flow
    // (misattributed / digest mismatch) or delivers unharmed. Each
    // corrupt frame explains at most one stray, so the corruptor's
    // count is a hard budget; with the corruptor off the budget is
    // zero and any stray is an error.
    let strays = digest_mismatches + misattributed;
    if strays > sent.corrupted {
        errors.push(format!(
            "{} stray deliveries ({} digest mismatches + {} on unknown flows) \
             exceed the {} frames the corruptor touched",
            strays, digest_mismatches, misattributed, sent.corrupted
        ));
    }

    OracleReport {
        ok: errors.is_empty(),
        digest_mismatches,
        misattributed,
        socket_loss,
        malformed,
        ring_drops: other_drops,
        errors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sent(per_flow: Vec<Vec<u64>>) -> SentLog {
        let sent = per_flow.iter().map(|f| f.len() as u64).sum();
        SentLog {
            sent,
            suppressed: 0,
            corrupted: 0,
            bytes: 0,
            per_flow,
        }
    }

    #[test]
    fn subsequence_scan_accepts_gaps_rejects_reorder() {
        let expected = [10u64, 20, 30, 40];
        // Gap (20 missing) is fine; reorder (30 before 20) is not.
        for (got, mismatches) in [
            (vec![10u64, 30, 40], 0u64),
            (vec![10, 40], 0),
            (vec![30, 20], 1),
            (vec![99], 1),
        ] {
            let mut ei = 0usize;
            let mut miss = 0u64;
            for d in &got {
                while ei < expected.len() && expected[ei] != *d {
                    ei += 1;
                }
                if ei == expected.len() {
                    miss += 1;
                } else {
                    ei += 1;
                }
            }
            assert_eq!(miss, mismatches, "got {:?}", got);
        }
    }

    #[test]
    fn socket_loss_is_sent_minus_received() {
        let log = sent(vec![vec![1, 2, 3, 4]]);
        let rx = RxStats {
            datagrams: 3,
            batches: 1,
            eagain_spins: 0,
            runts: 0,
            sock_drops: None,
            injected: 3,
            batch_hist: vec![0, 0, 0, 1],
            backend: "test",
        };
        // Empty pipeline output: 3 injected never delivered → the
        // conservation check must flag the leak, but socket loss is
        // still computed.
        let out = RunOutput {
            policy: falcon_dataplane::PolicyKind::Vanilla,
            workers: 0,
            host_cores: 0,
            split_gro: false,
            injected: 3,
            inject_drops: 0,
            wall_ns: 0,
            stage_ns: Vec::new(),
            flow_pairs: 0,
            workers_stats: Vec::new(),
            injector_events: Vec::new(),
            injector_overflow: 0,
            wire: true,
            bytes_injected: 0,
            corrupted_segments: 0,
            meta: falcon_trace::TraceMeta {
                n_cores: 0,
                devices: Vec::new(),
            },
            telemetry: None,
            slab: None,
        };
        let report = check(&log, &rx, &out);
        assert_eq!(report.socket_loss, 1);
        assert!(!report.ok, "3 injected packets vanished");
    }
}

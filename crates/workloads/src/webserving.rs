//! CloudSuite-style web serving (Elgg social network).
//!
//! Figure 17's workload: `users` concurrent sessions issue a mix of
//! social-network operations against an nginx container on a schedule
//! (the benchmark driver's cycle times — hence the paper's "delay
//! time": the gap between the target completion and the actual one).
//! Each operation charges per-operation rendering work (nginx + PHP)
//! on the web tier's application cores, which share the machine with
//! the receive path's softirqs — the contention Falcon's dynamic
//! balancing resolves by steering softirqs to less-loaded cores.
//!
//! Reported per operation, as the paper does: success rate
//! (operations completing within the target), average response time,
//! and average delay time (actual − target, clamped at zero).

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use falcon_netstack::sim::{App, SimApi};
use falcon_netstack::{FlowId, MsgMeta, NetMode, SockId};
use falcon_simcore::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One Elgg operation type.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct OpSpec {
    /// Operation name (matches the figure's x-axis).
    pub name: &'static str,
    /// Relative weight in the mix.
    pub weight: u32,
    /// Request size, bytes.
    pub request: usize,
    /// Response (page) size, bytes.
    pub response: usize,
    /// Packets per operation: the page plus its assets and the
    /// inter-tier (cache/database) traffic that also crosses the
    /// overlay — each sub-request traverses the full softirq path.
    pub sub_requests: u32,
    /// Server-side service time (nginx + cache + database), ns.
    pub service_ns: u64,
    /// Target completion time (the benchmark's per-op deadline).
    pub target: SimDuration,
}

/// The Elgg operation mix (shapes from the CloudSuite benchmark; sizes
/// and service times are calibration constants).
pub const ELGG_OPS: [OpSpec; 8] = [
    OpSpec {
        name: "BrowsetoElgg",
        weight: 25,
        request: 300,
        response: 24_000,
        sub_requests: 8,
        service_ns: 8_000,
        target: SimDuration::from_micros(400),
    },
    OpSpec {
        name: "CheckActivity",
        weight: 20,
        request: 350,
        response: 16_000,
        sub_requests: 6,
        service_ns: 10_000,
        target: SimDuration::from_micros(400),
    },
    OpSpec {
        name: "Login",
        weight: 10,
        request: 500,
        response: 9_000,
        sub_requests: 5,
        service_ns: 16_000,
        target: SimDuration::from_micros(500),
    },
    OpSpec {
        name: "PostSelfWall",
        weight: 10,
        request: 800,
        response: 6_000,
        sub_requests: 6,
        service_ns: 15_000,
        target: SimDuration::from_micros(500),
    },
    OpSpec {
        name: "SendChatMessage",
        weight: 15,
        request: 600,
        response: 4_000,
        sub_requests: 4,
        service_ns: 12_000,
        target: SimDuration::from_micros(400),
    },
    OpSpec {
        name: "AddFriend",
        weight: 8,
        request: 450,
        response: 5_000,
        sub_requests: 5,
        service_ns: 13_000,
        target: SimDuration::from_micros(400),
    },
    OpSpec {
        name: "Register",
        weight: 5,
        request: 900,
        response: 8_000,
        sub_requests: 7,
        service_ns: 15_000,
        target: SimDuration::from_micros(600),
    },
    OpSpec {
        name: "Logout",
        weight: 7,
        request: 250,
        response: 3_000,
        sub_requests: 3,
        service_ns: 10_000,
        target: SimDuration::from_micros(300),
    },
];

/// Configuration of the web-serving workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WebServingConfig {
    /// Concurrent users (each a TCP connection; the paper loads 200).
    pub users: usize,
    /// Cycle time of each user: a new operation is issued on this
    /// period regardless of completion (the Faban driver's schedule;
    /// compressed from the benchmark's seconds to keep simulated
    /// minutes short — documented in EXPERIMENTS.md).
    pub cycle: SimDuration,
    /// Web-server application cores (shared with the receive path, as
    /// on a busy web server).
    pub app_cores: Vec<usize>,
}

impl WebServingConfig {
    /// A `users`-user load.
    pub fn new(users: usize) -> Self {
        WebServingConfig {
            users,
            cycle: SimDuration::from_micros(2_800),
            app_cores: vec![1, 2, 3, 4, 5, 6],
        }
    }
}

/// Per-operation accumulated results.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OpStats {
    /// Operations completed.
    pub completed: u64,
    /// Operations completed within their target ("success").
    pub successes: u64,
    /// Sum of response times, ns.
    pub response_ns_sum: u128,
    /// Sum of delay times (actual − target, clamped at 0), ns.
    pub delay_ns_sum: u128,
}

impl OpStats {
    /// Mean response time in microseconds.
    pub fn avg_response_us(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.response_ns_sum as f64 / self.completed as f64 / 1e3
        }
    }

    /// Mean delay time in microseconds.
    pub fn avg_delay_us(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.delay_ns_sum as f64 / self.completed as f64 / 1e3
        }
    }
}

/// Shared results handle: per-op stats by name.
pub type WebStats = Rc<RefCell<HashMap<&'static str, OpStats>>>;

/// An in-flight operation instance.
#[derive(Debug, Clone, Copy)]
struct OpInstance {
    op_idx: usize,
    issued: SimTime,
    remaining: u32,
}

/// The web-serving application.
pub struct WebServing {
    config: WebServingConfig,
    stats: WebStats,
    /// Sub-request message id → operation instance id.
    outstanding: HashMap<u64, u64>,
    /// In-flight operations by instance id.
    ops: HashMap<u64, OpInstance>,
    next_op_instance: u64,
    total_weight: u32,
}

impl WebServing {
    /// Creates the app and its shared stats handle.
    pub fn new(config: WebServingConfig) -> (Self, WebStats) {
        let stats: WebStats = Rc::new(RefCell::new(HashMap::new()));
        let total_weight = ELGG_OPS.iter().map(|op| op.weight).sum();
        (
            WebServing {
                config,
                stats: stats.clone(),
                outstanding: HashMap::new(),
                ops: HashMap::new(),
                next_op_instance: 0,
                total_weight,
            },
            stats,
        )
    }

    fn pick_op(&self, api: &mut SimApi<'_>) -> usize {
        let mut roll = api.rng().gen_range(self.total_weight as u64) as u32;
        for (i, op) in ELGG_OPS.iter().enumerate() {
            if roll < op.weight {
                return i;
            }
            roll -= op.weight;
        }
        ELGG_OPS.len() - 1
    }

    fn issue(&mut self, api: &mut SimApi<'_>, flow: FlowId) {
        let op_idx = self.pick_op(api);
        let op = &ELGG_OPS[op_idx];
        let instance = self.next_op_instance;
        self.next_op_instance += 1;
        self.ops.insert(
            instance,
            OpInstance {
                op_idx,
                issued: api.now(),
                remaining: op.sub_requests,
            },
        );
        // The page and its assets/inter-tier requests, pipelined on the
        // user's connection.
        for _ in 0..op.sub_requests {
            let msg_id = api.tcp_request(flow, op.request / op.sub_requests as usize + 40);
            self.outstanding.insert(msg_id, instance);
        }
    }
}

impl App for WebServing {
    fn on_start(&mut self, api: &mut SimApi<'_>) {
        let overlay = api.inner.cfg.server.mode == NetMode::Overlay;
        let container = if overlay {
            Some(api.add_container(0, 10))
        } else {
            None
        };
        // nginx worker pool: one listening socket per worker core;
        // users are assigned round-robin (pm.max_children-style
        // parallelism). Per-op work is charged via the response path.
        let mut socks = Vec::new();
        for (w, &core) in self.config.app_cores.iter().enumerate() {
            socks.push((
                api.bind_tcp(container, 80 + w as u16 * 1000, core, 0),
                80 + w as u16 * 1000,
            ));
        }
        for u in 0..self.config.users {
            let (_, port) = socks[u % socks.len()];
            let flow = api.tcp_flow(container, port, 16);
            // Stagger users across one cycle to avoid a thundering herd.
            let offset = self
                .config
                .cycle
                .mul_f64(u as f64 / self.config.users as f64);
            api.eng.schedule_after(offset, {
                move |s: &mut falcon_netstack::Sim,
                      e: &mut falcon_simcore::Engine<falcon_netstack::Sim>| {
                    falcon_netstack::sim::with_app(s, e, |app, api| {
                        app.on_timer(api, flow.0 as u64)
                    });
                }
            });
        }
    }

    fn on_server_msg(&mut self, api: &mut SimApi<'_>, sock: SockId, meta: &MsgMeta) {
        // Render and respond: each sub-request's share of the op's
        // nginx+PHP+cache+database work runs on the worker's core
        // before its fragment of the page goes out.
        let op = self
            .outstanding
            .get(&meta.msg_id)
            .and_then(|inst| self.ops.get(inst))
            .map(|o| ELGG_OPS[o.op_idx])
            .unwrap_or(ELGG_OPS[0]);
        api.respond_with_service(
            sock,
            meta,
            op.response / op.sub_requests as usize,
            op.service_ns,
        );
    }

    fn on_timer(&mut self, api: &mut SimApi<'_>, token: u64) {
        // A user's cycle fired: issue the next operation and stay on
        // schedule regardless of whether earlier ones completed.
        let flow = FlowId(token as u32);
        self.issue(api, flow);
        let cycle = self.config.cycle;
        api.set_timer(cycle, token);
    }

    fn on_client_msg(&mut self, api: &mut SimApi<'_>, _flow: FlowId, meta: &MsgMeta) {
        let Some(instance) = self.outstanding.remove(&meta.msg_id) else {
            return;
        };
        let Some(op_state) = self.ops.get_mut(&instance) else {
            return;
        };
        op_state.remaining -= 1;
        if op_state.remaining > 0 {
            return;
        }
        let op_state = self.ops.remove(&instance).expect("checked present");
        let op = &ELGG_OPS[op_state.op_idx];
        let elapsed = api.now().saturating_since(op_state.issued);
        let mut stats = self.stats.borrow_mut();
        let entry = stats.entry(op.name).or_default();
        entry.completed += 1;
        if elapsed <= op.target {
            entry.successes += 1;
        }
        entry.response_ns_sum += elapsed.as_nanos() as u128;
        entry.delay_ns_sum += elapsed.saturating_sub(op.target).as_nanos() as u128;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_mix_is_normalized() {
        let total: u32 = ELGG_OPS.iter().map(|o| o.weight).sum();
        assert_eq!(total, 100, "weights sum to 100 for readability");
        for op in &ELGG_OPS {
            assert!(
                op.response > op.request,
                "{} pages exceed requests",
                op.name
            );
            assert!(op.service_ns > 0);
        }
    }

    #[test]
    fn op_stats_means() {
        let mut s = OpStats::default();
        assert_eq!(s.avg_response_us(), 0.0);
        s.completed = 2;
        s.response_ns_sum = 4_000;
        s.delay_ns_sum = 2_000;
        assert_eq!(s.avg_response_us(), 2.0);
        assert_eq!(s.avg_delay_us(), 1.0);
    }
}

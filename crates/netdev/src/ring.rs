//! Bounded packet queues: NIC rx rings and per-CPU backlogs.
//!
//! Both are tail-drop FIFOs with drop accounting. The backlog array
//! models `softnet_data.input_pkt_queue` — one queue per CPU, bounded by
//! `netdev_max_backlog` (default 1000). `enqueue_to_backlog` (called by
//! `netif_rx`, RPS, and Falcon's stage transitions) pushes here, and the
//! `process_backlog` NAPI poll drains it.

use falcon_packet::SkBuff;
use std::collections::VecDeque;

/// A bounded tail-drop FIFO of packets.
#[derive(Debug, Default)]
pub struct RxRing {
    queue: VecDeque<SkBuff>,
    capacity: usize,
    dropped: u64,
    enqueued: u64,
}

impl RxRing {
    /// Creates a ring holding at most `capacity` packets.
    pub fn new(capacity: usize) -> Self {
        RxRing {
            queue: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
            enqueued: 0,
        }
    }

    /// Enqueues a packet; returns `false` (and counts a drop) if full.
    pub fn push(&mut self, skb: SkBuff) -> bool {
        if self.queue.len() >= self.capacity {
            self.dropped += 1;
            false
        } else {
            self.queue.push_back(skb);
            self.enqueued += 1;
            true
        }
    }

    /// Dequeues the oldest packet.
    pub fn pop(&mut self) -> Option<SkBuff> {
        self.queue.pop_front()
    }

    /// Packets currently queued.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Returns `true` if no packets are queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Total packets dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total packets accepted.
    pub fn enqueued(&self) -> u64 {
        self.enqueued
    }

    /// Peeks at the oldest packet without dequeuing.
    pub fn front(&self) -> Option<&SkBuff> {
        self.queue.front()
    }
}

/// Per-CPU input packet queues (`softnet_data.input_pkt_queue`).
#[derive(Debug)]
pub struct Backlogs {
    queues: Vec<RxRing>,
    /// Whether the backlog NAPI is already scheduled on each CPU (the
    /// `NAPI_STATE_SCHED` bit): a second enqueue does not raise another
    /// softirq.
    napi_scheduled: Vec<bool>,
}

impl Backlogs {
    /// Creates per-CPU backlogs with `capacity` (`netdev_max_backlog`).
    pub fn new(n_cpus: usize, capacity: usize) -> Self {
        Backlogs {
            queues: (0..n_cpus).map(|_| RxRing::new(capacity)).collect(),
            napi_scheduled: vec![false; n_cpus],
        }
    }

    /// Enqueues onto `cpu`'s backlog. Returns `(accepted, need_softirq)`:
    /// `need_softirq` is `true` when the backlog NAPI was not yet
    /// scheduled on that CPU and the caller must raise `NET_RX` there.
    pub fn enqueue(&mut self, cpu: usize, skb: SkBuff) -> (bool, bool) {
        let accepted = self.queues[cpu].push(skb);
        if !accepted {
            return (false, false);
        }
        let need_softirq = !self.napi_scheduled[cpu];
        if need_softirq {
            self.napi_scheduled[cpu] = true;
        }
        (true, need_softirq)
    }

    /// Dequeues from `cpu`'s backlog.
    pub fn dequeue(&mut self, cpu: usize) -> Option<SkBuff> {
        self.queues[cpu].pop()
    }

    /// Peeks at the oldest packet on `cpu`'s backlog.
    pub fn peek(&self, cpu: usize) -> Option<&SkBuff> {
        self.queues[cpu].front()
    }

    /// Packets queued on `cpu`.
    pub fn len(&self, cpu: usize) -> usize {
        self.queues[cpu].len()
    }

    /// Returns `true` if every backlog is empty.
    pub fn all_empty(&self) -> bool {
        self.queues.iter().all(|q| q.is_empty())
    }

    /// Marks `cpu`'s backlog NAPI complete (`napi_complete`): the next
    /// enqueue will need a new softirq.
    pub fn napi_complete(&mut self, cpu: usize) {
        self.napi_scheduled[cpu] = false;
    }

    /// Whether `cpu`'s backlog NAPI is scheduled.
    pub fn is_napi_scheduled(&self, cpu: usize) -> bool {
        self.napi_scheduled[cpu]
    }

    /// Total drops across CPUs.
    pub fn total_dropped(&self) -> u64 {
        self.queues.iter().map(|q| q.dropped()).sum()
    }

    /// Drops on one CPU.
    pub fn dropped(&self, cpu: usize) -> u64 {
        self.queues[cpu].dropped()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use falcon_packet::PacketId;

    fn skb(id: u64) -> SkBuff {
        SkBuff::new(PacketId(id), vec![0u8; 60])
    }

    #[test]
    fn ring_fifo_order() {
        let mut ring = RxRing::new(4);
        assert!(ring.is_empty());
        for i in 0..3 {
            assert!(ring.push(skb(i)));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.front().unwrap().id, PacketId(0));
        assert_eq!(ring.pop().unwrap().id, PacketId(0));
        assert_eq!(ring.pop().unwrap().id, PacketId(1));
        assert_eq!(ring.pop().unwrap().id, PacketId(2));
        assert!(ring.pop().is_none());
    }

    #[test]
    fn ring_tail_drop() {
        let mut ring = RxRing::new(2);
        assert!(ring.push(skb(0)));
        assert!(ring.push(skb(1)));
        assert!(!ring.push(skb(2)));
        assert_eq!(ring.dropped(), 1);
        assert_eq!(ring.enqueued(), 2);
        assert_eq!(ring.len(), 2);
        // Draining makes room again.
        ring.pop();
        assert!(ring.push(skb(3)));
    }

    #[test]
    fn backlog_softirq_coalescing() {
        let mut b = Backlogs::new(2, 100);
        let (ok, raise) = b.enqueue(1, skb(0));
        assert!(ok && raise, "first enqueue needs a softirq");
        let (ok, raise) = b.enqueue(1, skb(1));
        assert!(ok && !raise, "NAPI already scheduled: no new softirq");
        assert!(b.is_napi_scheduled(1));
        assert!(!b.is_napi_scheduled(0));
        assert_eq!(b.len(1), 2);

        b.dequeue(1);
        b.dequeue(1);
        b.napi_complete(1);
        let (_, raise) = b.enqueue(1, skb(2));
        assert!(raise, "after napi_complete a new softirq is needed");
    }

    #[test]
    fn backlog_drop_does_not_schedule() {
        let mut b = Backlogs::new(1, 1);
        let (_, raise) = b.enqueue(0, skb(0));
        assert!(raise);
        // Fill: drop, no softirq state change.
        let (ok, raise) = b.enqueue(0, skb(1));
        assert!(!ok && !raise);
        assert_eq!(b.total_dropped(), 1);
        assert_eq!(b.dropped(0), 1);
    }

    #[test]
    fn all_empty() {
        let mut b = Backlogs::new(2, 10);
        assert!(b.all_empty());
        b.enqueue(0, skb(0));
        assert!(!b.all_empty());
        b.dequeue(0);
        assert!(b.all_empty());
    }
}

//! Per-core, per-context CPU time accounting.
//!
//! The simulated machine charges every unit of executed work to a
//! `(core, context, kernel function)` triple. From this ledger the
//! experiment harness derives exactly what the paper measures with
//! `mpstat`/`perf`: per-core utilization stacked by context (Figures 5
//! and 11), per-function shares (Figures 6 and 9a) and total CPU cost at
//! fixed load (Figure 19).

use std::collections::HashMap;

use falcon_simcore::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Execution context of a unit of CPU work, mirroring how `/proc/stat`
/// splits time into `irq`, `softirq`, `user`/`system` and idle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Context {
    /// Hardware interrupt handler.
    HardIrq,
    /// Software interrupt handler (the NET_RX work this paper is about).
    SoftIrq,
    /// Process context: syscalls, copies to user space, application work.
    Task,
}

impl Context {
    /// All accountable contexts, in display order.
    pub const ALL: [Context; 3] = [Context::HardIrq, Context::SoftIrq, Context::Task];

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Context::HardIrq => "hardirq",
            Context::SoftIrq => "softirq",
            Context::Task => "task",
        }
    }
}

/// Busy-time totals for one core.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CoreUsage {
    /// Nanoseconds spent in hardirq context.
    pub hardirq_ns: u64,
    /// Nanoseconds spent in softirq context.
    pub softirq_ns: u64,
    /// Nanoseconds spent in task context.
    pub task_ns: u64,
}

impl CoreUsage {
    /// Total busy nanoseconds.
    pub fn busy_ns(&self) -> u64 {
        self.hardirq_ns + self.softirq_ns + self.task_ns
    }

    fn slot(&mut self, ctx: Context) -> &mut u64 {
        match ctx {
            Context::HardIrq => &mut self.hardirq_ns,
            Context::SoftIrq => &mut self.softirq_ns,
            Context::Task => &mut self.task_ns,
        }
    }

    /// Returns the accumulated time for one context.
    pub fn get(&self, ctx: Context) -> u64 {
        match ctx {
            Context::HardIrq => self.hardirq_ns,
            Context::SoftIrq => self.softirq_ns,
            Context::Task => self.task_ns,
        }
    }
}

/// The machine-wide CPU accounting ledger.
///
/// Not serializable: function names are interned `&'static str`s. The
/// harness serializes derived artifacts ([`crate::Profile`],
/// utilization vectors) instead.
#[derive(Debug, Clone)]
pub struct CpuLedger {
    cores: Vec<CoreUsage>,
    /// Per-(core, context, function) attribution in nanoseconds.
    functions: HashMap<(usize, Context, &'static str), u64>,
    /// When accounting started (for utilization denominators).
    epoch: SimTime,
}

impl CpuLedger {
    /// Creates a ledger for `n_cores` cores.
    pub fn new(n_cores: usize) -> Self {
        CpuLedger {
            cores: vec![CoreUsage::default(); n_cores],
            functions: HashMap::new(),
            epoch: SimTime::ZERO,
        }
    }

    /// Number of cores tracked.
    pub fn n_cores(&self) -> usize {
        self.cores.len()
    }

    /// Charges `dur` of work on `core` in `ctx`, attributed to `func`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn charge(&mut self, core: usize, ctx: Context, func: &'static str, dur: SimDuration) {
        *self.cores[core].slot(ctx) += dur.as_nanos();
        *self.functions.entry((core, ctx, func)).or_insert(0) += dur.as_nanos();
    }

    /// Returns the usage of one core.
    pub fn core(&self, core: usize) -> &CoreUsage {
        &self.cores[core]
    }

    /// Returns the total busy time across all cores.
    pub fn total_busy(&self) -> SimDuration {
        SimDuration::from_nanos(self.cores.iter().map(|c| c.busy_ns()).sum())
    }

    /// Returns per-core utilization (0–1) over the window ending at `now`.
    pub fn utilization(&self, now: SimTime) -> Vec<f64> {
        let window = now.saturating_since(self.epoch).as_nanos().max(1) as f64;
        self.cores
            .iter()
            .map(|c| (c.busy_ns() as f64 / window).min(1.0))
            .collect()
    }

    /// Returns machine-wide average utilization (0–1) over the window
    /// ending at `now`.
    pub fn avg_utilization(&self, now: SimTime) -> f64 {
        let u = self.utilization(now);
        if u.is_empty() {
            0.0
        } else {
            u.iter().sum::<f64>() / u.len() as f64
        }
    }

    /// Total nanoseconds attributed to `func` across all cores.
    pub fn function_total(&self, func: &str) -> u64 {
        self.functions
            .iter()
            .filter(|((_, _, f), _)| *f == func)
            .map(|(_, &ns)| ns)
            .sum()
    }

    /// Nanoseconds attributed to `func` on one core.
    pub fn function_on_core(&self, core: usize, func: &str) -> u64 {
        self.functions
            .iter()
            .filter(|((c, _, f), _)| *c == core && *f == func)
            .map(|(_, &ns)| ns)
            .sum()
    }

    /// Returns all `(function, total_ns)` pairs, sorted by descending
    /// time, aggregated over cores and contexts.
    pub fn functions_by_time(&self) -> Vec<(&'static str, u64)> {
        let mut totals: HashMap<&'static str, u64> = HashMap::new();
        for ((_, _, f), ns) in &self.functions {
            *totals.entry(f).or_insert(0) += ns;
        }
        let mut v: Vec<_> = totals.into_iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        v
    }

    /// Returns `(context, function, total_ns)` triples, sorted by
    /// descending time, aggregated over cores. This is the input for
    /// context-split flamegraphs (`root;context;func`).
    pub fn functions_by_context(&self) -> Vec<(Context, &'static str, u64)> {
        let mut totals: HashMap<(Context, &'static str), u64> = HashMap::new();
        for ((_, ctx, f), ns) in &self.functions {
            *totals.entry((*ctx, f)).or_insert(0) += ns;
        }
        let mut v: Vec<_> = totals
            .into_iter()
            .map(|((ctx, f), ns)| (ctx, f, ns))
            .collect();
        v.sort_by(|a, b| {
            b.2.cmp(&a.2)
                .then(a.0.label().cmp(b.0.label()))
                .then(a.1.cmp(b.1))
        });
        v
    }

    /// Iterates over `(core, function, ns)` attribution, aggregated
    /// per call site's context split (a `(core, function)` pair charged
    /// in two contexts yields two items).
    pub fn iter_attribution(&self) -> impl Iterator<Item = (usize, &'static str, u64)> + '_ {
        self.functions
            .iter()
            .map(|(&(core, _, func), &ns)| (core, func, ns))
    }

    /// Iterates over the full `(core, context, function, ns)`
    /// attribution.
    pub fn iter_attribution_by_context(
        &self,
    ) -> impl Iterator<Item = (usize, Context, &'static str, u64)> + '_ {
        self.functions
            .iter()
            .map(|(&(core, ctx, func), &ns)| (core, ctx, func, ns))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charging_accumulates_per_context() {
        let mut ledger = CpuLedger::new(4);
        ledger.charge(
            0,
            Context::HardIrq,
            "pnic_interrupt",
            SimDuration::from_nanos(300),
        );
        ledger.charge(
            0,
            Context::SoftIrq,
            "mlx5e_napi_poll",
            SimDuration::from_nanos(700),
        );
        ledger.charge(
            1,
            Context::Task,
            "copy_to_user",
            SimDuration::from_nanos(500),
        );
        assert_eq!(ledger.core(0).hardirq_ns, 300);
        assert_eq!(ledger.core(0).softirq_ns, 700);
        assert_eq!(ledger.core(0).busy_ns(), 1000);
        assert_eq!(ledger.core(1).task_ns, 500);
        assert_eq!(ledger.total_busy().as_nanos(), 1500);
    }

    #[test]
    fn utilization_over_window() {
        let mut ledger = CpuLedger::new(2);
        ledger.charge(0, Context::SoftIrq, "f", SimDuration::from_micros(500));
        let u = ledger.utilization(SimTime::from_millis(1));
        assert!((u[0] - 0.5).abs() < 1e-9);
        assert_eq!(u[1], 0.0);
        assert!((ledger.avg_utilization(SimTime::from_millis(1)) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn utilization_clamps_to_one() {
        let mut ledger = CpuLedger::new(1);
        ledger.charge(0, Context::Task, "f", SimDuration::from_secs(10));
        let u = ledger.utilization(SimTime::from_secs(1));
        assert_eq!(u[0], 1.0);
    }

    #[test]
    fn function_attribution() {
        let mut ledger = CpuLedger::new(2);
        ledger.charge(
            0,
            Context::SoftIrq,
            "vxlan_rcv",
            SimDuration::from_nanos(100),
        );
        ledger.charge(
            1,
            Context::SoftIrq,
            "vxlan_rcv",
            SimDuration::from_nanos(150),
        );
        ledger.charge(
            0,
            Context::SoftIrq,
            "br_handle_frame",
            SimDuration::from_nanos(80),
        );
        assert_eq!(ledger.function_total("vxlan_rcv"), 250);
        assert_eq!(ledger.function_on_core(1, "vxlan_rcv"), 150);
        assert_eq!(ledger.function_total("missing"), 0);
        let by_time = ledger.functions_by_time();
        assert_eq!(by_time[0], ("vxlan_rcv", 250));
        assert_eq!(by_time[1], ("br_handle_frame", 80));
    }

    #[test]
    fn context_labels() {
        assert_eq!(Context::HardIrq.label(), "hardirq");
        assert_eq!(Context::SoftIrq.label(), "softirq");
        assert_eq!(Context::Task.label(), "task");
        assert_eq!(Context::ALL.len(), 3);
    }

    #[test]
    fn core_usage_get_matches_slots() {
        let mut ledger = CpuLedger::new(1);
        ledger.charge(0, Context::HardIrq, "a", SimDuration::from_nanos(1));
        ledger.charge(0, Context::SoftIrq, "b", SimDuration::from_nanos(2));
        ledger.charge(0, Context::Task, "c", SimDuration::from_nanos(3));
        let core = ledger.core(0);
        for ctx in Context::ALL {
            assert!(core.get(ctx) > 0);
        }
        assert_eq!(core.get(Context::Task), 3);
    }
}

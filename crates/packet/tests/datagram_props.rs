//! Property tests for [`WireBuf::from_datagram`]: the single-copy
//! datagram framing the live-socket ingestion path uses must be
//! byte-for-byte indistinguishable from the multi-segment constructor
//! every other producer goes through — same buffer contents, same
//! [`decap_bounds`] result on success and on failure.

use falcon_khash::FlowKeys;
use falcon_packet::{
    build_udp_frame, decap_bounds, fill_l4_checksum, vxlan_encapsulate, EncapParams, MacAddr,
    WireBuf,
};
use proptest::prelude::*;

fn arb_mac() -> impl Strategy<Value = MacAddr> {
    any::<[u8; 6]>().prop_map(MacAddr)
}

fn encapsulated_frame(
    src_mac: MacAddr,
    dst_mac: MacAddr,
    keys: &FlowKeys,
    payload: &[u8],
    src_port: u16,
    vni: u32,
) -> Vec<u8> {
    let mut inner = build_udp_frame(src_mac, dst_mac, keys, payload);
    fill_l4_checksum(&mut inner).expect("valid inner frame");
    vxlan_encapsulate(
        &inner,
        &EncapParams {
            src_mac,
            dst_mac,
            src_ip: falcon_packet::Ipv4Addr4(0x0A00_0001),
            dst_ip: falcon_packet::Ipv4Addr4(0x0A00_0002),
            src_port,
            vni,
        },
    )
}

proptest! {
    /// A well-formed VXLAN datagram frames identically through both
    /// constructors, and decap_bounds agrees on the inner range + VNI.
    #[test]
    fn from_datagram_decaps_like_segments(
        src_mac in arb_mac(),
        dst_mac in arb_mac(),
        sport in 1024u16..u16::MAX,
        dport in 1024u16..u16::MAX,
        src_port in 49152u16..u16::MAX,
        vni in 0u32..(1 << 24),
        payload in proptest::collection::vec(any::<u8>(), 0..1200),
    ) {
        let keys = FlowKeys::udp(0x0A01_0001, sport, 0x0A01_0002, dport);
        let frame = encapsulated_frame(src_mac, dst_mac, &keys, &payload, src_port, vni);
        let a = WireBuf::from_datagram(&frame);
        let b = WireBuf::segments(vec![frame.clone()]);
        prop_assert_eq!(&a, &b);
        let ba = decap_bounds(&a.segs[0]).expect("well-formed frame decaps");
        let bb = decap_bounds(&b.segs[0]).expect("well-formed frame decaps");
        prop_assert_eq!(ba.inner, bb.inner);
        prop_assert_eq!(ba.vni, bb.vni);
        prop_assert_eq!(ba.vni, vni);
    }

    /// Arbitrary (mostly garbage) datagrams still frame identically,
    /// and decap_bounds fails or succeeds the same way on both paths —
    /// the ingestion constructor cannot launder a malformed datagram.
    #[test]
    fn from_datagram_agrees_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let a = WireBuf::from_datagram(&bytes);
        let b = WireBuf::segments(vec![bytes.clone()]);
        prop_assert_eq!(&a, &b);
        let ra = decap_bounds(&a.segs[0]).map(|d| (d.inner, d.vni));
        let rb = decap_bounds(&b.segs[0]).map(|d| (d.inner, d.vni));
        prop_assert_eq!(ra.is_ok(), rb.is_ok());
        if let (Ok(da), Ok(db)) = (ra, rb) {
            prop_assert_eq!(da, db);
        }
    }

    /// A truncated copy of a valid frame behaves the same through both
    /// constructors for every truncation point.
    #[test]
    fn from_datagram_agrees_under_truncation(
        cut in 0usize..120,
        payload in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let keys = FlowKeys::udp(0x0A01_0001, 5000, 0x0A01_0002, 6000);
        let frame = encapsulated_frame(
            MacAddr::from_index(1), MacAddr::from_index(2), &keys, &payload, 50000, 42,
        );
        let cut = cut.min(frame.len());
        let short = &frame[..cut];
        let a = WireBuf::from_datagram(short);
        let b = WireBuf::segments(vec![short.to_vec()]);
        prop_assert_eq!(&a, &b);
        let ra = decap_bounds(&a.segs[0]).map(|d| (d.inner, d.vni));
        let rb = decap_bounds(&b.segs[0]).map(|d| (d.inner, d.vni));
        prop_assert_eq!(ra, rb);
    }
}

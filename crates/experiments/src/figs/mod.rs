//! One module per figure of the paper's evaluation.
//!
//! Each `run(scale)` regenerates the figure's data as text tables. The
//! registry in [`all`] drives the `falcon-repro` CLI.

pub mod ablation;
pub mod fig02;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig19;

use crate::measure::Scale;
use crate::table::FigResult;

/// A figure-reproduction entry point.
pub type FigRunner = fn(Scale) -> FigResult;

/// The figure registry: `(id, runner)`.
pub fn all() -> Vec<(&'static str, FigRunner)> {
    vec![
        ("fig2", fig02::run as FigRunner),
        ("fig4", fig04::run),
        ("fig5", fig05::run),
        ("fig6", fig06::run),
        ("fig9a", fig09::run),
        ("fig10", fig10::run),
        ("fig11", fig11::run),
        ("fig12", fig12::run),
        ("fig13", fig13::run),
        ("fig14", fig14::run),
        ("fig15", fig15::run),
        ("fig16", fig16::run),
        ("fig17", fig17::run),
        ("fig18", fig18::run),
        ("fig19", fig19::run),
        ("ablation", ablation::run),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique() {
        let ids: Vec<&str> = all().iter().map(|&(id, _)| id).collect();
        let mut dedup = ids.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(ids.len(), dedup.len());
        assert_eq!(ids.len(), 16);
    }
}

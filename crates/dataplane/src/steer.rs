//! Steering policies for the threaded executor, and the global
//! flow-steering table that makes them order-safe.
//!
//! The policies are the paper's two contenders, turned into real
//! scheduling decisions:
//!
//! * [`Policy::Vanilla`] — every stage of a flow runs on the flow-hash
//!   core, fully serialized: the overlay status quo the paper's §3
//!   measures.
//! * [`Policy::Falcon`] — per-(flow, device) placement via the same
//!   `get_falcon_cpu` hash the simulation uses
//!   ([`falcon::balance::falcon_choices_by`]), with the two-choice load
//!   balancer reading *live* per-worker queue depths instead of a
//!   smoothed load sample.
//!
//! Because the balancer reads volatile depths, its preferred target for
//! a (flow, device) pair can change between packets — exactly the
//! hazard "Why Does Flow Director Cause Packet Reordering?" describes.
//! The [`FlowTable`] closes it the way the kernel's `rps_dev_flow`
//! qtail check does: a (flow, device) pair may only migrate to a new
//! worker when it has zero packets in flight at that stage. The
//! in-flight count is a shared atomic each packet carries a handle to.
//! Unlike the kernel — where one backlog per CPU makes "drained" safe
//! on its own — the executor's per-(src, dst) ring mesh means packets
//! arriving from different upstream workers travel on different FIFOs,
//! so the executor holds each registration until the packet has
//! executed the *next* stage (hand-over-hand), not merely the routed
//! one. See `executor::DpPkt::prev_guard` for the full argument.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use falcon::balance::falcon_choices_by;
use falcon::FalconConfig;
use falcon_cpusim::CpuSet;
use serde::{Deserialize, Serialize};

/// Which steering policy a dataplane run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicyKind {
    /// All stages on the flow-hash core (serialized RSS behavior).
    Vanilla,
    /// Device-aware hashing + two-choice balancing (the paper).
    Falcon,
    /// State-Compute Replication: spread every flow's packets across
    /// workers round-robin with *no* per-(flow, device) serialization;
    /// each worker replicates the stateful bridge computation in its
    /// own conntrack shard, reconciled after the run by a delta-log
    /// merge. Trades per-flow delivery order (relaxed to the SCR
    /// duplicate-freedom contract) for immunity to the single-heavy-flow
    /// pin that serializing policies suffer.
    Replicate,
}

impl PolicyKind {
    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Vanilla => "vanilla",
            PolicyKind::Falcon => "falcon",
            PolicyKind::Replicate => "replicate",
        }
    }

    /// Parses a report label back into a kind (CLI `--policy`).
    pub fn from_label(label: &str) -> Option<PolicyKind> {
        match label {
            "vanilla" => Some(PolicyKind::Vanilla),
            "falcon" => Some(PolicyKind::Falcon),
            "replicate" => Some(PolicyKind::Replicate),
            _ => None,
        }
    }
}

/// Aligns each worker's depth counter to its own cache line.
#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedCounter(AtomicUsize);

/// Live per-worker inbound queue depths — the dataplane's substitute
/// for the simulation's smoothed [`LoadTracker`](falcon_cpusim::LoadTracker).
///
/// Producers increment the target's gauge *before* pushing and undo the
/// increment if the push fails; consumers decrement after pop. The
/// order matters: incrementing after a successful push races the
/// consumer's decrement (pop can land between push and increment) and
/// underflows the counter to `usize::MAX`, which would read as load 1.0
/// and trigger spurious two-choice rehashes until the increment lands.
/// `load()` normalizes depth against
/// `busy_depth` (≈ one NAPI budget): a worker with a full batch already
/// queued reads as load 1.0, which is when the two-choice balancer
/// starts looking elsewhere.
///
/// **Staleness bound under batching.** The batched executor touches
/// each counter once per (sweep, ring) instead of once per packet:
/// consumers `sub` a whole pop batch up front, producers `add` a whole
/// staged batch at flush. The depth another worker reads can therefore
/// be off by at most one NAPI budget in either direction: under-read
/// by an upstream worker's unflushed outbound staging buffer
/// (≤ `napi_budget`, flushed at the end of processing every inbound
/// batch), or by the consumer's up-front `sub` of a batch it is still
/// working through (which moves those packets from "queued" to
/// "in service" a batch early). The local worker's own staged packets
/// are folded back in via [`load_plus`](Self::load_plus), so a
/// steering decision is never stale with respect to the decisions the
/// same worker just made — the feedback loop that matters for
/// two-choice stability. Cross-worker error stays bounded by one NAPI
/// budget and self-corrects every sweep.
///
/// That bound is not just documentation: every batched update reports
/// its size through [`note_staleness`](Self::note_staleness), and the
/// per-worker maximum is exported as the sampled `depth_staleness`
/// metric — so telemetry (and the conformance tests) can verify the
/// gauge never went staler than one NAPI budget.
#[derive(Debug)]
pub struct DepthGauge {
    depths: Vec<PaddedCounter>,
    /// Largest single batched adjustment observed per worker — the
    /// realized staleness bound of that worker's depth signal.
    staleness: Vec<PaddedCounter>,
    busy_depth: usize,
}

impl DepthGauge {
    /// Creates gauges for `workers` workers.
    pub fn new(workers: usize, busy_depth: usize) -> Self {
        DepthGauge {
            depths: (0..workers).map(|_| PaddedCounter::default()).collect(),
            staleness: (0..workers).map(|_| PaddedCounter::default()).collect(),
            busy_depth: busy_depth.max(1),
        }
    }

    /// Records one packet queued toward `worker`.
    #[inline]
    pub fn inc(&self, worker: usize) {
        self.depths[worker].0.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one packet dequeued by `worker`.
    #[inline]
    pub fn dec(&self, worker: usize) {
        self.depths[worker].0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Records `n` packets queued toward `worker` in one RMW — the
    /// batched flush path's single shared-cache-line touch per
    /// (sweep, destination) instead of one per packet.
    #[inline]
    pub fn add(&self, worker: usize, n: usize) {
        if n > 0 {
            self.depths[worker].0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Records `n` packets dequeued by `worker` in one RMW (the batched
    /// consumer-side companion to [`add`](Self::add)).
    #[inline]
    pub fn sub(&self, worker: usize, n: usize) {
        if n > 0 {
            self.depths[worker].0.fetch_sub(n, Ordering::Relaxed);
        }
    }

    /// Current queued-packet count for `worker`.
    #[inline]
    pub fn depth(&self, worker: usize) -> usize {
        self.depths[worker].0.load(Ordering::Relaxed)
    }

    /// Depth normalized to `0..=1` against the busy threshold.
    #[inline]
    pub fn load(&self, worker: usize) -> f64 {
        (self.depth(worker) as f64 / self.busy_depth as f64).min(1.0)
    }

    /// Like [`load`](Self::load), with `extra` locally-staged packets
    /// folded in. The batched executor publishes its outbound packets
    /// to the gauge once per flush, not per packet; folding the
    /// not-yet-flushed staging count back in keeps *this* worker's
    /// steering decisions exactly as fresh as the per-packet gauge gave
    /// them. (Other workers' staged packets stay invisible until their
    /// flush — see the staleness-bound note on [`DepthGauge`].)
    #[inline]
    pub fn load_plus(&self, worker: usize, extra: usize) -> f64 {
        ((self.depth(worker) + extra) as f64 / self.busy_depth as f64).min(1.0)
    }

    /// Records that `worker`'s depth signal was stale by `n` packets
    /// for one batched update: a consumer's up-front `sub` of a batch
    /// it is still serving, or a producer's staged-but-unflushed
    /// outbound buffer published in one `add`. Keeps the per-worker
    /// maximum; the executor calls this at every batched gauge touch,
    /// so the exported metric is the *realized* staleness bound.
    #[inline]
    pub fn note_staleness(&self, worker: usize, n: usize) {
        if n > 0 {
            self.staleness[worker].0.fetch_max(n, Ordering::Relaxed);
        }
    }

    /// Largest batched-update staleness observed for `worker` so far.
    /// The documented bound is one NAPI budget (`busy_depth`).
    #[inline]
    pub fn staleness(&self, worker: usize) -> usize {
        self.staleness[worker].0.load(Ordering::Relaxed)
    }

    /// Number of workers tracked.
    pub fn workers(&self) -> usize {
        self.depths.len()
    }
}

/// A steering decision: the preferred worker and whether the two-choice
/// rehash was taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Choice {
    /// First-choice worker from the device-aware hash.
    pub first: usize,
    /// Preferred worker for the stage (== `first` unless rehashed).
    pub worker: usize,
    /// Whether the first choice was over threshold and the second
    /// random choice was used.
    pub second: bool,
}

/// A steering policy instance, shared read-only across workers.
#[derive(Debug)]
pub enum Policy {
    /// Serialized: flow-hash placement for every stage.
    Vanilla {
        /// The worker set hashed over.
        workers: CpuSet,
    },
    /// The paper's Algorithm 1 over live queue depths.
    Falcon {
        /// Falcon knobs; `falcon_cpus` is the worker set.
        config: FalconConfig,
    },
    /// State-Compute Replication: packet-level round-robin at injection,
    /// run-to-completion on the receiving worker, per-worker state
    /// replicas merged after the run. No guards, no migration.
    Replicate {
        /// The worker set packets are spread over.
        workers: CpuSet,
    },
}

impl Policy {
    /// Builds the policy for `kind` over workers `0..n`.
    pub fn new(kind: PolicyKind, n_workers: usize) -> Self {
        Policy::with_two_choice(kind, n_workers, true)
    }

    /// Like [`Policy::new`], with the Falcon policy's depth-triggered
    /// two-choice rehash switched on or off (off = always the
    /// (flow, device) hash's first choice, load ignored). Vanilla
    /// hashes unconditionally and ignores the flag.
    pub fn with_two_choice(kind: PolicyKind, n_workers: usize, two_choice: bool) -> Self {
        match kind {
            PolicyKind::Vanilla => Policy::Vanilla {
                workers: CpuSet::first_n(n_workers),
            },
            PolicyKind::Falcon => Policy::Falcon {
                config: FalconConfig::new(CpuSet::first_n(n_workers))
                    .with_always_on(true)
                    .with_two_choice(two_choice),
            },
            PolicyKind::Replicate => Policy::Replicate {
                workers: CpuSet::first_n(n_workers),
            },
        }
    }

    /// Builds a Falcon policy with explicit knobs (threshold, ablations).
    pub fn falcon(config: FalconConfig) -> Self {
        Policy::Falcon { config }
    }

    /// The policy's report label.
    pub fn kind(&self) -> PolicyKind {
        match self {
            Policy::Vanilla { .. } => PolicyKind::Vanilla,
            Policy::Falcon { .. } => PolicyKind::Falcon,
            Policy::Replicate { .. } => PolicyKind::Replicate,
        }
    }

    /// The core a flow's packets arrive on (RSS): both policies pin
    /// stage A to the flow-hash worker, like the NIC's indirection
    /// table does.
    pub fn rss_worker(&self, rx_hash: u32) -> usize {
        match self {
            Policy::Vanilla { workers } => workers.pick_by_hash(rx_hash),
            Policy::Falcon { config } => config.falcon_cpus.pick_by_hash(rx_hash),
            // Replicate doesn't pin flows to an RSS core — the injector
            // round-robins per packet and ignores this — but keep the
            // hash pick as a sensible answer for callers that ask.
            Policy::Replicate { workers } => workers.pick_by_hash(rx_hash),
        }
    }

    /// Picks the worker for the stage behind device `ifindex`.
    pub fn choose(&self, rx_hash: u32, ifindex: u32, depths: &DepthGauge) -> Choice {
        self.choose_by(rx_hash, ifindex, |c| depths.load(c))
    }

    /// Picks the worker for the stage behind device `ifindex`, reading
    /// per-worker load through `load`. The batched executor uses this
    /// to fold its locally-staged (not yet flushed) packets into the
    /// gauge reading — see [`DepthGauge::load_plus`].
    pub fn choose_by(&self, rx_hash: u32, ifindex: u32, load: impl Fn(usize) -> f64) -> Choice {
        match self {
            Policy::Vanilla { workers } => {
                let worker = workers.pick_by_hash(rx_hash);
                Choice {
                    first: worker,
                    worker,
                    second: false,
                }
            }
            Policy::Falcon { config } => {
                let (first, worker, second) = falcon_choices_by(config, rx_hash, ifindex, load);
                Choice {
                    first,
                    worker,
                    second,
                }
            }
            // Under SCR the executor never steers mid-pipeline — the
            // packet runs to completion where it landed. Answer with
            // the hash pick so the Choice contract stays total.
            Policy::Replicate { workers } => {
                let worker = workers.pick_by_hash(rx_hash);
                Choice {
                    first: worker,
                    worker,
                    second: false,
                }
            }
        }
    }
}

/// The shared in-flight state of one (flow, device) registration: the
/// packet count that blocks migration, plus a Lamport-clock high-water
/// mark that threads the ordering audit's happens-before chain through
/// migrations.
///
/// The clock is what lets the audit ticket be *per-worker* instead of
/// a run-global RMW (the old design's hottest shared cache line: two
/// `fetch_add`s on one counter per stage execution, from every worker
/// at once). Each worker stamps its order records with a local Lamport
/// counter; packets carry the clock across rings (the ring's
/// release/acquire publishes it); and this field carries it across the
/// one remaining cross-worker edge — a migration, where packet B may
/// execute a checkpoint on a different worker than packet A did,
/// linked only by "A's guard drained before B routed". The releaser
/// folds its clock in *before* the `Release` decrement of `count`; a
/// router that observes `count == 0` with `Acquire` therefore also
/// observes the clock, and hands it to the routed packet. Every
/// happens-before path between two executions at one (flow,
/// checkpoint) — same-thread program order, ring handoff, or guard
/// drain — thus forces strictly increasing ticket values, so sorting
/// the merged logs by (clock, worker) reconstructs the true order
/// without any run-global synchronization.
#[derive(Debug, Default)]
pub struct InflightGuard {
    /// Packets currently in flight under this registration.
    count: AtomicU32,
    /// Lamport-clock high-water mark of completed releases.
    release_lc: AtomicU64,
}

impl InflightGuard {
    /// Current in-flight count (tests and diagnostics).
    pub fn in_flight(&self) -> u32 {
        self.count.load(Ordering::Acquire)
    }
}

/// One resolved route: where the packet actually goes, and the
/// in-flight guard the consumer must release after the stage runs.
#[derive(Debug)]
pub struct Route {
    /// Worker the packet must be enqueued to.
    pub worker: usize,
    /// In-flight guard for this (flow, device); already incremented.
    pub guard: Arc<InflightGuard>,
    /// Whether this packet moved the pair to a new worker.
    pub migrated: bool,
    /// Lamport clock observed at routing; the packet must fold this
    /// into its own clock so executions after a migration tick later
    /// than everything the drained guard completed.
    pub lc: u64,
}

/// Releases one in-flight registration, recording the releasing
/// packet's Lamport clock. The executor calls this once the packet can
/// no longer be overtaken on its way out of the routed stage: after
/// the *following* stage has executed, or on delivery, or when the
/// packet was dropped. The clock fold-in precedes the `Release`
/// decrement, so any router that sees the count hit zero also sees the
/// clock (see [`InflightGuard`]).
#[inline]
pub fn release(guard: &InflightGuard, lc: u64) {
    guard.release_lc.fetch_max(lc, Ordering::Relaxed);
    guard.count.fetch_sub(1, Ordering::Release);
}

#[derive(Debug)]
struct FlowEntry {
    worker: usize,
    inflight: Arc<InflightGuard>,
}

/// The global sticky (flow, device) → worker table with in-flight
/// migration protection. Sharded mutexes: one short critical section
/// per stage transition, like the kernel's per-table RPS flow state.
#[derive(Debug)]
pub struct FlowTable {
    shards: Vec<Mutex<HashMap<(u64, u32), FlowEntry>>>,
}

impl FlowTable {
    /// Creates a table with `shards` lock shards (rounded up to a power
    /// of two).
    pub fn new(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        FlowTable {
            shards: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    fn shard(&self, flow: u64, ifindex: u32) -> &Mutex<HashMap<(u64, u32), FlowEntry>> {
        let mixed = (flow ^ ((ifindex as u64) << 32)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let idx = (mixed >> 48) as usize & (self.shards.len() - 1);
        &self.shards[idx]
    }

    /// Resolves where a (flow, device) packet runs, given the policy's
    /// preferred worker. The preference is honored immediately for new
    /// pairs; an established pair follows its current worker until it
    /// has zero packets in flight, then migrates. The returned route
    /// has one in-flight registration the consumer must [`release`].
    pub fn route(&self, flow: u64, ifindex: u32, want: usize) -> Route {
        let mut map = self.shard(flow, ifindex).lock().expect("unpoisoned shard");
        let entry = map.entry((flow, ifindex)).or_insert_with(|| FlowEntry {
            worker: want,
            inflight: Arc::new(InflightGuard::default()),
        });
        let mut migrated = false;
        if entry.worker != want && entry.inflight.count.load(Ordering::Acquire) == 0 {
            entry.worker = want;
            migrated = true;
        }
        entry.inflight.count.fetch_add(1, Ordering::AcqRel);
        // Reading the release clock after the count check means: if the
        // count read 0, this read is ordered after every prior
        // release's fold-in (Acquire on count syncs with the Release
        // decrement), so a migrated packet inherits a clock later than
        // everything that drained. When the count was nonzero the pair
        // could not migrate and same-worker program order carries the
        // happens-before instead; the (possibly stale) clock read is
        // then merely a harmless extra lower bound.
        let lc = entry.inflight.release_lc.load(Ordering::Relaxed);
        Route {
            worker: entry.worker,
            guard: Arc::clone(&entry.inflight),
            migrated,
            lc,
        }
    }

    /// Total (flow, device) pairs tracked.
    pub fn pairs(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("unpoisoned shard").len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_gauge_staleness_tracks_max_batched_update() {
        let g = DepthGauge::new(2, 64);
        assert_eq!(g.staleness(0), 0);
        g.note_staleness(0, 5);
        g.note_staleness(0, 3);
        assert_eq!(g.staleness(0), 5, "keeps the maximum");
        g.note_staleness(0, 64);
        assert_eq!(g.staleness(0), 64);
        g.note_staleness(1, 0);
        assert_eq!(g.staleness(1), 0, "zero-sized updates don't count");
        assert_eq!(g.staleness(0), 64);
    }

    #[test]
    fn vanilla_serializes_all_stages() {
        let p = Policy::new(PolicyKind::Vanilla, 4);
        let depths = DepthGauge::new(4, 64);
        let h = 0xBEEF_CAFE;
        let a = p.rss_worker(h);
        let b = p.choose(h, 2, &depths);
        let c = p.choose(h, 3, &depths);
        assert_eq!(a, b.worker);
        assert_eq!(b.worker, c.worker, "vanilla never leaves the flow core");
        assert!(!b.second && !c.second);
    }

    #[test]
    fn falcon_spreads_stages_of_one_flow() {
        let p = Policy::new(PolicyKind::Falcon, 8);
        let depths = DepthGauge::new(8, 64);
        let mut spread = 0;
        for f in 0..200u32 {
            let h = 0x9E37_0000u32.wrapping_add(f.wrapping_mul(2_654_435_761));
            let b = p.choose(h, 2, &depths).worker;
            let c = p.choose(h, 3, &depths).worker;
            if b != c {
                spread += 1;
            }
        }
        assert!(spread > 120, "only {spread}/200 flows had distinct stages");
    }

    /// GRO splitting rides on the same mechanism: the split half's
    /// synthetic device id (`executor::PNIC_SPLIT_IF`) must hash a
    /// flow's GRO half away from its alloc half's RSS placement for
    /// most flows, or the fifth stage would just serialize behind the
    /// first.
    #[test]
    fn split_device_places_gro_half_off_the_rss_worker() {
        let p = Policy::new(PolicyKind::Falcon, 8);
        let depths = DepthGauge::new(8, 64);
        let mut apart = 0;
        for f in 0..200u32 {
            let h = 0x9E37_0000u32.wrapping_add(f.wrapping_mul(2_654_435_761));
            let alloc = p.rss_worker(h);
            let gro = p.choose(h, crate::executor::PNIC_SPLIT_IF, &depths).worker;
            if alloc != gro {
                apart += 1;
            }
        }
        assert!(apart > 120, "only {apart}/200 flows split off the RSS core");
    }

    #[test]
    fn falcon_second_choice_reads_live_depths() {
        let p = Policy::new(PolicyKind::Falcon, 4);
        let depths = DepthGauge::new(4, 8);
        // Find a (hash, dev) whose first choice is worker 2.
        let (h, dev) = (0..10_000u32)
            .flat_map(|h| [(h, 2u32), (h, 3u32)])
            .find(|&(h, d)| p.choose(h, d, &depths).worker == 2)
            .expect("some input maps to worker 2");
        // Saturate worker 2's queue: the rehash engages.
        for _ in 0..8 {
            depths.inc(2);
        }
        let choice = p.choose(h, dev, &depths);
        assert!(choice.second, "depth-saturated first choice must rehash");
        // Draining the queue restores the first choice.
        for _ in 0..8 {
            depths.dec(2);
        }
        let calm = p.choose(h, dev, &depths);
        assert_eq!(calm.worker, 2);
        assert!(!calm.second);
    }

    #[test]
    fn flow_table_blocks_inflight_migration() {
        let t = FlowTable::new(8);
        let r1 = t.route(7, 2, 0);
        assert_eq!(r1.worker, 0);
        assert!(!r1.migrated);
        // One packet in flight: a different preference must not move
        // the pair.
        let r2 = t.route(7, 2, 3);
        assert_eq!(r2.worker, 0, "migration with packets in flight");
        assert!(!r2.migrated);
        // Drain both packets, then the pair may move.
        release(&r1.guard, 10);
        release(&r2.guard, 20);
        let r3 = t.route(7, 2, 3);
        assert_eq!(r3.worker, 3);
        assert!(r3.migrated);
        assert!(
            r3.lc >= 20,
            "a migrated route must inherit the drained releases' clock"
        );
        release(&r3.guard, 30);
        assert_eq!(t.pairs(), 1);
    }

    #[test]
    fn flow_table_pairs_are_independent() {
        let t = FlowTable::new(4);
        let a = t.route(1, 2, 0);
        let b = t.route(1, 3, 1);
        let c = t.route(2, 2, 2);
        assert_eq!((a.worker, b.worker, c.worker), (0, 1, 2));
        assert_eq!(t.pairs(), 3);
    }

    #[test]
    fn depth_gauge_normalizes() {
        let g = DepthGauge::new(2, 10);
        assert_eq!(g.load(0), 0.0);
        for _ in 0..5 {
            g.inc(0);
        }
        assert!((g.load(0) - 0.5).abs() < 1e-9);
        for _ in 0..20 {
            g.inc(0);
        }
        assert_eq!(g.load(0), 1.0, "saturates at 1.0");
        assert_eq!(g.depth(1), 0);
    }
}

//! Per-CPU `gro_cell` queues of the VXLAN device.
//!
//! After `vxlan_rcv` decapsulates a packet it does not continue up the
//! stack inline: it enqueues the inner packet into the VXLAN device's
//! per-CPU `gro_cell` and raises a second `NET_RX` softirq (paper
//! Figure 3, step 2). The softirq's poll function is `gro_cell_poll`.
//! In the vanilla kernel the cell is the current CPU's; Falcon's stage
//! transition targets another CPU's cell instead.

use falcon_packet::SkBuff;

use crate::ring::RxRing;

/// Per-CPU receive cells for a NAPI-backed virtual device.
#[derive(Debug)]
pub struct GroCells {
    cells: Vec<RxRing>,
    napi_scheduled: Vec<bool>,
}

impl GroCells {
    /// Creates one cell per CPU, each holding up to `capacity` packets.
    pub fn new(n_cpus: usize, capacity: usize) -> Self {
        GroCells {
            cells: (0..n_cpus).map(|_| RxRing::new(capacity)).collect(),
            napi_scheduled: vec![false; n_cpus],
        }
    }

    /// Enqueues a decapsulated packet onto `cpu`'s cell.
    ///
    /// Returns `(accepted, need_softirq)` with NAPI-style coalescing,
    /// like [`crate::Backlogs::enqueue`].
    pub fn enqueue(&mut self, cpu: usize, skb: SkBuff) -> (bool, bool) {
        let accepted = self.cells[cpu].push(skb);
        if !accepted {
            return (false, false);
        }
        let need = !self.napi_scheduled[cpu];
        if need {
            self.napi_scheduled[cpu] = true;
        }
        (true, need)
    }

    /// Dequeues from `cpu`'s cell (one `gro_cell_poll` iteration).
    pub fn dequeue(&mut self, cpu: usize) -> Option<SkBuff> {
        self.cells[cpu].pop()
    }

    /// Packets queued on `cpu`'s cell.
    pub fn len(&self, cpu: usize) -> usize {
        self.cells[cpu].len()
    }

    /// Returns `true` if every cell is empty.
    pub fn all_empty(&self) -> bool {
        self.cells.iter().all(|c| c.is_empty())
    }

    /// Completes the cell NAPI on `cpu`.
    pub fn napi_complete(&mut self, cpu: usize) {
        self.napi_scheduled[cpu] = false;
    }

    /// Whether `cpu`'s cell NAPI is scheduled.
    pub fn is_napi_scheduled(&self, cpu: usize) -> bool {
        self.napi_scheduled[cpu]
    }

    /// Total drops across cells.
    pub fn total_dropped(&self) -> u64 {
        self.cells.iter().map(|c| c.dropped()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use falcon_packet::PacketId;

    fn skb(id: u64) -> SkBuff {
        SkBuff::new(PacketId(id), vec![0u8; 60])
    }

    #[test]
    fn per_cpu_isolation() {
        let mut cells = GroCells::new(4, 16);
        let (ok, need) = cells.enqueue(2, skb(0));
        assert!(ok && need);
        assert_eq!(cells.len(2), 1);
        assert_eq!(cells.len(0), 0);
        assert!(cells.is_napi_scheduled(2));
        assert!(!cells.is_napi_scheduled(0));
        assert!(!cells.all_empty());
        assert_eq!(cells.dequeue(2).unwrap().id, PacketId(0));
        assert!(cells.dequeue(2).is_none());
        assert!(cells.all_empty());
    }

    #[test]
    fn softirq_coalescing() {
        let mut cells = GroCells::new(1, 16);
        assert!(cells.enqueue(0, skb(0)).1);
        assert!(!cells.enqueue(0, skb(1)).1);
        cells.dequeue(0);
        cells.dequeue(0);
        cells.napi_complete(0);
        assert!(cells.enqueue(0, skb(2)).1);
    }

    #[test]
    fn overflow_drops() {
        let mut cells = GroCells::new(1, 1);
        assert!(cells.enqueue(0, skb(0)).0);
        let (ok, need) = cells.enqueue(0, skb(1));
        assert!(!ok && !need);
        assert_eq!(cells.total_dropped(), 1);
    }
}

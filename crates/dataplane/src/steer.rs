//! Steering policies for the threaded executor, and the global
//! flow-steering table that makes them order-safe.
//!
//! The policies are the paper's two contenders, turned into real
//! scheduling decisions:
//!
//! * [`Policy::Vanilla`] — every stage of a flow runs on the flow-hash
//!   core, fully serialized: the overlay status quo the paper's §3
//!   measures.
//! * [`Policy::Falcon`] — per-(flow, device) placement via the same
//!   `get_falcon_cpu` hash the simulation uses
//!   ([`falcon::balance::falcon_choices_by`]), with the two-choice load
//!   balancer reading *live* per-worker queue depths instead of a
//!   smoothed load sample.
//!
//! Because the balancer reads volatile depths, its preferred target for
//! a (flow, device) pair can change between packets — exactly the
//! hazard "Why Does Flow Director Cause Packet Reordering?" describes.
//! The [`FlowTable`] closes it the way the kernel's `rps_dev_flow`
//! qtail check does: a (flow, device) pair may only migrate to a new
//! worker when it has zero packets in flight at that stage. The
//! in-flight count is a shared atomic each packet carries a handle to.
//! Unlike the kernel — where one backlog per CPU makes "drained" safe
//! on its own — the executor's per-(src, dst) ring mesh means packets
//! arriving from different upstream workers travel on different FIFOs,
//! so the executor holds each registration until the packet has
//! executed the *next* stage (hand-over-hand), not merely the routed
//! one. See `executor::DpPkt::prev_guard` for the full argument.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use falcon::balance::falcon_choices_by;
use falcon::FalconConfig;
use falcon_cpusim::CpuSet;
use serde::{Deserialize, Serialize};

/// Which steering policy a dataplane run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicyKind {
    /// All stages on the flow-hash core (serialized RSS behavior).
    Vanilla,
    /// Device-aware hashing + two-choice balancing (the paper).
    Falcon,
}

impl PolicyKind {
    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Vanilla => "vanilla",
            PolicyKind::Falcon => "falcon",
        }
    }
}

/// Aligns each worker's depth counter to its own cache line.
#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedCounter(AtomicUsize);

/// Live per-worker inbound queue depths — the dataplane's substitute
/// for the simulation's smoothed [`LoadTracker`](falcon_cpusim::LoadTracker).
///
/// Producers increment the target's gauge *before* pushing and undo the
/// increment if the push fails; consumers decrement after pop. The
/// order matters: incrementing after a successful push races the
/// consumer's decrement (pop can land between push and increment) and
/// underflows the counter to `usize::MAX`, which would read as load 1.0
/// and trigger spurious two-choice rehashes until the increment lands.
/// `load()` normalizes depth against
/// `busy_depth` (≈ one NAPI budget): a worker with a full batch already
/// queued reads as load 1.0, which is when the two-choice balancer
/// starts looking elsewhere.
#[derive(Debug)]
pub struct DepthGauge {
    depths: Vec<PaddedCounter>,
    busy_depth: usize,
}

impl DepthGauge {
    /// Creates gauges for `workers` workers.
    pub fn new(workers: usize, busy_depth: usize) -> Self {
        DepthGauge {
            depths: (0..workers).map(|_| PaddedCounter::default()).collect(),
            busy_depth: busy_depth.max(1),
        }
    }

    /// Records one packet queued toward `worker`.
    #[inline]
    pub fn inc(&self, worker: usize) {
        self.depths[worker].0.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one packet dequeued by `worker`.
    #[inline]
    pub fn dec(&self, worker: usize) {
        self.depths[worker].0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Current queued-packet count for `worker`.
    #[inline]
    pub fn depth(&self, worker: usize) -> usize {
        self.depths[worker].0.load(Ordering::Relaxed)
    }

    /// Depth normalized to `0..=1` against the busy threshold.
    #[inline]
    pub fn load(&self, worker: usize) -> f64 {
        (self.depth(worker) as f64 / self.busy_depth as f64).min(1.0)
    }

    /// Number of workers tracked.
    pub fn workers(&self) -> usize {
        self.depths.len()
    }
}

/// A steering decision: the preferred worker and whether the two-choice
/// rehash was taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Choice {
    /// First-choice worker from the device-aware hash.
    pub first: usize,
    /// Preferred worker for the stage (== `first` unless rehashed).
    pub worker: usize,
    /// Whether the first choice was over threshold and the second
    /// random choice was used.
    pub second: bool,
}

/// A steering policy instance, shared read-only across workers.
#[derive(Debug)]
pub enum Policy {
    /// Serialized: flow-hash placement for every stage.
    Vanilla {
        /// The worker set hashed over.
        workers: CpuSet,
    },
    /// The paper's Algorithm 1 over live queue depths.
    Falcon {
        /// Falcon knobs; `falcon_cpus` is the worker set.
        config: FalconConfig,
    },
}

impl Policy {
    /// Builds the policy for `kind` over workers `0..n`.
    pub fn new(kind: PolicyKind, n_workers: usize) -> Self {
        match kind {
            PolicyKind::Vanilla => Policy::Vanilla {
                workers: CpuSet::first_n(n_workers),
            },
            PolicyKind::Falcon => Policy::Falcon {
                config: FalconConfig::new(CpuSet::first_n(n_workers)).with_always_on(true),
            },
        }
    }

    /// Builds a Falcon policy with explicit knobs (threshold, ablations).
    pub fn falcon(config: FalconConfig) -> Self {
        Policy::Falcon { config }
    }

    /// The policy's report label.
    pub fn kind(&self) -> PolicyKind {
        match self {
            Policy::Vanilla { .. } => PolicyKind::Vanilla,
            Policy::Falcon { .. } => PolicyKind::Falcon,
        }
    }

    /// The core a flow's packets arrive on (RSS): both policies pin
    /// stage A to the flow-hash worker, like the NIC's indirection
    /// table does.
    pub fn rss_worker(&self, rx_hash: u32) -> usize {
        match self {
            Policy::Vanilla { workers } => workers.pick_by_hash(rx_hash),
            Policy::Falcon { config } => config.falcon_cpus.pick_by_hash(rx_hash),
        }
    }

    /// Picks the worker for the stage behind device `ifindex`.
    pub fn choose(&self, rx_hash: u32, ifindex: u32, depths: &DepthGauge) -> Choice {
        match self {
            Policy::Vanilla { workers } => {
                let worker = workers.pick_by_hash(rx_hash);
                Choice {
                    first: worker,
                    worker,
                    second: false,
                }
            }
            Policy::Falcon { config } => {
                let (first, worker, second) =
                    falcon_choices_by(config, rx_hash, ifindex, |c| depths.load(c));
                Choice {
                    first,
                    worker,
                    second,
                }
            }
        }
    }
}

/// One resolved route: where the packet actually goes, and the
/// in-flight guard the consumer must release after the stage runs.
#[derive(Debug)]
pub struct Route {
    /// Worker the packet must be enqueued to.
    pub worker: usize,
    /// In-flight count for this (flow, device); already incremented.
    pub guard: Arc<AtomicU32>,
    /// Whether this packet moved the pair to a new worker.
    pub migrated: bool,
}

/// Releases one in-flight registration. The executor calls this once
/// the packet can no longer be overtaken on its way out of the routed
/// stage: after the *following* stage has executed, or on delivery, or
/// when the packet was dropped.
#[inline]
pub fn release(guard: &AtomicU32) {
    guard.fetch_sub(1, Ordering::Release);
}

#[derive(Debug)]
struct FlowEntry {
    worker: usize,
    inflight: Arc<AtomicU32>,
}

/// The global sticky (flow, device) → worker table with in-flight
/// migration protection. Sharded mutexes: one short critical section
/// per stage transition, like the kernel's per-table RPS flow state.
#[derive(Debug)]
pub struct FlowTable {
    shards: Vec<Mutex<HashMap<(u64, u32), FlowEntry>>>,
}

impl FlowTable {
    /// Creates a table with `shards` lock shards (rounded up to a power
    /// of two).
    pub fn new(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        FlowTable {
            shards: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    fn shard(&self, flow: u64, ifindex: u32) -> &Mutex<HashMap<(u64, u32), FlowEntry>> {
        let mixed = (flow ^ ((ifindex as u64) << 32)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let idx = (mixed >> 48) as usize & (self.shards.len() - 1);
        &self.shards[idx]
    }

    /// Resolves where a (flow, device) packet runs, given the policy's
    /// preferred worker. The preference is honored immediately for new
    /// pairs; an established pair follows its current worker until it
    /// has zero packets in flight, then migrates. The returned route
    /// has one in-flight registration the consumer must [`release`].
    pub fn route(&self, flow: u64, ifindex: u32, want: usize) -> Route {
        let mut map = self.shard(flow, ifindex).lock().expect("unpoisoned shard");
        let entry = map.entry((flow, ifindex)).or_insert_with(|| FlowEntry {
            worker: want,
            inflight: Arc::new(AtomicU32::new(0)),
        });
        let mut migrated = false;
        if entry.worker != want && entry.inflight.load(Ordering::Acquire) == 0 {
            entry.worker = want;
            migrated = true;
        }
        entry.inflight.fetch_add(1, Ordering::AcqRel);
        Route {
            worker: entry.worker,
            guard: Arc::clone(&entry.inflight),
            migrated,
        }
    }

    /// Total (flow, device) pairs tracked.
    pub fn pairs(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("unpoisoned shard").len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vanilla_serializes_all_stages() {
        let p = Policy::new(PolicyKind::Vanilla, 4);
        let depths = DepthGauge::new(4, 64);
        let h = 0xBEEF_CAFE;
        let a = p.rss_worker(h);
        let b = p.choose(h, 2, &depths);
        let c = p.choose(h, 3, &depths);
        assert_eq!(a, b.worker);
        assert_eq!(b.worker, c.worker, "vanilla never leaves the flow core");
        assert!(!b.second && !c.second);
    }

    #[test]
    fn falcon_spreads_stages_of_one_flow() {
        let p = Policy::new(PolicyKind::Falcon, 8);
        let depths = DepthGauge::new(8, 64);
        let mut spread = 0;
        for f in 0..200u32 {
            let h = 0x9E37_0000u32.wrapping_add(f.wrapping_mul(2_654_435_761));
            let b = p.choose(h, 2, &depths).worker;
            let c = p.choose(h, 3, &depths).worker;
            if b != c {
                spread += 1;
            }
        }
        assert!(spread > 120, "only {spread}/200 flows had distinct stages");
    }

    /// GRO splitting rides on the same mechanism: the split half's
    /// synthetic device id (`executor::PNIC_SPLIT_IF`) must hash a
    /// flow's GRO half away from its alloc half's RSS placement for
    /// most flows, or the fifth stage would just serialize behind the
    /// first.
    #[test]
    fn split_device_places_gro_half_off_the_rss_worker() {
        let p = Policy::new(PolicyKind::Falcon, 8);
        let depths = DepthGauge::new(8, 64);
        let mut apart = 0;
        for f in 0..200u32 {
            let h = 0x9E37_0000u32.wrapping_add(f.wrapping_mul(2_654_435_761));
            let alloc = p.rss_worker(h);
            let gro = p.choose(h, crate::executor::PNIC_SPLIT_IF, &depths).worker;
            if alloc != gro {
                apart += 1;
            }
        }
        assert!(apart > 120, "only {apart}/200 flows split off the RSS core");
    }

    #[test]
    fn falcon_second_choice_reads_live_depths() {
        let p = Policy::new(PolicyKind::Falcon, 4);
        let depths = DepthGauge::new(4, 8);
        // Find a (hash, dev) whose first choice is worker 2.
        let (h, dev) = (0..10_000u32)
            .flat_map(|h| [(h, 2u32), (h, 3u32)])
            .find(|&(h, d)| p.choose(h, d, &depths).worker == 2)
            .expect("some input maps to worker 2");
        // Saturate worker 2's queue: the rehash engages.
        for _ in 0..8 {
            depths.inc(2);
        }
        let choice = p.choose(h, dev, &depths);
        assert!(choice.second, "depth-saturated first choice must rehash");
        // Draining the queue restores the first choice.
        for _ in 0..8 {
            depths.dec(2);
        }
        let calm = p.choose(h, dev, &depths);
        assert_eq!(calm.worker, 2);
        assert!(!calm.second);
    }

    #[test]
    fn flow_table_blocks_inflight_migration() {
        let t = FlowTable::new(8);
        let r1 = t.route(7, 2, 0);
        assert_eq!(r1.worker, 0);
        assert!(!r1.migrated);
        // One packet in flight: a different preference must not move
        // the pair.
        let r2 = t.route(7, 2, 3);
        assert_eq!(r2.worker, 0, "migration with packets in flight");
        assert!(!r2.migrated);
        // Drain both packets, then the pair may move.
        release(&r1.guard);
        release(&r2.guard);
        let r3 = t.route(7, 2, 3);
        assert_eq!(r3.worker, 3);
        assert!(r3.migrated);
        release(&r3.guard);
        assert_eq!(t.pairs(), 1);
    }

    #[test]
    fn flow_table_pairs_are_independent() {
        let t = FlowTable::new(4);
        let a = t.route(1, 2, 0);
        let b = t.route(1, 3, 1);
        let c = t.route(2, 2, 2);
        assert_eq!((a.worker, b.worker, c.worker), (0, 1, 2));
        assert_eq!(t.pairs(), 3);
    }

    #[test]
    fn depth_gauge_normalizes() {
        let g = DepthGauge::new(2, 10);
        assert_eq!(g.load(0), 0.0);
        for _ in 0..5 {
            g.inc(0);
        }
        assert!((g.load(0) - 0.5).abs() < 1e-9);
        for _ in 0..20 {
            g.inc(0);
        }
        assert_eq!(g.load(0), 1.0, "saturates at 1.0");
        assert_eq!(g.depth(1), 0);
    }
}

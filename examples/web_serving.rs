//! Web serving (CloudSuite/Elgg style) over the overlay, vanilla vs
//! Falcon — the paper's Figure 17 scenario as a runnable demo.
//!
//! ```text
//! cargo run --release -p falcon-examples --bin web_serving [users]
//! ```

use falcon::{enable_falcon, FalconConfig};
use falcon_cpusim::CpuSet;
use falcon_netstack::sim::SimRunner;
use falcon_netstack::{KernelVersion, NetMode, SimConfig, StackConfig, StayLocal, Steering};
use falcon_simcore::SimDuration;
use falcon_workloads::webserving::ELGG_OPS;
use falcon_workloads::{WebServing, WebServingConfig, WebStats};

fn run(users: usize, use_falcon: bool) -> (SimRunner, WebStats, f64) {
    // 12 cores: web workers and RPS share cores 1-6; cores 7-10 idle —
    // only Falcon can put softirqs there.
    let mut stack = StackConfig::new(NetMode::Overlay, KernelVersion::K419, 12);
    stack.rps = Some(CpuSet::range(1, 7));
    let steering: Box<dyn Steering> = if use_falcon {
        enable_falcon(&mut stack, FalconConfig::new(CpuSet::range(1, 11)))
    } else {
        Box::new(StayLocal)
    };
    let (app, stats) = WebServing::new(WebServingConfig::new(users));
    let mut runner = SimRunner::new(SimConfig::new(stack), steering, Box::new(app));
    let secs = 0.1;
    runner.run_for(SimDuration::from_millis(100));
    (runner, stats, secs)
}

fn main() {
    let users: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(200);
    println!("Web serving: {users} users against an nginx container on a VXLAN overlay\n");

    let (_v_run, v_stats, secs) = run(users, false);
    let (_f_run, f_stats, _) = run(users, true);
    let v = v_stats.borrow();
    let f = f_stats.borrow();

    println!(
        "{:<16} {:>10} {:>12} {:>12} {:>12}",
        "operation", "Con ops/s", "Falcon ops/s", "Con resp us", "Falcon resp"
    );
    for op in &ELGG_OPS {
        let (Some(vs), Some(fs)) = (v.get(op.name), f.get(op.name)) else {
            continue;
        };
        println!(
            "{:<16} {:>10.0} {:>12.0} {:>12.0} {:>12.0}",
            op.name,
            vs.successes as f64 / secs,
            fs.successes as f64 / secs,
            vs.avg_response_us(),
            fs.avg_response_us(),
        );
    }

    let v_total: u64 = v.values().map(|s| s.successes).sum();
    let f_total: u64 = f.values().map(|s| s.successes).sum();
    println!(
        "\ntotal successful ops: vanilla {v_total}, falcon {f_total} ({:.2}x)",
        f_total as f64 / v_total.max(1) as f64
    );
    println!("(The paper reports up to 300% higher operation rates and 63% lower");
    println!(" response times with Falcon on this benchmark.)");
}

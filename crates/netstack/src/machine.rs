//! The server machine: all kernel state of the receiving host.
//!
//! `Machine` aggregates the cores, the device instances of the overlay
//! data path, the per-core softirq scheduling state (hardirq queues,
//! NAPI poll lists, task queues), sockets, the steering policy, and the
//! invariant trackers. The *dispatch logic* that animates this state
//! lives in [`crate::rxpath`].

use std::collections::{HashMap, VecDeque};

use falcon_cpusim::{Cores, LoadTracker};
use falcon_khash::FlowKeys;
use falcon_netdev::{Backlogs, DeviceKind, DeviceTable, Fdb, GroCells, PhysNic};
use falcon_packet::{Ipv4Addr4, MacAddr, SkBuff};
use falcon_simcore::SimTime;

use crate::config::{NetMode, StackConfig};
use crate::ordering::OrderTracker;
use crate::socket::{SockId, SocketTable};
use crate::steering::Steering;

/// The server's host-network IP.
pub const SERVER_HOST_IP: Ipv4Addr4 = Ipv4Addr4::new(192, 168, 0, 2);
/// The client's host-network IP.
pub const CLIENT_HOST_IP: Ipv4Addr4 = Ipv4Addr4::new(192, 168, 0, 1);
/// The VNI of the simulated Docker overlay network.
pub const OVERLAY_VNI: u32 = 256;

/// Interface indexes of the registered devices.
#[derive(Debug, Clone)]
pub struct Ifindexes {
    /// The physical NIC.
    pub pnic: u32,
    /// The synthetic second half of a split pNIC stage (GRO-splitting);
    /// distinct so the split halves hash to different CPUs.
    pub pnic_split: u32,
    /// The VXLAN tunnel device (overlay mode).
    pub vxlan: u32,
    /// The bridge (overlay mode).
    pub bridge: u32,
}

/// Per-container network attachment.
#[derive(Debug, Clone)]
pub struct ContainerNet {
    /// The container's private IP.
    pub addr: Ipv4Addr4,
    /// The container-side MAC.
    pub mac: MacAddr,
    /// The veth device's ifindex (the third pipeline stage's identity).
    pub veth_ifindex: u32,
}

/// A NAPI instance reference on a core's poll list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NapiRef {
    /// The physical NIC's queue `q` (driver poll, `mlx5e_napi_poll`).
    Nic {
        /// Hardware queue index.
        queue: usize,
    },
    /// This core's VXLAN gro_cell (`gro_cell_poll`).
    GroCell,
    /// This core's input packet queue (`process_backlog`).
    Backlog,
}

/// Work queued for hardirq context on a core.
#[derive(Debug, Clone, Copy)]
pub enum HardIrqWork {
    /// The NIC raised its receive interrupt for `queue`.
    NicIrq {
        /// Hardware queue index.
        queue: usize,
    },
    /// An IPI asking this core to schedule a NAPI instance (remote
    /// `enqueue_to_backlog` / gro_cell kick).
    NapiKick {
        /// The NAPI instance to schedule.
        napi: NapiRef,
    },
}

/// Work queued for task (process) context on a core.
#[derive(Debug)]
pub enum TaskWork {
    /// Deliver a packet to the application that owns `sock`:
    /// `copy_to_user` + `recvmsg` + app service time.
    Deliver {
        /// Destination socket.
        sock: SockId,
        /// The packet (metadata carrier at this point).
        skb: SkBuff,
    },
    /// The server application sends a response: `sendmsg` + (overlay)
    /// encapsulation + driver transmit on the app core.
    ServerSend {
        /// Flow the response belongs to.
        flow: u64,
        /// Response payload bytes.
        bytes: usize,
        /// Correlation id echoed to the client.
        msg_id: u64,
        /// Extra application service time charged before the send
        /// (request handling work beyond the socket's default).
        service_ns: u64,
    },
}

/// Reassembly state for one fragmented datagram.
#[derive(Debug)]
pub struct FragAsm {
    /// Fragments received so far.
    pub got: u32,
    /// Fragments needed.
    pub need: u32,
    /// Prototype skb (first fragment) carrying the metadata.
    pub proto: Option<SkBuff>,
}

/// The receiving host.
pub struct Machine {
    /// Stack configuration.
    pub cfg: StackConfig,
    /// Core execution and accounting.
    pub cores: Cores,
    /// Windowed load (the `/proc/stat` sampler).
    pub load: LoadTracker,
    /// Device name/ifindex table.
    pub devices: DeviceTable,
    /// Well-known device ifindexes.
    pub ifx: Ifindexes,
    /// The physical NIC.
    pub nic: PhysNic,
    /// Per-CPU VXLAN gro_cells.
    pub grocells: GroCells,
    /// Per-CPU input packet queues.
    pub backlogs: Backlogs,
    /// The bridge FDB.
    pub fdb: Fdb,
    /// Bound sockets.
    pub sockets: SocketTable,
    /// Containers attached to the bridge, looked up by private IP.
    pub containers: Vec<ContainerNet>,
    container_by_ip: HashMap<u32, usize>,
    /// Per-core NET_RX poll lists.
    pub poll_list: Vec<VecDeque<NapiRef>>,
    /// Per-core pending hardirqs.
    pub hardirq_q: Vec<VecDeque<HardIrqWork>>,
    /// Per-core pending task work.
    pub task_q: Vec<VecDeque<TaskWork>>,
    /// Stage-transition CPU selection policy.
    pub steering: Box<dyn Steering>,
    /// In-order delivery checker.
    pub order: OrderTracker,
    /// IP reassembly table: `(flow, datagram) -> state`.
    pub defrag: HashMap<(u64, u64), FragAsm>,
    /// Flow-hash salt.
    pub hashrnd: u32,
    /// Next tick at which the load tracker samples.
    pub next_load_sample: SimTime,
    /// Consecutive softirq work units per core since the last task or
    /// hardirq unit — the dispatcher's ksoftirqd-fairness counter.
    pub softirq_streak: Vec<u32>,
}

impl Machine {
    /// Builds a machine: registers devices per the mode and creates all
    /// per-core structures.
    pub fn new(cfg: StackConfig, steering: Box<dyn Steering>, hashrnd: u32) -> Self {
        let n = cfg.n_cores;
        let mut devices = DeviceTable::new();
        let pnic = devices.register(DeviceKind::Pnic, "eth0");
        let pnic_split = devices.register(DeviceKind::SplitStage, "eth0:gro");
        let (vxlan, bridge) = match cfg.mode {
            NetMode::Overlay => (
                devices.register(DeviceKind::Vxlan, "vxlan0"),
                devices.register(DeviceKind::Bridge, "docker0"),
            ),
            // Host mode keeps zeroed ifindexes; the overlay stages
            // never run.
            NetMode::Host => (0, 0),
        };
        let nic = PhysNic::new(cfg.nic.clone());
        Machine {
            cores: Cores::new(n),
            load: LoadTracker::new(n),
            ifx: Ifindexes {
                pnic,
                pnic_split,
                vxlan,
                bridge,
            },
            nic,
            grocells: GroCells::new(n, cfg.gro_cell_capacity),
            backlogs: Backlogs::new(n, cfg.backlog_capacity),
            fdb: Fdb::new(),
            sockets: SocketTable::new(),
            containers: Vec::new(),
            container_by_ip: HashMap::new(),
            poll_list: (0..n).map(|_| VecDeque::new()).collect(),
            hardirq_q: (0..n).map(|_| VecDeque::new()).collect(),
            task_q: (0..n).map(|_| VecDeque::new()).collect(),
            steering,
            order: OrderTracker::new(),
            defrag: HashMap::new(),
            hashrnd,
            next_load_sample: SimTime::ZERO,
            softirq_streak: vec![0; n],
            devices,
            cfg,
        }
    }

    /// Attaches a container with the given private IP to the bridge.
    ///
    /// Registers its veth device and pre-populates the FDB (as ARP +
    /// learning would after the first frame).
    pub fn add_container(&mut self, addr: Ipv4Addr4) -> usize {
        let idx = self.containers.len();
        let veth_ifindex = self
            .devices
            .register(DeviceKind::Veth, format!("veth{idx}"));
        let mac = MacAddr::from_index(0x100 + idx as u64);
        self.fdb.learn(mac, idx);
        self.containers.push(ContainerNet {
            addr,
            mac,
            veth_ifindex,
        });
        self.container_by_ip.insert(addr.0, idx);
        idx
    }

    /// Looks up the container owning a private IP.
    pub fn container_for_ip(&self, addr: u32) -> Option<&ContainerNet> {
        self.container_by_ip
            .get(&addr)
            .map(|&i| &self.containers[i])
    }

    /// Computes the flow hash the dissector would store in `skb->hash`.
    pub fn flow_hash(&self, keys: &FlowKeys) -> u32 {
        falcon_khash::flow_hash_from_keys(keys, self.hashrnd)
    }

    /// True when a core has nothing queued in any class.
    pub fn core_quiescent(&self, core: usize) -> bool {
        self.hardirq_q[core].is_empty()
            && self.poll_list[core].is_empty()
            && self.task_q[core].is_empty()
    }

    /// True when the whole machine is drained (no queued work anywhere;
    /// cores may still be finishing their last unit).
    pub fn quiescent(&self) -> bool {
        (0..self.cfg.n_cores).all(|c| self.core_quiescent(c))
            && self.backlogs.all_empty()
            && self.grocells.all_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetMode;
    use crate::cost::KernelVersion;
    use crate::steering::StayLocal;

    fn machine(mode: NetMode) -> Machine {
        Machine::new(
            StackConfig::new(mode, KernelVersion::K419, 4),
            Box::new(StayLocal),
            7,
        )
    }

    #[test]
    fn overlay_registers_all_devices() {
        let m = machine(NetMode::Overlay);
        assert_eq!(m.devices.name(m.ifx.pnic), "eth0");
        assert_eq!(m.devices.name(m.ifx.vxlan), "vxlan0");
        assert_eq!(m.devices.name(m.ifx.bridge), "docker0");
        assert_ne!(m.ifx.pnic, m.ifx.pnic_split);
    }

    #[test]
    fn host_mode_has_no_overlay_devices() {
        let m = machine(NetMode::Host);
        assert_eq!(m.ifx.vxlan, 0);
        assert_eq!(m.ifx.bridge, 0);
    }

    #[test]
    fn containers_attach_with_distinct_identities() {
        let mut m = machine(NetMode::Overlay);
        let a = Ipv4Addr4::new(10, 0, 0, 10);
        let b = Ipv4Addr4::new(10, 0, 0, 11);
        m.add_container(a);
        m.add_container(b);
        let ca = m.container_for_ip(a.0).unwrap();
        let cb = m.container_for_ip(b.0).unwrap();
        assert_ne!(ca.veth_ifindex, cb.veth_ifindex);
        assert_ne!(ca.mac, cb.mac);
        assert!(m.container_for_ip(0xDEAD).is_none());
    }

    #[test]
    fn flow_hash_is_salted_and_stable() {
        let m = machine(NetMode::Host);
        let keys = FlowKeys::udp(1, 2, 3, 4);
        assert_eq!(m.flow_hash(&keys), m.flow_hash(&keys));
        let other = Machine::new(
            StackConfig::new(NetMode::Host, KernelVersion::K419, 4),
            Box::new(StayLocal),
            8,
        );
        assert_ne!(m.flow_hash(&keys), other.flow_hash(&keys));
    }

    #[test]
    fn fresh_machine_is_quiescent() {
        let m = machine(NetMode::Overlay);
        assert!(m.quiescent());
        for c in 0..4 {
            assert!(m.core_quiescent(c));
        }
    }
}

//! Pre-registered slab buffer pool for the wire hot path.
//!
//! In steady state, every wire-mode packet used to cost one `Box` for
//! the [`WireBuf`] shell, one `Vec` for the segment list, and one heap
//! buffer per segment — all freed a few microseconds later on a
//! different core. This module replaces that churn with the way real
//! drivers run their rx descriptor rings: a [`SlabPool`] pre-allocates
//! fixed-size slots in two classes (MTU and jumbo), leases them out as
//! generation-tagged [`SlabSeg`]s, and takes them back through a
//! bounded MPSC return ring that any worker thread can push into
//! without locks. The pool owner (the packet source thread) drains the
//! ring back into its freelists on every lease, so buffers circulate
//! source → ring mesh → delivery → return ring → source without a
//! single `malloc` once the run is warm.
//!
//! Exhaustion never fails: when a class runs dry the pool falls back to
//! a plain heap buffer and counts it ([`SlabCounters::fallbacks`]), so
//! undersized pools degrade to exactly the old allocation behaviour.
//! Dropped segments self-return via `Drop`, which makes every drop path
//! in the executor (tail drops, malformed frames, panics) leak-free by
//! construction; recycling the *shell* too ([`recycle`]) is the
//! explicit fast path delivery and drop sites use.

use core::fmt;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use serde::Serialize;

use crate::desc::WireBuf;

/// Slot size of the MTU class: covers a full 1500-byte inner frame plus
/// the VXLAN envelope, and matches the ingest path's receive scratch.
pub const MTU_SLOT: usize = 2048;
/// Slot size of the jumbo class: a 9000-byte jumbo frame plus envelope
/// headroom.
pub const JUMBO_SLOT: usize = 9728;

const N_CLASSES: usize = 2;

/// Pool sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlabConfig {
    /// Slots of [`MTU_SLOT`] bytes.
    pub mtu_slots: usize,
    /// Slots of [`JUMBO_SLOT`] bytes.
    pub jumbo_slots: usize,
}

impl Default for SlabConfig {
    fn default() -> Self {
        SlabConfig {
            mtu_slots: 1024,
            jumbo_slots: 32,
        }
    }
}

/// Monotonic pool counters, shared with telemetry. All relaxed: these
/// are statistics, not synchronization.
#[derive(Debug, Default)]
pub struct SlabCounters {
    /// Segments leased from a pool freelist.
    pub leases: AtomicU64,
    /// Heap-fallback segments handed out because a class was dry (or
    /// the request exceeded the jumbo class).
    pub fallbacks: AtomicU64,
    /// Slots drained from the return ring back into a freelist.
    pub recycles: AtomicU64,
    /// Cross-thread pushes into the return rings (segments + shells).
    pub returns: AtomicU64,
    /// Returns lost because a ring was full (the buffer is freed).
    pub ring_drops: AtomicU64,
    /// Returned slots whose generation tag did not match (discarded).
    pub gen_errors: AtomicU64,
}

impl SlabCounters {
    /// Coherent-enough snapshot for export (relaxed loads).
    pub fn snapshot(&self) -> SlabSample {
        SlabSample {
            leases: self.leases.load(Ordering::Relaxed),
            fallbacks: self.fallbacks.load(Ordering::Relaxed),
            recycles: self.recycles.load(Ordering::Relaxed),
            returns: self.returns.load(Ordering::Relaxed),
            ring_drops: self.ring_drops.load(Ordering::Relaxed),
            gen_errors: self.gen_errors.load(Ordering::Relaxed),
        }
    }
}

/// One snapshot of [`SlabCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct SlabSample {
    /// See [`SlabCounters::leases`].
    pub leases: u64,
    /// See [`SlabCounters::fallbacks`].
    pub fallbacks: u64,
    /// See [`SlabCounters::recycles`].
    pub recycles: u64,
    /// See [`SlabCounters::returns`].
    pub returns: u64,
    /// See [`SlabCounters::ring_drops`].
    pub ring_drops: u64,
    /// See [`SlabCounters::gen_errors`].
    pub gen_errors: u64,
}

impl SlabSample {
    /// Counter deltas since `prev` (saturating, so a restarted pool
    /// never exports negative rates).
    pub fn delta_since(&self, prev: &SlabSample) -> SlabSample {
        SlabSample {
            leases: self.leases.saturating_sub(prev.leases),
            fallbacks: self.fallbacks.saturating_sub(prev.fallbacks),
            recycles: self.recycles.saturating_sub(prev.recycles),
            returns: self.returns.saturating_sub(prev.returns),
            ring_drops: self.ring_drops.saturating_sub(prev.ring_drops),
            gen_errors: self.gen_errors.saturating_sub(prev.gen_errors),
        }
    }
}

/// Packed identity of a leased slot: class, slot index, and the
/// generation the slot had when leased. The generation is validated and
/// bumped on every recycle, so a stale return (a logic bug that would
/// be a use-after-free in a real driver) is detected and discarded
/// instead of corrupting the freelist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SlotTag(u64);

impl SlotTag {
    fn new(class: usize, index: usize, gen: u32) -> Self {
        SlotTag(((class as u64) << 56) | ((index as u64 & 0x00FF_FFFF) << 32) | gen as u64)
    }
    fn class(self) -> usize {
        (self.0 >> 56) as usize
    }
    fn index(self) -> usize {
        ((self.0 >> 32) & 0x00FF_FFFF) as usize
    }
    fn gen(self) -> u32 {
        self.0 as u32
    }
}

/// The cross-thread half of a pool: the return rings and generation
/// table every leased segment keeps an `Arc` to.
pub struct PoolShared {
    seg_ring: MpscRing<(SlotTag, Vec<u8>)>,
    shell_ring: MpscRing<Box<WireBuf>>,
    gens: [Vec<AtomicU32>; N_CLASSES],
    counters: Arc<SlabCounters>,
}

impl fmt::Debug for PoolShared {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PoolShared")
            .field("mtu_slots", &self.gens[0].len())
            .field("jumbo_slots", &self.gens[1].len())
            .finish()
    }
}

impl PoolShared {
    fn push_seg(&self, tag: SlotTag, buf: Vec<u8>) {
        self.counters.returns.fetch_add(1, Ordering::Relaxed);
        if !self.seg_ring.push((tag, buf)) {
            self.counters.ring_drops.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn push_shell(&self, shell: Box<WireBuf>) {
        self.counters.returns.fetch_add(1, Ordering::Relaxed);
        if !self.shell_ring.push(shell) {
            self.counters.ring_drops.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// One leased buffer segment: either a pool slot (returned to its pool
/// on drop, from any thread) or a detached heap buffer
/// (exhaustion-fallback or test convenience; dropped normally).
///
/// Dereferences to its byte contents. The underlying `Vec` is exposed
/// for in-place frame building; growing it past the slot size works
/// (the pool re-mints the slot on return) but re-introduces the
/// allocation the pool exists to avoid.
pub struct SlabSeg {
    buf: Vec<u8>,
    origin: Option<(Arc<PoolShared>, SlotTag)>,
}

impl SlabSeg {
    /// Wraps a plain heap buffer (no pool, dropped normally).
    pub fn detached(buf: Vec<u8>) -> Self {
        SlabSeg { buf, origin: None }
    }

    /// Whether this segment is backed by a pool slot.
    pub fn is_pooled(&self) -> bool {
        self.origin.is_some()
    }

    /// The byte contents, mutably.
    ///
    /// Contract for pooled segments: shrink freely (`clear`/`truncate`)
    /// and extend within the slot's capacity; operations that move or
    /// shrink the allocation itself forfeit the slot (it is re-minted
    /// on return) and may reintroduce heap traffic.
    pub fn vec_mut(&mut self) -> &mut Vec<u8> {
        &mut self.buf
    }

    /// Shortens the contents to `len` (no-op if already shorter).
    pub fn truncate(&mut self, len: usize) {
        self.buf.truncate(len);
    }

    /// Decomposes the segment into its bare buffer and a [`RawSlot`]
    /// recording the pool identity, without returning the slot.
    ///
    /// For I/O layers that need a plain `Vec<u8>` to hand to the
    /// kernel (e.g. `recvmmsg` iovecs): receive directly into the
    /// bare buffer, then reattach with [`SlabSeg::from_raw`]. The
    /// caller owns the obligation to reassemble — dropping the parts
    /// separately leaks the slot until the pool is torn down.
    pub fn into_raw(self) -> (Vec<u8>, RawSlot) {
        let mut this = std::mem::ManuallyDrop::new(self);
        (std::mem::take(&mut this.buf), RawSlot(this.origin.take()))
    }

    /// Reassembles a segment from [`SlabSeg::into_raw`] parts. The
    /// buffer must be the one the `RawSlot` came from (the pool's
    /// generation check discards mismatched returns defensively, but
    /// pairing them correctly is the caller's contract).
    pub fn from_raw(buf: Vec<u8>, raw: RawSlot) -> SlabSeg {
        SlabSeg { buf, origin: raw.0 }
    }
}

/// The pool identity of a decomposed [`SlabSeg`] (see
/// [`SlabSeg::into_raw`]). Inert on its own: dropping it without
/// reassembling leaks the slot's freelist entry for the pool's
/// lifetime, it never double-returns.
#[derive(Debug, Default)]
pub struct RawSlot(Option<(Arc<PoolShared>, SlotTag)>);

impl RawSlot {
    /// Whether the decomposed segment was pool-backed.
    pub fn is_pooled(&self) -> bool {
        self.0.is_some()
    }
}

impl Deref for SlabSeg {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for SlabSeg {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl From<Vec<u8>> for SlabSeg {
    fn from(buf: Vec<u8>) -> Self {
        SlabSeg::detached(buf)
    }
}

impl Clone for SlabSeg {
    /// Clones detach: the copy is a plain heap buffer, never a second
    /// lease on the same slot.
    fn clone(&self) -> Self {
        SlabSeg::detached(self.buf.clone())
    }
}

impl Default for SlabSeg {
    fn default() -> Self {
        SlabSeg::detached(Vec::new())
    }
}

impl fmt::Debug for SlabSeg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SlabSeg")
            .field("len", &self.buf.len())
            .field("pooled", &self.is_pooled())
            .finish()
    }
}

impl PartialEq for SlabSeg {
    fn eq(&self, other: &Self) -> bool {
        self.buf == other.buf
    }
}
impl Eq for SlabSeg {}

impl PartialEq<Vec<u8>> for SlabSeg {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self.buf == other
    }
}
impl PartialEq<[u8]> for SlabSeg {
    fn eq(&self, other: &[u8]) -> bool {
        self.buf == other
    }
}
impl PartialEq<SlabSeg> for Vec<u8> {
    fn eq(&self, other: &SlabSeg) -> bool {
        self == &other.buf
    }
}

impl Drop for SlabSeg {
    fn drop(&mut self) {
        if let Some((shared, tag)) = self.origin.take() {
            shared.push_seg(tag, std::mem::take(&mut self.buf));
        }
    }
}

/// The single-owner half of the pool: freelists plus the drain cursor
/// of the return rings. Lives on the packet-source thread; leased
/// segments and shells travel to any thread and find their own way
/// back.
pub struct SlabPool {
    shared: Arc<PoolShared>,
    /// Freelists of `(slot index, buffer)`: every slot keeps the
    /// permanent index it was minted with, which is what ties it to its
    /// row in the generation table across lease/return cycles.
    free: [Vec<(u32, Vec<u8>)>; N_CLASSES],
    /// Shells are cached already-boxed: `lease_shell` hands the `Box`
    /// straight out, so the box itself is part of what the pool
    /// recycles (unboxing here would put a `Box::new` back on the
    /// per-lease path).
    #[allow(clippy::vec_box)]
    shells: Vec<Box<WireBuf>>,
    shell_cap: usize,
}

impl fmt::Debug for SlabPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SlabPool")
            .field("free_mtu", &self.free[0].len())
            .field("free_jumbo", &self.free[1].len())
            .field("shells", &self.shells.len())
            .finish()
    }
}

const CLASS_LEN: [usize; N_CLASSES] = [MTU_SLOT, JUMBO_SLOT];

impl SlabPool {
    /// Pre-allocates every slot and shell up front.
    pub fn new(cfg: SlabConfig) -> Self {
        let slots = [cfg.mtu_slots, cfg.jumbo_slots];
        let total = cfg.mtu_slots + cfg.jumbo_slots;
        let ring_cap = (total + 64).next_power_of_two();
        let counters = Arc::new(SlabCounters::default());
        let shared = Arc::new(PoolShared {
            seg_ring: MpscRing::new(ring_cap),
            shell_ring: MpscRing::new(ring_cap),
            gens: [
                (0..slots[0]).map(|_| AtomicU32::new(0)).collect(),
                (0..slots[1]).map(|_| AtomicU32::new(0)).collect(),
            ],
            counters,
        });
        let free = [
            (0..slots[0])
                .map(|i| (i as u32, vec![0u8; CLASS_LEN[0]]))
                .collect(),
            (0..slots[1])
                .map(|i| (i as u32, vec![0u8; CLASS_LEN[1]]))
                .collect(),
        ];
        // Carve the shell cache at its cap up front: `take_back_shell`
        // pushes into this Vec on the steady-state recycle path, and a
        // lazily-grown Vec would smuggle an allocation back in there.
        // Mint one shell per slot too — every in-flight shell carries at
        // least one minted segment, so `total` shells cover the deepest
        // possible backlog and `lease_shell` never has to fall back to
        // the heap while the pool itself isn't exhausted.
        let shell_cap = total.max(16);
        let mut shells = Vec::with_capacity(shell_cap);
        shells.extend((0..total).map(|_| Box::new(WireBuf::new_pooled(shared.clone()))));
        SlabPool {
            shared,
            free,
            shells,
            shell_cap,
        }
    }

    /// The pool's counters, shareable with telemetry.
    pub fn counters(&self) -> Arc<SlabCounters> {
        self.shared.counters.clone()
    }

    /// Leases a segment of at least `len` readable bytes. Pool slots
    /// come back full-length (slot-class size, fully initialized);
    /// heap fallbacks come back exactly `len` long, zeroed.
    pub fn acquire(&mut self, len: usize) -> SlabSeg {
        self.drain_returns();
        let class = CLASS_LEN.iter().position(|&c| len <= c);
        if let Some(class) = class {
            if let Some((index, mut buf)) = self.free[class].pop() {
                restore_slot(&mut buf, CLASS_LEN[class]);
                let gen = self.shared.gens[class][index as usize].load(Ordering::Relaxed);
                let tag = SlotTag::new(class, index as usize, gen);
                self.shared.counters.leases.fetch_add(1, Ordering::Relaxed);
                return SlabSeg {
                    buf,
                    origin: Some((self.shared.clone(), tag)),
                };
            }
        }
        self.shared
            .counters
            .fallbacks
            .fetch_add(1, Ordering::Relaxed);
        SlabSeg::detached(vec![0u8; len])
    }

    /// Leases a recycled `WireBuf` shell (cleared, segment-list
    /// capacity retained) or mints a fresh pooled one.
    pub fn lease_shell(&mut self) -> Box<WireBuf> {
        self.drain_returns();
        self.shells
            .pop()
            .unwrap_or_else(|| Box::new(WireBuf::new_pooled(self.shared.clone())))
    }

    /// Drains both return rings into the freelists. Called on every
    /// lease; cheap when the rings are empty (one atomic load each).
    pub fn drain_returns(&mut self) {
        // SAFETY: `SlabPool` is the unique consumer of its rings (it is
        // not clonable and `pop` takes `&mut self`).
        while let Some(shell) = unsafe { self.shared.shell_ring.pop() } {
            self.take_back_shell(shell);
        }
        while let Some((tag, buf)) = unsafe { self.shared.seg_ring.pop() } {
            self.take_back_seg(tag, buf);
        }
    }

    fn take_back_shell(&mut self, mut shell: Box<WireBuf>) {
        // Dropping the segments routes each pooled slot through the seg
        // ring (their own `Drop`), drained right after in the caller.
        shell.inner = None;
        shell.segs.clear();
        if self.shells.len() < self.shell_cap {
            self.shells.push(shell);
        }
    }

    fn take_back_seg(&mut self, tag: SlotTag, mut buf: Vec<u8>) {
        let class = tag.class().min(N_CLASSES - 1);
        let gens = &self.shared.gens[class];
        let ok = gens
            .get(tag.index())
            .map(|g| g.load(Ordering::Relaxed) == tag.gen())
            .unwrap_or(false);
        if !ok {
            self.shared
                .counters
                .gen_errors
                .fetch_add(1, Ordering::Relaxed);
            return;
        }
        gens[tag.index()].fetch_add(1, Ordering::Relaxed);
        if self.free[class].len() < gens.len() {
            restore_slot(&mut buf, CLASS_LEN[class]);
            self.free[class].push((tag.index() as u32, buf));
            self.shared
                .counters
                .recycles
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Free slots currently in the pool, per class (diagnostics).
    pub fn free_slots(&self) -> (usize, usize) {
        (self.free[0].len(), self.free[1].len())
    }
}

/// Restores a returned slot to full length. Slots are minted fully
/// initialized and only ever shrunk/overwritten within their capacity,
/// so when the capacity is untouched the bytes up to it are still
/// initialized and `set_len` is sound; a slot whose allocation was
/// moved or shrunk by a caller is re-zeroed the slow way.
fn restore_slot(buf: &mut Vec<u8>, class_len: usize) {
    if buf.capacity() == class_len {
        // SAFETY: minted as `vec![0; class_len]`; `Vec` never moves its
        // allocation without changing capacity, so all `class_len`
        // bytes remain initialized.
        unsafe { buf.set_len(class_len) }
    } else {
        buf.clear();
        buf.resize(class_len, 0);
        buf.shrink_to_fit();
    }
}

/// Returns a wire buffer — shell, segment list, and slots — to its
/// owning pool in one ring push. `false` means the shell was not
/// pool-backed and was dropped normally (any pooled segments inside
/// still self-return via their own `Drop`).
pub fn recycle(buf: Box<WireBuf>) -> bool {
    match buf.shell_origin() {
        Some(shared) => {
            shared.push_shell(buf);
            true
        }
        None => false,
    }
}

/// Bounded MPSC ring (Vyukov-style bounded queue): many producers push
/// with one CAS, the single consumer pops without contention. `push`
/// returns `false` when full instead of blocking — the caller frees the
/// buffer, which only costs the allocation the pool would have saved.
struct MpscRing<T> {
    cells: Box<[RingCell<T>]>,
    mask: usize,
    enqueue: AtomicUsize,
    dequeue: AtomicUsize,
}

struct RingCell<T> {
    seq: AtomicUsize,
    val: UnsafeCell<MaybeUninit<T>>,
}

// SAFETY: cells are handed off with acquire/release on `seq`; the value
// slot is only touched by the producer that won the CAS or the single
// consumer observing the released sequence.
unsafe impl<T: Send> Sync for MpscRing<T> {}
unsafe impl<T: Send> Send for MpscRing<T> {}

impl<T> MpscRing<T> {
    fn new(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(2);
        MpscRing {
            cells: (0..cap)
                .map(|i| RingCell {
                    seq: AtomicUsize::new(i),
                    val: UnsafeCell::new(MaybeUninit::uninit()),
                })
                .collect(),
            mask: cap - 1,
            enqueue: AtomicUsize::new(0),
            dequeue: AtomicUsize::new(0),
        }
    }

    /// Multi-producer push; `false` if the ring is full.
    fn push(&self, val: T) -> bool {
        let mut pos = self.enqueue.load(Ordering::Relaxed);
        loop {
            let cell = &self.cells[pos & self.mask];
            let seq = cell.seq.load(Ordering::Acquire);
            let dif = seq as isize - pos as isize;
            if dif == 0 {
                match self.enqueue.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: winning the CAS grants exclusive
                        // write access to this cell until `seq` is
                        // released below.
                        unsafe { (*cell.val.get()).write(val) };
                        cell.seq.store(pos + 1, Ordering::Release);
                        return true;
                    }
                    Err(p) => pos = p,
                }
            } else if dif < 0 {
                return false;
            } else {
                pos = self.enqueue.load(Ordering::Relaxed);
            }
        }
    }

    /// Single-consumer pop.
    ///
    /// # Safety
    /// Must only be called from one thread at a time (the pool owner).
    unsafe fn pop(&self) -> Option<T> {
        let pos = self.dequeue.load(Ordering::Relaxed);
        let cell = &self.cells[pos & self.mask];
        let seq = cell.seq.load(Ordering::Acquire);
        if (seq as isize) - ((pos + 1) as isize) < 0 {
            return None;
        }
        // SAFETY: the released `seq` proves the producer finished
        // writing; single-consumer contract gives exclusive read.
        let val = unsafe { (*cell.val.get()).assume_init_read() };
        cell.seq.store(pos + self.mask + 1, Ordering::Release);
        self.dequeue.store(pos + 1, Ordering::Relaxed);
        Some(val)
    }
}

impl<T> Drop for MpscRing<T> {
    fn drop(&mut self) {
        // SAFETY: `&mut self` proves no other consumer exists.
        while unsafe { self.pop() }.is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_and_self_return_round_trip() {
        let mut pool = SlabPool::new(SlabConfig {
            mtu_slots: 4,
            jumbo_slots: 1,
        });
        let c = pool.counters();
        {
            let seg = pool.acquire(1500);
            assert!(seg.is_pooled());
            assert_eq!(seg.len(), MTU_SLOT);
            assert_eq!(pool.free_slots().0, 3);
        } // dropped → return ring
        pool.drain_returns();
        assert_eq!(pool.free_slots().0, 4);
        let s = c.snapshot();
        assert_eq!(s.leases, 1);
        assert_eq!(s.returns, 1);
        assert_eq!(s.recycles, 1);
        assert_eq!(s.fallbacks, 0);
    }

    #[test]
    fn exhaustion_falls_back_to_heap_and_counts() {
        let mut pool = SlabPool::new(SlabConfig {
            mtu_slots: 2,
            jumbo_slots: 0,
        });
        let a = pool.acquire(100);
        let b = pool.acquire(100);
        let c = pool.acquire(100);
        assert!(a.is_pooled() && b.is_pooled());
        assert!(!c.is_pooled());
        assert_eq!(c.len(), 100);
        assert_eq!(pool.counters().snapshot().fallbacks, 1);
        drop((a, b, c));
        pool.drain_returns();
        assert_eq!(pool.free_slots().0, 2);
    }

    #[test]
    fn jumbo_class_and_oversize_fallback() {
        let mut pool = SlabPool::new(SlabConfig {
            mtu_slots: 1,
            jumbo_slots: 1,
        });
        let j = pool.acquire(MTU_SLOT + 1);
        assert!(j.is_pooled());
        assert_eq!(j.len(), JUMBO_SLOT);
        let huge = pool.acquire(JUMBO_SLOT + 1);
        assert!(!huge.is_pooled());
        assert_eq!(pool.counters().snapshot().fallbacks, 1);
    }

    #[test]
    fn shell_recycle_carries_segments_home() {
        let mut pool = SlabPool::new(SlabConfig {
            mtu_slots: 2,
            jumbo_slots: 0,
        });
        let mut shell = pool.lease_shell();
        let mut seg = pool.acquire(64);
        seg.truncate(64);
        shell.segs.push(seg);
        shell.inner = Some(10..20);
        assert!(recycle(shell));
        pool.drain_returns();
        assert_eq!(pool.free_slots().0, 2);
        let shell2 = pool.lease_shell();
        assert!(shell2.segs.is_empty());
        assert!(shell2.inner.is_none());
        let s = pool.counters().snapshot();
        assert!(s.returns >= 2, "shell push + seg push, got {}", s.returns);
    }

    #[test]
    fn detached_shell_recycle_is_a_no_op() {
        let buf = WireBuf::single(vec![1, 2, 3]);
        assert!(!recycle(buf));
    }

    #[test]
    fn slots_recycle_across_threads() {
        let mut pool = SlabPool::new(SlabConfig {
            mtu_slots: 8,
            jumbo_slots: 0,
        });
        let segs: Vec<SlabSeg> = (0..8).map(|_| pool.acquire(256)).collect();
        assert_eq!(pool.free_slots().0, 0);
        let handles: Vec<_> = segs
            .into_iter()
            .map(|seg| std::thread::spawn(move || drop(seg)))
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        pool.drain_returns();
        assert_eq!(pool.free_slots().0, 8);
        assert_eq!(pool.counters().snapshot().recycles, 8);
        // Leases after cross-thread recycling hand out real slots.
        assert!(pool.acquire(256).is_pooled());
    }

    #[test]
    fn clone_detaches() {
        let mut pool = SlabPool::new(SlabConfig {
            mtu_slots: 1,
            jumbo_slots: 0,
        });
        let seg = pool.acquire(10);
        let copy = seg.clone();
        assert!(!copy.is_pooled());
        assert_eq!(&*copy, &*seg);
        drop(seg);
        pool.drain_returns();
        assert_eq!(pool.free_slots().0, 1);
        drop(copy); // plain heap drop, nothing returns twice
        pool.drain_returns();
        assert_eq!(pool.free_slots().0, 1);
    }

    #[test]
    fn mpsc_ring_full_push_fails() {
        let ring: MpscRing<u32> = MpscRing::new(2);
        assert!(ring.push(1));
        assert!(ring.push(2));
        assert!(!ring.push(3));
        assert_eq!(unsafe { ring.pop() }, Some(1));
        assert!(ring.push(4));
        assert_eq!(unsafe { ring.pop() }, Some(2));
        assert_eq!(unsafe { ring.pop() }, Some(4));
        assert_eq!(unsafe { ring.pop() }, None);
    }

    #[test]
    fn mpsc_ring_concurrent_producers_lose_nothing() {
        let ring: Arc<MpscRing<u64>> = Arc::new(MpscRing::new(1024));
        let producers: Vec<_> = (0..4u64)
            .map(|p| {
                let r = ring.clone();
                std::thread::spawn(move || {
                    for i in 0..200u64 {
                        while !r.push(p * 1000 + i) {
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        let mut got = Vec::new();
        while got.len() < 800 {
            // SAFETY: single consumer thread.
            if let Some(v) = unsafe { ring.pop() } {
                got.push(v);
            } else {
                std::thread::yield_now();
            }
        }
        for h in producers {
            h.join().unwrap();
        }
        got.sort_unstable();
        got.dedup();
        assert_eq!(got.len(), 800);
    }
}

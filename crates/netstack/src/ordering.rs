//! The in-order-delivery invariant checker.
//!
//! Falcon's correctness argument (paper §4.1) is that packets of one
//! flow are never reordered: at every device stage, all packets of a
//! flow run on a single, deterministic CPU, so per-(flow, device)
//! processing stays FIFO. The simulation *verifies* rather than assumes
//! this: every stage execution and the final socket delivery check that
//! the packet's per-flow sequence number is strictly increasing for
//! that (flow, device) pair. Drops create gaps — gaps are legal,
//! regressions are not.

use std::collections::HashMap;

/// Tracks per-(flow, checkpoint) sequence monotonicity.
#[derive(Debug, Default)]
pub struct OrderTracker {
    last_seen: HashMap<(u64, u32), u64>,
    checks: u64,
    violations: u64,
}

impl OrderTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        OrderTracker::default()
    }

    /// Checks a packet spanning sequences `[seq, seq + span)` of `flow`
    /// at checkpoint `ifindex` (a GRO-merged buffer spans several).
    ///
    /// Returns `true` if the order is consistent; records a violation
    /// otherwise.
    pub fn check(&mut self, flow: u64, ifindex: u32, seq: u64, span: u64) -> bool {
        self.checks += 1;
        let key = (flow, ifindex);
        let ok = match self.last_seen.get(&key) {
            Some(&last) => seq > last,
            None => true,
        };
        if ok {
            self.last_seen.insert(key, seq + span.max(1) - 1);
        } else {
            self.violations += 1;
        }
        ok
    }

    /// Total checks performed.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Total out-of-order observations.
    pub fn violations(&self) -> u64 {
        self.violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_passes() {
        let mut t = OrderTracker::new();
        for seq in 0..100 {
            assert!(t.check(1, 2, seq, 1));
        }
        assert_eq!(t.violations(), 0);
        assert_eq!(t.checks(), 100);
    }

    #[test]
    fn gaps_are_legal() {
        let mut t = OrderTracker::new();
        assert!(t.check(1, 2, 0, 1));
        assert!(t.check(1, 2, 5, 1), "drops make gaps; gaps are fine");
        assert!(t.check(1, 2, 6, 1));
        assert_eq!(t.violations(), 0);
    }

    #[test]
    fn regressions_are_violations() {
        let mut t = OrderTracker::new();
        assert!(t.check(1, 2, 5, 1));
        assert!(!t.check(1, 2, 3, 1));
        assert!(!t.check(1, 2, 5, 1), "duplicates count as reordering");
        assert_eq!(t.violations(), 2);
    }

    #[test]
    fn flows_and_devices_are_independent() {
        let mut t = OrderTracker::new();
        assert!(t.check(1, 2, 50, 1));
        assert!(t.check(2, 2, 10, 1), "other flow unaffected");
        assert!(t.check(1, 3, 10, 1), "other device unaffected");
        assert_eq!(t.violations(), 0);
    }

    #[test]
    fn spans_cover_gro_merges() {
        let mut t = OrderTracker::new();
        // A merged buffer covering seqs 0..3.
        assert!(t.check(1, 1, 0, 3));
        // Next segment must start after the span.
        assert!(!t.check(1, 1, 2, 1));
        assert!(t.check(1, 1, 3, 1));
    }

    #[test]
    fn zero_span_treated_as_one() {
        let mut t = OrderTracker::new();
        assert!(t.check(1, 1, 0, 0));
        assert!(t.check(1, 1, 1, 1));
    }
}

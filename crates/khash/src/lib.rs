//! Linux-compatible hash primitives used throughout the packet path.
//!
//! The Falcon paper's CPU-selection logic is built on three hash
//! functions from the Linux kernel, all reimplemented here:
//!
//! * [`jhash2`] / [`jhash_3words`] — Bob Jenkins' lookup3 hash as used by
//!   the kernel flow dissector (`include/linux/jhash.h`). RPS computes the
//!   flow hash (`skb->hash`) with it.
//! * [`hash_32`] — the kernel's golden-ratio multiplicative hash
//!   (`include/linux/hash.h`). Falcon's `get_falcon_cpu` applies it to
//!   `skb->hash + dev->ifindex` (Algorithm 1, line 19) and re-applies it
//!   for the second random choice (line 25).
//! * [`toeplitz_hash`] — the Microsoft RSS Toeplitz hash computed by
//!   multi-queue NICs in hardware to pick a receive queue.
//!
//! [`FlowKeys`] mirrors the kernel's `struct flow_keys` (the tuple RPS
//! hashes over) and [`flow_hash_from_keys`] mirrors
//! `__flow_hash_from_keys`.

pub mod flow;
pub mod jhash;
pub mod toeplitz;

pub use flow::{flow_hash_from_keys, FlowKeys};
pub use jhash::{jhash2, jhash_3words};
pub use toeplitz::{toeplitz_hash, MICROSOFT_RSS_KEY};

/// Golden ratio constant for 32-bit multiplicative hashing
/// (`GOLDEN_RATIO_32` in `include/linux/hash.h`).
pub const GOLDEN_RATIO_32: u32 = 0x61C8_8647;

/// The kernel's `hash_32`: multiply by the 32-bit golden ratio and keep
/// the top `bits` bits.
///
/// With `bits == 32` this degenerates to the plain multiplicative mix,
/// which is how Falcon uses it (the modulo onto the CPU set happens
/// separately).
///
/// # Panics
///
/// Panics if `bits` is zero or greater than 32.
///
/// # Examples
///
/// ```
/// use falcon_khash::hash_32;
///
/// // Same input, same hash.
/// assert_eq!(hash_32(12345, 32), hash_32(12345, 32));
/// // Different inputs spread apart.
/// assert_ne!(hash_32(1, 32), hash_32(2, 32));
/// ```
pub fn hash_32(val: u32, bits: u32) -> u32 {
    assert!(bits > 0 && bits <= 32, "hash_32 bits must be in 1..=32");
    let h = val.wrapping_mul(GOLDEN_RATIO_32);
    h >> (32 - bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_32_full_width_is_multiplicative_mix() {
        assert_eq!(hash_32(1, 32), GOLDEN_RATIO_32);
        assert_eq!(hash_32(0, 32), 0);
    }

    #[test]
    fn hash_32_bit_truncation() {
        let h = hash_32(0xDEAD_BEEF, 8);
        assert!(h < 256);
        assert_eq!(h, hash_32(0xDEAD_BEEF, 32) >> 24);
    }

    #[test]
    #[should_panic(expected = "bits must be in 1..=32")]
    fn hash_32_rejects_zero_bits() {
        let _ = hash_32(1, 0);
    }

    #[test]
    fn hash_32_spreads_sequential_inputs() {
        // Sequential device indexes must land on well-spread values —
        // this is exactly why Falcon mixes ifindex through hash_32
        // instead of using it raw.
        let mut buckets = [0u32; 8];
        for i in 0..800u32 {
            buckets[(hash_32(i, 32) % 8) as usize] += 1;
        }
        for &b in &buckets {
            assert!((60..=140).contains(&b), "bucket count {b} badly skewed");
        }
    }
}

//! SPSC ring stress tests: millions of cross-thread operations under
//! `--release`, boundary behavior at full/empty, and drop accounting.
//!
//! Debug builds use a reduced operation count so `cargo test` stays
//! fast; the CI dataplane job runs this file with `--release` at the
//! full multi-million-op count.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use falcon_dataplane::spsc::ring;

/// Ops per stress run: millions in release, thousands in debug.
fn stress_ops() -> u64 {
    if cfg!(debug_assertions) {
        200_000
    } else {
        3_000_000
    }
}

#[test]
fn fifo_over_millions_of_ops() {
    let n = stress_ops();
    let (mut tx, mut rx) = ring::<u64>(1024);
    let producer = std::thread::spawn(move || {
        for i in 0..n {
            loop {
                match tx.try_push(i) {
                    Ok(()) => break,
                    // Yield, not spin: single-core hosts must actually
                    // switch to the consumer to make progress.
                    Err(_) => std::thread::yield_now(),
                }
            }
        }
    });
    let mut expected = 0u64;
    while expected < n {
        match rx.pop() {
            Some(v) => {
                assert_eq!(v, expected, "FIFO violated at item {expected}");
                expected += 1;
            }
            None => std::thread::yield_now(),
        }
    }
    producer.join().expect("producer");
    assert!(rx.pop().is_none(), "ring must be empty after the run");
}

#[test]
fn tiny_ring_maximum_contention() {
    // Capacity 2: every push/pop races on the full/empty boundary, the
    // worst case for the cached-index fast path.
    let n = stress_ops() / 4;
    let (mut tx, mut rx) = ring::<u64>(2);
    let producer = std::thread::spawn(move || {
        for i in 0..n {
            while tx.try_push(i).is_err() {
                std::thread::yield_now();
            }
        }
    });
    let mut expected = 0u64;
    while expected < n {
        match rx.pop() {
            Some(v) => {
                assert_eq!(v, expected);
                expected += 1;
            }
            None => std::thread::yield_now(),
        }
    }
    producer.join().expect("producer");
}

#[test]
fn drop_on_full_accounting_under_load() {
    // Consumer is deliberately slower than the producer, so the
    // producer must tail-drop; at the end, accepted + dropped must
    // exactly equal the attempts and every accepted item must arrive
    // in order.
    let n = stress_ops() / 4;
    let (mut tx, mut rx) = ring::<u64>(64);
    let done = Arc::new(AtomicBool::new(false));
    let done_rx = Arc::clone(&done);
    let consumer = std::thread::spawn(move || {
        let mut received = 0u64;
        let mut last: Option<u64> = None;
        loop {
            match rx.pop() {
                Some(v) => {
                    if let Some(prev) = last {
                        assert!(v > prev, "order violated: {v} after {prev}");
                    }
                    last = Some(v);
                    received += 1;
                    // Slow consumer: extra work per item.
                    std::hint::black_box((0..32).sum::<u64>());
                }
                None => {
                    if done_rx.load(Ordering::Acquire) && rx.is_empty() {
                        break;
                    }
                    std::thread::yield_now();
                }
            }
        }
        received
    });
    let mut accepted = 0u64;
    for i in 0..n {
        if tx.push_or_drop(i) {
            accepted += 1;
        }
    }
    let dropped = tx.dropped();
    done.store(true, Ordering::Release);
    let received = consumer.join().expect("consumer");
    assert_eq!(accepted + dropped, n, "every attempt accounted for");
    assert_eq!(received, accepted, "every accepted item consumed");
    assert!(
        dropped > 0,
        "a 64-slot ring against a slow consumer must drop"
    );
}

#[test]
fn full_empty_boundaries_are_exact() {
    let (mut tx, mut rx) = ring::<u32>(8);
    // Drive the indices around the wrap point several times so the
    // monotonic counters exercise masked wrapping.
    for round in 0..100u32 {
        for i in 0..8 {
            assert!(tx.try_push(round * 8 + i).is_ok(), "slot {i} must fit");
        }
        assert!(tx.try_push(u32::MAX).is_err(), "9th push must fail");
        assert_eq!(rx.len(), 8);
        for i in 0..8 {
            assert_eq!(rx.pop(), Some(round * 8 + i));
        }
        assert!(rx.pop().is_none(), "empty ring must yield None");
        assert!(rx.is_empty());
    }
}

#[test]
fn batched_fifo_two_thread_stress() {
    // Same FIFO guarantee as the per-item stress, but through the
    // batched entry points with deliberately ragged batch sizes on both
    // sides, so partial acceptance and partial drains happen constantly.
    let n = stress_ops();
    let (mut tx, mut rx) = ring::<u64>(256);
    let producer = std::thread::spawn(move || {
        let mut batch: Vec<u64> = Vec::new();
        let mut next = 0u64;
        while next < n || !batch.is_empty() {
            // Refill the staging batch to a size that cycles 1..=97.
            let want = (next % 97 + 1) as usize;
            while batch.len() < want && next < n {
                batch.push(next);
                next += 1;
            }
            if tx.push_batch(&mut batch) == 0 {
                // Ring full: single-core hosts must switch to the
                // consumer to make progress.
                std::thread::yield_now();
            }
        }
    });
    let mut out: Vec<u64> = Vec::new();
    let mut expected = 0u64;
    while expected < n {
        let max = (expected % 61 + 1) as usize;
        if rx.pop_batch(&mut out, max) == 0 {
            std::thread::yield_now();
            continue;
        }
        for v in out.drain(..) {
            assert_eq!(v, expected, "FIFO violated at item {expected}");
            expected += 1;
        }
    }
    producer.join().expect("producer");
    assert!(rx.pop().is_none(), "ring must be empty after the run");
}

#[test]
fn batched_drop_accounting_under_load() {
    // The batched flush path's contract: accepted + dropped must
    // exactly equal attempts even when every batch is partially
    // rejected, and accepted items still arrive strictly in order.
    let n = stress_ops() / 4;
    let (mut tx, mut rx) = ring::<u64>(32);
    let done = Arc::new(AtomicBool::new(false));
    let done_rx = Arc::clone(&done);
    let consumer = std::thread::spawn(move || {
        let mut received = 0u64;
        let mut last: Option<u64> = None;
        let mut out: Vec<u64> = Vec::new();
        loop {
            if rx.pop_batch(&mut out, 8) == 0 {
                if done_rx.load(Ordering::Acquire) && rx.is_empty() {
                    break;
                }
                std::thread::yield_now();
                continue;
            }
            for v in out.drain(..) {
                if let Some(prev) = last {
                    assert!(v > prev, "order violated: {v} after {prev}");
                }
                last = Some(v);
                received += 1;
                // Slow consumer: extra work per item forces tail drops.
                std::hint::black_box((0..64).sum::<u64>());
            }
        }
        received
    });
    let mut accepted = 0u64;
    let mut batch: Vec<u64> = Vec::new();
    let mut next = 0u64;
    while next < n {
        let want = (next % 23 + 1).min(n - next) as usize;
        for _ in 0..want {
            batch.push(next);
            next += 1;
        }
        accepted += tx.push_batch_or_drop(&mut batch) as u64;
        assert!(batch.is_empty(), "or_drop must consume the whole batch");
    }
    let dropped = tx.dropped();
    done.store(true, Ordering::Release);
    let received = consumer.join().expect("consumer");
    assert_eq!(accepted + dropped, n, "every attempt accounted for");
    assert_eq!(received, accepted, "every accepted item consumed");
    assert!(
        dropped > 0,
        "a 32-slot ring against a slow consumer must drop"
    );
}

mod batch_props {
    use super::*;
    use proptest::prelude::*;

    /// One scripted operation against the ring + model pair.
    #[derive(Debug, Clone)]
    enum Op {
        /// Push a batch of this many items via `push_batch` (leftovers
        /// retried on the next push op).
        Push(usize),
        /// Push a batch of this many items via `push_batch_or_drop`.
        PushOrDrop(usize),
        /// Pop up to this many items via `pop_batch`.
        Pop(usize),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        // One draw encodes (kind, size): the vendored proptest stub has
        // no prop_oneof/tuple strategies.
        (0usize..72).prop_map(|v| {
            let k = v / 3 + 1;
            match v % 3 {
                0 => Op::Push(k),
                1 => Op::PushOrDrop(k),
                _ => Op::Pop(k),
            }
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Single-threaded model equivalence: the batched entry points
        /// behave exactly like a bounded FIFO — FIFO order, exact
        /// acceptance at the free-space boundary, exact drop counts —
        /// and every item (consumed, in-ring, or rejected) runs its
        /// destructor exactly once.
        #[test]
        fn batch_ops_match_fifo_model(
            cap_pow in 1u32..6,
            ops in proptest::collection::vec(op_strategy(), 1..80),
        ) {
            let cap = 1usize << cap_pow;
            let marker = Arc::new(());
            let (mut tx, mut rx) = ring::<(u64, Arc<()>)>(cap);
            let mut model: std::collections::VecDeque<u64> =
                std::collections::VecDeque::new();
            let mut next = 0u64;
            let mut model_dropped = 0u64;
            // The consumer's cached view of the producer's tail: like
            // the real ring, `pop_batch` only refreshes it when the
            // cached view says empty, so a pop may see fewer items
            // than are truly published.
            let mut pushed_total = 0usize;
            let mut popped_total = 0usize;
            let mut consumer_known = 0usize;
            let mut batch: Vec<(u64, Arc<()>)> = Vec::new();
            let mut out: Vec<(u64, Arc<()>)> = Vec::new();
            for op in ops {
                match op {
                    Op::Push(k) => {
                        for _ in 0..k {
                            batch.push((next, Arc::clone(&marker)));
                            next += 1;
                        }
                        let expect: Vec<u64> = batch.iter().map(|(v, _)| *v).collect();
                        let free = cap - model.len();
                        let accepted = tx.push_batch(&mut batch);
                        prop_assert_eq!(accepted, free.min(expect.len()));
                        model.extend(expect.iter().take(accepted));
                        pushed_total += accepted;
                        // Leftovers stay staged for the next push op.
                        prop_assert_eq!(batch.len(), expect.len() - accepted);
                    }
                    Op::PushOrDrop(k) => {
                        for _ in 0..k {
                            batch.push((next, Arc::clone(&marker)));
                            next += 1;
                        }
                        let attempts = batch.len();
                        let free = cap - model.len();
                        let before = tx.dropped();
                        let accepted = tx.push_batch_or_drop(&mut batch);
                        prop_assert_eq!(accepted, free.min(attempts));
                        prop_assert!(batch.is_empty());
                        let rejected = (attempts - accepted) as u64;
                        prop_assert_eq!(tx.dropped() - before, rejected);
                        model_dropped += rejected;
                        pushed_total += accepted;
                        // The model can't know which values the real
                        // ring accepted without replaying its logic, so
                        // rebuild: accepted prefix goes in.
                        for i in 0..attempts {
                            if i < accepted {
                                model.push_back(next - attempts as u64 + i as u64);
                            }
                        }
                    }
                    Op::Pop(max) => {
                        let mut avail = consumer_known - popped_total;
                        if avail == 0 {
                            consumer_known = pushed_total;
                            avail = consumer_known - popped_total;
                        }
                        let expect_n = avail.min(max);
                        let got = rx.pop_batch(&mut out, max);
                        prop_assert_eq!(got, expect_n);
                        popped_total += got;
                        for (v, _) in out.drain(..) {
                            prop_assert_eq!(Some(v), model.pop_front());
                        }
                    }
                }
            }
            prop_assert_eq!(tx.dropped(), model_dropped);
            // Teardown: destructors for everything still staged, still
            // in the ring, or already consumed must all have run —
            // leaving exactly the local marker.
            drop((tx, rx, batch, out));
            prop_assert_eq!(Arc::strong_count(&marker), 1);
        }
    }
}

#[test]
fn concurrent_occupancy_is_bounded_by_capacity() {
    // len() from either side must never exceed capacity, no matter how
    // the loads interleave.
    let n = stress_ops() / 8;
    let (mut tx, mut rx) = ring::<u64>(16);
    let producer = std::thread::spawn(move || {
        for i in 0..n {
            while tx.try_push(i).is_err() {
                std::thread::yield_now();
            }
            assert!(tx.len() <= tx.capacity());
        }
    });
    let mut popped = 0u64;
    while popped < n {
        assert!(rx.len() <= rx.capacity());
        match rx.pop() {
            Some(_) => popped += 1,
            None => std::thread::yield_now(),
        }
    }
    producer.join().expect("producer");
}

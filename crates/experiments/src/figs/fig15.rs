//! Figure 15: `FALCON_LOAD_THRESHOLD` sensitivity.
//!
//! Expected shape: always-on hurts when the system is highly loaded;
//! low thresholds (≤ 0.7) miss parallelization opportunities; 0.8–0.9
//! is the sweet spot.

use falcon::FalconConfig;
use falcon_cpusim::CpuSet;
use falcon_netdev::LinkSpeed;
use falcon_netstack::{KernelVersion, Pacing};
use falcon_workloads::{UdpStressApp, UdpStressConfig};

use crate::measure::{run_measured, Scale};
use crate::scenario::{Mode, Scenario, MF_APP_CORES};
use crate::table::{kpps, FigResult, Table};

fn run_case(threshold: Option<f64>, containers: usize, rate: f64, scale: Scale) -> f64 {
    let cfg = match threshold {
        Some(t) => FalconConfig::new(CpuSet::range(0, 6)).with_threshold(t),
        None => FalconConfig::new(CpuSet::range(0, 6)).with_always_on(true),
    };
    let scenario = Scenario::multi_flow(
        Mode::Falcon(cfg),
        KernelVersion::K419,
        LinkSpeed::HundredGbit,
    );
    let mut wl = UdpStressConfig::multi_flow(containers, 512);
    wl.pacing = Pacing::PoissonPps(rate);
    wl.senders_per_flow = 1;
    wl.app_cores = MF_APP_CORES.to_vec();
    let mut runner = scenario.build(Box::new(UdpStressApp::new(wl)));
    run_measured(&mut runner, scale).pps()
}

/// Delivered rate across thresholds under moderate and heavy load.
pub fn run(scale: Scale) -> FigResult {
    let mut fig = FigResult::new(
        "fig15",
        "FALCON_LOAD_THRESHOLD sensitivity (delivered Kpps)",
    );
    let thresholds: &[(&str, Option<f64>)] = &[
        ("0.5", Some(0.5)),
        ("0.7", Some(0.7)),
        ("0.85", Some(0.85)),
        ("0.9", Some(0.9)),
        ("always-on", None),
    ];

    for (label, containers, rate) in [
        ("moderate load (8 containers)", 8usize, 150_000.0),
        // Past the saturation knee: every receive core is pegged and
        // there are no idle cycles for pipelining to exploit.
        ("heavy load (40 containers)", 40, 170_000.0),
    ] {
        let mut t = Table::new(&["threshold", "Kpps"]);
        let mut best: (String, f64) = (String::new(), 0.0);
        for &(name, th) in thresholds {
            let pps = run_case(th, containers, rate, scale);
            if pps > best.1 {
                best = (name.to_string(), pps);
            }
            t.row(vec![name.into(), kpps(pps)]);
        }
        fig.panel(label, t);
        fig.note(format!("{label}: best threshold {}", best.0));
    }
    fig
}

//! `falcon-dataplane`: the modeled overlay receive path on real cores.
//!
//! Everything else in this workspace *simulates* the paper's container
//! receive pipeline — deterministic virtual time, one thread. This
//! crate closes the loop: it runs the same modeled stages
//! (pNIC poll → outer stack + VXLAN decap → gro_cell/bridge/veth →
//! container stack, with the pNIC poll optionally split into its
//! alloc/GRO halves per the paper's §4.2 GRO splitting) on actual OS
//! threads pinned to actual cores, with the same stage costs
//! ([`CostModel::overlay_udp_stage_ns`] and its `_split`/TCP variants
//! busy-spun into real CPU occupancy), the same steering math
//! ([`falcon::balance::falcon_choices_by`] over live queue depths), and
//! the same ordering invariant (checked post-run with the netstack's
//! `OrderTracker`). The wall clock — not virtual time — is the
//! measurement: Falcon's softirq pipelining must beat the serialized
//! vanilla path with real threads or not at all.
//!
//! [`CostModel::overlay_udp_stage_ns`]: falcon_netstack::CostModel::overlay_udp_stage_ns
//!
//! The moving parts:
//!
//! * [`spsc`] — a hand-rolled bounded SPSC ring (cache-padded Lamport
//!   queue), the per-worker backlog;
//! * [`affinity`] — `sched_setaffinity` pinning and worker clamping;
//! * [`topology`] — sysfs CPU-topology parsing and the NUMA/SMT-aware
//!   pin plan (adjacent workers share a node while one has cores);
//! * [`spin`] — deadline busy-spinning and the shared timestamp epoch;
//! * [`steer`] — the Vanilla/Falcon policies, live depth gauges, and
//!   the in-flight-guarded flow table that forbids order-breaking
//!   migration;
//! * [`executor`] — the worker pool, injector, and run orchestration;
//! * [`report`] — serializable run reports and the vanilla-vs-Falcon
//!   comparison written to `BENCH_dataplane.json`.

pub mod affinity;
pub mod executor;
pub mod report;
pub mod spin;
pub mod spsc;
pub mod steer;
pub mod topology;

pub use affinity::{available_cores, clamp_workers, pin_current_thread};
pub use executor::{
    rss_hash_for_flow, run_meta, run_scenario, run_scenario_from, stage_labels, sweep_order,
    Injector, RunOutput, Scenario, TelemetrySpec, TrafficShape, WorkerStats, PNIC_SPLIT_IF,
    SPLIT_STAGES, STAGES,
};
pub use report::{
    ConntrackOracle, ConntrackReport, DataplaneComparison, DataplaneReport, FlowCacheComparison,
    FlowCacheReport, LatencySummary, SweepPoint, SweepReport, TelemetryOverhead, TelemetrySummary,
};
pub use spin::{spin_for_ns, Backoff, Epoch, IdleTier};
pub use spsc::{ring, Consumer, Producer};
pub use steer::{DepthGauge, FlowTable, InflightGuard, Policy, PolicyKind};
pub use topology::{core_plan, CpuTopology};

//! [`PktDesc`]: the compact packet descriptor the real-thread dataplane
//! moves through its rings.
//!
//! The deterministic simulation carries full frame bytes in an
//! [`SkBuff`](crate::SkBuff) because it re-parses headers at every
//! stage. The multi-threaded executor runs the *modeled* receive path —
//! stage costs, steering, and ordering are what is being exercised — so
//! its queues move a 40-byte descriptor instead of an allocation per
//! packet, the way a real driver passes descriptors while the payload
//! stays put in DMA memory. In wire mode the descriptor additionally
//! owns a [`WireBuf`] of real frame bytes behind one pointer-sized
//! `Option<Box<_>>` field, so the ring slot stays small and modeled-mode
//! runs pay nothing. The wire buffer's segments are
//! [`SlabSeg`]s — pool-leased slots in steady state
//! (see [`slab`](crate::slab)), detached heap buffers otherwise — and
//! the shell itself can be pool-backed so delivery recycles the whole
//! thing with one ring push instead of three frees.

use core::ops::Range;
use std::sync::Arc;

use crate::slab::{PoolShared, SlabSeg};
use crate::PacketId;

/// Owned wire bytes travelling with a descriptor in wire mode.
///
/// One `WireBuf` holds the VXLAN-encapsulated outer frame(s) of one
/// logical packet. A UDP packet is a single segment; a TCP message
/// arrives as several MSS-sized segments which the GRO stage coalesces
/// back into one. After the VXLAN stage decapsulates, `inner` records
/// where the inner Ethernet frame sits inside `segs[0]` — offsets, not
/// a copy, mirroring how the kernel advances `skb->data`.
#[derive(Debug, Default)]
pub struct WireBuf {
    /// Outer (encapsulated) frames, oldest first. GRO replaces multiple
    /// segments with a single coalesced frame.
    pub segs: Vec<SlabSeg>,
    /// Byte range of the decapsulated inner frame within `segs[0]`,
    /// set by the VXLAN device stage.
    pub inner: Option<Range<usize>>,
    /// The pool this shell recycles to, if it was pool-leased.
    shell: Option<Arc<PoolShared>>,
}

impl Clone for WireBuf {
    /// Clones detach: copied segments are plain heap buffers and the
    /// copy's shell is not pool-backed.
    fn clone(&self) -> Self {
        WireBuf {
            segs: self.segs.clone(),
            inner: self.inner.clone(),
            shell: None,
        }
    }
}

impl PartialEq for WireBuf {
    /// Equality is over contents (segments + inner range); whether
    /// either side is pool-backed is invisible, so differential oracles
    /// can compare slab and heap runs directly.
    fn eq(&self, other: &Self) -> bool {
        self.segs == other.segs && self.inner == other.inner
    }
}
impl Eq for WireBuf {}

impl WireBuf {
    /// Wraps a single outer frame.
    pub fn single(frame: Vec<u8>) -> Box<WireBuf> {
        Box::new(WireBuf {
            segs: vec![SlabSeg::from(frame)],
            inner: None,
            shell: None,
        })
    }

    /// Wraps a multi-segment (pre-GRO) packet.
    pub fn segments(segs: Vec<Vec<u8>>) -> Box<WireBuf> {
        Box::new(WireBuf {
            segs: segs.into_iter().map(SlabSeg::from).collect(),
            inner: None,
            shell: None,
        })
    }

    /// Wraps already-leased segments (the zero-copy ingest and slab
    /// frame-factory paths).
    pub fn leased(segs: Vec<SlabSeg>) -> Box<WireBuf> {
        Box::new(WireBuf {
            segs,
            inner: None,
            shell: None,
        })
    }

    /// A fresh pool-backed shell (used by [`crate::slab::SlabPool`]).
    pub(crate) fn new_pooled(shell: Arc<PoolShared>) -> WireBuf {
        WireBuf {
            segs: Vec::with_capacity(4),
            inner: None,
            shell: Some(shell),
        }
    }

    /// The pool this shell belongs to, if any.
    pub(crate) fn shell_origin(&self) -> Option<Arc<PoolShared>> {
        self.shell.clone()
    }

    /// Frames one received datagram as a single-segment buffer.
    ///
    /// This is the copying fallback the ingestion path used before the
    /// slab pool: it moves the bytes out of a recycled socket buffer
    /// into a fresh heap segment. The zero-copy path instead leases a
    /// slot, lands the datagram in it directly, and wraps it with
    /// [`WireBuf::leased`] — indistinguishable downstream.
    pub fn from_datagram(bytes: &[u8]) -> Box<WireBuf> {
        WireBuf::single(bytes.to_vec())
    }

    /// Replaces all segments with one owned frame, reusing the segment
    /// list's capacity (the GRO coalesce path).
    pub fn set_single(&mut self, frame: Vec<u8>) {
        self.segs.clear();
        self.segs.push(SlabSeg::from(frame));
    }

    /// Total bytes currently held — the on-wire size of the packet.
    pub fn wire_bytes(&self) -> u64 {
        self.segs.iter().map(|s| s.len() as u64).sum()
    }

    /// The decapsulated inner frame, if the VXLAN stage has run.
    pub fn inner_frame(&self) -> Option<&[u8]> {
        let r = self.inner.clone()?;
        self.segs.first()?.get(r)
    }
}

/// Immutable identity of one packet travelling the threaded dataplane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PktDesc {
    /// Unique id of this packet within one run.
    pub id: PacketId,
    /// Simulation-level flow identifier.
    pub flow: u64,
    /// Per-flow sequence number assigned at injection; the ordering
    /// invariant asserts it is strictly increasing per (flow, device).
    pub seq: u64,
    /// `skb->hash`: the flow hash both RSS and Falcon steer by.
    pub rx_hash: u32,
    /// UDP payload bytes this packet represents (drives the
    /// byte-dependent components of the stage cost model).
    pub payload_len: u32,
    /// Real frame bytes, present only in wire mode. `None` keeps the
    /// modeled-mode descriptor a plain few-word value.
    pub wire: Option<Box<WireBuf>>,
}

impl PktDesc {
    /// Builds a descriptor with no wire bytes (modeled mode).
    pub fn new(id: u64, flow: u64, seq: u64, rx_hash: u32, payload_len: u32) -> Self {
        PktDesc {
            id: PacketId(id),
            flow,
            seq,
            rx_hash,
            payload_len,
            wire: None,
        }
    }

    /// Attaches owned wire bytes to the descriptor.
    pub fn with_wire(mut self, wire: Box<WireBuf>) -> Self {
        self.wire = Some(wire);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptor_is_small() {
        // The whole point: a ring slot is a few words, not an skb. The
        // optional wire buffer hides behind one niche-optimized pointer.
        assert!(std::mem::size_of::<PktDesc>() <= 40);
        let d = PktDesc::new(7, 3, 11, 0xDEAD_BEEF, 64);
        let d2 = d.clone();
        assert_eq!(d, d2);
        assert_eq!(d.id, PacketId(7));
        assert_eq!(d.payload_len, 64);
        assert!(d.wire.is_none());
    }

    #[test]
    fn wire_buf_accessors() {
        let seg0 = vec![0u8; 100];
        let seg1 = vec![1u8; 60];
        let mut buf = *WireBuf::segments(vec![seg0, seg1]);
        assert_eq!(buf.wire_bytes(), 160);
        assert_eq!(buf.inner_frame(), None);
        buf.inner = Some(50..100);
        assert_eq!(buf.inner_frame().unwrap().len(), 50);
        // Out-of-range bounds are reported as absent, not a panic.
        buf.inner = Some(50..101);
        assert_eq!(buf.inner_frame(), None);

        let d = PktDesc::new(1, 2, 3, 4, 5).with_wire(WireBuf::single(vec![9u8; 10]));
        assert_eq!(d.wire.as_ref().unwrap().wire_bytes(), 10);
    }

    #[test]
    fn from_datagram_matches_single_segment_path() {
        let bytes: Vec<u8> = (0..200u16).map(|b| b as u8).collect();
        let a = WireBuf::from_datagram(&bytes);
        let b = WireBuf::segments(vec![bytes.clone()]);
        assert_eq!(a, b);
        assert_eq!(a.wire_bytes(), 200);
        assert_eq!(a.segs.len(), 1);
        assert_eq!(a.inner, None);
    }

    #[test]
    fn set_single_reuses_the_segment_list() {
        let mut buf = *WireBuf::segments(vec![vec![1u8; 10], vec![2u8; 10]]);
        let cap = buf.segs.capacity();
        buf.set_single(vec![3u8; 30]);
        assert_eq!(buf.segs.len(), 1);
        assert_eq!(buf.wire_bytes(), 30);
        assert!(buf.segs.capacity() >= 1 && buf.segs.capacity() <= cap.max(2));
    }

    #[test]
    fn pooled_and_heap_bufs_compare_equal_by_contents() {
        use crate::slab::{SlabConfig, SlabPool};
        let mut pool = SlabPool::new(SlabConfig {
            mtu_slots: 2,
            jumbo_slots: 0,
        });
        let payload: Vec<u8> = (0..100u8).collect();
        let mut seg = pool.acquire(payload.len());
        seg.vec_mut().clear();
        seg.vec_mut().extend_from_slice(&payload);
        let mut pooled = pool.lease_shell();
        pooled.segs.push(seg);
        let heap = WireBuf::single(payload);
        assert_eq!(pooled, heap);
        assert!(crate::slab::recycle(pooled));
    }
}

//! `falcon-trace`: a tracepoint + timeline subsystem for the simulated
//! kernel, modeled on Linux ftrace.
//!
//! Every layer of the simulation — the CPU model, the NIC, the network
//! stack, and the Falcon steering policy — can emit typed [`Event`]s
//! into a single bounded [`Tracer`] ring. Like the kernel's trace ring
//! buffer, the sink never reallocates in the hot path: when full it
//! overwrites the oldest events and counts the overflow. When tracing
//! is disabled (the default) every tracepoint reduces to one branch on
//! a bool, so the instrumented fast path stays effectively free.
//!
//! On top of the raw stream three consumers are provided:
//!
//! * [`chrome`] — exports the Chrome trace-event (Perfetto) JSON
//!   format, one track per (core, context), so a run can be opened in
//!   `ui.perfetto.dev` or `chrome://tracing`;
//! * [`stages`] — the per-packet *stage-latency decomposition*: splits
//!   one-way latency into per-device queueing vs service time, which is
//!   exactly the lens that shows vanilla's stage-2/3 queueing collapse
//!   onto one core while Falcon spreads it;
//! * [`check`] — stream invariants: packet conservation (every enqueue
//!   has a matching dequeue or drop) and per-(flow, device) ordering,
//!   used by the property tests.

pub mod check;
pub mod chrome;
pub mod stages;

pub use check::{check_stream, ConservationReport};
pub use chrome::{CounterPoint, CounterTrack};
pub use falcon_metrics::Context;
pub use stages::{StageLatency, StageStat};

/// Checkpoint-id offset marking the backlog (stage-B) half of the
/// physical NIC's processing. Mirrors the ordering-tracker convention
/// of the netstack: checkpoint ids are `ifindex | flags`.
pub const STAGE_B_CHECK: u32 = 0x8000_0000;
/// Checkpoint id of final user-space delivery.
pub const DELIVERY_CHECK: u32 = 0xFFFF_FFFF;

/// Why a packet was dropped at a queue.
///
/// This is the single source of truth for drop classification: the
/// netstack's counters key per-reason totals on it, and every drop also
/// surfaces in the trace stream as a [`EventKind::QueueDrop`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DropReason {
    /// NIC rx ring overflow.
    Ring,
    /// Per-CPU backlog (`netdev_max_backlog`) overflow.
    Backlog,
    /// VXLAN gro_cell overflow.
    GroCell,
    /// A datagram never completed IP reassembly (a fragment was lost).
    Reassembly,
    /// The packet's bytes failed verification at a stage: a header did
    /// not parse, a checksum did not verify, or a lookup (MAC filter,
    /// FDB, VNI) rejected it. Only produced by wire-mode dataplane
    /// runs, where stages process real frames.
    Malformed,
}

impl DropReason {
    /// All reasons, in display order.
    pub const ALL: [DropReason; 5] = [
        DropReason::Ring,
        DropReason::Backlog,
        DropReason::GroCell,
        DropReason::Reassembly,
        DropReason::Malformed,
    ];

    /// Stable index into per-reason counter arrays.
    pub fn index(self) -> usize {
        match self {
            DropReason::Ring => 0,
            DropReason::Backlog => 1,
            DropReason::GroCell => 2,
            DropReason::Reassembly => 3,
            DropReason::Malformed => 4,
        }
    }

    /// Short label used in reports and JSON keys.
    pub fn label(self) -> &'static str {
        match self {
            DropReason::Ring => "ring",
            DropReason::Backlog => "backlog",
            DropReason::GroCell => "grocell",
            DropReason::Reassembly => "reassembly",
            DropReason::Malformed => "malformed",
        }
    }
}

/// A typed tracepoint payload. Variants are grouped by the layer that
/// emits them; all payload fields are `Copy` so recording never
/// allocates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    // ----- cpusim: execution timeline -------------------------------
    /// One kernel-function invocation charged to a core. Emitted per
    /// work-unit item with its own start offset, so the stream renders
    /// as contiguous duration slices on the (core, context) track.
    /// Hardirq entry/exit, softirq entry/exit, and context switches are
    /// all visible as the boundaries of these slices.
    Exec {
        /// Core the work ran on.
        core: usize,
        /// Execution context charged.
        ctx: Context,
        /// Kernel function name.
        func: &'static str,
        /// Duration of this item.
        dur_ns: u64,
    },

    // ----- netdev: NIC and rings ------------------------------------
    /// A frame was accepted into a NIC rx ring.
    RingEnqueue {
        /// Hardware queue index.
        queue: usize,
        /// Packet id.
        pkt: u64,
        /// Flow id.
        flow: u64,
        /// Ring occupancy after the enqueue.
        qlen: usize,
    },
    /// The NIC raised a hardirq for a queue (NAPI was idle).
    HardIrqRaise {
        /// Hardware queue index.
        queue: usize,
        /// IRQ affinity core.
        core: usize,
    },
    /// Interrupt mitigation: a frame arrived while the queue's poll
    /// loop was already running, so no new hardirq was raised.
    IrqCoalesced {
        /// Hardware queue index.
        queue: usize,
        /// Packet id absorbed silently.
        pkt: u64,
    },

    // ----- netstack: softirq pipeline -------------------------------
    /// NET_RX was raised on a CPU (locally via the poll list, or
    /// remotely via an IPI).
    SoftirqRaise {
        /// Core that raised it.
        src: usize,
        /// Core it was raised on.
        dst: usize,
        /// Whether a cross-core IPI was needed.
        ipi: bool,
    },
    /// A packet entered a per-CPU backlog.
    BacklogEnqueue {
        /// Target CPU.
        cpu: usize,
        /// Packet id.
        pkt: u64,
        /// Flow id.
        flow: u64,
        /// Backlog occupancy after the enqueue.
        qlen: usize,
    },
    /// A packet entered a VXLAN gro_cell.
    GroCellEnqueue {
        /// Target CPU.
        cpu: usize,
        /// Packet id.
        pkt: u64,
        /// Flow id.
        flow: u64,
        /// Cell occupancy after the enqueue.
        qlen: usize,
    },
    /// A packet was dropped at a bounded queue.
    QueueDrop {
        /// Which queue rejected it.
        reason: DropReason,
        /// CPU (or IRQ core, for ring drops) involved.
        cpu: usize,
        /// Packet id.
        pkt: u64,
        /// Flow id.
        flow: u64,
    },
    /// One pipeline stage processed a packet: the central event of the
    /// stage-latency decomposition. `queued_ns` is the time the packet
    /// waited in the stage's input queue; `service_ns` is the CPU time
    /// the stage's work unit charges.
    StageExec {
        /// Checkpoint id (`ifindex | flags`, matching the skb hop log).
        checkpoint: u32,
        /// Core the stage ran on.
        cpu: usize,
        /// Execution context.
        ctx: Context,
        /// Packet id.
        pkt: u64,
        /// Flow id.
        flow: u64,
        /// Per-flow sequence number at this stage.
        seq: u64,
        /// Input-queue waiting time.
        queued_ns: u64,
        /// Service (CPU) time of the stage's work unit.
        service_ns: u64,
    },
    /// GRO coalesced a waiting same-flow segment into another buffer.
    /// The absorbed packet leaves the pipeline here.
    GroMerge {
        /// Checkpoint of the merging stage.
        checkpoint: u32,
        /// Core performing the merge.
        cpu: usize,
        /// Packet id of the absorbed segment.
        absorbed: u64,
        /// Packet id of the retained (growing) buffer.
        into: u64,
        /// Flow id.
        flow: u64,
    },
    /// An IP fragment was absorbed into a pending reassembly; the
    /// datagram continues under the prototype fragment's packet id.
    FragAbsorbed {
        /// Core processing the fragment.
        cpu: usize,
        /// Packet id of the absorbed fragment.
        pkt: u64,
        /// Flow id.
        flow: u64,
    },
    /// Final user-space delivery. `hop_hash` digests the packet's
    /// (checkpoint, cpu) hop log so checkers can cross-validate the
    /// event stream against the skb's own trace.
    Deliver {
        /// Application core.
        cpu: usize,
        /// Packet id.
        pkt: u64,
        /// Flow id.
        flow: u64,
        /// One-way latency (send → delivery).
        latency_ns: u64,
        /// Number of hops in the skb trace.
        hops: u32,
        /// FNV digest of the skb hop log (see [`hop_hash`]).
        hop_hash: u64,
    },
    /// A task wakeup crossed cores (rescheduling IPI).
    Wakeup {
        /// Core that queued the task work.
        src: usize,
        /// Application core woken.
        dst: usize,
    },

    // ----- falcon: steering decisions -------------------------------
    /// Falcon picked a CPU for a stage transition (Algorithm 1).
    FalconChoice {
        /// Device ifindex mixed into the hash.
        ifindex: u32,
        /// The packet's flow hash.
        hash: u32,
        /// First-choice core from the device-aware hash.
        first: usize,
        /// Core actually chosen.
        chosen: usize,
        /// Whether the two-choice rehash was used.
        second: bool,
    },
    /// Falcon was gated off by the load threshold for one decision.
    FalconGated {
        /// Device ifindex of the transition.
        ifindex: u32,
        /// CPU the packet stayed on.
        cpu: usize,
    },
    /// The load gate changed state (on_load_sample hysteresis).
    LoadGate {
        /// Whether Falcon is now active.
        active: bool,
        /// `L_avg` over FALCON_CPUS, in milli-units (0–1000).
        l_avg_milli: u32,
    },
    /// A (flow, stage) migrated to a different CPU.
    FlowMigration {
        /// Flow id.
        flow: u64,
        /// Stage-device ifindex.
        ifindex: u32,
        /// Previous CPU.
        from: usize,
        /// New CPU.
        to: usize,
    },
}

/// One recorded tracepoint hit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Simulation timestamp, nanoseconds.
    pub at_ns: u64,
    /// Payload.
    pub kind: EventKind,
}

/// The bounded trace ring buffer.
///
/// Preallocates its full capacity on enable and never grows: recording
/// is a bounds-checked write plus an index increment. When the ring is
/// full the oldest event is overwritten and `overflow` counts it —
/// matching the kernel ring buffer's default overwrite mode.
#[derive(Debug, Clone)]
pub struct Tracer {
    enabled: bool,
    cap: usize,
    buf: Vec<Event>,
    /// Next write position once the ring has wrapped.
    head: usize,
    wrapped: bool,
    overflow: u64,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::disabled()
    }
}

impl Tracer {
    /// The inert tracer: every [`Tracer::emit`] is a single branch.
    pub fn disabled() -> Self {
        Tracer {
            enabled: false,
            cap: 0,
            buf: Vec::new(),
            head: 0,
            wrapped: false,
            overflow: 0,
        }
    }

    /// An enabled tracer holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace ring needs capacity");
        Tracer {
            enabled: true,
            cap: capacity,
            buf: Vec::with_capacity(capacity),
            head: 0,
            wrapped: false,
            overflow: 0,
        }
    }

    /// Whether tracepoints are live.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one event. No-op (one branch) when disabled; never
    /// reallocates once the ring is at capacity.
    #[inline]
    pub fn emit(&mut self, at_ns: u64, kind: EventKind) {
        if !self.enabled {
            return;
        }
        self.push(Event { at_ns, kind });
    }

    fn push(&mut self, ev: Event) {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.cap;
            self.wrapped = true;
            self.overflow += 1;
        }
    }

    /// Events recorded and retained (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events lost to ring overwrite.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Returns the retained events in chronological order.
    pub fn events(&self) -> Vec<Event> {
        if !self.wrapped {
            return self.buf.clone();
        }
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }
}

/// Merges per-thread event streams into one chronological stream.
///
/// The real-thread dataplane gives every worker its own [`Tracer`] (the
/// ring is single-writer by design, like the kernel's per-CPU trace
/// buffers); after the workers join, their streams are interleaved by
/// timestamp here before export. The sort is stable, so events a single
/// worker recorded at the same nanosecond keep their program order.
pub fn merge_streams(streams: impl IntoIterator<Item = Vec<Event>>) -> Vec<Event> {
    let mut out: Vec<Event> = streams.into_iter().flatten().collect();
    out.sort_by_key(|e| e.at_ns);
    out
}

/// The FNV-1a offset basis [`hop_hash`] starts from; a digest built
/// incrementally with [`hop_hash_extend`] must start here too.
pub const HOP_HASH_INIT: u64 = 0xcbf2_9ce4_8422_2325;

/// Folds one (checkpoint, cpu) hop into a running FNV-1a digest.
///
/// The real-thread dataplane can't batch its hop log the way the
/// simulator's `skb.trace` does — the packet struct crossing SPSC rings
/// carries a fixed-size running digest instead, extended at each stage
/// execution and emitted verbatim in the final `Deliver`.
#[inline]
pub fn hop_hash_extend(mut h: u64, checkpoint: u32, cpu: usize) -> u64 {
    for byte in checkpoint
        .to_le_bytes()
        .into_iter()
        .chain((cpu as u64).to_le_bytes())
    {
        h ^= byte as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// FNV-1a digest over a packet's (checkpoint, cpu) hop log. The
/// netstack computes this over `skb.trace` at delivery and embeds it in
/// [`EventKind::Deliver`]; [`check`] recomputes it from the `StageExec`
/// stream — agreement proves the trace observed every hop in order.
pub fn hop_hash<I: IntoIterator<Item = (u32, usize)>>(hops: I) -> u64 {
    let mut h = HOP_HASH_INIT;
    for (checkpoint, cpu) in hops {
        h = hop_hash_extend(h, checkpoint, cpu);
    }
    h
}

/// Device-name context carried alongside an event stream so exporters
/// can label checkpoints and size per-core tracks.
#[derive(Debug, Clone, Default)]
pub struct TraceMeta {
    /// Number of cores in the machine.
    pub n_cores: usize,
    /// `(ifindex, name)` of every registered device.
    pub devices: Vec<(u32, String)>,
}

impl TraceMeta {
    /// Human-readable label of a checkpoint id.
    pub fn checkpoint_label(&self, checkpoint: u32) -> String {
        if checkpoint == DELIVERY_CHECK {
            return "delivery".to_string();
        }
        let (ifindex, stage_b) = if checkpoint & STAGE_B_CHECK != 0 {
            (checkpoint & !STAGE_B_CHECK, true)
        } else {
            (checkpoint, false)
        };
        let name = self
            .devices
            .iter()
            .find(|(i, _)| *i == ifindex)
            .map(|(_, n)| n.clone())
            .unwrap_or_else(|| format!("if{ifindex}"));
        if stage_b {
            format!("{name}:b")
        } else {
            name
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let mut t = Tracer::disabled();
        assert!(!t.is_enabled());
        t.emit(5, EventKind::Wakeup { src: 0, dst: 1 });
        assert!(t.is_empty());
        assert_eq!(t.overflow(), 0);
    }

    #[test]
    fn ring_overwrites_oldest() {
        let mut t = Tracer::new(3);
        for i in 0..5u64 {
            t.emit(
                i,
                EventKind::Wakeup {
                    src: i as usize,
                    dst: 0,
                },
            );
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.overflow(), 2);
        let ev = t.events();
        let times: Vec<u64> = ev.iter().map(|e| e.at_ns).collect();
        assert_eq!(times, vec![2, 3, 4], "oldest overwritten, order kept");
    }

    #[test]
    fn events_in_order_without_wrap() {
        let mut t = Tracer::new(10);
        for i in 0..4u64 {
            t.emit(i * 10, EventKind::Wakeup { src: 0, dst: 1 });
        }
        let times: Vec<u64> = t.events().iter().map(|e| e.at_ns).collect();
        assert_eq!(times, vec![0, 10, 20, 30]);
        assert_eq!(t.overflow(), 0);
    }

    #[test]
    fn merge_streams_interleaves_by_timestamp() {
        let wake = |at, src| Event {
            at_ns: at,
            kind: EventKind::Wakeup { src, dst: 0 },
        };
        let a = vec![wake(10, 1), wake(30, 1), wake(30, 11)];
        let b = vec![wake(5, 2), wake(20, 2)];
        let merged = merge_streams([a, b]);
        let times: Vec<u64> = merged.iter().map(|e| e.at_ns).collect();
        assert_eq!(times, vec![5, 10, 20, 30, 30]);
        // Stable: same-timestamp events keep their per-stream order.
        assert!(matches!(merged[3].kind, EventKind::Wakeup { src: 1, .. }));
        assert!(matches!(merged[4].kind, EventKind::Wakeup { src: 11, .. }));
    }

    #[test]
    fn hop_hash_is_order_sensitive() {
        let a = hop_hash([(1, 0), (2, 1)]);
        let b = hop_hash([(2, 1), (1, 0)]);
        let c = hop_hash([(1, 0), (2, 1)]);
        assert_eq!(a, c);
        assert_ne!(a, b);
        assert_ne!(a, hop_hash([]));
    }

    #[test]
    fn incremental_hop_hash_matches_batch() {
        let hops = [(1u32, 0usize), (2, 1), (0x8000_0001, 3), (3, 2)];
        let mut h = HOP_HASH_INIT;
        for &(cp, cpu) in &hops {
            h = hop_hash_extend(h, cp, cpu);
        }
        assert_eq!(h, hop_hash(hops));
        assert_eq!(HOP_HASH_INIT, hop_hash([]));
    }

    #[test]
    fn drop_reason_indices_are_stable() {
        for (i, r) in DropReason::ALL.into_iter().enumerate() {
            assert_eq!(r.index(), i);
        }
        assert_eq!(DropReason::Backlog.label(), "backlog");
    }

    #[test]
    fn checkpoint_labels() {
        let meta = TraceMeta {
            n_cores: 2,
            devices: vec![(1, "eth0".into()), (3, "vxlan0".into())],
        };
        assert_eq!(meta.checkpoint_label(1), "eth0");
        assert_eq!(meta.checkpoint_label(1 | STAGE_B_CHECK), "eth0:b");
        assert_eq!(meta.checkpoint_label(3), "vxlan0");
        assert_eq!(meta.checkpoint_label(9), "if9");
        assert_eq!(meta.checkpoint_label(DELIVERY_CHECK), "delivery");
    }
}

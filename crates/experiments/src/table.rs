//! Plain-text result tables.

use serde::{Deserialize, Serialize};

/// A column-aligned text table.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Table {
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Looks up a cell by row predicate and column name.
    pub fn cell(&self, row_match: impl Fn(&[String]) -> bool, col: &str) -> Option<&str> {
        let col_idx = self.headers.iter().position(|h| h == col)?;
        self.rows
            .iter()
            .find(|r| row_match(r))
            .map(|r| r[col_idx].as_str())
    }
}

impl core::fmt::Display for Table {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        for (i, h) in self.headers.iter().enumerate() {
            write!(f, "{:<w$}  ", h, w = widths[i])?;
        }
        writeln!(f)?;
        for (i, _) in self.headers.iter().enumerate() {
            write!(f, "{}  ", "-".repeat(widths[i]))?;
        }
        writeln!(f)?;
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                write!(f, "{:<w$}  ", cell, w = widths[i])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// The output of one figure reproduction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FigResult {
    /// Figure id (`fig10`, `fig2a`, ...).
    pub id: String,
    /// What the figure shows.
    pub title: String,
    /// One or more result tables (some figures have panels).
    pub tables: Vec<(String, Table)>,
    /// Free-form observations the harness derives (who won, factors).
    pub notes: Vec<String>,
}

impl FigResult {
    /// Creates an empty result.
    pub fn new(id: &str, title: &str) -> Self {
        FigResult {
            id: id.to_string(),
            title: title.to_string(),
            tables: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Adds a panel.
    pub fn panel(&mut self, name: &str, table: Table) {
        self.tables.push((name.to_string(), table));
    }

    /// Adds a note.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }
}

impl core::fmt::Display for FigResult {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        for (name, table) in &self.tables {
            if !name.is_empty() {
                writeln!(f, "\n[{name}]")?;
            }
            write!(f, "{table}")?;
        }
        for note in &self.notes {
            writeln!(f, "note: {note}")?;
        }
        Ok(())
    }
}

/// Formats a packet rate in Kpps with sensible precision.
pub fn kpps(pps: f64) -> String {
    format!("{:.1}", pps / 1e3)
}

/// Formats nanoseconds as microseconds.
pub fn us(ns: u64) -> String {
    format!("{:.1}", ns as f64 / 1e3)
}

/// Formats a 0–1 share as a percentage.
pub fn pct(share: f64) -> String {
    format!("{:.0}%", share * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["mode", "kpps"]);
        t.row(vec!["Host".into(), "1234.5".into()]);
        t.row(vec!["Con".into(), "395.0".into()]);
        let s = t.to_string();
        assert!(s.contains("mode"));
        assert!(s.contains("Host"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn cell_lookup() {
        let mut t = Table::new(&["mode", "kpps"]);
        t.row(vec!["Host".into(), "1000".into()]);
        t.row(vec!["Con".into(), "400".into()]);
        assert_eq!(t.cell(|r| r[0] == "Con", "kpps"), Some("400"));
        assert_eq!(t.cell(|r| r[0] == "X", "kpps"), None);
        assert_eq!(t.cell(|r| r[0] == "Con", "nope"), None);
    }

    #[test]
    fn fig_result_display() {
        let mut fig = FigResult::new("fig10", "UDP stress packet rates");
        let mut t = Table::new(&["mode"]);
        t.row(vec!["Host".into()]);
        fig.panel("100G / 4.19", t);
        fig.note("Falcon reaches 87% of host");
        let s = fig.to_string();
        assert!(s.contains("fig10"));
        assert!(s.contains("[100G / 4.19]"));
        assert!(s.contains("note: Falcon"));
    }

    #[test]
    fn fig_result_json_round_trips() {
        // The `--json` output must be machine-parseable: serialize a
        // result and read it back through the JSON parser.
        let mut fig = FigResult::new("fig10", "UDP stress packet rates");
        let mut t = Table::new(&["mode", "kpps"]);
        t.row(vec!["Host".into(), "1234.5".into()]);
        t.row(vec!["Falcon".into(), "1074.0".into()]);
        fig.panel("100G / 4.19", t);
        fig.note("Falcon reaches 87% of host");
        let json = serde_json::to_string_pretty(&fig).expect("serializable");
        let parsed = serde_json::from_str(&json).expect("parses back");
        let serde::Value::Object(fields) = parsed else {
            panic!("root must be an object");
        };
        let id = fields.iter().find(|(k, _)| k == "id").expect("id key");
        assert_eq!(id.1, serde::Value::Str("fig10".into()));
        assert!(json.contains("1074.0"));
        assert!(json.contains("87% of host"));
    }

    #[test]
    fn formatters() {
        assert_eq!(kpps(1_234_500.0), "1234.5");
        assert_eq!(us(12_345), "12.3");
        assert_eq!(pct(0.87), "87%");
    }
}

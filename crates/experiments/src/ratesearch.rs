//! Maximum-sustainable-rate search.
//!
//! The paper's throughput protocol: "we kept increasing the sending
//! rate until received packet rate plateaued and packet drop occurred"
//! (§2.2). Blasting at line rate is *not* equivalent — under extreme
//! overload the overlay's re-entrant backlog (inner packets share the
//! per-CPU `input_pkt_queue` with outer arrivals) compounds tail drops
//! and reassembly failures, collapsing goodput. [`max_sustainable`]
//! reproduces the ramp: probe increasing offered rates, track delivered
//! rate, stop when it stops improving, and report the plateau.

use falcon_netstack::sim::SimRunner;

use crate::measure::{run_measured, Scale};

/// Result of a rate search.
#[derive(Debug, Clone, Copy)]
pub struct RatePoint {
    /// Offered rate at the best probe (datagrams or messages /s).
    pub offered_pps: f64,
    /// Delivered rate at the best probe.
    pub delivered_pps: f64,
}

/// Probes geometrically increasing offered rates, returning the best
/// delivered rate observed (the plateau).
///
/// `build` constructs a fresh runner for an aggregate offered rate.
/// The ramp starts at `start_pps` and multiplies by 1.35 per step; it
/// stops when the delivered rate has not improved by more than 2 % for
/// two consecutive probes, or after `max_probes`.
pub fn max_sustainable(
    build: &dyn Fn(f64) -> SimRunner,
    start_pps: f64,
    scale: Scale,
) -> RatePoint {
    let max_probes = match scale {
        Scale::Quick => 12,
        Scale::Full => 18,
    };
    let mut best = RatePoint {
        offered_pps: 0.0,
        delivered_pps: 0.0,
    };
    let mut rate = start_pps;
    let mut stale = 0;
    for _ in 0..max_probes {
        let mut runner = build(rate);
        let stats = run_measured(&mut runner, scale);
        let delivered = stats.pps();
        if delivered > best.delivered_pps * 1.02 {
            best = RatePoint {
                offered_pps: rate,
                delivered_pps: delivered,
            };
            stale = 0;
        } else {
            stale += 1;
            if stale >= 2 {
                break;
            }
        }
        rate *= 1.35;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Mode, Scenario, SF_APP_CORE};
    use falcon_netdev::LinkSpeed;
    use falcon_netstack::{KernelVersion, Pacing};
    use falcon_workloads::{UdpStressApp, UdpStressConfig};

    fn build_udp(mode: Mode) -> impl Fn(f64) -> SimRunner {
        move |rate: f64| {
            let scenario =
                Scenario::single_flow(mode.clone(), KernelVersion::K419, LinkSpeed::HundredGbit);
            let mut cfg = UdpStressConfig::single_flow(16);
            cfg.senders_per_flow = 4;
            cfg.pacing = Pacing::FixedPps(rate / 4.0);
            cfg.app_cores = vec![SF_APP_CORE];
            scenario.build(Box::new(UdpStressApp::new(cfg)))
        }
    }

    #[test]
    fn finds_a_plateau_between_modes() {
        let host = max_sustainable(&build_udp(Mode::Host), 100_000.0, Scale::Quick);
        let con = max_sustainable(&build_udp(Mode::Vanilla), 100_000.0, Scale::Quick);
        assert!(
            host.delivered_pps > 500_000.0,
            "host plateau {}",
            host.delivered_pps
        );
        assert!(
            con.delivered_pps > 100_000.0,
            "overlay plateau {}",
            con.delivered_pps
        );
        assert!(
            con.delivered_pps < host.delivered_pps * 0.7,
            "overlay {} should be well under host {}",
            con.delivered_pps,
            host.delivered_pps
        );
    }
}

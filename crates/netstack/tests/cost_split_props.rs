//! Property tests of the cost model's GRO-split stage decomposition.
//!
//! The split shapes (`overlay_udp_stage_ns_split`,
//! `overlay_tcp_stage_ns_split`) promise an *exact partition*: the two
//! pNIC half-stages always sum to the unsplit pNIC stage cost, the
//! later stages are untouched, and no stage ever costs zero (a
//! zero-cost stage would let the dataplane's busy-spin degenerate to a
//! pure queue hop and silently break the wall-clock comparison).

use falcon_netstack::{CostModel, KernelVersion};
use proptest::prelude::*;

fn kernels() -> impl Strategy<Value = KernelVersion> {
    any::<bool>().prop_map(|new| {
        if new {
            KernelVersion::K54
        } else {
            KernelVersion::K419
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// UDP: split halves sum exactly to the unsplit pNIC stage for all
    /// payload sizes, later stages match, every stage is nonzero.
    #[test]
    fn udp_split_halves_partition_exactly(
        kernel in kernels(),
        payload in 0usize..=65_507,
    ) {
        let m = CostModel::for_kernel(kernel);
        let four = m.overlay_udp_stage_ns(payload);
        let five = m.overlay_udp_stage_ns_split(payload);
        prop_assert_eq!(five[0] + five[1], four[0], "halves must sum to stage A");
        prop_assert_eq!(&five[2..], &four[1..], "later stages must be untouched");
        for (label, ns) in CostModel::OVERLAY_STAGE_LABELS_SPLIT.iter().zip(five) {
            prop_assert!(ns > 0, "stage {} has zero cost at payload {}", label, payload);
        }
        for (label, ns) in CostModel::OVERLAY_STAGE_LABELS.iter().zip(four) {
            prop_assert!(ns > 0, "stage {} has zero cost at payload {}", label, payload);
        }
    }

    /// TCP-GRO: the same partition holds across message and MSS sizes,
    /// including messages smaller than one segment.
    #[test]
    fn tcp_split_halves_partition_exactly(
        kernel in kernels(),
        msg in 1usize..=65_507,
        mss in 536usize..=9_000,
    ) {
        let m = CostModel::for_kernel(kernel);
        let four = m.overlay_tcp_stage_ns(msg, mss);
        let five = m.overlay_tcp_stage_ns_split(msg, mss);
        prop_assert_eq!(five[0] + five[1], four[0], "halves must sum to stage A");
        prop_assert_eq!(&five[2..], &four[1..], "later stages must be untouched");
        for (label, ns) in CostModel::OVERLAY_STAGE_LABELS_SPLIT.iter().zip(five) {
            prop_assert!(ns > 0, "stage {} has zero cost at msg {} mss {}", label, msg, mss);
        }
        // Splitting adds no modeled work: serialized totals agree.
        prop_assert_eq!(five.iter().sum::<u64>(), four.iter().sum::<u64>());
    }

    /// The TCP pNIC stage is per-segment: more segments (smaller MSS)
    /// never makes the first stage cheaper, and both halves grow with
    /// the message.
    #[test]
    fn tcp_pnic_cost_is_monotone_in_segments(
        kernel in kernels(),
        msg in 1449usize..=32_768,
    ) {
        let m = CostModel::for_kernel(kernel);
        let coarse = m.overlay_tcp_stage_ns_split(msg, 9_000);
        let fine = m.overlay_tcp_stage_ns_split(msg, 1_448);
        prop_assert!(fine[0] >= coarse[0], "alloc half must grow with segment count");
        prop_assert!(fine[1] >= coarse[1], "gro half must grow with segment count");
    }
}

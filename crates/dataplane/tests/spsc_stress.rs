//! SPSC ring stress tests: millions of cross-thread operations under
//! `--release`, boundary behavior at full/empty, and drop accounting.
//!
//! Debug builds use a reduced operation count so `cargo test` stays
//! fast; the CI dataplane job runs this file with `--release` at the
//! full multi-million-op count.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use falcon_dataplane::spsc::ring;

/// Ops per stress run: millions in release, thousands in debug.
fn stress_ops() -> u64 {
    if cfg!(debug_assertions) {
        200_000
    } else {
        3_000_000
    }
}

#[test]
fn fifo_over_millions_of_ops() {
    let n = stress_ops();
    let (mut tx, mut rx) = ring::<u64>(1024);
    let producer = std::thread::spawn(move || {
        for i in 0..n {
            loop {
                match tx.try_push(i) {
                    Ok(()) => break,
                    // Yield, not spin: single-core hosts must actually
                    // switch to the consumer to make progress.
                    Err(_) => std::thread::yield_now(),
                }
            }
        }
    });
    let mut expected = 0u64;
    while expected < n {
        match rx.pop() {
            Some(v) => {
                assert_eq!(v, expected, "FIFO violated at item {expected}");
                expected += 1;
            }
            None => std::thread::yield_now(),
        }
    }
    producer.join().expect("producer");
    assert!(rx.pop().is_none(), "ring must be empty after the run");
}

#[test]
fn tiny_ring_maximum_contention() {
    // Capacity 2: every push/pop races on the full/empty boundary, the
    // worst case for the cached-index fast path.
    let n = stress_ops() / 4;
    let (mut tx, mut rx) = ring::<u64>(2);
    let producer = std::thread::spawn(move || {
        for i in 0..n {
            while tx.try_push(i).is_err() {
                std::thread::yield_now();
            }
        }
    });
    let mut expected = 0u64;
    while expected < n {
        match rx.pop() {
            Some(v) => {
                assert_eq!(v, expected);
                expected += 1;
            }
            None => std::thread::yield_now(),
        }
    }
    producer.join().expect("producer");
}

#[test]
fn drop_on_full_accounting_under_load() {
    // Consumer is deliberately slower than the producer, so the
    // producer must tail-drop; at the end, accepted + dropped must
    // exactly equal the attempts and every accepted item must arrive
    // in order.
    let n = stress_ops() / 4;
    let (mut tx, mut rx) = ring::<u64>(64);
    let done = Arc::new(AtomicBool::new(false));
    let done_rx = Arc::clone(&done);
    let consumer = std::thread::spawn(move || {
        let mut received = 0u64;
        let mut last: Option<u64> = None;
        loop {
            match rx.pop() {
                Some(v) => {
                    if let Some(prev) = last {
                        assert!(v > prev, "order violated: {v} after {prev}");
                    }
                    last = Some(v);
                    received += 1;
                    // Slow consumer: extra work per item.
                    std::hint::black_box((0..32).sum::<u64>());
                }
                None => {
                    if done_rx.load(Ordering::Acquire) && rx.is_empty() {
                        break;
                    }
                    std::thread::yield_now();
                }
            }
        }
        received
    });
    let mut accepted = 0u64;
    for i in 0..n {
        if tx.push_or_drop(i) {
            accepted += 1;
        }
    }
    let dropped = tx.dropped();
    done.store(true, Ordering::Release);
    let received = consumer.join().expect("consumer");
    assert_eq!(accepted + dropped, n, "every attempt accounted for");
    assert_eq!(received, accepted, "every accepted item consumed");
    assert!(
        dropped > 0,
        "a 64-slot ring against a slow consumer must drop"
    );
}

#[test]
fn full_empty_boundaries_are_exact() {
    let (mut tx, mut rx) = ring::<u32>(8);
    // Drive the indices around the wrap point several times so the
    // monotonic counters exercise masked wrapping.
    for round in 0..100u32 {
        for i in 0..8 {
            assert!(tx.try_push(round * 8 + i).is_ok(), "slot {i} must fit");
        }
        assert!(tx.try_push(u32::MAX).is_err(), "9th push must fail");
        assert_eq!(rx.len(), 8);
        for i in 0..8 {
            assert_eq!(rx.pop(), Some(round * 8 + i));
        }
        assert!(rx.pop().is_none(), "empty ring must yield None");
        assert!(rx.is_empty());
    }
}

#[test]
fn concurrent_occupancy_is_bounded_by_capacity() {
    // len() from either side must never exceed capacity, no matter how
    // the loads interleave.
    let n = stress_ops() / 8;
    let (mut tx, mut rx) = ring::<u64>(16);
    let producer = std::thread::spawn(move || {
        for i in 0..n {
            while tx.try_push(i).is_err() {
                std::thread::yield_now();
            }
            assert!(tx.len() <= tx.capacity());
        }
    });
    let mut popped = 0u64;
    while popped < n {
        assert!(rx.len() <= rx.capacity());
        match rx.pop() {
            Some(_) => popped += 1,
            None => std::thread::yield_now(),
        }
    }
    producer.join().expect("producer");
}

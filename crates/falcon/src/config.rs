//! Falcon configuration knobs.

use falcon_cpusim::CpuSet;
use serde::{Deserialize, Serialize};

/// Configuration of the Falcon mechanisms (paper §4, §5, §6.1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FalconConfig {
    /// `FALCON_CPUS`: the cores softirq pipelining may target.
    pub falcon_cpus: CpuSet,
    /// `FALCON_LOAD_THRESHOLD` (0–1): Falcon is disabled while the
    /// system-wide average load is at or above this; the same threshold
    /// gates the per-core first-choice check. The paper's empirical
    /// sweet spot is 0.80–0.90 (§6.1, Figure 15).
    pub load_threshold: f64,
    /// Use the second random choice when the first core is busy
    /// (disabling this gives the "static" baseline of Figure 16).
    pub two_choice: bool,
    /// Mix the device ifindex into the hash. Disabling this is the
    /// ablation that degrades Falcon to flow-only (RPS-like) placement:
    /// every stage of a flow lands on the same core.
    pub device_aware: bool,
    /// Apply GRO-splitting at the pNIC stage (paper §4.2/§5).
    pub split_gro: bool,
    /// Ignore the load gate entirely ("always-on" in Figure 15).
    pub always_on: bool,
}

impl FalconConfig {
    /// Falcon with the paper's defaults: threshold 0.85, two-choice
    /// balancing, device-aware hashing, no GRO splitting.
    pub fn new(falcon_cpus: CpuSet) -> Self {
        assert!(!falcon_cpus.is_empty(), "FALCON_CPUS must not be empty");
        FalconConfig {
            falcon_cpus,
            load_threshold: 0.85,
            two_choice: true,
            device_aware: true,
            split_gro: false,
            always_on: false,
        }
    }

    /// Sets the load threshold.
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&threshold),
            "threshold must be in 0..=1"
        );
        self.load_threshold = threshold;
        self
    }

    /// Enables or disables the second random choice.
    pub fn with_two_choice(mut self, on: bool) -> Self {
        self.two_choice = on;
        self
    }

    /// Enables or disables device-aware hashing (ablation).
    pub fn with_device_aware(mut self, on: bool) -> Self {
        self.device_aware = on;
        self
    }

    /// Enables or disables GRO-splitting.
    pub fn with_split_gro(mut self, on: bool) -> Self {
        self.split_gro = on;
        self
    }

    /// Makes Falcon ignore the load gate ("always-on").
    pub fn with_always_on(mut self, on: bool) -> Self {
        self.always_on = on;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let cfg = FalconConfig::new(CpuSet::range(1, 7));
        assert_eq!(cfg.load_threshold, 0.85);
        assert!(cfg.two_choice);
        assert!(cfg.device_aware);
        assert!(!cfg.split_gro);
        assert!(!cfg.always_on);
        assert_eq!(cfg.falcon_cpus.len(), 6);
    }

    #[test]
    fn builder_chain() {
        let cfg = FalconConfig::new(CpuSet::range(0, 4))
            .with_threshold(0.7)
            .with_two_choice(false)
            .with_device_aware(false)
            .with_split_gro(true)
            .with_always_on(true);
        assert_eq!(cfg.load_threshold, 0.7);
        assert!(!cfg.two_choice);
        assert!(!cfg.device_aware);
        assert!(cfg.split_gro);
        assert!(cfg.always_on);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_cpu_set_rejected() {
        let _ = FalconConfig::new(CpuSet::default());
    }

    #[test]
    #[should_panic(expected = "threshold must be in")]
    fn bad_threshold_rejected() {
        let _ = FalconConfig::new(CpuSet::range(0, 2)).with_threshold(1.5);
    }
}

//! Chrome trace-event (Perfetto) exporter.
//!
//! Renders an event stream as the JSON object format understood by
//! `chrome://tracing` and <https://ui.perfetto.dev>: one *process* per
//! core, one *thread* per execution context (hardirq / softirq / task),
//! so the timeline shows exactly how work interleaves on each CPU.
//! Queue, steering, and drop events appear as instant markers with
//! their payloads in `args`.

use crate::{Context, Event, EventKind, TraceMeta};
use serde::Value;

/// Pseudo-pid used for the NIC hardware track (per-queue tids).
const NIC_PID: usize = 900;
/// Pseudo-pid used for the Falcon steering-policy track.
const FALCON_PID: usize = 901;

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn s(v: &str) -> Value {
    Value::Str(v.to_string())
}

fn int(v: u64) -> Value {
    Value::Int(v as i128)
}

fn usz(v: usize) -> Value {
    Value::Int(v as i128)
}

/// Microsecond timestamp: the trace-event format's `ts` unit.
fn us(ns: u64) -> Value {
    Value::Float(ns as f64 / 1000.0)
}

fn ctx_tid(ctx: Context) -> usize {
    match ctx {
        Context::HardIrq => 0,
        Context::SoftIrq => 1,
        Context::Task => 2,
    }
}

/// One metadata record naming a process or thread.
fn meta_event(name: &str, pid: usize, tid: Option<usize>, value: &str) -> Value {
    let mut fields = vec![
        ("name", s(name)),
        ("ph", s("M")),
        ("pid", usz(pid)),
        ("args", obj(vec![("name", s(value))])),
    ];
    if let Some(tid) = tid {
        fields.insert(3, ("tid", usz(tid)));
    }
    obj(fields)
}

/// A complete-duration ("X") slice.
fn slice(name: &str, pid: usize, tid: usize, at_ns: u64, dur_ns: u64) -> Value {
    obj(vec![
        ("name", s(name)),
        ("ph", s("X")),
        ("pid", usz(pid)),
        ("tid", usz(tid)),
        ("ts", us(at_ns)),
        ("dur", us(dur_ns)),
    ])
}

/// An instant ("i") marker with payload args.
fn instant(
    name: &str,
    cat: &str,
    pid: usize,
    tid: usize,
    at_ns: u64,
    args: Vec<(&str, Value)>,
) -> Value {
    obj(vec![
        ("name", s(name)),
        ("cat", s(cat)),
        ("ph", s("i")),
        ("s", s("t")),
        ("pid", usz(pid)),
        ("tid", usz(tid)),
        ("ts", us(at_ns)),
        ("args", obj(args)),
    ])
}

/// One sample of a counter track: a timestamp plus the values of each
/// series on the track at that instant.
#[derive(Debug, Clone)]
pub struct CounterPoint {
    /// Run-relative timestamp, nanoseconds.
    pub at_ns: u64,
    /// `(series, value)` pairs; every point of a track should carry
    /// the same series set so the stacked chart renders cleanly.
    pub values: Vec<(String, f64)>,
}

/// A Chrome `ph:"C"` counter track: named per-process time series that
/// render as stacked area charts under the slice timeline. Telemetry
/// merges queue-depth and stall-fraction tracks into the trace export
/// through these.
#[derive(Debug, Clone)]
pub struct CounterTrack {
    /// Track name (shared by all its events; Chrome keys the track on
    /// `(pid, name)`).
    pub name: String,
    /// Process id to attach the track to (a core/worker pid).
    pub pid: usize,
    /// Chronological samples.
    pub points: Vec<CounterPoint>,
}

fn counter_event(track: &CounterTrack, point: &CounterPoint) -> Value {
    obj(vec![
        ("name", s(&track.name)),
        ("ph", s("C")),
        ("pid", usz(track.pid)),
        ("tid", usz(0)),
        ("ts", us(point.at_ns)),
        (
            "args",
            obj(point
                .values
                .iter()
                .map(|(k, v)| (k.as_str(), Value::Float(*v)))
                .collect()),
        ),
    ])
}

/// Converts an event stream into a Chrome trace-event JSON string.
pub fn export(events: &[Event], meta: &TraceMeta) -> String {
    export_with_counters(events, meta, &[])
}

/// [`export`], with counter tracks merged into the same timeline.
pub fn export_with_counters(
    events: &[Event],
    meta: &TraceMeta,
    counters: &[CounterTrack],
) -> String {
    let mut out: Vec<Value> = Vec::new();

    for core in 0..meta.n_cores {
        out.push(meta_event(
            "process_name",
            core,
            None,
            &format!("cpu{core}"),
        ));
        for ctx in Context::ALL {
            out.push(meta_event(
                "thread_name",
                core,
                Some(ctx_tid(ctx)),
                ctx.label(),
            ));
        }
    }
    out.push(meta_event("process_name", NIC_PID, None, "nic"));
    out.push(meta_event("process_name", FALCON_PID, None, "falcon"));

    for ev in events {
        let at = ev.at_ns;
        match ev.kind {
            EventKind::Exec {
                core,
                ctx,
                func,
                dur_ns,
            } => out.push(slice(func, core, ctx_tid(ctx), at, dur_ns)),

            EventKind::RingEnqueue {
                queue,
                pkt,
                flow,
                qlen,
            } => out.push(instant(
                "ring_enqueue",
                "nic",
                NIC_PID,
                queue,
                at,
                vec![("pkt", int(pkt)), ("flow", int(flow)), ("qlen", usz(qlen))],
            )),
            EventKind::HardIrqRaise { queue, core } => out.push(instant(
                "hardirq_raise",
                "nic",
                NIC_PID,
                queue,
                at,
                vec![("core", usz(core))],
            )),
            EventKind::IrqCoalesced { queue, pkt } => out.push(instant(
                "irq_coalesced",
                "nic",
                NIC_PID,
                queue,
                at,
                vec![("pkt", int(pkt))],
            )),

            EventKind::SoftirqRaise { src, dst, ipi } => out.push(instant(
                if ipi {
                    "softirq_raise_ipi"
                } else {
                    "softirq_raise"
                },
                "softirq",
                dst,
                ctx_tid(Context::SoftIrq),
                at,
                vec![("src", usz(src)), ("ipi", Value::Bool(ipi))],
            )),
            EventKind::BacklogEnqueue {
                cpu,
                pkt,
                flow,
                qlen,
            } => out.push(instant(
                "backlog_enqueue",
                "queue",
                cpu,
                ctx_tid(Context::SoftIrq),
                at,
                vec![("pkt", int(pkt)), ("flow", int(flow)), ("qlen", usz(qlen))],
            )),
            EventKind::GroCellEnqueue {
                cpu,
                pkt,
                flow,
                qlen,
            } => out.push(instant(
                "grocell_enqueue",
                "queue",
                cpu,
                ctx_tid(Context::SoftIrq),
                at,
                vec![("pkt", int(pkt)), ("flow", int(flow)), ("qlen", usz(qlen))],
            )),
            EventKind::QueueDrop {
                reason,
                cpu,
                pkt,
                flow,
            } => out.push(instant(
                "drop",
                "drop",
                cpu,
                ctx_tid(Context::SoftIrq),
                at,
                vec![
                    ("reason", s(reason.label())),
                    ("pkt", int(pkt)),
                    ("flow", int(flow)),
                ],
            )),
            EventKind::StageExec {
                checkpoint,
                cpu,
                ctx,
                pkt,
                flow,
                seq,
                queued_ns,
                service_ns,
            } => out.push(instant(
                &format!("stage:{}", meta.checkpoint_label(checkpoint)),
                "stage",
                cpu,
                ctx_tid(ctx),
                at,
                vec![
                    ("pkt", int(pkt)),
                    ("flow", int(flow)),
                    ("seq", int(seq)),
                    ("queued_ns", int(queued_ns)),
                    ("service_ns", int(service_ns)),
                ],
            )),
            EventKind::GroMerge {
                checkpoint,
                cpu,
                absorbed,
                into,
                flow,
            } => out.push(instant(
                "gro_merge",
                "gro",
                cpu,
                ctx_tid(Context::SoftIrq),
                at,
                vec![
                    ("at", s(&meta.checkpoint_label(checkpoint))),
                    ("absorbed", int(absorbed)),
                    ("into", int(into)),
                    ("flow", int(flow)),
                ],
            )),
            EventKind::FragAbsorbed { cpu, pkt, flow } => out.push(instant(
                "frag_absorbed",
                "gro",
                cpu,
                ctx_tid(Context::SoftIrq),
                at,
                vec![("pkt", int(pkt)), ("flow", int(flow))],
            )),
            EventKind::Deliver {
                cpu,
                pkt,
                flow,
                latency_ns,
                hops,
                hop_hash,
            } => out.push(instant(
                "deliver",
                "deliver",
                cpu,
                ctx_tid(Context::Task),
                at,
                vec![
                    ("pkt", int(pkt)),
                    ("flow", int(flow)),
                    ("latency_ns", int(latency_ns)),
                    ("hops", int(hops as u64)),
                    ("hop_hash", s(&format!("{hop_hash:016x}"))),
                ],
            )),
            EventKind::Wakeup { src, dst } => out.push(instant(
                "wakeup",
                "sched",
                dst,
                ctx_tid(Context::Task),
                at,
                vec![("src", usz(src))],
            )),

            EventKind::FalconChoice {
                ifindex,
                hash,
                first,
                chosen,
                second,
            } => out.push(instant(
                "falcon_choice",
                "falcon",
                FALCON_PID,
                0,
                at,
                vec![
                    ("dev", s(&meta.checkpoint_label(ifindex))),
                    ("hash", int(hash as u64)),
                    ("first", usz(first)),
                    ("chosen", usz(chosen)),
                    ("second_choice", Value::Bool(second)),
                ],
            )),
            EventKind::FalconGated { ifindex, cpu } => out.push(instant(
                "falcon_gated",
                "falcon",
                FALCON_PID,
                0,
                at,
                vec![
                    ("dev", s(&meta.checkpoint_label(ifindex))),
                    ("cpu", usz(cpu)),
                ],
            )),
            EventKind::LoadGate {
                active,
                l_avg_milli,
            } => out.push(instant(
                if active {
                    "load_gate_on"
                } else {
                    "load_gate_off"
                },
                "falcon",
                FALCON_PID,
                0,
                at,
                vec![
                    ("active", Value::Bool(active)),
                    ("l_avg_milli", int(l_avg_milli as u64)),
                ],
            )),
            EventKind::FlowMigration {
                flow,
                ifindex,
                from,
                to,
            } => out.push(instant(
                "flow_migration",
                "falcon",
                FALCON_PID,
                0,
                at,
                vec![
                    ("flow", int(flow)),
                    ("dev", s(&meta.checkpoint_label(ifindex))),
                    ("from", usz(from)),
                    ("to", usz(to)),
                ],
            )),
        }
    }

    for track in counters {
        for point in &track.points {
            out.push(counter_event(track, point));
        }
    }

    let root = obj(vec![
        ("traceEvents", Value::Array(out)),
        ("displayTimeUnit", s("ns")),
    ]);
    serde_json::to_string(&root).expect("trace Value tree always serializes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DropReason;

    fn meta() -> TraceMeta {
        TraceMeta {
            n_cores: 2,
            devices: vec![(1, "eth0".into())],
        }
    }

    #[test]
    fn export_is_valid_json_with_tracks() {
        let events = vec![
            Event {
                at_ns: 1000,
                kind: EventKind::Exec {
                    core: 0,
                    ctx: Context::SoftIrq,
                    func: "net_rx_action",
                    dur_ns: 500,
                },
            },
            Event {
                at_ns: 1200,
                kind: EventKind::QueueDrop {
                    reason: DropReason::Backlog,
                    cpu: 1,
                    pkt: 7,
                    flow: 3,
                },
            },
        ];
        let json = export(&events, &meta());
        let parsed = serde_json::from_str(&json).expect("valid JSON");
        let Value::Object(fields) = parsed else {
            panic!("root must be an object");
        };
        let (_, Value::Array(evs)) = fields
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .expect("traceEvents key")
            .clone()
        else {
            panic!("traceEvents must be an array");
        };
        // 2 cores × (1 process + 3 threads) + nic + falcon + 2 events.
        assert_eq!(evs.len(), 2 * 4 + 2 + 2);
        assert!(json.contains("\"ph\":\"X\""), "has duration slices");
        assert!(json.contains("net_rx_action"));
        assert!(json.contains("\"reason\":\"backlog\""));
    }

    #[test]
    fn counter_tracks_render_as_c_events() {
        let track = CounterTrack {
            name: "qdepth".into(),
            pid: 1,
            points: vec![
                CounterPoint {
                    at_ns: 1_000,
                    values: vec![("depth".into(), 3.0)],
                },
                CounterPoint {
                    at_ns: 2_000,
                    values: vec![("depth".into(), 5.0)],
                },
            ],
        };
        let json = export_with_counters(&[], &meta(), &[track]);
        serde_json::from_str(&json).expect("valid JSON");
        assert!(json.contains("\"ph\":\"C\""), "{json}");
        assert!(json.contains("\"name\":\"qdepth\""));
        assert!(json.contains("\"depth\":5"));
        // Plain export stays counter-free.
        assert!(!export(&[], &meta()).contains("\"ph\":\"C\""));
    }

    #[test]
    fn timestamps_are_microseconds() {
        let events = vec![Event {
            at_ns: 1500,
            kind: EventKind::Exec {
                core: 0,
                ctx: Context::Task,
                func: "copy_to_user",
                dur_ns: 250,
            },
        }];
        let json = export(&events, &meta());
        assert!(json.contains("\"ts\":1.5"), "{json}");
        assert!(json.contains("\"dur\":0.25"), "{json}");
    }
}

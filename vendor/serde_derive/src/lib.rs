//! Derive macros for the vendored `serde` stand-in.
//!
//! Parses the item declaration directly from the token stream (no
//! syn/quote available offline) and emits an `impl serde::Serialize`
//! that builds a `serde::Value` tree. Supported shapes — the only ones
//! used in this workspace — are named structs, tuple/newtype structs,
//! and enums with unit or tuple variants. Generic items are rejected
//! with a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum ItemKind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<(String, usize)>),
}

struct Item {
    name: String,
    kind: ItemKind,
}

fn is_ident(tok: &TokenTree, text: &str) -> bool {
    matches!(tok, TokenTree::Ident(id) if id.to_string() == text)
}

fn ident_text(tok: &TokenTree) -> Option<String> {
    match tok {
        TokenTree::Ident(id) => Some(id.to_string()),
        _ => None,
    }
}

/// Skips `#[...]` attributes and a `pub` / `pub(...)` visibility prefix
/// starting at `*i`.
fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1;
                if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            Some(tok) if is_ident(tok, "pub") => {
                *i += 1;
                if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Advances past one type, stopping at a comma that sits outside any
/// `<...>` angle-bracket nesting. Leaves `*i` on the comma (or the
/// end).
fn skip_type(toks: &[TokenTree], i: &mut usize) {
    let mut angle = 0i32;
    while let Some(tok) = toks.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(body: &[TokenTree]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < body.len() {
        skip_attrs_and_vis(body, &mut i);
        if i >= body.len() {
            break;
        }
        let name = ident_text(&body[i]).expect("field name");
        i += 1; // name
        i += 1; // ':'
        skip_type(body, &mut i);
        i += 1; // ','
        fields.push(name);
    }
    fields
}

fn count_tuple_fields(body: &[TokenTree]) -> usize {
    let mut n = 0;
    let mut i = 0;
    while i < body.len() {
        skip_attrs_and_vis(body, &mut i);
        if i >= body.len() {
            break;
        }
        skip_type(body, &mut i);
        i += 1; // ','
        n += 1;
    }
    n
}

fn parse_variants(body: &[TokenTree]) -> Vec<(String, usize)> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < body.len() {
        skip_attrs_and_vis(body, &mut i);
        if i >= body.len() {
            break;
        }
        let name = ident_text(&body[i]).expect("variant name");
        i += 1;
        let mut arity = 0;
        if let Some(TokenTree::Group(g)) = body.get(i) {
            match g.delimiter() {
                Delimiter::Parenthesis => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    arity = count_tuple_fields(&inner);
                    i += 1;
                }
                Delimiter::Brace => {
                    panic!("serde derive stand-in: struct enum variants are not supported")
                }
                _ => {}
            }
        }
        if matches!(body.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push((name, arity));
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&toks, &mut i);
    let kw = ident_text(&toks[i]).expect("struct or enum keyword");
    i += 1;
    let name = ident_text(&toks[i]).expect("item name");
    i += 1;
    if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde derive stand-in: generic items are not supported");
    }
    let kind = match (kw.as_str(), toks.get(i)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            ItemKind::NamedStruct(parse_named_fields(&body))
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            ItemKind::TupleStruct(count_tuple_fields(&body))
        }
        ("struct", _) => ItemKind::UnitStruct,
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            ItemKind::Enum(parse_variants(&body))
        }
        _ => panic!("serde derive stand-in: expected a struct or enum"),
    };
    Item { name, kind }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Object(::std::vec![{}])", pairs.join(", "))
        }
        ItemKind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        ItemKind::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", elems.join(", "))
        }
        ItemKind::UnitStruct => "::serde::Value::Null".to_string(),
        ItemKind::Enum(variants) => {
            let name = &item.name;
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, arity)| match arity {
                    0 => format!(
                        "{name}::{v} => ::serde::Value::Str(\
                         ::std::string::String::from(\"{v}\"))"
                    ),
                    1 => format!(
                        "{name}::{v}(f0) => ::serde::Value::Object(::std::vec![\
                         (::std::string::String::from(\"{v}\"), \
                         ::serde::Serialize::to_value(f0))])"
                    ),
                    n => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                        let elems: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Serialize::to_value(f{k})"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => ::serde::Value::Object(::std::vec![\
                             (::std::string::String::from(\"{v}\"), \
                             ::serde::Value::Array(::std::vec![{}]))])",
                            binds.join(", "),
                            elems.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {} }}\n\
         }}",
        item.name, body
    )
    .parse()
    .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    format!("impl ::serde::Deserialize for {} {{}}", item.name)
        .parse()
        .expect("generated Deserialize impl parses")
}

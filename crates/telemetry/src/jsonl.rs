//! JSONL time-series exporter: one header line of [`RunMeta`], then
//! one line per (sampling interval, worker) holding the *delta* of
//! every monotonic counter plus instantaneous gauges and interval
//! service-time summaries. Append-only and line-oriented so a run can
//! be tailed while in flight and the artifact survives a crash
//! mid-run.

use falcon_metrics::Histogram;
use falcon_trace::DropReason;
use serde::{Serialize, Value};

use crate::meta::RunMeta;
use crate::rx::RxSample;
use crate::shard::WorkerSample;

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn s(v: &str) -> Value {
    Value::Str(v.to_string())
}

fn int(v: u64) -> Value {
    Value::Int(v as i128)
}

/// Interval summary of a service-time histogram (the full bucket array
/// stays out of the artifact on purpose — 3 712 buckets per stage per
/// interval would dwarf the data).
fn hist_summary(stage: &str, h: &Histogram) -> Value {
    obj(vec![
        ("stage", s(stage)),
        ("count", int(h.count())),
        ("mean_ns", Value::Float(h.mean())),
        ("p50_ns", int(h.percentile(50.0))),
        ("p99_ns", int(h.percentile(99.0))),
        ("max_ns", int(h.max())),
    ])
}

/// The artifact's first line: schema + provenance + run shape.
pub fn header_line(meta: &RunMeta, interval_ms: u64, workers: usize, stages: &[String]) -> String {
    let v = obj(vec![
        ("kind", s("header")),
        ("meta", meta.to_value()),
        ("interval_ms", int(interval_ms)),
        ("workers", int(workers as u64)),
        (
            "stages",
            Value::Array(stages.iter().map(|l| s(l)).collect()),
        ),
    ]);
    serde_json::to_string(&v).expect("telemetry header always serializes")
}

/// One line per worker for a sampling tick: counter deltas vs the
/// previous snapshot, gauges as-is, and per-stage interval histograms.
pub fn sample_lines(
    t_ns: u64,
    cur: &[WorkerSample],
    prev: &[WorkerSample],
    stages: &[String],
) -> Vec<String> {
    cur.iter()
        .zip(prev.iter())
        .enumerate()
        .map(|(w, (c, p))| {
            let d = c.counters.delta_since(&p.counters);
            let stall = c.stall.delta_since(&p.stall);
            let drops = obj(DropReason::ALL
                .iter()
                .map(|r| (r.label(), int(*d.drops.get(r.index()).unwrap_or(&0))))
                .collect());
            let service = Value::Array(
                c.stage_service_ns
                    .iter()
                    .zip(p.stage_service_ns.iter())
                    .enumerate()
                    .map(|(i, (ch, ph))| {
                        let label = stages.get(i).map(String::as_str).unwrap_or("?");
                        hist_summary(label, &ch.delta_since(ph))
                    })
                    .collect(),
            );
            let v = obj(vec![
                ("kind", s("sample")),
                ("t_ns", int(t_ns)),
                ("worker", int(w as u64)),
                ("sweeps", int(d.sweeps)),
                (
                    "processed_per_stage",
                    Value::Array(d.processed_per_stage.iter().map(|&n| int(n)).collect()),
                ),
                ("delivered", int(d.delivered)),
                ("bytes_delivered", int(d.bytes_delivered)),
                ("drops", drops),
                (
                    "malformed_per_stage",
                    Value::Array(d.malformed_per_stage.iter().map(|&n| int(n)).collect()),
                ),
                (
                    "bytes_per_stage",
                    Value::Array(d.bytes_per_stage.iter().map(|&n| int(n)).collect()),
                ),
                ("decisions", int(d.decisions)),
                ("second_choices", int(d.second_choices)),
                ("migrations", int(d.migrations)),
                (
                    "flow_cache",
                    obj(vec![
                        ("hits", int(d.flow_cache_hits)),
                        ("misses", int(d.flow_cache_misses)),
                        ("evictions", int(d.flow_cache_evictions)),
                        ("invalidations", int(d.flow_cache_invalidations)),
                    ]),
                ),
                (
                    "conntrack",
                    obj(vec![
                        ("updates", int(d.conntrack_updates)),
                        ("transitions", int(d.conntrack_transitions)),
                        ("scr_delta_records", int(d.scr_delta_records)),
                    ]),
                ),
                ("stall", stall.to_value()),
                ("ring_depth", int(c.ring_depth)),
                ("depth_staleness", int(c.depth_staleness)),
                ("stage_service_ns", service),
            ]);
            serde_json::to_string(&v).expect("telemetry sample always serializes")
        })
        .collect()
}

/// One line per sampling tick for the socket rx thread: counter deltas
/// vs the previous snapshot, plus the cumulative kernel-drop estimate
/// (`SO_RXQ_OVFL` is already cumulative, so it exports as a gauge).
pub fn rx_line(t_ns: u64, cur: &RxSample, prev: &RxSample) -> String {
    let d = cur.delta_since(prev);
    let v = obj(vec![
        ("kind", s("rx")),
        ("t_ns", int(t_ns)),
        ("datagrams", int(d.datagrams)),
        ("batches", int(d.batches)),
        ("eagain_spins", int(d.eagain_spins)),
        ("runts", int(d.runts)),
        ("sock_drops_total", int(cur.sock_drops)),
    ]);
    serde_json::to_string(&v).expect("telemetry rx line always serializes")
}

/// One line per sampling tick for the packet source's slab buffer
/// pool: counter deltas vs the previous snapshot, plus the cumulative
/// heap-fallback count (the number the zero-alloc claim rides on, so
/// it exports as a running total too).
pub fn slab_line(
    t_ns: u64,
    cur: &falcon_packet::SlabSample,
    prev: &falcon_packet::SlabSample,
) -> String {
    let d = cur.delta_since(prev);
    let v = obj(vec![
        ("kind", s("slab")),
        ("t_ns", int(t_ns)),
        ("leases", int(d.leases)),
        ("recycles", int(d.recycles)),
        ("returns", int(d.returns)),
        ("fallbacks", int(d.fallbacks)),
        ("ring_drops", int(d.ring_drops)),
        ("gen_errors", int(d.gen_errors)),
        ("fallbacks_total", int(cur.fallbacks)),
    ]);
    serde_json::to_string(&v).expect("telemetry slab line always serializes")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slab_line_is_valid_json_with_deltas() {
        let prev = falcon_packet::SlabSample {
            leases: 100,
            fallbacks: 1,
            recycles: 90,
            returns: 95,
            ring_drops: 0,
            gen_errors: 0,
        };
        let cur = falcon_packet::SlabSample {
            leases: 250,
            fallbacks: 3,
            recycles: 240,
            returns: 245,
            ring_drops: 1,
            gen_errors: 0,
        };
        let line = slab_line(555, &cur, &prev);
        assert!(!line.contains('\n'));
        let v: Value = serde_json::from_str(&line).expect("slab line parses");
        assert_eq!(v.get("kind").and_then(Value::as_str), Some("slab"));
        assert_eq!(v.get("t_ns").and_then(Value::as_u64), Some(555));
        assert_eq!(v.get("leases").and_then(Value::as_u64), Some(150));
        assert_eq!(v.get("recycles").and_then(Value::as_u64), Some(150));
        assert_eq!(v.get("fallbacks").and_then(Value::as_u64), Some(2));
        assert_eq!(v.get("ring_drops").and_then(Value::as_u64), Some(1));
        assert_eq!(v.get("fallbacks_total").and_then(Value::as_u64), Some(3));
    }

    #[test]
    fn rx_line_is_valid_json_with_deltas() {
        let prev = RxSample {
            datagrams: 10,
            batches: 2,
            eagain_spins: 5,
            runts: 0,
            sock_drops: 1,
        };
        let cur = RxSample {
            datagrams: 25,
            batches: 4,
            eagain_spins: 9,
            runts: 1,
            sock_drops: 3,
        };
        let line = rx_line(777, &cur, &prev);
        assert!(!line.contains('\n'));
        let v: Value = serde_json::from_str(&line).expect("rx line parses");
        assert_eq!(v.get("kind").and_then(Value::as_str), Some("rx"));
        assert_eq!(v.get("t_ns").and_then(Value::as_u64), Some(777));
        assert_eq!(v.get("datagrams").and_then(Value::as_u64), Some(15));
        assert_eq!(v.get("batches").and_then(Value::as_u64), Some(2));
        assert_eq!(v.get("eagain_spins").and_then(Value::as_u64), Some(4));
        assert_eq!(v.get("runts").and_then(Value::as_u64), Some(1));
        assert_eq!(v.get("sock_drops_total").and_then(Value::as_u64), Some(3));
    }

    #[test]
    fn header_and_samples_are_valid_jsonl() {
        let meta = RunMeta::collect("telemetry", 4, 1, "4 cores / 1 package");
        let stages: Vec<String> = ["pnic_poll", "outer_stack"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let head = header_line(&meta, 50, 2, &stages);
        let parsed = serde_json::from_str(&head).expect("header parses");
        assert_eq!(parsed.get("kind").and_then(Value::as_str), Some("header"));
        assert!(parsed.get("meta").is_some());

        let prev = vec![WorkerSample::zeroed(2, 5); 2];
        let mut cur = prev.clone();
        cur[1].counters.sweeps = 4;
        cur[1].counters.delivered = 3;
        cur[1].counters.drops[4] = 1;
        cur[1].stall.busy_ns = 500;
        cur[1].stall.wall_ns = 700;
        cur[1].stage_service_ns[0].record(250);
        let lines = sample_lines(12_345, &cur, &prev, &stages);
        assert_eq!(lines.len(), 2);
        for line in &lines {
            assert!(!line.contains('\n'));
            serde_json::from_str(line).expect("sample line parses");
        }
        let w1 = serde_json::from_str(&lines[1]).unwrap();
        assert_eq!(w1.get("delivered").and_then(Value::as_u64), Some(3));
        assert_eq!(
            w1.get("drops")
                .and_then(|d| d.get("malformed"))
                .and_then(Value::as_u64),
            Some(1)
        );
        let stall = w1.get("stall").expect("stall object");
        assert_eq!(stall.get("busy_ns").and_then(Value::as_u64), Some(500));
    }
}

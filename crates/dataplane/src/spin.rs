//! Deadline busy-spinning: turning modeled nanosecond costs into real
//! CPU occupancy.
//!
//! Each pipeline stage's cost model says "this stage costs N ns of CPU"
//! — the worker must actually *occupy its core* for that long, or the
//! wall-clock comparison between serialized (vanilla) and pipelined
//! (Falcon) execution would measure nothing. Spinning against a
//! monotonic-clock deadline (rather than a calibrated iteration count)
//! is robust to frequency scaling and preemption: a worker that gets
//! descheduled mid-stage simply finishes its stage later, exactly like
//! a real softirq losing its core.

use std::time::{Duration, Instant};

/// A shared epoch for cross-thread timestamps. `Instant` is a monotonic
/// clock, so nanosecond offsets from one copied epoch are comparable
/// across worker threads — the property the post-run ordering merge
/// relies on.
#[derive(Debug, Clone, Copy)]
pub struct Epoch(Instant);

impl Epoch {
    /// Starts the clock.
    pub fn start() -> Self {
        Epoch(Instant::now())
    }

    /// Nanoseconds since the epoch.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.0.elapsed().as_nanos() as u64
    }
}

impl Default for Epoch {
    fn default() -> Self {
        Epoch::start()
    }
}

/// Busy-spins the calling thread for `ns` nanoseconds of wall time and
/// returns the actually-elapsed duration (≥ `ns`; more if preempted).
#[inline]
pub fn spin_for_ns(ns: u64) -> u64 {
    if ns == 0 {
        return 0;
    }
    let start = Instant::now();
    let target = Duration::from_nanos(ns);
    loop {
        let elapsed = start.elapsed();
        if elapsed >= target {
            return elapsed.as_nanos() as u64;
        }
        // A few pause hints between clock reads keep the loop polite to
        // SMT siblings without losing deadline precision.
        for _ in 0..8 {
            std::hint::spin_loop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spin_meets_its_deadline() {
        let spent = spin_for_ns(200_000);
        assert!(spent >= 200_000, "returned early: {spent}ns");
        // Not absurdly late either (schedulers permitting); allow 50x
        // slack for loaded CI machines.
        assert!(spent < 10_000_000, "suspiciously long spin: {spent}ns");
    }

    #[test]
    fn zero_is_free() {
        assert_eq!(spin_for_ns(0), 0);
    }

    #[test]
    fn epoch_is_monotonic() {
        let e = Epoch::start();
        let a = e.now_ns();
        spin_for_ns(10_000);
        let b = e.now_ns();
        assert!(b > a);
    }
}

//! Per-worker flow-verdict cache: the ONCache answer to the overlay
//! tax.
//!
//! The slow path pays outer parse + checksum, VXLAN decap, two FDB
//! lookups, and a flow dissection on *every* packet, even though the
//! verdict — where the inner frame lives, which bridge port it egresses
//! — is stable for a flow between FDB changes. This module caches that
//! verdict in a bounded flat table so the hot path can skip the modeled
//! kernel-stack stages, with three properties the differential oracle
//! depends on:
//!
//! * **Byte-honest keying.** The key ([`flow_cache_key`]) is a
//!   word-at-a-time mixing hash ([`falcon_packet::mix64`]) over the
//!   packet's header prefix — outer Ethernet/IPv4/UDP/VXLAN
//!   envelope plus the inner Ethernet/IPv4/L4 headers — with the fields
//!   that legitimately vary per packet *within* a flow (inner L4
//!   checksum, TCP sequence number) masked out, and the frame length
//!   folded in. Any bit flip in a byte the slow path would have
//!   verified changes the key, so corruption always misses and takes
//!   the full verifying path; flips in the masked bytes or the payload
//!   are exactly the ones the always-run delivery stage (inner L4
//!   checksum + digest) catches, at the same stage as the uncached leg.
//! * **Fill only on full proof.** A verdict is inserted only after the
//!   complete slow chain ([`full_verdict`]) passes — outer checks,
//!   decap bounds, VNI membership, both FDB lookups, flow dissection.
//!   Failures are never cached, so a bad frame re-fails at the exact
//!   stage whose check it breaks.
//! * **Epoch invalidation.** Every entry records the FDB epoch it was
//!   proven under. A lookup against a newer epoch reports
//!   [`Lookup::Stale`] and drops the entry, forcing re-verification —
//!   a stale verdict can never deliver through a dead FDB entry.
//!
//! Eviction is CLOCK-style second chance over a short probe window of
//! the flat slot array, with one guarantee the proptests pin down: the
//! victim is never the entry inserted immediately before.

use std::ops::Range;

use falcon_packet::encap::{decap_bounds, verify_l4_checksum};
use falcon_packet::{
    EtherType, EthernetHdr, MacAddr, ETHERNET_HDR_LEN, IPV4_HDR_LEN, TCP_HDR_LEN, UDP_HDR_LEN,
    VXLAN_HDR_LEN,
};

use crate::Fdb;

/// Offset of the inner Ethernet header in an encapsulated frame.
const INNER_ETH: usize = ETHERNET_HDR_LEN + IPV4_HDR_LEN + UDP_HDR_LEN + VXLAN_HDR_LEN;
/// Offset of the inner IPv4 header.
const INNER_IP: usize = INNER_ETH + ETHERNET_HDR_LEN;
/// Offset of the inner IPv4 protocol byte.
const INNER_IP_PROTO: usize = INNER_IP + 9;
/// Offset of the inner L4 header.
const INNER_L4: usize = INNER_IP + IPV4_HDR_LEN;

/// Seed of the flow-cache key hash; distinct from the delivery digest
/// seed so key and digest streams never alias.
const KEY_SEED: u64 = 0x5ca8_f10c_ac4e_4b1d;

/// Largest hashed prefix: outer envelope + inner Ethernet/IPv4/TCP,
/// plus the 8 folded-in length bytes.
const KEY_BUF: usize = INNER_L4 + TCP_HDR_LEN + 8;

/// Hashes an encapsulated single-segment frame down to its flow-cache
/// key, or `None` if the frame is too short or carries an inner
/// protocol the cache does not understand (those take the slow path).
///
/// The hash covers every header byte the slow path verifies — outer
/// envelope through the inner L4 header — except the fields that vary
/// per packet within a flow and are re-checked on the hit path anyway
/// by the delivery stage's inner-checksum verify: the inner UDP
/// checksum, or the inner TCP sequence number and checksum. The frame
/// length is folded in so truncation or extension changes the key.
pub fn flow_cache_key(frame: &[u8]) -> Option<u64> {
    if frame.len() <= INNER_IP_PROTO {
        return None;
    }
    // (hashed prefix end, masked ranges) per inner L4 protocol.
    let (hdr_end, masks): (usize, [Range<usize>; 2]) = match frame[INNER_IP_PROTO] {
        17 => (INNER_L4 + UDP_HDR_LEN, [INNER_L4 + 6..INNER_L4 + 8, 0..0]),
        6 => (
            INNER_L4 + TCP_HDR_LEN,
            [INNER_L4 + 4..INNER_L4 + 8, INNER_L4 + 16..INNER_L4 + 18],
        ),
        _ => return None,
    };
    if frame.len() < hdr_end {
        return None;
    }
    // Stage the prefix on the stack — masked fields zeroed, frame
    // length appended — then run the 8-byte-chunk mixer over it in one
    // pass. One memcpy plus a word-at-a-time hash replaces the old
    // byte-at-a-time masked FNV loop.
    let mut staged = [0u8; KEY_BUF];
    staged[..hdr_end].copy_from_slice(&frame[..hdr_end]);
    for m in &masks {
        staged[m.clone()].fill(0);
    }
    staged[hdr_end..hdr_end + 8].copy_from_slice(&(frame.len() as u64).to_le_bytes());
    Some(falcon_packet::mix64(KEY_SEED, &staged[..hdr_end + 8]))
}

/// The cached slow-path result for one flow's frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Verdict {
    /// Start of the inner frame within the outer (decap offset).
    pub inner_start: u32,
    /// End of the inner frame within the outer.
    pub inner_end: u32,
    /// Egress bridge port from the FDB lookup on the inner dst MAC.
    pub bridge_port: u16,
    /// FDB epoch this verdict was proven under.
    pub fdb_epoch: u64,
}

/// Runs the complete verifying slow chain on one encapsulated frame
/// and returns the verdict to cache, or `None` if any check fails
/// (failures are never cached — the per-stage slow path reports them).
///
/// This is the byte work of pNIC verify + VXLAN decap + bridge lookup
/// in one pass: outer parse, host-MAC filter, outer IPv4/UDP checksum,
/// decap bounds, VNI membership, both inner-MAC FDB lookups, and flow
/// dissection. The delivery stage's inner L4 checksum is deliberately
/// *not* part of the verdict: it covers per-packet payload and always
/// runs, hit or miss.
pub fn full_verdict(
    frame: &[u8],
    host_mac: MacAddr,
    want_vni: u32,
    fdb: &Fdb,
    fdb_epoch: u64,
) -> Option<Verdict> {
    let eth = EthernetHdr::parse(frame).ok()?;
    if eth.dst != host_mac || eth.ethertype != EtherType::Ipv4 {
        return None;
    }
    verify_l4_checksum(frame).ok()?;
    let b = decap_bounds(frame).ok()?;
    if b.vni != want_vni {
        return None;
    }
    let inner = &frame[b.inner.clone()];
    let ieth = EthernetHdr::parse(inner).ok()?;
    fdb.lookup(ieth.src)?;
    let port = fdb.lookup(ieth.dst)?;
    falcon_packet::encap::dissect_flow(inner).ok()?;
    Some(Verdict {
        inner_start: b.inner.start as u32,
        inner_end: b.inner.end as u32,
        bridge_port: port,
        fdb_epoch,
    })
}

/// Monotonic counters of one cache's lifetime, exported per worker
/// through the telemetry shards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a same-epoch verdict.
    pub hits: u64,
    /// Lookups that found nothing (stale finds count here too: the
    /// caller takes the same slow path either way, so the hit rate is
    /// `hits / (hits + misses)`).
    pub misses: u64,
    /// Occupied entries replaced to make room for a new flow.
    pub evictions: u64,
    /// Entries dropped because their epoch predated the lookup's —
    /// the lazy half of FDB-change invalidation.
    pub invalidations: u64,
}

#[derive(Debug, Clone)]
struct Slot {
    key: u64,
    refbit: bool,
    verdict: Verdict,
}

/// The result of one cache consult.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// Same-epoch verdict found; use it.
    Fresh(Verdict),
    /// An entry existed but its epoch predates the current one. The
    /// entry has been dropped; re-verify on the slow path and insert
    /// the fresh verdict.
    Stale,
    /// No entry. Take the slow path; insert on success.
    Miss,
}

/// A bounded flat flow-verdict cache: power-of-two slot array, short
/// linear probe window, CLOCK second-chance eviction within the
/// window. Single-owner (one per worker), no interior locking.
#[derive(Debug)]
pub struct FlowCache {
    slots: Vec<Option<Slot>>,
    mask: usize,
    window: usize,
    /// Slot of the most recent insert — never the eviction victim.
    last_insert: usize,
    len: usize,
    /// Lifetime counters; read by the executor's telemetry publish.
    pub stats: CacheStats,
}

impl FlowCache {
    /// A cache with at least `entries` slots (rounded up to a power of
    /// two, minimum 8).
    pub fn new(entries: usize) -> FlowCache {
        let cap = entries.next_power_of_two().max(8);
        FlowCache {
            slots: vec![None; cap],
            mask: cap - 1,
            window: 8.min(cap),
            last_insert: usize::MAX,
            len: 0,
            stats: CacheStats::default(),
        }
    }

    /// Total slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Occupied slot count. Never exceeds [`FlowCache::capacity`].
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn home(&self, key: u64) -> usize {
        ((key ^ (key >> 32) ^ (key >> 17)) as usize) & self.mask
    }

    /// Consults the cache for `key` against the current FDB `epoch`.
    /// A fresh hit marks the entry recently-used; a stale find is
    /// eagerly dropped so the refilled verdict lands in its slot.
    pub fn lookup(&mut self, key: u64, epoch: u64) -> Lookup {
        let home = self.home(key);
        for i in 0..self.window {
            let idx = (home + i) & self.mask;
            if let Some(slot) = &mut self.slots[idx] {
                if slot.key == key {
                    if slot.verdict.fdb_epoch == epoch {
                        slot.refbit = true;
                        self.stats.hits += 1;
                        return Lookup::Fresh(slot.verdict);
                    }
                    self.slots[idx] = None;
                    self.len -= 1;
                    if self.last_insert == idx {
                        self.last_insert = usize::MAX;
                    }
                    self.stats.invalidations += 1;
                    self.stats.misses += 1;
                    return Lookup::Stale;
                }
            }
        }
        self.stats.misses += 1;
        Lookup::Miss
    }

    /// Inserts (or refreshes) `key`'s verdict. If the probe window is
    /// full, a CLOCK pass over it clears reference bits and evicts the
    /// first unreferenced entry — skipping the slot of the immediately
    /// preceding insert, so a new flow can never evict the entry that
    /// was just proven.
    pub fn insert(&mut self, key: u64, verdict: Verdict) {
        let home = self.home(key);
        // Refresh in place, or take the first free slot in the window.
        let mut free: Option<usize> = None;
        for i in 0..self.window {
            let idx = (home + i) & self.mask;
            match &mut self.slots[idx] {
                Some(slot) if slot.key == key => {
                    slot.verdict = verdict;
                    slot.refbit = true;
                    self.last_insert = idx;
                    return;
                }
                Some(_) => {}
                None => {
                    if free.is_none() {
                        free = Some(idx);
                    }
                }
            }
        }
        if let Some(idx) = free {
            // New entries start unreferenced (one-hit wonders evict
            // first); the `last_insert` skip is what protects a brand
            // new entry from the very next insert's CLOCK pass.
            self.slots[idx] = Some(Slot {
                key,
                refbit: false,
                verdict,
            });
            self.len += 1;
            self.last_insert = idx;
            return;
        }
        // Window full: second-chance scan. Two passes suffice — the
        // first clears every reference bit it crosses, so the second
        // finds a victim even if all entries started referenced.
        for round in 0..2 {
            for i in 0..self.window {
                let idx = (home + i) & self.mask;
                if idx == self.last_insert {
                    continue;
                }
                let slot = self.slots[idx].as_mut().expect("window was full");
                if slot.refbit && round == 0 {
                    slot.refbit = false;
                    continue;
                }
                self.stats.evictions += 1;
                self.slots[idx] = Some(Slot {
                    key,
                    refbit: false,
                    verdict,
                });
                self.last_insert = idx;
                return;
            }
        }
        unreachable!("second CLOCK pass always finds an unreferenced victim");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FrameFactory;

    fn verdict(epoch: u64) -> Verdict {
        Verdict {
            inner_start: 50,
            inner_end: 150,
            bridge_port: 3,
            fdb_epoch: epoch,
        }
    }

    #[test]
    fn key_is_stable_within_a_flow_and_distinct_across_flows() {
        let f = FrameFactory::default();
        let k0a = flow_cache_key(&f.udp_wire(0, 0, 256)[0]).unwrap();
        let k0b = flow_cache_key(&f.udp_wire(0, 99, 256)[0]).unwrap();
        let k1 = flow_cache_key(&f.udp_wire(1, 0, 256)[0]).unwrap();
        assert_eq!(k0a, k0b, "seq must not change the key");
        assert_ne!(k0a, k1, "flows must not share a key");
    }

    #[test]
    fn key_is_stable_across_tcp_seq_numbers() {
        let f = FrameFactory::default();
        // Single-segment TCP messages: seq and checksum vary, key must not.
        let a = flow_cache_key(&f.tcp_wire(2, 0, 512, 1448)[0]).unwrap();
        let b = flow_cache_key(&f.tcp_wire(2, 7, 512, 1448)[0]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn key_changes_on_any_verified_header_byte() {
        let f = FrameFactory::default();
        let frame = f.udp_wire(0, 0, 256).remove(0);
        let base = flow_cache_key(&frame).unwrap();
        // Every hashed byte: outer envelope through the inner UDP
        // header, minus the masked inner-checksum bytes.
        for i in 0..INNER_L4 + UDP_HDR_LEN {
            if (INNER_L4 + 6..INNER_L4 + 8).contains(&i) {
                continue;
            }
            let mut m = frame.clone();
            m[i] ^= 0x10;
            // A flip must change the key — or make the frame
            // uncacheable outright (e.g. the inner IP proto byte),
            // which also forces the verifying slow path.
            assert_ne!(
                flow_cache_key(&m),
                Some(base),
                "flip at byte {i} must not keep the key"
            );
        }
    }

    #[test]
    fn key_masks_exactly_the_delivery_checked_fields() {
        let f = FrameFactory::default();
        let frame = f.udp_wire(0, 0, 256).remove(0);
        let base = flow_cache_key(&frame).unwrap();
        for i in INNER_L4 + 6..INNER_L4 + 8 {
            let mut m = frame.clone();
            m[i] ^= 0x10;
            assert_eq!(
                flow_cache_key(&m).unwrap(),
                base,
                "inner UDP checksum byte {i} is masked"
            );
        }
        // Payload flips keep the key too — the delivery stage's inner
        // checksum is what catches them, cached or not.
        let mut m = frame.clone();
        let last = m.len() - 1;
        m[last] ^= 0x10;
        assert_eq!(flow_cache_key(&m).unwrap(), base);
    }

    #[test]
    fn key_folds_in_frame_length() {
        let f = FrameFactory::default();
        let frame = f.udp_wire(0, 0, 256).remove(0);
        let base = flow_cache_key(&frame).unwrap();
        let mut longer = frame.clone();
        longer.push(0);
        assert_ne!(flow_cache_key(&longer).unwrap(), base);
    }

    #[test]
    fn runt_and_unknown_proto_are_uncacheable() {
        assert_eq!(flow_cache_key(&[0u8; 20]), None);
        let f = FrameFactory::default();
        let mut frame = f.udp_wire(0, 0, 64).remove(0);
        frame[INNER_IP_PROTO] = 47; // GRE: not a protocol we cache
        assert_eq!(flow_cache_key(&frame), None);
    }

    #[test]
    fn full_verdict_matches_the_slow_chain() {
        let f = FrameFactory::default();
        let fdb = Fdb::for_flows(&f, 2);
        let frame = f.udp_wire(1, 0, 128).remove(0);
        let v = full_verdict(&frame, FrameFactory::host_mac(), f.vni, &fdb, 7).unwrap();
        let b = decap_bounds(&frame).unwrap();
        assert_eq!(v.inner_start as usize, b.inner.start);
        assert_eq!(v.inner_end as usize, b.inner.end);
        // Destination (veth) side of flow 1 lands on port 2*1 + 1.
        assert_eq!(v.bridge_port, 3);
        assert_eq!(v.fdb_epoch, 7);
    }

    #[test]
    fn full_verdict_refuses_every_failing_frame() {
        let f = FrameFactory::default();
        let fdb = Fdb::for_flows(&f, 1);
        let host = FrameFactory::host_mac();
        let good = f.udp_wire(0, 0, 128).remove(0);
        assert!(full_verdict(&good, host, f.vni, &fdb, 0).is_some());
        // Wrong host MAC.
        assert!(full_verdict(&good, MacAddr::from_index(0xBAD), f.vni, &fdb, 0).is_none());
        // Wrong VNI.
        assert!(full_verdict(&good, host, f.vni + 1, &fdb, 0).is_none());
        // Unknown inner MACs (flow 3 not programmed).
        let unknown = f.udp_wire(3, 0, 128).remove(0);
        assert!(full_verdict(&unknown, host, f.vni, &fdb, 0).is_none());
        // Outer IP corruption breaks the header checksum.
        let mut corrupt = good.clone();
        corrupt[ETHERNET_HDR_LEN + 15] ^= 0x01;
        assert!(full_verdict(&corrupt, host, f.vni, &fdb, 0).is_none());
    }

    #[test]
    fn fresh_hit_stale_drop_miss() {
        let mut c = FlowCache::new(16);
        assert_eq!(c.lookup(42, 0), Lookup::Miss);
        c.insert(42, verdict(0));
        assert_eq!(c.lookup(42, 0), Lookup::Fresh(verdict(0)));
        // Epoch moved: the entry is stale, reported once, then gone.
        assert_eq!(c.lookup(42, 1), Lookup::Stale);
        assert_eq!(c.lookup(42, 1), Lookup::Miss);
        assert_eq!(c.stats.hits, 1);
        assert_eq!(c.stats.misses, 3);
        assert_eq!(c.stats.invalidations, 1);
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn refresh_updates_in_place() {
        let mut c = FlowCache::new(16);
        c.insert(7, verdict(0));
        c.insert(7, verdict(1));
        assert_eq!(c.len(), 1);
        assert_eq!(c.lookup(7, 1), Lookup::Fresh(verdict(1)));
    }

    #[test]
    fn eviction_keeps_len_bounded_and_spares_last_insert() {
        let mut c = FlowCache::new(8); // one window covers the whole table
        for key in 0..64u64 {
            c.insert(key, verdict(0));
            assert!(c.len() <= c.capacity());
            assert_eq!(
                c.lookup(key, 0),
                Lookup::Fresh(verdict(0)),
                "the just-inserted key must always be resident"
            );
            if key > 0 {
                // The previous insert may have been evicted later, but
                // never by the insert immediately after it.
                let prev = key - 1;
                assert!(
                    matches!(c.lookup(prev, 0), Lookup::Fresh(_)),
                    "insert of {key} evicted the immediately preceding insert {prev}"
                );
            }
        }
        assert!(c.stats.evictions > 0);
    }

    #[test]
    fn clock_prefers_unreferenced_victims() {
        let mut c = FlowCache::new(8);
        for key in 0..8u64 {
            c.insert(key, verdict(0));
        }
        // Touch everything except key 3, then insert a colliding flow:
        // the victim must be an untouched entry.
        for key in 0..8u64 {
            if key != 3 {
                assert!(matches!(c.lookup(key, 0), Lookup::Fresh(_)));
            }
        }
        c.insert(100, verdict(0));
        assert!(matches!(c.lookup(100, 0), Lookup::Fresh(_)));
        assert_eq!(
            c.lookup(3, 0),
            Lookup::Miss,
            "the one unreferenced entry is the CLOCK victim"
        );
    }
}
